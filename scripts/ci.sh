#!/usr/bin/env bash
# Offline-safe CI gate for BombDroid-rs.
#
#   scripts/ci.sh          # build + test + (if installed) clippy + fmt
#
# Everything runs with --offline: all external dependencies are vendored
# path crates under vendor/, so no registry access is ever needed.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline
run cargo test -q --workspace --offline

# clippy/fmt are optional toolchain components; gate on availability so the
# script works on minimal rust installs.
if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint"
fi

if cargo fmt --version >/dev/null 2>&1; then
    run cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format check"
fi

# Observability smoke: one fast experiment must produce metrics.json and
# flight.json artifacts that parse, match the bombdroid-obs schemas, and
# contain the core instrumentation points. Catches refactors that silently
# stop recording or break either exporter.
run env BOMBDROID_OBS=full BOMBDROID_THREADS=2 \
    cargo run -q --release --offline -p bombdroid-bench --bin repro -- --fast table5
run cargo run -q --release --offline -p bombdroid-bench --bin metrics_check -- \
    target/repro_output/metrics.json \
    --flight target/repro_output/flight.json \
    fleet.tasks vm.instr_executed pipeline.apps_protected cache.requests

# Metrics drift, advisory: diff the fresh artifact against the committed
# reference (scripts/metrics_reference.json, produced by the exact command
# above). Deterministic quantities — counter values, histogram counts —
# should be bit-identical run to run; a delta here means behavior changed,
# which is fine when intentional (regenerate the reference) but worth a
# line in the log either way. Wall-clock timings are informational only.
if cargo run -q --release --offline -p bombdroid-bench --bin metrics_diff -- \
    scripts/metrics_reference.json target/repro_output/metrics.json --threshold 10; then
    echo "==> metrics_diff: no deterministic drift vs reference (advisory)"
else
    echo "==> metrics_diff: WARNING deterministic metrics drifted vs" \
         "scripts/metrics_reference.json (advisory only; regenerate the" \
         "reference if the change is intentional)"
fi

# Guided-fuzzer smoke: a fixed-seed fast campaign (4 shards × 60 execs,
# seed PROTECT_BASE) must find at least one bomb on the single-trigger
# no-bogus control app, replay-validate every reported bomb, and emit a
# guided_resilience.json artifact matching its schema. The curves are
# bit-identical for any BOMBDROID_THREADS value (pinned by the attacks
# determinism suite); guided_check fails CI if the fuzzer or the exporter
# silently breaks.
run env BOMBDROID_OBS=full BOMBDROID_THREADS=2 \
    cargo run -q --release --offline -p bombdroid-bench --bin repro -- --fast guided
run cargo run -q --release --offline -p bombdroid-bench --bin guided_check -- \
    target/repro_output/guided_resilience.json

# Population-simulator smoke: a fast two-scale sweep (10^3 + 10^4 devices,
# VM-backed sessions, seed PROTECT_BASE^0x509) must measure per-bomb
# trigger rates within the closed-form tolerance bands, keep live metric
# memory bounded independent of device count, survive one mid-run
# kill + checkpoint + resume cycle with a byte-identical report, and emit
# a population.json artifact matching its schema. Results are bit-identical
# for any BOMBDROID_THREADS value; population_check fails CI if the
# simulator, the checkpoint codec, or the exporter silently breaks.
run env BOMBDROID_OBS=full BOMBDROID_THREADS=2 \
    cargo run -q --release --offline -p bombdroid-bench --bin repro -- --fast population
run cargo run -q --release --offline -p bombdroid-bench --bin population_check -- \
    target/repro_output/population.json

# Protect-as-a-service smoke: a fixed-seed job mix (four flagships, each
# submitted twice, plus one over-capacity probe) drained at two worker
# threads must single-flight every duplicate through the content-addressed
# cache, shed the overflow with a typed error, keep results in submission
# order, verify every signed package, and reproduce the parallel bytes in
# a serial control run. service_check fails CI if the cache, admission
# control, or drain ordering silently breaks.
run env BOMBDROID_OBS=full BOMBDROID_THREADS=2 \
    cargo run -q --release --offline -p bombdroid-bench --bin repro -- --fast service
run cargo run -q --release --offline -p bombdroid-bench --bin service_check -- \
    target/repro_output/service.json

# Perf smoke: the hot-path harness must run end to end and emit a valid
# BENCH_pipeline.json document. --fast numbers are not comparison-grade;
# this validates the plumbing, not the performance.
run env BOMBDROID_OBS=off \
    cargo run -q --release --offline -p bombdroid-bench --bin perf -- \
    --fast --out target/perf_smoke.json
run cargo run -q --release --offline -p bombdroid-bench --bin perf -- \
    --check target/perf_smoke.json

# Perf comparison against the committed full-mode baseline, in two tiers.
#
# Hard gate: the vm/ benchmarks (session boot, fork, event driving,
# profiling) are the execution-engine contract this repo optimizes — a
# regression there fails CI. --fast numbers on shared hardware are noisy,
# so the gate uses a generous 75% threshold: it won't trip on jitter, only
# on an engine that actually got slower.
run cargo run -q --release --offline -p bombdroid-bench --bin perf -- \
    --compare BENCH_pipeline.json target/perf_smoke.json \
    --threshold 75 --filter vm/

# Hard gate: the pipeline/ benchmarks (protect, plan, arm) carry the
# batch-crypto and protection-cache wins — a regression there fails CI.
# Same generous threshold as the vm/ gate: jitter passes, real
# regressions don't.
run cargo run -q --release --offline -p bombdroid-bench --bin perf -- \
    --compare BENCH_pipeline.json target/perf_smoke.json \
    --threshold 75 --filter pipeline/

# Advisory tier: everything else only warns (never fails CI); regenerate
# BENCH_pipeline.json with a full-mode run on quiet hardware before
# trusting a delta.
if cargo run -q --release --offline -p bombdroid-bench --bin perf -- \
    --compare BENCH_pipeline.json target/perf_smoke.json --threshold 50; then
    echo "==> perf compare: within threshold (advisory)"
else
    echo "==> perf compare: WARNING regression vs committed baseline (advisory only)"
fi

echo "==> ci green"
