#!/usr/bin/env bash
# Offline-safe CI gate for BombDroid-rs.
#
#   scripts/ci.sh          # build + test + (if installed) clippy + fmt
#
# Everything runs with --offline: all external dependencies are vendored
# path crates under vendor/, so no registry access is ever needed.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline
run cargo test -q --workspace --offline

# clippy/fmt are optional toolchain components; gate on availability so the
# script works on minimal rust installs.
if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint"
fi

if cargo fmt --version >/dev/null 2>&1; then
    run cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format check"
fi

echo "==> ci green"
