//! Offline stand-in for the crates.io `crossbeam` 0.8 API surface this
//! workspace uses: [`thread::scope`] with crossbeam's signature (closure
//! receives a [`thread::Scope`]; `scope` returns `Result`), implemented over
//! `std::thread::scope`. The fleet engine is written against this interface
//! so a future swap to real crossbeam (or rayon) is a one-line change.

#![warn(missing_docs)]

pub mod thread;

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let mut results = vec![0u64; 4];
        let out = crate::scope(|s| {
            let mut handles = Vec::new();
            for (i, slot) in results.iter_mut().enumerate() {
                handles.push(s.spawn(move |_| {
                    *slot = (i as u64 + 1) * 10;
                    i
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<usize>()
        })
        .expect("scope");
        assert_eq!(out, 1 + 2 + 3);
        assert_eq!(results, vec![10, 20, 30, 40]);
    }

    #[test]
    fn panics_surface_through_join() {
        let res = crate::scope(|s| {
            let h = s.spawn(|_| panic!("worker died"));
            h.join()
        })
        .expect("scope itself succeeds");
        assert!(res.is_err());
    }
}
