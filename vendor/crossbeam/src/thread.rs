//! Scoped threads with the crossbeam 0.8 calling convention.

/// Result of joining a scoped thread (Err carries the panic payload).
pub type Result<T> = std::thread::Result<T>;

/// A scope for spawning threads that may borrow from the caller's stack.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a thread spawned inside a [`Scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its value or panic payload.
    pub fn join(self) -> Result<T> {
        self.inner.join()
    }
}

/// Creates a scope in which threads borrowing local data can be spawned.
/// All spawned threads are joined before `scope` returns.
///
/// Unlike crossbeam, an unjoined panicking child aborts the calling thread
/// via std's scope semantics instead of collecting into the outer `Err`;
/// callers in this workspace always join explicitly, so the distinction is
/// unobservable here. The `Result` return type is kept for drop-in
/// compatibility with real crossbeam.
///
/// # Errors
///
/// Never returns `Err` in this stub (see above).
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope again so it
    /// can spawn siblings, as in crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}
