//! Offline stand-in for the crates.io `criterion` 0.5 API surface this
//! workspace's benches use: `Criterion` with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `benchmark_group` (+ `throughput`),
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical engine it runs each bench closure
//! `sample_size` times inside a wall-clock window and prints the mean
//! iteration time — enough to compare hot paths release-to-release offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Per-iteration timing state handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over repeated calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        std::hint::black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_one(id: &str, samples: usize, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    let start = Instant::now();
    for _ in 0..samples.max(1) {
        f(&mut b);
        if start.elapsed() > budget {
            break;
        }
    }
    if b.iters == 0 {
        println!("bench {id:<40} (no iterations)");
    } else {
        let mean_ns = b.elapsed.as_nanos() / b.iters as u128;
        println!(
            "bench {id:<40} mean {mean_ns:>12} ns/iter over {} iters",
            b.iters
        );
    }
}

impl Criterion {
    /// Sets how many samples to take per bench.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; this stub does not warm up.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Caps the wall-clock spent per bench.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the group throughput (printed once for context).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("group {} throughput {t:?}", self.name);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(
            &full,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a bench group: either `criterion_group!(name, target, ...)` or the
/// struct form with an explicit `config =` constructor.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("stub/smoke", |b| b.iter(|| calls += 1));
        assert!(calls >= 1);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(64));
        let mut calls = 0u32;
        g.bench_function(format!("inner/{}", 1), |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls >= 1);
    }
}
