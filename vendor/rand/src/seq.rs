//! Slice sampling helpers (`shuffle`, `choose`).

use crate::{Rng, RngCore};

/// Random slice operations, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>(), "identity shuffle unlikely");
    }

    #[test]
    fn choose_is_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([9u8].choose(&mut rng), Some(&9));
    }
}
