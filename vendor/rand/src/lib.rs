//! Offline stand-in for the crates.io `rand` 0.8 API surface this workspace
//! uses. The build environment has no registry access, so the workspace
//! vendors the subset it needs: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`, `fill`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — *not* the ChaCha12
//! stream of upstream `StdRng`. Everything in this repository only relies on
//! seeded determinism and uniformity, never on a specific stream, so the
//! substitution is behaviour-preserving for the reproduction. Streams are
//! stable across platforms and releases of this stub.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Low-level uniform word source. (Upstream has `next_u32`/`try_fill_bytes`
/// too; the workspace only consumes 64-bit draws and byte fills.)
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" (full-domain uniform) distribution —
/// the stub's analogue of `rand::distributions::Standard`.
pub trait StandardSample: Sized {
    /// Draws one full-domain uniform value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to the unit interval `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a uniform value can be drawn from (`lo..hi` and `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching upstream `gen_range`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Width fits in u64 for every primitive ≤ 64 bits; the
                // multiply-shift trick keeps the draw unbiased to 2^-64.
                let width = self.end.wrapping_sub(self.start) as u64;
                let offset = ((rng.next_u64() as u128 * width as u128) >> 64) as u64;
                self.start.wrapping_add(offset as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = end.wrapping_sub(start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = ((rng.next_u64() as u128 * (width as u128 + 1)) >> 64) as u64;
                start.wrapping_add(offset as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a full-domain uniform value.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-5..6);
            assert!((-5..6).contains(&v));
            let w: u8 = rng.gen_range(b'a'..=b'z');
            assert!(w.is_ascii_lowercase());
            let f: f64 = rng.gen_range(0.5..2.5);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}/10000 at p=0.25");
    }

    #[test]
    fn fill_covers_every_byte() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 33];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
