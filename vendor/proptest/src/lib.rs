//! Offline stand-in for the crates.io `proptest` 1.x API surface this
//! workspace's property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`boxed`, [`any`], `Just`, ranges and `&str` regex literals as
//! strategies, tuple composition, `collection::vec`, `prop_oneof!`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted for this offline
//! reproduction:
//!
//! * **No shrinking** — a failing case reports its deterministic case index
//!   (printed by a panic guard) instead of a minimized input.
//! * **Deterministic cases** — case `k` of test `t` is a pure function of
//!   `(t, k)`, so failures reproduce exactly across runs and machines.
//! * **Regex strategies** support the character-class subset the tests use
//!   (`"[a-z0-9 ]{0,24}"`-style patterns), not full regex syntax.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::rc::Rc;

pub mod collection;
pub mod test_runner;

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, BoxedStrategy, Just, Strategy};
}

// ------------------------------------------------------------------ rng --

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

// ------------------------------------------------------------- strategy --

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

// Integer ranges as strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);

// ---------------------------------------------------- &str regex subset --

/// String literals act as regex strategies. Supported subset: an optional
/// character class `[...]` (literal chars and `a-z` ranges) followed by a
/// `{lo,hi}` repetition; a bare literal string generates itself.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("proptest stub: unsupported regex pattern {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi); `None` if unsupported.
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let reps = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = reps.split_once(',')?;
    let (lo, hi) = (lo.parse().ok()?, hi.parse().ok()?);
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() || lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

// ------------------------------------------------------------ arbitrary --

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($t:ident),+) => {
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, as in `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// --------------------------------------------------------------- macros --

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition within a property (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality within a property (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality within a property (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` deterministic
/// cases. A failing case's index is printed before the panic unwinds.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let guard = $crate::test_runner::CaseGuard::new(stringify!($name), case);
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                    guard.pass();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_compose() {
        let strat = (0u16..32).prop_map(|x| x * 2);
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v < 64 && v % 2 == 0);
        }
    }

    #[test]
    fn regex_subset_generates_in_alphabet() {
        let strat = "[a-z0-9 ]{0,24}";
        let mut rng = TestRng::for_case("re", 1);
        for _ in 0..100 {
            let s = Strategy::sample(&strat, &mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case("arms", 2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn arbitrary_arrays_vary() {
        let mut rng = TestRng::for_case("arr", 3);
        let a = <[u8; 16]>::arbitrary(&mut rng);
        let b = <[u8; 16]>::arbitrary(&mut rng);
        assert_ne!(a, b);
    }

    proptest! {
        #![proptest_config(crate::test_runner::ProptestConfig::with_cases(8))]

        #[test]
        fn macro_samples_all_args(x in 0u64..100, pair in any::<(usize, u8)>()) {
            prop_assert!(x < 100);
            let (_, _) = pair;
        }
    }
}
