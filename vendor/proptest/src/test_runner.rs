//! Test-runner configuration and failure reporting.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of deterministic cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite quick
        // while still exercising the strategies broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Prints the failing case index if a property panics (no shrinking in this
/// stub, but the index makes failures exactly reproducible).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    passed: bool,
}

impl CaseGuard {
    /// Arms the guard for one case.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            passed: false,
        }
    }

    /// Disarms the guard after the case body completed.
    pub fn pass(mut self) {
        self.passed = true;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if !self.passed && std::thread::panicking() {
            eprintln!(
                "proptest stub: property `{}` failed at deterministic case #{} \
                 (cases are a pure function of the test name and index)",
                self.name, self.case
            );
        }
    }
}
