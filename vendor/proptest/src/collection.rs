//! Collection strategies (`collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy for vectors with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let len = self.len.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `vec(strategy, lo..hi)` — vectors of `strategy` values with a length in
/// `lo..hi`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn lengths_respect_range() {
        let strat = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
