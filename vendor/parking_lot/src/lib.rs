//! Offline stand-in for the crates.io `parking_lot` 0.12 API surface this
//! workspace uses: [`Mutex`] and [`RwLock`] with parking_lot's poison-free
//! semantics (a panic while holding a guard does not poison the lock for
//! other threads). Implemented over `std::sync`; performance characteristics
//! differ from real parking_lot but the locking semantics the fleet engine
//! relies on are identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never errors: a panic
    /// in another holder is ignored, as in parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
