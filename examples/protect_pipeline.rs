//! Protection pipeline, step by step: a guided tour of the paper's Fig. 1
//! with the intermediate artefacts printed — what the candidate selection
//! saw, where bombs landed, what the attacker's disassembler shows before
//! and after.
//!
//! ```sh
//! cargo run --release --example protect_pipeline
//! ```

use bombdroid::analysis::qc;
use bombdroid::core::{profile_app, ProtectConfig, Protector};
use bombdroid::dex::asm;
use bombdroid::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let app = bombdroid::corpus::flagship::hash_droid();
    let developer = DeveloperKey::generate(&mut rng);
    let apk = app.apk(&developer);
    let config = ProtectConfig::default();

    // ---- Step 1: unpack ---------------------------------------------
    println!("== Step 1: unpack the APK ==");
    println!(
        "entries: {:?}",
        apk.entries()
            .iter()
            .map(|(n, b)| format!("{n} ({} B)", b.len()))
            .collect::<Vec<_>>()
    );
    println!("developer public key Ko = {}", apk.cert.public_key);

    // ---- Step 2: profile + static analysis --------------------------
    println!("\n== Step 2: profiling and static analysis ==");
    let profile = profile_app(&apk, &config, 77).expect("profiling");
    println!(
        "profiled {} events; {} methods invoked; {} hot methods excluded",
        profile.telemetry.events_run,
        profile.telemetry.method_calls.len(),
        profile.hot.len()
    );
    let sites = qc::scan_dex(&apk.dex);
    let (weak, medium, strong) = sites.iter().fold((0, 0, 0), |acc, s| match s.strength() {
        bombdroid::analysis::Strength::Weak => (acc.0 + 1, acc.1, acc.2),
        bombdroid::analysis::Strength::Medium => (acc.0, acc.1 + 1, acc.2),
        bombdroid::analysis::Strength::Strong => (acc.0, acc.1, acc.2 + 1),
    });
    println!(
        "{} existing qualified conditions found ({} weak / {} medium / {} strong)",
        sites.len(),
        weak,
        medium,
        strong
    );
    let mut ranked: Vec<_> = profile
        .telemetry
        .field_values
        .iter()
        .map(|(f, samples)| {
            let uniq: std::collections::HashSet<_> = samples.iter().map(|(_, v)| v).collect();
            (f.clone(), uniq.len())
        })
        .collect();
    ranked.sort_by_key(|(_, u)| std::cmp::Reverse(*u));
    println!("field-entropy ranking (artificial-QC material):");
    for (f, u) in ranked.iter().take(5) {
        println!("  {f}: {u} distinct values");
    }

    // ---- Step 3: instrumentation -------------------------------------
    println!("\n== Step 3: bomb construction & instrumentation ==");
    let protected = Protector::new(config)
        .protect(&apk, &mut rng)
        .expect("protect");
    let r = &protected.report;
    println!(
        "{} bombs injected: {} on existing QCs, {} artificial, {} bogus; {} sites skipped",
        r.bombs_injected() + r.bogus_bombs(),
        r.existing_bombs(),
        r.artificial_bombs(),
        r.bogus_bombs(),
        r.skipped_sites
    );
    if let Some(bomb) = r.bombs.iter().find(|b| b.inner.is_some()) {
        let (desc, p) = bomb.inner.as_ref().unwrap();
        println!(
            "sample bomb: {} in {}, outer strength {:?}, inner trigger `{}` (p = {:.2}), \
             detection = {}",
            bomb.blob,
            bomb.method,
            bomb.strength,
            desc,
            p,
            bomb.detection.unwrap_or("none")
        );
    }

    // ---- What the attacker sees --------------------------------------
    println!("\n== attacker's view (disassembly diff) ==");
    let armed = r
        .bombs
        .iter()
        .find(|b| b.kind == bombdroid::core::BombKind::ExistingQc)
        .expect("at least one existing-QC bomb");
    let before = apk.dex.method(&armed.method).expect("method");
    let after = protected.dex.method(&armed.method).expect("method");
    println!("--- {} before (excerpt) ---", armed.method);
    for line in asm::disasm_method(before).lines().take(8) {
        println!("{line}");
    }
    println!("--- {} after (excerpt) ---", armed.method);
    for line in asm::disasm_method(after).lines().take(10) {
        println!("{line}");
    }
    println!(
        "(the original condition constant is gone; the payload is {} bytes of ciphertext)",
        protected
            .dex
            .blob(armed.blob)
            .map(|b| b.sealed.len())
            .unwrap_or(0)
    );

    // ---- Step 4: package ----------------------------------------------
    println!("\n== Step 4: package & sign ==");
    let signed = protected.package(&developer);
    println!(
        "protected APK: {} B (original {} B, +{:.1}%); signature verifies: {}",
        signed.total_size(),
        apk.total_size(),
        100.0 * r.code_size_increase(),
        signed.verify().is_ok()
    );
}
