//! Attack lab: run the paper's §2.1 adversary analyses against three
//! protection schemes — naive bombs, SSN, and BombDroid — and print the
//! resilience matrix of §5.
//!
//! ```sh
//! cargo run --release --example attack_lab
//! ```

use bombdroid::attacks::resilience::{resilience_matrix, Protection};
use bombdroid::attacks::AttackKind;

fn main() {
    let app = bombdroid::corpus::flagship::catlog();
    println!(
        "target app: {} ({} instructions)\n",
        app.name,
        app.dex.instruction_count()
    );
    let report = resilience_matrix(&app, 2024);

    println!(
        "{:<22} {:<10} {:<10} {:<10}",
        "attack \\ protection", "naive", "SSN", "BombDroid"
    );
    println!("{}", "-".repeat(56));
    for attack in AttackKind::ALL {
        let verdict = |p: Protection| {
            if report.cell(attack, p).defeated {
                "DEFEATED"
            } else {
                "resists"
            }
        };
        println!(
            "{:<22} {:<10} {:<10} {:<10}",
            attack.to_string(),
            verdict(Protection::Naive),
            verdict(Protection::Ssn),
            verdict(Protection::BombDroid)
        );
    }

    println!("\nevidence (BombDroid column):");
    for attack in AttackKind::ALL {
        let cell = report.cell(attack, Protection::BombDroid);
        println!("  {:<22} {}", attack.to_string(), cell.note);
    }

    let brute = &report.brute.report;
    println!(
        "\nbrute force vs BombDroid: {}/{} outer conditions cracked \
         ({} hash evaluations) — the weak (bool/small-int) ones, as §5.1 predicts",
        brute.cracked, brute.total, brute.tries
    );
    println!(
        "cost model: a 32-bit constant needs ~{:.0} CPU-seconds at 10^6 H/s; \
         a string constant is out of reach",
        bombdroid::attacks::brute::expected_seconds(32, 1e6)
    );
}
