//! Market simulation: decentralized repackaging detection at fleet scale.
//!
//! The paper's core proposal is that *user devices* do the detecting
//! (§1, §4.2): each triggered bomb degrades the pirated copy and reports
//! back, bad ratings accumulate, and the store takes the listing down.
//! This example simulates that pipeline over a fleet of diverse devices
//! downloading a pirated app over several (virtual) days.
//!
//! Each day's user sessions run on the deterministic fleet engine: the
//! whole simulation is reproducible bit-for-bit no matter how many worker
//! threads it gets (`BOMBDROID_THREADS=1` forces the serial schedule).
//!
//! Per-session metrics stream through a windowed `ShardAggregator`
//! instead of piling up one recorder per device: every 16 sessions the
//! open window seals, a progress line goes to stderr, and the window is
//! dropped — so metric memory stays O(windows), not O(devices), while
//! the running total stays bit-identical to a whole-recorder merge.
//!
//! ```sh
//! cargo run --release --example market_simulation
//! ```

use bombdroid::obs::{self, ShardAggregator};
use bombdroid::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Sessions per observability window.
const SESSIONS_PER_WINDOW: usize = 16;

/// Review threshold below which the market pulls a listing.
const TAKEDOWN_RATING: f64 = 2.5;
/// Piracy reports that make the developer file a takedown request.
const REPORT_THRESHOLD: u64 = 25;

/// What one simulated user contributes to the day's aggregation.
struct UserOutcome {
    reports: u64,
    detected: bool,
    rating: f64,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // Developer ships a protected app; a pirate re-signs and lists it on a
    // third-party market.
    let app = bombdroid::corpus::flagship::calendar();
    let developer = DeveloperKey::generate(&mut rng);
    let apk = app.apk(&developer);
    let protected = Protector::new(ProtectConfig::default())
        .protect(&apk, &mut rng)
        .expect("protection");
    println!(
        "{} protected with {} bombs; pirate lists a repackaged copy",
        app.name,
        protected.report.bombs_injected()
    );
    let signed = protected.package(&developer);
    let pirate = DeveloperKey::generate(&mut rng);
    let pirated = repackage(&signed, &pirate, |_| {});
    let pkg = InstalledPackage::install(&pirated).expect("install");
    // Every simulated device boots from one pristine session pool: sessions
    // are bit-identical to direct `Vm::boot` calls, but the package body is
    // pre-decoded once and shared across the whole fleet.
    let pool = SessionPool::new(pkg, VmOptions::default());

    let threads = std::env::var("BOMBDROID_THREADS")
        .ok()
        .and_then(|s| s.parse().ok());

    // One aggregator for the whole simulation: each day's fleet absorbs
    // its per-session recorder deltas here in task-index order.
    let agg = ShardAggregator::new(SESSIONS_PER_WINDOW);

    let mut total_reports = 0u64;
    let mut ratings: Vec<f64> = Vec::new();
    let mut taken_down_day = None;

    'days: for day in 1..=14u32 {
        // Each day a batch of new users installs the pirated copy and
        // plays for a while on their own device. The sessions are
        // independent, so they fan out over the fleet; each user's
        // randomness comes only from (day seed, user index).
        let downloads = 20 + rng.gen_range(0..10usize);
        let mut day_fleet = FleetConfig::new(derive_seed(99, day as u64));
        if let Some(n) = threads {
            day_fleet = day_fleet.with_threads(n);
        }
        let outcomes = expect_all(run_indexed_windowed(day_fleet, downloads, &agg, |ctx| {
            let mut urng = ctx.rng();
            let env = DeviceEnv::sample(&mut urng);
            let mut vm = pool.session(env, ctx.seed);
            let mut source = UserEventSource;
            let minutes = urng.gen_range(10..60);
            run_session(&mut vm, &mut source, &mut urng, minutes, 40);
            vm.publish_obs();
            let t = vm.telemetry();
            // A user whose app crashed/froze/misbehaved leaves a bad
            // review; a happy user a good one.
            let detected = t.detection_fired();
            let rating = if detected {
                urng.gen_range(1.0..2.5)
            } else {
                urng.gen_range(3.5..5.0)
            };
            Ok::<_, std::convert::Infallible>(UserOutcome {
                reports: t.piracy_reports,
                detected,
                rating,
            })
        }));

        // Publish the windows this day's sessions completed, then drop
        // them — only the running total and the open window stay live.
        for w in agg.drain_windows() {
            let r = &w.recorder;
            eprintln!(
                "[obs] window {:>3} (sessions {}..{}): {} events, {} instr, {} bombs triggered",
                w.index,
                w.start_task,
                w.start_task + w.tasks,
                r.counter_value("vm.events_run"),
                r.counter_value("vm.instr_executed"),
                r.counter_value("vm.bombs_triggered"),
            );
        }

        let mut day_detections = 0u32;
        for outcome in outcomes {
            total_reports += outcome.reports;
            if outcome.detected {
                day_detections += 1;
            }
            ratings.push(outcome.rating);
        }
        let avg: f64 = ratings.iter().sum::<f64>() / ratings.len() as f64;
        println!(
            "day {day:>2}: {downloads} downloads, {day_detections} devices detected piracy, \
             {total_reports} total reports to developer, market rating {avg:.2}",
        );
        // Aggregation channel 1: the listing's rating collapses.
        if avg < TAKEDOWN_RATING && ratings.len() > 30 {
            println!("=> market pulls the listing (rating {avg:.2} < {TAKEDOWN_RATING})");
            taken_down_day = Some(day);
            break 'days;
        }
        // Aggregation channel 2: the developer files a takedown with
        // evidence from the piracy reports.
        if total_reports >= REPORT_THRESHOLD {
            println!("=> developer files takedown with {total_reports} device reports as evidence");
            taken_down_day = Some(day);
            break 'days;
        }
    }

    // Seal the trailing partial window and report the streaming totals.
    agg.finish();
    agg.drain_windows();
    let total = agg.total();
    eprintln!(
        "[obs] {} sessions in {} windows; totals: {} events, {} instr, {} piracy reports \
         ({} live metric names)",
        agg.tasks_absorbed(),
        agg.windows_sealed(),
        total.counter_value("vm.events_run"),
        total.counter_value("vm.instr_executed"),
        total.counter_value("vm.piracy_reports"),
        agg.live_metric_names(),
    );
    if obs::mode() == obs::ObsMode::Off {
        eprintln!("[obs] BOMBDROID_OBS=off: windowed metrics disabled");
    }

    match taken_down_day {
        Some(day) => println!(
            "\npirated listing removed after {day} day(s) — detection was fully decentralized: \
             no market-side similarity analysis, only user devices running their own copies."
        ),
        None => println!("\nlisting survived 14 days (unusual — try another seed)"),
    }
}
