//! Market simulation: decentralized repackaging detection at fleet scale.
//!
//! The paper's core proposal is that *user devices* do the detecting
//! (§1, §4.2): each triggered bomb degrades the pirated copy and reports
//! back, bad ratings accumulate, and the store takes the listing down.
//!
//! This used to be a self-contained script; it is now a thin driver over
//! the `bombdroid_sim` subsystem. The simulator owns the sharded day
//! loop: sessions fan out over the deterministic fleet engine chunk by
//! chunk, per-session metrics stream through a windowed shard aggregator
//! (metric memory stays O(windows), not O(devices)), and the whole run is
//! reproducible bit-for-bit no matter how many worker threads it gets
//! (`BOMBDROID_THREADS=1` forces the serial schedule).
//!
//! To prove the checkpoint story, the driver snapshots the run at its
//! first chunk boundary, resumes a *second* simulator from that JSON, and
//! asserts both produce byte-identical final reports — the same mechanism
//! lets a million-device campaign survive a kill mid-run.
//!
//! ```sh
//! cargo run --release --example market_simulation
//! ```

use bombdroid::prelude::*;
use bombdroid::sim::MarketState;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // Developer ships a protected app; a pirate re-signs and lists it on a
    // third-party market.
    let app = bombdroid::corpus::flagship::calendar();
    let developer = DeveloperKey::generate(&mut rng);
    let apk = app.apk(&developer);
    let protected = Protector::new(ProtectConfig::default())
        .protect(&apk, &mut rng)
        .expect("protection");
    println!(
        "{} protected with {} bombs; pirate lists a repackaged copy",
        app.name,
        protected.report.bombs_injected()
    );
    // The catalog of double-trigger bombs whose firing rates the simulator
    // measures against the paper's closed-form predictions.
    let catalog = BombCatalog::from_report(&protected.report);
    let signed = protected.package(&developer);
    let pirate = DeveloperKey::generate(&mut rng);
    let pirated = repackage(&signed, &pirate, |_| {});
    let pkg = Arc::new(InstalledPackage::install(&pirated).expect("install"));

    // Every simulated device boots from one pristine session pool: the
    // package body is pre-decoded once and shared across the whole fleet.
    let runner = || VmRunner::new(SessionPool::new(Arc::clone(&pkg), VmOptions::default()));

    let mut config = SimConfig::new(336, 14, 99);
    config.window = 16;
    config.checkpoint_every = 2;
    config.threads = std::env::var("BOMBDROID_THREADS")
        .ok()
        .and_then(|s| s.parse().ok());

    let mut sim = Simulator::new(config, catalog.clone(), runner());
    let mut checkpoint = None;
    let mut last_day = u32::MAX;
    sim.run_with(|s| {
        // First chunk boundary: snapshot the whole folded state.
        if checkpoint.is_none() {
            checkpoint = Some(s.checkpoint_json().expect("chunk boundary"));
        }
        // Publish the windows this chunk sealed, then drop them — only the
        // running total and the open window stay live.
        for w in s.aggregator().drain_windows() {
            let r = &w.recorder;
            eprintln!(
                "[obs] window {:>3} (sessions {}..{}): {} events, {} instr, {} bombs triggered",
                w.index,
                w.start_task,
                w.start_task + w.tasks,
                r.counter_value("vm.events_run"),
                r.counter_value("vm.instr_executed"),
                r.counter_value("vm.bombs_triggered"),
            );
        }
        let m = s.market();
        let day = s.sessions_run() as u64 * 14 / 336;
        if day as u32 != last_day {
            last_day = day as u32;
            println!(
                "day {day:>2}: {} sessions, {} reports to developer, market rating {:.2}",
                s.sessions_run(),
                m.reports,
                m.avg_rating_milli() as f64 / 1000.0,
            );
        }
    });
    let report = sim.report_json().expect("finished");
    summarize(sim.market(), sim.sessions_run());

    // The same folded state, reconstructed from the first checkpoint and
    // replayed — byte-identical report, whatever BOMBDROID_THREADS says.
    if let Some(ckpt) = checkpoint {
        let mut resumed = Simulator::from_checkpoint(&ckpt, runner()).expect("checkpoint parses");
        resumed.run();
        let resumed_report = resumed.report_json().expect("finished");
        assert_eq!(report, resumed_report, "kill+resume must be bit-identical");
        println!("checkpoint/resume verified: resumed report is byte-identical");
    }

    let agg = sim.aggregator();
    let total = agg.total();
    eprintln!(
        "[obs] {} sessions in {} windows; totals: {} events, {} instr, {} piracy reports \
         ({} live metric names)",
        agg.tasks_absorbed(),
        agg.windows_sealed(),
        total.counter_value("vm.events_run"),
        total.counter_value("vm.instr_executed"),
        total.counter_value("vm.piracy_reports"),
        agg.live_metric_names(),
    );

    // Per-bomb measurement vs the closed-form prediction (§6).
    for (entry, stats) in sim.bomb_stats() {
        if stats.outer_sessions == 0 {
            continue;
        }
        println!(
            "bomb {:>3}: measured {:.3} vs predicted {:.3} ({} outer sessions)",
            entry.marker,
            stats.measured_ppm() as f64 / 1e6,
            entry.predicted_ppm as f64 / 1e6,
            stats.outer_sessions,
        );
    }
}

fn summarize(market: &MarketState, sessions: usize) {
    match market.taken_down_day {
        Some(day) => println!(
            "\npirated listing removed after day {day} ({sessions} sessions) — detection was \
             fully decentralized: no market-side similarity analysis, only user devices \
             running their own copies."
        ),
        None => println!("\nlisting survived 14 days (unusual — try another seed)"),
    }
}
