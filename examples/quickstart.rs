//! Quickstart: protect an app, pirate it, and watch a user's device detect
//! the repackaging.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bombdroid::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A developer builds an app (here: the AndroFish model from the
    //    paper's Fig. 3) and signs it with their private key.
    let app = bombdroid::corpus::flagship::androfish();
    let developer = DeveloperKey::generate(&mut rng);
    let apk = app.apk(&developer);
    println!(
        "built {}: {} classes, {} instructions, {} entry points",
        app.name,
        apk.dex.classes.len(),
        apk.dex.instruction_count(),
        apk.dex.entry_points.len()
    );

    // 2. BombDroid weaves cryptographically obfuscated logic bombs into the
    //    bytecode. The developer re-signs the protected build.
    let protector = Protector::new(ProtectConfig::default());
    let protected = protector.protect(&apk, &mut rng).expect("protection");
    println!(
        "protected: {} bombs ({} existing-QC + {} artificial-QC, +{} bogus), code +{:.1}%",
        protected.report.bombs_injected(),
        protected.report.existing_bombs(),
        protected.report.artificial_bombs(),
        protected.report.bogus_bombs(),
        100.0 * protected.report.code_size_increase(),
    );
    let signed = protected.package(&developer);

    // 3. A pirate unpacks the app, swaps the author and icon, and re-signs
    //    with their own key — the public key necessarily changes.
    let pirate = DeveloperKey::generate(&mut rng);
    let pirated = repackage(&signed, &pirate, |_dex| {
        // (a real repackager would also inject ad/malware code here)
    });
    println!(
        "pirated copy signed by {} (original {})",
        pirated.cert.public_key, signed.cert.public_key
    );

    // 4. An ordinary user installs the pirated copy and plays. Their
    //    device differs from the pirate's test emulators, so sooner or
    //    later a bomb's two triggers line up...
    let pkg = InstalledPackage::install(&pirated).expect("system verifies the pirate's signature");
    let mut vm = Vm::boot(pkg, DeviceEnv::sample(&mut rng), 7);
    let mut user = UserEventSource;
    let session = run_session(&mut vm, &mut user, &mut rng, 60, 40);
    let t = vm.telemetry();
    println!(
        "user session: {} events over {} min",
        session.events,
        session.end_ms / 60_000
    );
    match t.first_marker_ms {
        Some(ms) => println!(
            "=> repackaging detected after {:.1}s: {} bomb(s) fired, {} piracy report(s), {} response(s)",
            ms as f64 / 1000.0,
            t.bombs_triggered(),
            t.piracy_reports,
            t.responses.len()
        ),
        None => println!("=> no bomb fired this session (rare — try another seed)"),
    }

    // 5. The same protected app on a *legitimate* install never
    //    misbehaves: zero false positives.
    let legit = InstalledPackage::install(&signed).expect("install");
    let mut vm = Vm::boot(legit, DeviceEnv::sample(&mut rng), 8);
    run_session(&mut vm, &mut UserEventSource, &mut rng, 30, 40);
    assert!(vm.telemetry().responses.is_empty());
    assert_eq!(vm.telemetry().piracy_reports, 0);
    println!("legitimate copy: 30 min of play, zero responses (no false positives)");
}
