//! BombDroid-rs umbrella crate.
//!
//! Re-exports every workspace crate under one roof so the repository-root
//! `examples/` and `tests/` can exercise the whole system through a single
//! dependency. See [`bombdroid_core`] for the paper's primary contribution
//! (the protection pipeline) and `DESIGN.md` for the full system inventory.
//!
//! # Quick start
//!
//! ```
//! use bombdroid::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Generate a synthetic app, protect it with logic bombs, and check
//! // what was injected.
//! let mut rng = StdRng::seed_from_u64(7);
//! let app = bombdroid::corpus::flagship::hash_droid();
//! let keypair = DeveloperKey::generate(&mut rng);
//! let apk = app.apk(&keypair);
//! let protector = Protector::new(ProtectConfig::fast_profile());
//! let protected = protector.protect(&apk, &mut rng).unwrap();
//! assert!(protected.report.bombs_injected() > 0);
//! ```

#![forbid(unsafe_code)]

pub use bombdroid_analysis as analysis;
pub use bombdroid_apk as apk;
pub use bombdroid_attacks as attacks;
pub use bombdroid_core as core;
pub use bombdroid_corpus as corpus;
pub use bombdroid_crypto as crypto;
pub use bombdroid_dex as dex;
pub use bombdroid_obs as obs;
pub use bombdroid_runtime as runtime;
pub use bombdroid_sim as sim;
pub use bombdroid_ssn as ssn;

/// Convenient glob-import surface for examples and integration tests.
pub mod prelude {
    pub use bombdroid_apk::{package_app, repackage, ApkFile, AppMeta, DeveloperKey, StringsXml};
    pub use bombdroid_core::{
        derive_seed, expect_all, run_fleet, run_fleet_windowed, run_indexed, run_indexed_windowed,
        FleetConfig, ProtectConfig, ProtectedApp, Protector, TaskCtx,
    };
    pub use bombdroid_runtime::{
        run_session, DeviceEnv, DeviceProfile, InstalledPackage, RandomEventSource, SessionPool,
        UserEventSource, Vm, VmEngine, VmOptions, VmSnapshot,
    };
    pub use bombdroid_sim::{
        BombCatalog, DevicePopulation, MarketConfig, SimConfig, Simulator, SyntheticRunner,
        VmRunner,
    };
}
