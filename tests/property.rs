//! Property-based tests (proptest) over the core data structures and
//! invariants: wire-format round-trips, sealed-blob authentication,
//! steganography, RSA signatures, and generator/validator coherence.

use bombdroid::apk::{stego, DeveloperKey};
use bombdroid::attacks::{minset, CoverageMap};
use bombdroid::crypto::{blob, hex, kdf};
use bombdroid::dex::{wire, BinOp, CondOp, Instr, Reg, RegOrConst, Value};
use bombdroid::runtime::CovEdge;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        "[a-z0-9 ]{0,24}".prop_map(Value::str),
        proptest::collection::vec(any::<u8>(), 0..40).prop_map(Value::bytes),
    ]
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u16..32).prop_map(Reg)
}

/// Edges over a small universe so random lists overlap (exercising dedup,
/// merge, and minset tie-breaking instead of trivially disjoint sets).
fn arb_edges() -> impl Strategy<Value = Vec<CovEdge>> {
    proptest::collection::vec((0u32..4, 0u32..12, 0u32..12), 0..24)
}

/// A straight-line instruction (branch-free so any sequence is a valid
/// fragment).
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), arb_value()).prop_map(|(dst, value)| Instr::Const { dst, value }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Instr::Move { dst, src }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(dst, lhs, rhs)| Instr::BinOp {
            op: BinOp::Add,
            dst,
            lhs,
            rhs
        }),
        (arb_reg(), arb_reg(), any::<i64>()).prop_map(|(dst, lhs, rhs)| Instr::BinOpConst {
            op: BinOp::Xor,
            dst,
            lhs,
            rhs
        }),
        (
            arb_reg(),
            arb_reg(),
            proptest::collection::vec(any::<u8>(), 0..24)
        )
            .prop_map(|(dst, src, salt)| Instr::Hash { dst, src, salt }),
        Just(Instr::Nop),
        Just(Instr::Return { src: None }),
    ]
}

proptest! {
    #[test]
    fn wire_fragment_roundtrip(body in proptest::collection::vec(arb_instr(), 0..60)) {
        let bytes = wire::encode_fragment(&body);
        let back = wire::decode_fragment(&bytes).expect("decode");
        prop_assert_eq!(back, body);
    }

    #[test]
    fn value_canonical_bytes_injective_across_types(a in arb_value(), b in arb_value()) {
        // canonical_bytes must distinguish any two distinct values.
        if a != b {
            prop_assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        } else {
            prop_assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        }
    }

    #[test]
    fn sealed_blobs_roundtrip_and_authenticate(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        key_a in any::<[u8; 16]>(),
        key_b in any::<[u8; 16]>(),
    ) {
        let sealed = blob::seal(&key_a, &payload);
        prop_assert_eq!(blob::open(&key_a, &sealed).expect("right key"), payload);
        if key_a != key_b {
            prop_assert!(blob::open(&key_b, &sealed).is_err());
        }
    }

    #[test]
    fn sealed_blob_tamper_detection(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        key in any::<[u8; 16]>(),
        flip in any::<(usize, u8)>(),
    ) {
        let mut sealed = blob::seal(&key, &payload);
        let idx = flip.0 % sealed.len();
        let bit = 1u8 << (flip.1 % 8);
        sealed[idx] ^= bit;
        prop_assert!(blob::open(&key, &sealed).is_err());
    }

    #[test]
    fn stego_roundtrips_any_bytes(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let cover = stego::embed(&payload);
        prop_assert_eq!(stego::extract(&cover).expect("valid cover"), payload);
    }

    #[test]
    fn hex_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(hex::decode(&hex::encode(&data)).expect("valid hex"), data);
    }

    #[test]
    fn kdf_is_deterministic_and_salt_sensitive(
        c in proptest::collection::vec(any::<u8>(), 0..32),
        salt_a in proptest::collection::vec(any::<u8>(), 1..16),
        salt_b in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        prop_assert_eq!(kdf::derive_key(&c, &salt_a), kdf::derive_key(&c, &salt_a));
        if salt_a != salt_b {
            prop_assert_ne!(kdf::derive_key(&c, &salt_a), kdf::derive_key(&c, &salt_b));
        }
    }

    #[test]
    fn rsa_signatures_bind_message_and_key(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = DeveloperKey::generate(&mut rng);
        let other = DeveloperKey::generate(&mut rng);
        let sig = key.sign(&msg);
        prop_assert!(key.public.verify(&msg, sig));
        let mut tampered = msg.clone();
        tampered.push(0x01);
        prop_assert!(!key.public.verify(&tampered, sig));
        prop_assert!(!other.public.verify(&msg, sig));
    }

    #[test]
    fn generated_apps_always_validate(seed in any::<u64>(), cat_idx in 0usize..8) {
        let category = bombdroid::corpus::Category::ALL[cat_idx];
        let app = bombdroid::corpus::generate_app("PropApp", category, seed);
        prop_assert!(bombdroid::dex::validate(&app.dex).is_ok());
        prop_assert!(!app.dex.entry_points.is_empty());
    }

    #[test]
    fn favorites_stay_in_domain(lo in -1_000i64..1_000, span in 1i64..100_000, idx in 0usize..4) {
        let domain = bombdroid::dex::ParamDomain::IntRange(lo, lo + span);
        for v in bombdroid::runtime::param_favorites(&domain, "ev", idx) {
            match v {
                Value::Int(i) => prop_assert!((lo..=lo + span).contains(&i)),
                other => prop_assert!(false, "unexpected favourite {other:?}"),
            }
        }
    }

    /// Coverage only grows: absorbing more edges never loses one, the gain
    /// count is exact, and a grown map is always a superset of its past.
    #[test]
    fn coverage_absorb_is_monotone(batches in proptest::collection::vec(arb_edges(), 0..6)) {
        let mut map = CoverageMap::new();
        for batch in &batches {
            let before = map.clone();
            let gained = map.absorb(batch);
            prop_assert_eq!(map.len(), before.len() + gained);
            prop_assert!(map.is_superset(&before), "absorb dropped an edge");
            for e in batch {
                prop_assert!(map.contains(e));
            }
            // Re-absorbing the same batch is a no-op (set semantics).
            prop_assert_eq!(map.absorb(batch), 0);
        }
    }

    /// Merge is commutative and idempotent, and fingerprints agree iff the
    /// edge sets do — the campaign's shard-merge order cannot matter.
    #[test]
    fn coverage_merge_commutes_and_is_idempotent(a in arb_edges(), b in arb_edges()) {
        let ma = CoverageMap::from_edges(a.iter().copied());
        let mb = CoverageMap::from_edges(b.iter().copied());
        let mut ab = ma.clone();
        ab.merge(&mb);
        let mut ba = mb.clone();
        ba.merge(&ma);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.fingerprint(), ba.fingerprint());
        prop_assert_eq!(ab.edges(), ba.edges());
        let mut again = ab.clone();
        prop_assert_eq!(again.merge(&mb), 0, "second merge must add nothing");
        prop_assert_eq!(&again, &ab);
        // Self-merge is the identity.
        let mut selfed = ma.clone();
        prop_assert_eq!(selfed.merge(&ma), 0);
        prop_assert_eq!(&selfed, &ma);
    }

    /// The greedy minset keeps a subset of the corpus (ascending, in-range,
    /// duplicate-free) whose union coverage equals the full corpus's.
    #[test]
    fn minimized_corpus_preserves_union_coverage(covers in proptest::collection::vec(arb_edges(), 0..10)) {
        let kept = minset(&covers);
        prop_assert!(kept.windows(2).all(|w| w[0] < w[1]), "indices must be strictly ascending");
        prop_assert!(kept.iter().all(|&i| i < covers.len()));
        let mut full = CoverageMap::new();
        for c in &covers {
            full.absorb(c);
        }
        let mut min = CoverageMap::new();
        for &i in &kept {
            min.absorb(&covers[i]);
        }
        prop_assert_eq!(&min, &full, "minimized corpus lost coverage");
        prop_assert_eq!(min.fingerprint(), full.fingerprint());
        // Greedy never selects a zero-gain input, so an input with no edges
        // can never be kept, and the minset is at most the number of
        // edge-bearing inputs.
        prop_assert!(kept.iter().all(|&i| !covers[i].is_empty()));
        prop_assert!(kept.len() <= covers.iter().filter(|c| !c.is_empty()).count());
        // Determinism: same corpus, same minset.
        prop_assert_eq!(minset(&covers), kept);
    }

    #[test]
    fn condop_negation_flips_comparisons(a in any::<i64>(), b in any::<i64>(), op_idx in 0usize..6) {
        use bombdroid::dex::CondOp::*;
        let op = [Eq, Ne, Lt, Le, Gt, Ge][op_idx];
        let holds = |op: CondOp| match op {
            Eq => a == b,
            Ne => a != b,
            Lt => a < b,
            Le => a <= b,
            Gt => a > b,
            Ge => a >= b,
        };
        prop_assert_eq!(holds(op), !holds(op.negate()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Protecting a generated app keeps the DEX valid and erases every
    /// armed plaintext constant — across random app seeds.
    #[test]
    fn protection_validates_across_random_apps(seed in any::<u64>()) {
        use bombdroid::core::{ProtectConfig, Protector};
        let app = bombdroid::corpus::generate_app(
            "PropProtect",
            bombdroid::corpus::Category::Game,
            seed,
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let dev = DeveloperKey::generate(&mut rng);
        let apk = app.apk(&dev);
        let protected = Protector::new(ProtectConfig::fast_profile())
            .protect(&apk, &mut rng)
            .expect("protect");
        prop_assert!(bombdroid::dex::validate(&protected.dex).is_ok());
        // Every DecryptExec is guarded by a preceding salted hash compare
        // in the same method.
        for m in protected.dex.methods() {
            for (pc, i) in m.body.iter().enumerate() {
                if matches!(i, Instr::DecryptExec { .. }) {
                    let guarded = m.body[..pc].iter().rev().take(4).any(|j| {
                        matches!(
                            j,
                            Instr::If {
                                rhs: RegOrConst::Const(Value::Bytes(_)),
                                ..
                            }
                        )
                    });
                    prop_assert!(guarded, "{}@{pc}: unguarded DecryptExec", m.method_ref());
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Population-scale measurement lands in the paper's inner-trigger
    /// band: for bombs whose predicted probability sits in p ∈ [0.1, 0.2]
    /// (the band `InnerCond::synthesize` targets), a 10^4-device run
    /// measures each bomb's conditional firing rate within tolerance, and
    /// the outer-weighted mean stays inside the band.
    #[test]
    fn population_measurement_lands_in_trigger_band(
        seed in any::<u64>(),
        probs in proptest::collection::vec(100_000u64..200_001, 2..5),
    ) {
        use bombdroid::sim::{BombCatalog, BombEntry, SimConfig, Simulator, SyntheticRunner};
        let catalog = BombCatalog::new(
            probs
                .iter()
                .enumerate()
                .map(|(i, &predicted_ppm)| BombEntry {
                    marker: i as u32,
                    blob: 100 + i as u32,
                    predicted_ppm,
                })
                .collect(),
        );
        let mut config = SimConfig::new(10_000, 5, seed);
        config.market.halt_on_takedown = false;
        let mut sim = Simulator::new(config, catalog.clone(), SyntheticRunner::new(catalog));
        sim.run();
        let mut weighted = 0u128;
        let mut outer_total = 0u128;
        for (entry, stats) in sim.bomb_stats() {
            prop_assert!(stats.outer_sessions > 5_000, "outer trigger starved");
            let measured = stats.measured_ppm() as i64;
            let predicted = entry.predicted_ppm as i64;
            prop_assert!(
                (measured - predicted).abs() < 30_000,
                "bomb {}: measured {measured} ppm vs predicted {predicted} ppm",
                entry.marker
            );
            weighted += stats.measured_ppm() as u128 * stats.outer_sessions as u128;
            outer_total += stats.outer_sessions as u128;
        }
        let mean = (weighted / outer_total) as i64;
        prop_assert!(
            (70_000..=230_000).contains(&mean),
            "weighted mean {mean} ppm outside band"
        );
    }

    /// Checkpoint → resume → report is bit-identical for arbitrary kill
    /// points: killing the day loop after any chunk and resuming from the
    /// serialized state reproduces the uninterrupted run's report
    /// byte-for-byte (threads may even change across the cycle).
    #[test]
    fn checkpoint_resume_is_bit_identical(
        seed in any::<u64>(),
        kill_after in 1usize..12,
        threads_before in 1usize..4,
        threads_after in 1usize..4,
    ) {
        use bombdroid::sim::{BombCatalog, BombEntry, SimConfig, Simulator, SyntheticRunner};
        let catalog = BombCatalog::new(vec![BombEntry {
            marker: 1,
            blob: 9,
            predicted_ppm: 150_000,
        }]);
        let mut config = SimConfig::new(1_536, 6, seed);
        config.window = 32;
        config.checkpoint_every = 2;
        config.market.halt_on_takedown = false;

        let mut whole = Simulator::new(config, catalog.clone(), SyntheticRunner::new(catalog.clone()));
        whole.run();
        let expected = whole.report_json().unwrap();

        let mut killed = Simulator::new(config, catalog.clone(), SyntheticRunner::new(catalog.clone()));
        killed.set_threads(Some(threads_before));
        let mut steps = 0usize;
        while steps < kill_after && killed.step() {
            steps += 1;
        }
        if killed.done() {
            // Run was short enough to finish before the kill point — the
            // uninterrupted report must still match.
            prop_assert_eq!(killed.report_json().unwrap(), expected);
            return;
        }
        let ckpt = killed.checkpoint_json().unwrap();
        drop(killed);

        let mut resumed =
            Simulator::from_checkpoint(&ckpt, SyntheticRunner::new(catalog)).unwrap();
        resumed.set_threads(Some(threads_after));
        resumed.run();
        prop_assert_eq!(resumed.report_json().unwrap(), expected);
    }
}
