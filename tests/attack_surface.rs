//! Cross-crate tests of the attack surface: what each adversary tool can
//! and cannot see or do against real protected builds.

use bombdroid::attacks::{self, symbolic, textsearch};
use bombdroid::core::{NaiveProtector, ProtectConfig, Protector};
use bombdroid::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn protected_trio() -> (ApkFile, ApkFile, ApkFile) {
    let mut rng = StdRng::seed_from_u64(17);
    let dev = DeveloperKey::generate(&mut rng);
    let app = bombdroid::corpus::flagship::swjournal();
    let apk = app.apk(&dev);
    let bomb = Protector::new(ProtectConfig::fast_profile())
        .protect(&apk, &mut rng)
        .unwrap()
        .package(&dev);
    let naive = NaiveProtector::new(ProtectConfig::fast_profile())
        .protect(&apk, &mut rng)
        .unwrap()
        .package(&dev);
    (apk, bomb, naive)
}

#[test]
fn text_search_sees_machinery_but_not_payloads() {
    let (original, bomb, naive) = protected_trio();
    // Original app: nothing suspicious.
    assert!(textsearch::search_default(&original.dex).is_empty());
    // Naive: the detection API is right there.
    assert!(textsearch::exposes_get_public_key(&naive.dex));
    // BombDroid: hash/decrypt machinery is visible (the paper does not
    // hide it — it deters deletion instead), but no detection API leaks.
    let hits = textsearch::search_default(&bomb.dex);
    assert!(hits.iter().any(|h| h.pattern == "decrypt-exec"));
    assert!(hits.iter().any(|h| h.pattern == "sha1-hash"));
    assert!(!textsearch::exposes_get_public_key(&bomb.dex));
}

#[test]
fn symbolic_execution_blocked_exactly_at_hashes() {
    let (_, bomb, naive) = protected_trio();
    let out_bomb = symbolic::analyze_dex(&bomb.dex, symbolic::Limits::default());
    assert!(out_bomb.bombs.len() > 3, "explorer must reach bombs");
    assert_eq!(out_bomb.keys_recovered(), 0);
    assert!(out_bomb.hash_barriers() > 0);
    assert!(
        out_bomb.exposed.is_empty(),
        "no payload reachable symbolically"
    );

    let out_naive = symbolic::analyze_dex(&naive.dex, symbolic::Limits::default());
    assert!(
        !out_naive.exposed.is_empty(),
        "naive payloads must be symbolically exposed"
    );
    // And the synthesized inputs are real triggers: every exposure comes
    // with a satisfying assignment.
    for e in &out_naive.exposed {
        // Solvable by construction — inputs may be empty when the payload
        // is unconditionally reachable from the entry.
        let _ = &e.inputs;
    }
}

#[test]
fn brute_force_crack_rate_tracks_strength() {
    let (_, bomb, _) = protected_trio();
    let conditions = attacks::brute::find_conditions(&bomb.dex);
    assert!(!conditions.is_empty());
    let mut cracked_small_budget = 0;
    let mut cracked_large_budget = 0;
    for c in &conditions {
        if attacks::brute::crack(c, 10).recovered.is_some() {
            cracked_small_budget += 1;
        }
        if attacks::brute::crack(c, 5_000).recovered.is_some() {
            cracked_large_budget += 1;
        }
    }
    // Budget monotonicity + a resistant cohort must remain.
    assert!(cracked_large_budget >= cracked_small_budget);
    assert!(
        cracked_large_budget < conditions.len(),
        "some conditions must survive 5k tries"
    );
}

#[test]
fn fuzzing_is_deterministic_per_seed() {
    let (_, bomb, _) = protected_trio();
    let a = attacks::run_fuzzer(attacks::FuzzerKind::Dynodroid, &bomb, 3, 5);
    let b = attacks::run_fuzzer(attacks::FuzzerKind::Dynodroid, &bomb, 3, 5);
    assert_eq!(a.satisfied_outer, b.satisfied_outer);
    assert_eq!(a.bombs_triggered, b.bombs_triggered);
    assert_eq!(a.timeline, b.timeline);
}

#[test]
fn fuzzers_run_on_attacker_image_miss_env_gated_bombs() {
    // Inner triggers tie bombs to the user population; an attacker's
    // emulator satisfies only its own slice. An hour of the best fuzzer
    // must leave the large majority dormant.
    let (_, bomb, _) = protected_trio();
    let report = attacks::run_fuzzer(attacks::FuzzerKind::Dynodroid, &bomb, 60, 3);
    assert!(report.total_outer > 10);
    let triggered_ratio = report.bombs_triggered as f64 / report.total_outer as f64;
    assert!(
        triggered_ratio < 0.25,
        "fuzzer triggered {:.0}% of bombs",
        triggered_ratio * 100.0
    );
}

#[test]
fn forced_execution_cannot_fake_the_install_state() {
    // Even with app-level patches, the system-managed install state (cert,
    // manifest) is out of the attacker's reach on user devices: patching
    // the dex and re-signing changes the manifest digest, and the cert key
    // always changes. Verify both identity channels shift under repackage.
    let mut rng = StdRng::seed_from_u64(23);
    let dev = DeveloperKey::generate(&mut rng);
    let pirate = DeveloperKey::generate(&mut rng);
    let app = bombdroid::corpus::flagship::angulo();
    let signed = Protector::new(ProtectConfig::fast_profile())
        .protect(&app.apk(&dev), &mut rng)
        .unwrap()
        .package(&dev);
    let pirated = repackage(&signed, &pirate, |dex| {
        attacks::instrument::force_random_zero(dex);
    });
    let a = InstalledPackage::install(&signed).unwrap();
    let b = InstalledPackage::install(&pirated).unwrap();
    assert_ne!(a.cert_public_key, b.cert_public_key);
    assert_ne!(
        a.manifest_digests.get("res/icon.png"),
        b.manifest_digests.get("res/icon.png"),
        "icon swap shows up in the system-managed manifest"
    );
}
