//! Fleet-scale behaviour: the decentralized detection scheme across many
//! diverse devices (paper §1's D1/D2 and §4.2's aggregation story).

use bombdroid::core::{ProtectConfig, Protector};
use bombdroid::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

struct Fleet {
    pirated: InstalledPackage,
    legit: InstalledPackage,
}

fn build_fleet() -> Fleet {
    let mut rng = StdRng::seed_from_u64(7);
    let dev = DeveloperKey::generate(&mut rng);
    let pirate = DeveloperKey::generate(&mut rng);
    let app = bombdroid::corpus::flagship::binaural_beat();
    let apk = app.apk(&dev);
    let protected = Protector::new(ProtectConfig::fast_profile())
        .protect(&apk, &mut rng)
        .unwrap();
    let signed = protected.package(&dev);
    let pirated = repackage(&signed, &pirate, |_| {});
    Fleet {
        pirated: InstalledPackage::install(&pirated).unwrap(),
        legit: InstalledPackage::install(&signed).unwrap(),
    }
}

fn run_device(pkg: &InstalledPackage, seed: u64, minutes: u64) -> (bool, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let env = DeviceEnv::sample(&mut rng);
    let mut vm = Vm::boot(pkg.clone(), env, seed ^ 0xF1EE7);
    let mut source = UserEventSource;
    run_session(&mut vm, &mut source, &mut rng, minutes, 40);
    (
        vm.telemetry().detection_fired(),
        vm.telemetry().piracy_reports,
    )
}

#[test]
fn fleet_detects_pirated_copy_and_spares_legit_one() {
    let fleet = build_fleet();
    let devices = 16u64;
    let mut pirated_detections = 0;
    let mut reports = 0;
    let mut legit_detections = 0;
    for d in 0..devices {
        let (hit, r) = run_device(&fleet.pirated, 500 + d, 45);
        pirated_detections += hit as u32;
        reports += r;
        let (hit, _) = run_device(&fleet.legit, 500 + d, 20);
        legit_detections += hit as u32;
    }
    assert!(
        pirated_detections as u64 >= devices * 6 / 10,
        "only {pirated_detections}/{devices} devices detected piracy"
    );
    assert!(
        reports >= pirated_detections as u64,
        "each detection reports home"
    );
    assert_eq!(legit_detections, 0, "zero false positives across the fleet");
}

#[test]
fn different_devices_trigger_different_bombs() {
    // D1: environment diversity means the *set* of triggerable bombs
    // varies per device — the attacker cannot enumerate them from one
    // emulator.
    let fleet = build_fleet();
    let mut marker_sets = Vec::new();
    for d in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(900 + d);
        let env = DeviceEnv::sample(&mut rng);
        let mut vm = Vm::boot(fleet.pirated.clone(), env, d);
        let mut source = UserEventSource;
        run_session(&mut vm, &mut source, &mut rng, 45, 40);
        marker_sets.push(vm.telemetry().markers.clone());
    }
    let distinct: std::collections::HashSet<_> = marker_sets.iter().collect();
    assert!(
        distinct.len() > 1,
        "devices must not all trigger the identical bomb set"
    );
    let union: std::collections::BTreeSet<u32> = marker_sets.iter().flatten().copied().collect();
    let max_single = marker_sets.iter().map(|s| s.len()).max().unwrap_or(0);
    assert!(
        union.len() > max_single,
        "the fleet's union coverage must beat any single device"
    );
}
