//! End-to-end lifecycle tests spanning every crate: generate → package →
//! protect → sign → (re)install → run → detect.

use bombdroid::core::{ProtectConfig, Protector};
use bombdroid::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn fast() -> ProtectConfig {
    ProtectConfig::fast_profile()
}

#[test]
fn protected_app_preserves_behaviour_on_legit_installs() {
    // The central correctness invariant: on a legitimately signed install,
    // the protected app is observationally identical to the original —
    // same log stream, same final state — even while bombs trigger and
    // payloads run (their detection comparisons all pass).
    let mut rng = StdRng::seed_from_u64(11);
    let dev = DeveloperKey::generate(&mut rng);
    let app = bombdroid::corpus::flagship::swjournal();
    let apk = app.apk(&dev);
    let protected = Protector::new(fast()).protect(&apk, &mut rng).unwrap();
    assert!(protected.report.bombs_injected() > 10);
    let signed = protected.package(&dev);

    for session_seed in [1u64, 2, 3] {
        let run = |apk: &ApkFile| {
            let pkg = InstalledPackage::install(apk).unwrap();
            let mut rng = StdRng::seed_from_u64(session_seed);
            let env = DeviceEnv::sample(&mut rng);
            let mut vm = Vm::boot(pkg, env, session_seed ^ 0xE2E);
            let mut source = UserEventSource;
            run_session(&mut vm, &mut source, &mut rng, 10, 60);
            (
                vm.telemetry().logs.clone(),
                vm.statics_snapshot(),
                vm.telemetry().responses.len(),
                vm.telemetry().piracy_reports,
            )
        };
        let (logs_a, state_a, resp_a, rep_a) = run(&apk);
        let (logs_b, state_b, resp_b, rep_b) = run(&signed);
        assert_eq!(
            logs_a, logs_b,
            "log streams must match (seed {session_seed})"
        );
        assert_eq!(
            state_a, state_b,
            "final state must match (seed {session_seed})"
        );
        assert_eq!((resp_a, rep_a), (0, 0));
        assert_eq!((resp_b, rep_b), (0, 0), "no false positives");
    }
}

#[test]
fn repackaged_app_is_detected_by_users() {
    let mut rng = StdRng::seed_from_u64(21);
    let dev = DeveloperKey::generate(&mut rng);
    let pirate = DeveloperKey::generate(&mut rng);
    let app = bombdroid::corpus::flagship::androfish();
    let apk = app.apk(&dev);
    let protected = Protector::new(fast()).protect(&apk, &mut rng).unwrap();
    let signed = protected.package(&dev);
    let pirated = repackage(&signed, &pirate, |_| {});
    let pkg = InstalledPackage::install(&pirated).unwrap();

    // A small fleet of diverse users: most must detect within an hour.
    let mut detections = 0;
    let fleet = 10;
    for u in 0..fleet {
        let mut urng = StdRng::seed_from_u64(1000 + u);
        let env = DeviceEnv::sample(&mut urng);
        let mut vm = Vm::boot(pkg.clone(), env, 77 + u);
        let mut source = UserEventSource;
        run_session(&mut vm, &mut source, &mut urng, 60, 40);
        if vm.telemetry().detection_fired() {
            detections += 1;
        }
    }
    assert!(
        detections >= fleet * 7 / 10,
        "only {detections}/{fleet} devices detected the repackaging"
    );
}

#[test]
fn tampered_digest_detection_fires_even_with_matching_key() {
    // An attacker who somehow keeps the public key (e.g. only swaps the
    // icon inside the original developer's signing flow) is still caught
    // by manifest-digest comparison. We simulate by re-signing with the
    // *developer's* key after changing the icon.
    let mut rng = StdRng::seed_from_u64(31);
    let dev = DeveloperKey::generate(&mut rng);
    let app = bombdroid::corpus::flagship::calendar();
    let apk = app.apk(&dev);
    let protected = Protector::new(fast()).protect(&apk, &mut rng).unwrap();
    let mut tampered = protected.package(&dev);
    tampered.icon = vec![0xEE; 32]; // replaced icon
    tampered.resign(&dev, "original developer");
    let pkg = InstalledPackage::install(&tampered).unwrap();

    let mut detections = 0;
    for u in 0..8u64 {
        let mut urng = StdRng::seed_from_u64(2000 + u);
        let env = DeviceEnv::sample(&mut urng);
        let mut vm = Vm::boot(pkg.clone(), env, 88 + u);
        let mut source = UserEventSource;
        run_session(&mut vm, &mut source, &mut urng, 60, 40);
        if vm.telemetry().detection_fired() {
            detections += 1;
        }
    }
    assert!(detections > 0, "digest comparison must catch icon swaps");
}

#[test]
fn unsigned_tampering_never_installs() {
    let mut rng = StdRng::seed_from_u64(41);
    let dev = DeveloperKey::generate(&mut rng);
    let app = bombdroid::corpus::flagship::catlog();
    let mut apk = app.apk(&dev);
    apk.meta.author = "script kiddie".into();
    assert!(InstalledPackage::install(&apk).is_err());
}

#[test]
fn strategic_muting_silences_later_bombs() {
    // The paper's §10 future work: once one bomb has fired, the others go
    // quiet so an analyst tracing responses learns only a single trigger.
    let mut rng = StdRng::seed_from_u64(61);
    let dev = DeveloperKey::generate(&mut rng);
    let pirate = DeveloperKey::generate(&mut rng);
    let app = bombdroid::corpus::flagship::androfish();
    let apk = app.apk(&dev);
    let run_fleet = |mute: bool| -> (usize, usize) {
        let mut rng = StdRng::seed_from_u64(62);
        let config = ProtectConfig {
            mute_after_detection: mute,
            // Non-aborting responses so sessions continue after the first
            // detection and later bombs get the chance to (not) fire.
            responses: vec![bombdroid::core::ResponseChoice::LeakMemory],
            ..ProtectConfig::fast_profile()
        };
        let protected = Protector::new(config).protect(&apk, &mut rng).unwrap();
        let signed = protected.package(&dev);
        let pirated = repackage(&signed, &pirate, |_| {});
        let pkg = InstalledPackage::install(&pirated).unwrap();
        let mut markers = 0;
        let mut observable = 0;
        for u in 0..4u64 {
            let mut urng = StdRng::seed_from_u64(3000 + u);
            let env = DeviceEnv::sample(&mut urng);
            let mut vm = Vm::boot(pkg.clone(), env, 99 + u);
            let mut source = UserEventSource;
            run_session(&mut vm, &mut source, &mut urng, 45, 40);
            markers += vm.telemetry().bombs_triggered();
            observable += vm.telemetry().responses.len() + vm.telemetry().piracy_reports as usize;
        }
        (markers, observable)
    };
    let (markers_loud, observable_loud) = run_fleet(false);
    let (markers_muted, observable_muted) = run_fleet(true);
    assert!(
        markers_loud > 0 && markers_muted > 0,
        "bombs must trigger in both modes"
    );
    assert!(
        observable_muted < observable_loud,
        "muting must reduce observable responses: {observable_muted} vs {observable_loud}"
    );
    // With muting, at most one detection per device is observable:
    // warn + report + response = 3 events.
    assert!(
        observable_muted <= 4 * 3,
        "muted fleet leaked {observable_muted} observable events"
    );
}

#[test]
fn protection_is_deterministic_under_seed() {
    let mut rng_a = StdRng::seed_from_u64(55);
    let mut rng_b = StdRng::seed_from_u64(55);
    let dev = DeveloperKey::generate(&mut StdRng::seed_from_u64(1));
    let app = bombdroid::corpus::flagship::angulo();
    let apk = app.apk(&dev);
    let a = Protector::new(fast()).protect(&apk, &mut rng_a).unwrap();
    let b = Protector::new(fast()).protect(&apk, &mut rng_b).unwrap();
    assert_eq!(a.dex, b.dex);
    assert_eq!(a.report.bombs.len(), b.report.bombs.len());
}
