//! Differential behavior-preservation sweep: for a corpus of generated
//! apps, the protected build must be observationally identical to the
//! original on legitimately-signed installs — across random device
//! environments and random event streams where no response ever fires.
//!
//! This is the paper's central correctness invariant (§7/§8.4, zero false
//! positives) driven as a differential test: same seed → same events →
//! same logs, same final statics, zero responses, zero piracy reports,
//! and zero decrypt failures (every triggered bomb must re-derive its key
//! from the live trigger value).

use bombdroid::core::{ProtectConfig, Protector};
use bombdroid::corpus::{flagship, gen::generate_app, Category};
use bombdroid::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Everything observable about a session, for original/protected diffing.
#[derive(Debug, PartialEq)]
struct Observation {
    logs: Vec<String>,
    statics: Vec<(String, String)>,
    responses: usize,
    piracy_reports: u64,
    decrypt_failures: u64,
}

fn observe(apk: &ApkFile, session_seed: u64, events: u64) -> Observation {
    let pkg = InstalledPackage::install(apk).expect("signed install");
    let mut rng = StdRng::seed_from_u64(session_seed);
    let env = DeviceEnv::sample(&mut rng);
    let mut vm = Vm::boot(pkg, env, session_seed ^ 0xBEEF);
    let mut source = RandomEventSource;
    run_session(&mut vm, &mut source, &mut rng, events, 60);
    let t = vm.telemetry();
    Observation {
        logs: t.logs.clone(),
        statics: vm.statics_snapshot(),
        responses: t.responses.len(),
        piracy_reports: t.piracy_reports,
        decrypt_failures: t.decrypt_failures,
    }
}

#[test]
fn protected_corpus_is_observationally_identical_on_legit_installs() {
    let dev = DeveloperKey::generate(&mut StdRng::seed_from_u64(7));
    let corpus = [
        flagship::androfish(),
        flagship::hash_droid(),
        flagship::catlog(),
        generate_app("bp-game", Category::Game, 0xA11),
        generate_app("bp-writing", Category::Writing, 0xA12),
        generate_app("bp-nav", Category::Navigation, 0xA13),
        generate_app("bp-sec", Category::Security, 0xA14),
    ];
    for (i, app) in corpus.iter().enumerate() {
        let apk = app.apk(&dev);
        let mut prng = StdRng::seed_from_u64(0xC0FFEE + i as u64);
        let protected = Protector::new(ProtectConfig::fast_profile())
            .protect(&apk, &mut prng)
            .unwrap_or_else(|e| panic!("{}: protect failed: {e}", app.name));
        assert!(
            protected.report.bombs_injected() > 0,
            "{}: corpus member must actually carry bombs",
            app.name
        );
        let signed = protected.package(&dev);

        for session_seed in [1u64, 42, 7777] {
            let original = observe(&apk, session_seed, 40);
            let guarded = observe(&signed, session_seed, 40);
            assert_eq!(
                original, guarded,
                "{} seed {session_seed}: protected run diverged",
                app.name
            );
            assert_eq!(
                (
                    guarded.responses,
                    guarded.piracy_reports,
                    guarded.decrypt_failures
                ),
                (0, 0, 0),
                "{} seed {session_seed}: legit install must look untouched",
                app.name
            );
        }
    }
}

/// Telemetry-identity mode: the pre-decoded execution engine must be
/// *bit-identical* to the legacy tree-walker — not just in logs and
/// statics, but in every telemetry field: instruction counts, per-method
/// call counts, satisfied-condition sets, bomb counters, response lists,
/// clocks. Runs the 7-app corpus × 3 seeds on *pirated* installs so
/// decrypt-and-execute paths and bomb responses are exercised, and
/// compares the full [`bombdroid::runtime::Telemetry`] structs.
///
/// Engines are selected with explicit [`VmOptions`] rather than the
/// `BOMBDROID_VM=legacy` environment fallback: the env var is resolved
/// once per process, which would race with the other tests in this binary.
#[test]
fn decoded_and_legacy_engines_produce_identical_telemetry() {
    let dev = DeveloperKey::generate(&mut StdRng::seed_from_u64(7));
    let pirate = DeveloperKey::generate(&mut StdRng::seed_from_u64(9));
    let corpus = [
        flagship::androfish(),
        flagship::hash_droid(),
        flagship::catlog(),
        generate_app("ti-game", Category::Game, 0xB11),
        generate_app("ti-writing", Category::Writing, 0xB12),
        generate_app("ti-nav", Category::Navigation, 0xB13),
        generate_app("ti-sec", Category::Security, 0xB14),
    ];
    for (i, app) in corpus.iter().enumerate() {
        let apk = app.apk(&dev);
        let mut prng = StdRng::seed_from_u64(0xE0 + i as u64);
        let protected = Protector::new(ProtectConfig::fast_profile())
            .protect(&apk, &mut prng)
            .unwrap_or_else(|e| panic!("{}: protect failed: {e}", app.name));
        let signed = protected.package(&dev);
        let pirated = repackage(&signed, &pirate, |_| {});

        for session_seed in [1u64, 42, 7777] {
            let run = |engine: VmEngine| {
                let pkg = InstalledPackage::install(&pirated).expect("pirated install");
                let mut rng = StdRng::seed_from_u64(session_seed);
                let env = DeviceEnv::sample(&mut rng);
                let opts = VmOptions {
                    engine,
                    ..VmOptions::default()
                };
                let mut vm = Vm::new(pkg, env, session_seed ^ 0xBEEF, opts);
                let mut source = RandomEventSource;
                run_session(&mut vm, &mut source, &mut rng, 40, 60);
                (vm.statics_snapshot(), vm.clock_ms(), vm.into_telemetry())
            };
            let (d_statics, d_clock, d_tel) = run(VmEngine::Decoded);
            let (l_statics, l_clock, l_tel) = run(VmEngine::Legacy);
            // The named counters first, for a readable failure...
            assert_eq!(
                d_tel.instr_executed, l_tel.instr_executed,
                "{} seed {session_seed}: instruction counts diverged",
                app.name
            );
            assert_eq!(
                d_tel.method_calls, l_tel.method_calls,
                "{} seed {session_seed}: method_calls diverged",
                app.name
            );
            assert_eq!(
                (d_tel.bombs_triggered(), d_tel.decrypt_failures),
                (l_tel.bombs_triggered(), l_tel.decrypt_failures),
                "{} seed {session_seed}: bomb counters diverged",
                app.name
            );
            // ...then the whole struct, bit for bit.
            assert_eq!(
                d_tel, l_tel,
                "{} seed {session_seed}: telemetry diverged",
                app.name
            );
            assert_eq!((d_statics, d_clock), (l_statics, l_clock));
        }
    }
}

#[test]
fn user_event_streams_are_also_preserved() {
    // Random events exercise breadth; the weighted user model exercises
    // the paths real users hit most — both must be behavior-preserving.
    let dev = DeveloperKey::generate(&mut StdRng::seed_from_u64(8));
    let app = flagship::swjournal();
    let apk = app.apk(&dev);
    let mut prng = StdRng::seed_from_u64(0xD0);
    let protected = Protector::new(ProtectConfig::fast_profile())
        .protect(&apk, &mut prng)
        .unwrap();
    let signed = protected.package(&dev);

    for session_seed in [5u64, 6] {
        let run = |apk: &ApkFile| {
            let pkg = InstalledPackage::install(apk).unwrap();
            let mut rng = StdRng::seed_from_u64(session_seed);
            let env = DeviceEnv::sample(&mut rng);
            let mut vm = Vm::boot(pkg, env, session_seed);
            let mut source = UserEventSource;
            run_session(&mut vm, &mut source, &mut rng, 30, 60);
            (vm.telemetry().logs.clone(), vm.statics_snapshot())
        };
        assert_eq!(run(&apk), run(&signed), "seed {session_seed}");
    }
}
