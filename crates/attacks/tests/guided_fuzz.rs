//! Campaign determinism and ground-truth suite for the guided fuzzer.
//!
//! The resilience-curve artifact is only meaningful if the campaign is a
//! pure function of its config: these tests pin bit-identical corpus,
//! coverage, findings, and curves across worker counts {1, 2, 8} and
//! across snapshot-fork vs cold-boot resets, and replay every reported
//! bomb on a fresh uninstrumented VM across three protection configs
//! (including a bogus-bomb-dense one) to prove there are no false finds.

use bombdroid_apk::{ApkFile, DeveloperKey};
use bombdroid_attacks::fuzz;
use bombdroid_attacks::{GuidedConfig, GuidedReport, ResetMode};
use bombdroid_core::{ProtectConfig, Protector};
use rand::{rngs::StdRng, SeedableRng};

/// Single-trigger, no-bogus protection: the "unprotected control" app of
/// the resilience experiment. Any satisfied outer condition fires its
/// payload marker, so a competent fuzzer must find bombs here.
fn control_config() -> ProtectConfig {
    ProtectConfig {
        double_trigger: false,
        bogus_ratio: 0.0,
        ..ProtectConfig::fast_profile()
    }
}

fn bogus_dense_config() -> ProtectConfig {
    ProtectConfig {
        bogus_ratio: 1.0,
        ..ProtectConfig::fast_profile()
    }
}

fn protect(config: ProtectConfig) -> (ApkFile, bombdroid_core::ProtectReport) {
    let mut rng = StdRng::seed_from_u64(77);
    let dev = DeveloperKey::generate(&mut rng);
    let app = bombdroid_corpus::flagship::hash_droid();
    let apk = app.apk(&dev);
    let protected = Protector::new(config).protect(&apk, &mut rng).unwrap();
    (protected.package(&dev), protected.report.clone())
}

fn campaign_cfg(threads: usize, reset: ResetMode) -> GuidedConfig {
    GuidedConfig {
        seed: 0xA11CE,
        shards: 4,
        execs_per_shard: 60,
        threads: Some(threads),
        reset,
        crack_budget: 5_000,
        checkpoints: 6,
        window: 2,
    }
}

/// `(marker, shard, exec, input key)` of one finding.
type FindingSig = (u32, usize, u64, String);

/// Everything the campaign reports that must be bit-identical across
/// scheduling choices: coverage fingerprint, corpus keys, minset keys,
/// findings, and the bombs-vs-budget curve.
type Signature = (
    u64,
    Vec<String>,
    Vec<String>,
    Vec<FindingSig>,
    Vec<(u64, usize)>,
);

fn signature(r: &GuidedReport) -> Signature {
    (
        r.coverage.fingerprint(),
        r.corpus.keys(),
        r.minimized.keys(),
        r.findings
            .iter()
            .map(|f| (f.marker, f.shard, f.exec, f.input.key()))
            .collect(),
        r.curve.clone(),
    )
}

#[test]
fn campaign_is_bit_identical_across_thread_counts() {
    let (apk, _) = protect(control_config());
    let base = fuzz::guided(&apk, &campaign_cfg(1, ResetMode::SnapshotFork));
    assert!(
        !base.findings.is_empty(),
        "guided fuzzer must find at least one bomb on the control app"
    );
    assert!(!base.coverage.is_empty());
    assert!(base.curve.last().unwrap().1 >= base.findings.len());
    for threads in [2, 8] {
        let other = fuzz::guided(&apk, &campaign_cfg(threads, ResetMode::SnapshotFork));
        assert_eq!(
            signature(&base),
            signature(&other),
            "campaign diverged at {threads} worker threads"
        );
    }
}

#[test]
fn snapshot_fork_matches_cold_boot_exactly() {
    let (apk, _) = protect(control_config());
    let forked = fuzz::guided(&apk, &campaign_cfg(2, ResetMode::SnapshotFork));
    let cold = fuzz::guided(&apk, &campaign_cfg(2, ResetMode::ColdBoot));
    assert_eq!(signature(&forked), signature(&cold));
}

#[test]
fn every_reported_bomb_is_a_real_bomb_across_protection_configs() {
    let configs = [
        ("control", control_config()),
        ("paper-default", ProtectConfig::fast_profile()),
        ("bogus-dense", bogus_dense_config()),
    ];
    for (name, config) in configs {
        let (apk, report) = protect(config);
        if name == "bogus-dense" {
            assert!(
                report.bogus_bombs() > 0,
                "bogus-dense config must actually plant bogus bombs"
            );
        }
        let real_markers = report.marker_ids();
        let guided = fuzz::guided(&apk, &campaign_cfg(2, ResetMode::SnapshotFork));
        for f in &guided.findings {
            assert!(
                f.validated,
                "{name}: finding for marker {} did not replay on a fresh VM",
                f.marker
            );
            assert!(
                real_markers.contains(&f.marker),
                "{name}: reported marker {} is not a planted real bomb (false find)",
                f.marker
            );
        }
        // Bogus bombs carry no marker, so by construction none can appear;
        // the assertion above also proves the fuzzer never fabricates ids.
    }
}

#[test]
fn minimized_corpus_covers_exactly_what_the_full_corpus_covers() {
    let (apk, _) = protect(control_config());
    let r = fuzz::guided(&apk, &campaign_cfg(2, ResetMode::SnapshotFork));
    assert!(r.minimized.len() <= r.corpus.len());
    assert_eq!(r.minimized.union_coverage(), r.corpus.union_coverage());
    assert_eq!(r.corpus.union_coverage(), r.coverage);
}

#[test]
fn coverage_hook_is_invisible_to_the_cost_model() {
    // Same seed, same events, coverage on vs off: telemetry (including
    // instr_executed and the virtual clock) must be identical, and only
    // the instrumented VM may report edges. This is the deterministic
    // half of the "no overhead when disabled" perf guard.
    use bombdroid_runtime::{DeviceEnv, InstalledPackage, RtValue, Vm, VmEngine, VmOptions};

    let (apk, _) = protect(control_config());
    let pkg = std::sync::Arc::new(InstalledPackage::install(&apk).unwrap());
    let run = |collect_coverage: bool| {
        let opts = VmOptions {
            engine: VmEngine::Decoded,
            collect_coverage,
            ..VmOptions::default()
        };
        let env = DeviceEnv::attacker_lab(1).remove(0);
        let mut vm = Vm::new(std::sync::Arc::clone(&pkg), env, 99, opts);
        for i in 0..20 {
            let entry = i % vm.pkg.dex.entry_points.len();
            let arity = vm.pkg.dex.entry_points[entry].params.len();
            let _ = vm.fire_entry(entry, vec![RtValue::Int(i as i64); arity]);
            vm.advance_ms(500);
        }
        (vm.telemetry().clone(), vm.clock_ms(), vm.coverage_edges())
    };
    let (t_on, clock_on, edges_on) = run(true);
    let (t_off, clock_off, edges_off) = run(false);
    assert_eq!(t_on, t_off, "coverage must not perturb telemetry");
    assert_eq!(
        clock_on, clock_off,
        "coverage must not consume virtual time"
    );
    assert!(!edges_on.is_empty(), "instrumented run records edges");
    assert!(edges_off.is_empty(), "uninstrumented run records nothing");
}

#[test]
fn forked_coverage_resets_per_session() {
    use bombdroid_runtime::{DeviceEnv, InstalledPackage, RtValue, Vm, VmEngine, VmOptions};

    let (apk, _) = protect(control_config());
    let pkg = std::sync::Arc::new(InstalledPackage::install(&apk).unwrap());
    let opts = VmOptions {
        engine: VmEngine::Decoded,
        collect_coverage: true,
        ..VmOptions::default()
    };
    let env = DeviceEnv::attacker_lab(1).remove(0);
    let mut vm = Vm::new(std::sync::Arc::clone(&pkg), env.clone(), 1, opts);
    for entry in 0..vm.pkg.dex.entry_points.len() {
        let arity = vm.pkg.dex.entry_points[entry].params.len();
        let _ = vm.fire_entry(entry, vec![RtValue::Int(1); arity]);
    }
    assert!(!vm.coverage_edges().is_empty());
    let snap = vm.snapshot();
    // Resume keeps the recorded edges; fork starts a fresh session.
    assert_eq!(snap.resume().coverage_edges(), vm.coverage_edges());
    let fork = snap.fork(env, 2);
    assert!(fork.coverage_enabled());
    assert!(fork.coverage_edges().is_empty());
}
