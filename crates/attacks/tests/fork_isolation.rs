//! Fuzz-style smoke test for copy-on-write session forking: a thousand
//! sessions forked from one warmed snapshot must be mutually isolated.
//!
//! A pirated install mutates heavily — bombs fire, statics flip, memory
//! leaks — so any state bleed through the snapshot's shared `Arc` heap
//! would make a fork's outcome depend on which forks ran before it.
//! The test runs a 1,000-fork storm, then replays a sample of seeds and
//! the parent session itself, asserting bit-identical results.

use bombdroid_apk::{repackage, DeveloperKey};
use bombdroid_core::{ProtectConfig, Protector};
use bombdroid_corpus::flagship;
use bombdroid_runtime::{
    run_session, DeviceEnv, InstalledPackage, RandomEventSource, Vm, VmSnapshot,
};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

/// Everything a session leaves behind, condensed for equality checks.
type Outcome = (Vec<(String, String)>, u64, usize, Vec<String>, u64, u64);

fn run_fork(snap: &VmSnapshot, seed: u64) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let env = DeviceEnv::sample(&mut rng);
    let mut vm = snap.fork(env, seed);
    let mut source = RandomEventSource;
    run_session(&mut vm, &mut source, &mut rng, 6, 60);
    let t = vm.telemetry();
    (
        vm.statics_snapshot(),
        t.instr_executed,
        t.bombs_triggered(),
        t.logs.clone(),
        t.decrypt_failures,
        t.piracy_reports,
    )
}

#[test]
fn thousand_forks_from_one_snapshot_do_not_bleed_state() {
    let dev = DeveloperKey::generate(&mut StdRng::seed_from_u64(7));
    let pirate = DeveloperKey::generate(&mut StdRng::seed_from_u64(11));
    let app = flagship::hash_droid();
    let protected = Protector::new(ProtectConfig::fast_profile())
        .protect(&app.apk(&dev), &mut StdRng::seed_from_u64(0xF0))
        .expect("protect");
    let pirated = repackage(&protected.package(&dev), &pirate, |_| {});
    let pkg = Arc::new(InstalledPackage::install(&pirated).expect("install"));

    // Warm a parent session past boot so the snapshot carries real heap
    // state (statics written, blobs cached), then freeze it.
    let mut warm_rng = StdRng::seed_from_u64(3);
    let mut parent = Vm::boot(Arc::clone(&pkg), DeviceEnv::sample(&mut warm_rng), 3);
    let mut source = RandomEventSource;
    run_session(&mut parent, &mut source, &mut warm_rng, 8, 60);
    let snap = parent.snapshot();

    // First pass: 1,000 forks, each with its own seed. Record every
    // outcome, and make sure the storm actually exercised mutation.
    let first: Vec<Outcome> = (0..1_000).map(|seed| run_fork(&snap, seed)).collect();
    assert!(
        first.iter().any(|o| o.2 > 0 || o.4 > 0),
        "storm never triggered a bomb or decrypt failure — fixture too tame to detect bleed"
    );
    let distinct_statics = first
        .iter()
        .map(|o| &o.0)
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert!(
        distinct_statics > 1,
        "all forks converged to one statics state — storm isn't mutating the heap"
    );

    // Replay a spread of seeds after the storm. If any fork's writes had
    // leaked into the shared snapshot, these would diverge from pass one.
    for seed in (0..1_000).step_by(97).chain([1, 999]) {
        assert_eq!(
            run_fork(&snap, seed),
            first[seed as usize],
            "fork seed {seed} changed outcome after the storm — state bled between forks"
        );
    }

    // The parent itself must also be untouched: resuming the snapshot
    // twice (after the storm) yields bit-identical continuations.
    let resume = |seed: u64| {
        let mut vm = snap.resume();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut source = RandomEventSource;
        run_session(&mut vm, &mut source, &mut rng, 6, 60);
        (vm.statics_snapshot(), vm.into_telemetry())
    };
    assert_eq!(resume(13), resume(13), "snapshot resume is not repeatable");
}
