//! The resilience matrix: every adversary analysis of paper §2.1/§5 run
//! against three protection levels — naive bombs (Listing 2), SSN
//! (Listing 1), and BombDroid — reproducing the paper's security analysis
//! as executable experiments.

use crate::{brute, deletion, forced, instrument, slicing, symbolic, textsearch};
use bombdroid_apk::{repackage, ApkFile, DeveloperKey};
use bombdroid_core::{NaiveProtector, ProtectConfig, Protector};
use bombdroid_runtime::{run_session, DeviceEnv, InstalledPackage, UserEventSource, Vm};
use bombdroid_ssn::{SsnConfig, SsnProtector};
use rand::{rngs::StdRng, SeedableRng};
use std::fmt;

/// The protection schemes compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protection {
    /// Plain-condition bombs, plaintext payloads (paper Listing 2).
    Naive,
    /// SSN: probabilistic + reflection-hidden + delayed response.
    Ssn,
    /// BombDroid: cryptographically obfuscated double-trigger bombs.
    BombDroid,
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Protection::Naive => "naive",
            Protection::Ssn => "SSN",
            Protection::BombDroid => "BombDroid",
        })
    }
}

/// The attacks of §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Grep the disassembly for detection APIs.
    TextSearch,
    /// Path exploration with a constraint solver.
    SymbolicExecution,
    /// Patch guards, execute suspected payloads directly.
    ForcedExecution,
    /// Backward slicing + slice execution (HARVESTER).
    Slicing,
    /// Code instrumentation (force RNG, check reflection, strip nodes).
    CodeInstrumentation,
    /// Delete suspicious code and ship.
    CodeDeletion,
}

impl AttackKind {
    /// All attacks, in paper §2.1 order.
    pub const ALL: [AttackKind; 6] = [
        AttackKind::TextSearch,
        AttackKind::SymbolicExecution,
        AttackKind::ForcedExecution,
        AttackKind::Slicing,
        AttackKind::CodeInstrumentation,
        AttackKind::CodeDeletion,
    ];
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttackKind::TextSearch => "text search",
            AttackKind::SymbolicExecution => "symbolic execution",
            AttackKind::ForcedExecution => "forced execution",
            AttackKind::Slicing => "slicing (HARVESTER)",
            AttackKind::CodeInstrumentation => "code instrumentation",
            AttackKind::CodeDeletion => "code deletion",
        })
    }
}

/// One matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Attack applied.
    pub attack: AttackKind,
    /// Protection under attack.
    pub protection: Protection,
    /// Whether the attack defeats the protection.
    pub defeated: bool,
    /// Evidence string for the report.
    pub note: String,
}

/// Extra (non-matrix) measurement: brute-force cracking by strength.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteSummary {
    /// Conditions found / cracked under the budget.
    pub report: brute::BruteReport,
}

/// Everything the attack lab produces for one app.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// The matrix cells (6 attacks × 3 protections).
    pub cells: Vec<MatrixCell>,
    /// Brute-force summary against the BombDroid build.
    pub brute: BruteSummary,
}

impl ResilienceReport {
    /// Looks up a cell.
    pub fn cell(&self, attack: AttackKind, protection: Protection) -> &MatrixCell {
        self.cells
            .iter()
            .find(|c| c.attack == attack && c.protection == protection)
            .expect("full matrix")
    }
}

/// Builds all three protected variants of `app` and runs the full matrix.
///
/// # Panics
///
/// Panics on internal protection errors (the input app is expected to be
/// well-formed and signed).
pub fn resilience_matrix(app: &bombdroid_corpus::GeneratedApp, seed: u64) -> ResilienceReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let dev = DeveloperKey::generate(&mut rng);
    let pirate = DeveloperKey::generate(&mut rng);
    let apk = app.apk(&dev);

    let naive = NaiveProtector::new(ProtectConfig::fast_profile())
        .protect(&apk, &mut rng)
        .expect("naive protect")
        .package(&dev);
    let ssn = SsnProtector::new(SsnConfig::default())
        .protect(&apk, &mut rng)
        .package(&dev);
    let bomb = Protector::new(ProtectConfig::fast_profile())
        .protect(&apk, &mut rng)
        .expect("bombdroid protect")
        .package(&dev);

    let mut cells = Vec::new();
    for (protection, papk) in [
        (Protection::Naive, &naive),
        (Protection::Ssn, &ssn),
        (Protection::BombDroid, &bomb),
    ] {
        for attack in AttackKind::ALL {
            cells.push(run_cell(attack, protection, &apk, papk, &pirate, seed));
        }
    }

    let brute_report = brute::brute_force_campaign(&bomb, 100_000);
    ResilienceReport {
        cells,
        brute: BruteSummary {
            report: brute_report,
        },
    }
}

fn run_cell(
    attack: AttackKind,
    protection: Protection,
    original: &ApkFile,
    protected: &ApkFile,
    pirate: &DeveloperKey,
    seed: u64,
) -> MatrixCell {
    let (defeated, note) = match attack {
        AttackKind::TextSearch => {
            let exposed = textsearch::exposes_get_public_key(&protected.dex);
            (
                exposed,
                if exposed {
                    "detection API greppable in plaintext".to_string()
                } else {
                    "no detection API visible".to_string()
                },
            )
        }
        AttackKind::SymbolicExecution => {
            let out = symbolic::analyze_dex(&protected.dex, symbolic::Limits::default());
            let defeated = !out.exposed.is_empty() || out.keys_recovered() > 0;
            (
                defeated,
                format!(
                    "{} payloads exposed, {} keys recovered, {} hash barriers",
                    out.exposed.len(),
                    out.keys_recovered(),
                    out.hash_barriers()
                ),
            )
        }
        AttackKind::ForcedExecution => {
            let report = forced::forced_execution(protected, seed);
            let decrypt_sites = count_decrypt_sites(&protected.dex);
            // Against encrypted bombs a handful of *weak* (small-domain)
            // constants may fall to lucky probes — that is §5.1's
            // brute-force caveat, not forced execution working. The attack
            // defeats the protection only when it exposes payloads at
            // scale.
            let defeated = if decrypt_sites == 0 {
                report.total_payloads_exposed > 0
            } else {
                report.total_payloads_exposed * 5 > decrypt_sites
            };
            (
                defeated,
                format!(
                    "{} payloads executed across {} encrypted sites, {} decrypt failures",
                    report.total_payloads_exposed, decrypt_sites, report.total_decrypt_failures
                ),
            )
        }
        AttackKind::Slicing => {
            let outcomes = slicing::slice_attack(protected, &[0, 1, 42, 999], seed);
            let uncovered = outcomes.iter().filter(|o| o.payload_uncovered).count();
            let decrypt_sites = count_decrypt_sites(&protected.dex);
            let defeated = if decrypt_sites == 0 {
                uncovered > 0
            } else {
                uncovered * 5 > decrypt_sites
            };
            (
                defeated,
                format!("{uncovered}/{} slices uncovered payloads", outcomes.len()),
            )
        }
        AttackKind::CodeInstrumentation => {
            instrumentation_cell(protection, original, protected, pirate, seed)
        }
        AttackKind::CodeDeletion => {
            // Each protection calls for different surgery: plaintext
            // payloads are snipped out, SSN nodes stripped, encrypted
            // bombs' DecryptExec sites nopped.
            let strategy: fn(&mut bombdroid_dex::DexFile) = match protection {
                Protection::Naive => |dex| strip_plain_payloads(dex),
                Protection::Ssn => |dex| {
                    instrument::strip_ssn_nodes(dex);
                },
                Protection::BombDroid => |dex| {
                    deletion::delete_bombs(dex);
                },
            };
            let report =
                deletion::deletion_attack_with(original, protected, pirate, strategy, 5, 2, seed);
            // The attack succeeds when the stripped repackage both stays
            // behaviourally intact AND no longer detects anything.
            let defeated = !report.corrupted();
            (
                defeated,
                format!(
                    "{}/{} sessions diverged, faults {}→{}",
                    report.divergent_sessions,
                    report.sessions,
                    report.reference_faults,
                    report.deleted_faults
                ),
            )
        }
    };
    MatrixCell {
        attack,
        protection,
        defeated,
        note,
    }
}

/// Code instrumentation: patch the app (force RNG to 0, strip identified
/// nodes / plain payloads), repackage, and check whether the attacker got
/// what they wanted — a *working* app that no longer detects repackaging.
fn instrumentation_cell(
    protection: Protection,
    original: &ApkFile,
    protected: &ApkFile,
    pirate: &DeveloperKey,
    seed: u64,
) -> (bool, String) {
    let patched = repackage(protected, pirate, |dex| {
        instrument::force_random_zero(dex);
        match protection {
            Protection::Ssn => {
                instrument::strip_ssn_nodes(dex);
            }
            Protection::Naive => {
                strip_plain_payloads(dex);
            }
            Protection::BombDroid => {
                // The best available move: force the hash guards.
                instrument::force_hash_branches(dex);
            }
        }
    });
    // Ship it to users: does anyone still detect the repackaging, and does
    // the patched app even still work? (Forcing BombDroid's guards drives
    // every execution into failed decryptions — a crash-machine no pirate
    // can sell.)
    let ref_pkg =
        std::sync::Arc::new(InstalledPackage::install(original).expect("install original"));
    let pkg = std::sync::Arc::new(InstalledPackage::install(&patched).expect("install patched"));
    let mut detections = 0u64;
    let mut ref_faults = 0u64;
    let mut patched_faults = 0u64;
    let mut events = 0u64;
    for s in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ (s * 7919));
        let env = DeviceEnv::sample(&mut rng);
        let mut vm = Vm::boot(pkg.clone(), env, seed ^ s);
        let mut source = UserEventSource;
        let r = run_session(&mut vm, &mut source, &mut rng, 10, 60);
        events += r.events;
        patched_faults += r.faulted;
        if vm.telemetry().detection_fired() {
            detections += 1;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ (s * 7919));
        let env = DeviceEnv::sample(&mut rng);
        let mut vm = Vm::boot(ref_pkg.clone(), env, seed ^ s);
        let mut source = UserEventSource;
        let r = run_session(&mut vm, &mut source, &mut rng, 10, 60);
        ref_faults += r.faulted;
    }
    let intact = patched_faults <= ref_faults + events / 20; // ≤5% extra faults
    (
        detections == 0 && intact,
        format!(
            "{detections}/5 user devices still detected repackaging; \
             patched app faults {patched_faults} vs {ref_faults} baseline"
        ),
    )
}

fn count_decrypt_sites(dex: &bombdroid_dex::DexFile) -> usize {
    dex.methods()
        .flat_map(|m| m.body.iter())
        .filter(|i| matches!(i, bombdroid_dex::Instr::DecryptExec { .. }))
        .count()
}

/// Strips plaintext detection payloads (the naive scheme's downfall).
fn strip_plain_payloads(dex: &mut bombdroid_dex::DexFile) {
    use bombdroid_dex::{HostApi, Instr};
    for method in dex.methods_mut() {
        for instr in &mut method.body {
            let suspicious = matches!(
                instr,
                Instr::HostCall {
                    api: HostApi::GetPublicKey
                        | HostApi::Marker(_)
                        | HostApi::ReportPiracy
                        | HostApi::KillProcess
                        | HostApi::Freeze
                        | HostApi::LeakMemory
                        | HostApi::NullOutField
                        | HostApi::UiNotify(_),
                    ..
                }
            );
            if suspicious {
                *instr = Instr::Nop;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_reproduces_section_5() {
        let app = bombdroid_corpus::flagship::catlog();
        let report = resilience_matrix(&app, 99);
        assert_eq!(report.cells.len(), 18);

        // Naive bombs fall to essentially everything.
        assert!(
            report
                .cell(AttackKind::TextSearch, Protection::Naive)
                .defeated
        );
        assert!(
            report
                .cell(AttackKind::SymbolicExecution, Protection::Naive)
                .defeated
        );
        assert!(
            report
                .cell(AttackKind::ForcedExecution, Protection::Naive)
                .defeated
        );

        // SSN survives text search but falls to instrumentation and
        // symbolic execution (§2.1).
        assert!(
            !report
                .cell(AttackKind::TextSearch, Protection::Ssn)
                .defeated
        );
        assert!(
            report
                .cell(AttackKind::SymbolicExecution, Protection::Ssn)
                .defeated
        );
        assert!(
            report
                .cell(AttackKind::CodeInstrumentation, Protection::Ssn)
                .defeated
        );

        // BombDroid survives every attack (G1–G4).
        for attack in AttackKind::ALL {
            let cell = report.cell(attack, Protection::BombDroid);
            assert!(
                !cell.defeated,
                "BombDroid must resist {attack}: {}",
                cell.note
            );
        }

        // Brute force cracks the weak conditions only.
        let b = &report.brute.report;
        assert!(b.total > 0);
        assert!(b.cracked < b.total, "strong conditions must survive");
    }
}
