//! Forced execution (paper §2.1): "apply forced execution to directly
//! execute the code that is suspected to be payloads" (Wilhelm & Chiueh's
//! forced sampled execution, X-Force style).
//!
//! The attack patches away the guard branches and runs every suspicious
//! region with arbitrary register values. Plain-condition bombs (naive,
//! SSN) duly execute their payloads; BombDroid's regions funnel into
//! `DecryptExec` with a wrong key and die with an authentication fault.

use crate::instrument::force_hash_branches;
use bombdroid_apk::ApkFile;
use bombdroid_dex::{DexFile, Instr, MethodRef};
use bombdroid_runtime::{DeviceEnv, InstalledPackage, RtValue, Vm, VmOptions};

/// What forced execution observed in one method.
#[derive(Debug, Clone, PartialEq)]
pub struct ForcedOutcome {
    /// Method executed.
    pub method: MethodRef,
    /// Distinct payload markers observed (payload actually ran).
    pub payloads_executed: usize,
    /// Decryption faults hit.
    pub decrypt_failures: u64,
}

/// Aggregate result of the forced-execution campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ForcedReport {
    /// Per-method observations (methods containing suspicious code only).
    pub outcomes: Vec<ForcedOutcome>,
    /// Total distinct payloads exposed across the app.
    pub total_payloads_exposed: usize,
    /// Total decryption failures across the app.
    pub total_decrypt_failures: u64,
}

/// Runs forced execution: flip all hash-guard branches, then invoke every
/// method that contains suspicious instructions with a few register
/// seedings.
///
/// # Panics
///
/// Panics if the APK does not verify at install.
pub fn forced_execution(apk: &ApkFile, seed: u64) -> ForcedReport {
    // The attacker works on a patched copy: guards removed.
    let mut dex = (*apk.dex).clone();
    force_hash_branches(&mut dex);

    let pkg = InstalledPackage::install(apk).expect("attacker installs the app");
    // Execute the patched code inside the attacker's (hooked) runtime by
    // swapping the dex out via detached fragments.
    let mut vm = Vm::new(
        pkg,
        DeviceEnv::attacker_lab(1).remove(0),
        seed,
        VmOptions::default(),
    );

    let mut report = ForcedReport::default();
    for method in suspicious_methods(&dex) {
        let before_markers = vm.telemetry().markers.len();
        let before_failures = vm.telemetry().decrypt_failures;
        for probe in [0i64, 1, -1, 7, 1_000] {
            let regs = vec![RtValue::Int(probe); method.registers.max(4) as usize];
            let _ = vm.run_detached_fragment(&method.body, regs);
        }
        let outcome = ForcedOutcome {
            method: method.method_ref(),
            payloads_executed: vm.telemetry().markers.len() - before_markers,
            decrypt_failures: vm.telemetry().decrypt_failures - before_failures,
        };
        report.outcomes.push(outcome);
    }
    report.total_payloads_exposed = vm.telemetry().markers.len();
    report.total_decrypt_failures = vm.telemetry().decrypt_failures;
    report
}

fn suspicious_methods(dex: &DexFile) -> Vec<&bombdroid_dex::Method> {
    dex.methods()
        .filter(|m| {
            m.body.iter().any(|i| {
                matches!(
                    i,
                    Instr::DecryptExec { .. }
                        | Instr::Hash { .. }
                        | Instr::HostCall {
                            api: bombdroid_dex::HostApi::GetPublicKey,
                            ..
                        }
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_apk::DeveloperKey;
    use bombdroid_core::{NaiveProtector, ProtectConfig, Protector};
    use rand::{rngs::StdRng, SeedableRng};

    fn keys() -> (StdRng, DeveloperKey) {
        let mut rng = StdRng::seed_from_u64(6);
        let dev = DeveloperKey::generate(&mut rng);
        (rng, dev)
    }

    #[test]
    fn naive_bombs_fall_to_forced_execution() {
        let (mut rng, dev) = keys();
        let apk = bombdroid_corpus::flagship::hash_droid().apk(&dev);
        let protected = NaiveProtector::new(ProtectConfig::fast_profile())
            .protect(&apk, &mut rng)
            .unwrap()
            .package(&dev);
        let report = forced_execution(&protected, 1);
        assert!(
            report.total_payloads_exposed > 0,
            "plaintext payloads must be exposed by forcing branches"
        );
        assert_eq!(report.total_decrypt_failures, 0);
    }

    #[test]
    fn bombdroid_payloads_survive_forced_execution() {
        let (mut rng, dev) = keys();
        let apk = bombdroid_corpus::flagship::hash_droid().apk(&dev);
        let protected = Protector::new(ProtectConfig::fast_profile())
            .protect(&apk, &mut rng)
            .unwrap()
            .package(&dev);
        let report = forced_execution(&protected, 1);
        // Weak (small-domain) constants may fall to lucky probes — the
        // §5.1 brute-force caveat — but forced execution as a technique
        // must fail: the vast majority of payloads stay sealed and the
        // runs pile up authentication failures.
        let sites = report.outcomes.len().max(1);
        assert!(
            report.total_payloads_exposed * 5 < sites,
            "{} of {} suspicious methods exposed payloads",
            report.total_payloads_exposed,
            sites
        );
        assert!(
            report.total_decrypt_failures > 0,
            "forcing guards runs into authentication failures"
        );
    }
}
