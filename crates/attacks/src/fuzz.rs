//! Blackbox fuzzing attacks (paper §8.3.2, Table 4 and Fig. 5).
//!
//! Four input-generation tools with the relative sophistication ordering of
//! the paper's Monkey / PUMA / AndroidHooker / Dynodroid line-up:
//!
//! * **Monkey** — raw uniform events, a large share of which are wasted
//!   (system keys, off-widget taps);
//! * **PUMA** — UI-automation, uniform over real handlers, no waste;
//! * **AndroidHooker** — scripted round-robin over handlers, small waste;
//! * **Dynodroid** — "observe which events are relevant": least-fired
//!   handler first, and systematic sweeping of enumerable (choice)
//!   parameters plus boundary-value integers.
//!
//! All tools run on the attacker's emulator image
//! ([`DeviceEnv::attacker_lab`]) — which is exactly why inner triggers keep
//! most bombs dormant no matter how long they fuzz.

use bombdroid_apk::ApkFile;
use bombdroid_dex::{DexFile, Instr, ParamDomain, RegOrConst, Value};
use bombdroid_runtime::{driver, DeviceEnv, InstalledPackage, RtValue, Vm};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// The four evaluated tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuzzerKind {
    /// UI/Application Exerciser Monkey.
    Monkey,
    /// PUMA programmable UI automation.
    Puma,
    /// AndroidHooker.
    AndroidHooker,
    /// Dynodroid.
    Dynodroid,
}

impl FuzzerKind {
    /// All tools, Table 4 column order.
    pub const ALL: [FuzzerKind; 4] = [
        FuzzerKind::Monkey,
        FuzzerKind::Puma,
        FuzzerKind::AndroidHooker,
        FuzzerKind::Dynodroid,
    ];

    /// Fraction of events that achieve nothing (tool overhead).
    fn waste(self) -> f64 {
        match self {
            FuzzerKind::Monkey => 0.35,
            FuzzerKind::Puma => 0.08,
            FuzzerKind::AndroidHooker => 0.12,
            FuzzerKind::Dynodroid => 0.0,
        }
    }
}

impl fmt::Display for FuzzerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FuzzerKind::Monkey => "Monkey",
            FuzzerKind::Puma => "PUMA",
            FuzzerKind::AndroidHooker => "AndroidHooker",
            FuzzerKind::Dynodroid => "Dynodroid",
        })
    }
}

/// Results of one fuzzing campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// Tool used.
    pub tool: FuzzerKind,
    /// Events fired (including wasted ones).
    pub events: u64,
    /// Outer (obfuscated) trigger conditions present in the app.
    pub total_outer: usize,
    /// Distinct outer conditions satisfied at least once.
    pub satisfied_outer: usize,
    /// Distinct bombs triggered (outer + inner both met).
    pub bombs_triggered: usize,
    /// `(minute, cumulative bombs triggered)` samples for Fig. 5.
    pub timeline: Vec<(u64, usize)>,
}

impl FuzzReport {
    /// Percentage of outer trigger conditions satisfied (Table 4 cell).
    pub fn satisfied_pct(&self) -> f64 {
        if self.total_outer == 0 {
            return 0.0;
        }
        100.0 * self.satisfied_outer as f64 / self.total_outer as f64
    }
}

/// Counts the obfuscated outer trigger conditions in a DEX (branches
/// comparing against a `Bytes` constant).
pub fn count_outer_conditions(dex: &DexFile) -> usize {
    dex.methods()
        .flat_map(|m| m.body.iter())
        .filter(|i| {
            matches!(
                i,
                Instr::If {
                    rhs: RegOrConst::Const(Value::Bytes(_)),
                    ..
                }
            )
        })
        .count()
}

struct FuzzState {
    kind: FuzzerKind,
    fired: Vec<u64>,
    choice_cursor: HashMap<(usize, usize), usize>,
}

impl FuzzState {
    fn new(kind: FuzzerKind, entries: usize) -> Self {
        FuzzState {
            kind,
            fired: vec![0; entries],
            choice_cursor: HashMap::new(),
        }
    }

    fn pick_entry(&mut self, rng: &mut StdRng, events_so_far: u64) -> usize {
        let n = self.fired.len();
        let idx = match self.kind {
            FuzzerKind::Monkey | FuzzerKind::Puma => rng.gen_range(0..n),
            FuzzerKind::AndroidHooker => (events_so_far as usize) % n,
            FuzzerKind::Dynodroid => {
                // Least-fired first, ties randomised.
                let min = *self.fired.iter().min().expect("nonempty");
                let least: Vec<usize> = (0..n).filter(|&i| self.fired[i] == min).collect();
                least[rng.gen_range(0..least.len())]
            }
        };
        self.fired[idx] += 1;
        idx
    }

    fn gen_arg(
        &mut self,
        entry: usize,
        param: usize,
        domain: &ParamDomain,
        rng: &mut StdRng,
    ) -> RtValue {
        match (self.kind, domain) {
            (FuzzerKind::Dynodroid, ParamDomain::Choice(vs)) => {
                // Systematic sweep over enumerable inputs.
                let cursor = self.choice_cursor.entry((entry, param)).or_insert(0);
                let v = vs[*cursor % vs.len()].clone();
                *cursor += 1;
                v.into()
            }
            (FuzzerKind::Dynodroid, ParamDomain::IntRange(lo, hi)) => {
                if rng.gen_bool(0.4) {
                    // Boundary and small values.
                    let candidates = [*lo, *hi, 0, 1, -1, 2, 16, 256, 1 << 12];
                    let v = candidates[rng.gen_range(0..candidates.len())];
                    RtValue::Int(v.clamp(*lo, *hi))
                } else {
                    RtValue::Int(rng.gen_range(*lo..=*hi))
                }
            }
            _ => driver::uniform_arg(domain, rng),
        }
    }
}

/// Runs the coverage-guided greybox campaign (the modern, Difuzer-class
/// attacker) — see [`crate::campaign`] for the machinery: edge-coverage
/// feedback from the decoded exec loop, a seeded+minimized corpus with
/// havoc/splice mutation, Redqueen-style dictionary solving of
/// `Hash(X|salt) == Hc` guards, snapshot-fork resets, and a fleet-parallel
/// deterministic shard merge.
///
/// # Panics
///
/// Panics if `apk` does not verify (attacker installs it as-is).
pub fn guided(
    apk: &ApkFile,
    config: &crate::campaign::GuidedConfig,
) -> crate::campaign::GuidedReport {
    crate::campaign::run(apk, config)
}

/// Runs a fuzzing campaign of `minutes` virtual minutes at 60 events per
/// minute against an installed copy of `apk` on the attacker's emulator.
///
/// The attacker analyzes the *original signed* protected app (so detection
/// payloads compare equal and never kill the process mid-campaign); marker
/// and trigger-condition telemetry is identical to a repackaged copy.
///
/// # Panics
///
/// Panics if `apk` does not verify (attacker installs it as-is).
pub fn run_fuzzer(kind: FuzzerKind, apk: &ApkFile, minutes: u64, seed: u64) -> FuzzReport {
    let pkg = InstalledPackage::install(apk).expect("attacker installs the signed app");
    let total_outer = count_outer_conditions(&pkg.dex);
    let mut rng = StdRng::seed_from_u64(seed);
    let env = DeviceEnv::attacker_lab(1).remove(0);
    let mut vm = Vm::boot(pkg, env, seed ^ 0xF422);
    let dex = vm.pkg.dex.clone();
    let mut state = FuzzState::new(kind, dex.entry_points.len());

    let mut report = FuzzReport {
        tool: kind,
        events: 0,
        total_outer,
        satisfied_outer: 0,
        bombs_triggered: 0,
        timeline: Vec::with_capacity(minutes as usize),
    };
    if dex.entry_points.is_empty() {
        return report;
    }

    let deadline = minutes * 60_000;
    let mut next_sample = 60_000u64;
    while vm.clock_ms() < deadline {
        report.events += 1;
        if rng.gen_bool(kind.waste()) {
            vm.advance_ms(1_000);
        } else {
            let entry = state.pick_entry(&mut rng, report.events);
            let args: Vec<RtValue> = dex.entry_points[entry]
                .params
                .iter()
                .enumerate()
                .map(|(pi, d)| state.gen_arg(entry, pi, d, &mut rng))
                .collect();
            let _ = vm.fire_entry(entry, args);
            vm.advance_ms(1_000);
        }
        while vm.clock_ms() >= next_sample && next_sample <= deadline {
            report
                .timeline
                .push((next_sample / 60_000, vm.telemetry().markers.len()));
            next_sample += 60_000;
        }
    }
    report.satisfied_outer = vm.telemetry().outer_satisfied.len();
    report.bombs_triggered = vm.telemetry().markers.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_apk::DeveloperKey;
    use bombdroid_core::{ProtectConfig, Protector};

    fn protected_apk() -> ApkFile {
        let mut rng = StdRng::seed_from_u64(77);
        let dev = DeveloperKey::generate(&mut rng);
        let app = bombdroid_corpus::flagship::hash_droid();
        let apk = app.apk(&dev);
        let protector = Protector::new(ProtectConfig::fast_profile());
        protector.protect(&apk, &mut rng).unwrap().package(&dev)
    }

    #[test]
    fn fuzzers_satisfy_only_a_minority_of_outer_conditions() {
        let apk = protected_apk();
        for kind in [FuzzerKind::Monkey, FuzzerKind::Dynodroid] {
            let report = run_fuzzer(kind, &apk, 10, 5);
            assert!(report.total_outer > 10, "bombs present");
            let pct = report.satisfied_pct();
            assert!(
                pct < 70.0,
                "{kind}: {pct:.1}% outer conditions satisfied — too easy"
            );
            assert!(report.events > 400);
        }
    }

    #[test]
    fn dynodroid_beats_monkey() {
        let apk = protected_apk();
        // Average over seeds to damp variance.
        let mut dyno = 0.0;
        let mut monkey = 0.0;
        for seed in 0..3 {
            dyno += run_fuzzer(FuzzerKind::Dynodroid, &apk, 10, seed).satisfied_pct();
            monkey += run_fuzzer(FuzzerKind::Monkey, &apk, 10, seed).satisfied_pct();
        }
        assert!(
            dyno >= monkey,
            "Dynodroid ({dyno:.1}) should be at least as good as Monkey ({monkey:.1})"
        );
    }

    #[test]
    fn timeline_is_monotone_and_sampled_per_minute() {
        let apk = protected_apk();
        let report = run_fuzzer(FuzzerKind::Dynodroid, &apk, 5, 1);
        assert!(report.timeline.len() >= 5);
        for w in report.timeline.windows(2) {
            assert!(w[1].1 >= w[0].1, "cumulative count must not decrease");
            assert!(w[1].0 > w[0].0);
        }
    }
}
