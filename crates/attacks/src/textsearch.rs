//! Text search (paper §2.1): grep the disassembly for suspicious patterns.
//!
//! Against SSN, the giveaway string `getPublicKey` is hidden by
//! obfuscation+reflection, but the reflection call itself is visible.
//! Against BombDroid the bomb *machinery* (`sha1-hash`, `decrypt-exec`) is
//! visible too — the design "deter[s] attackers from deleting the code"
//! rather than hiding it — while the payload stays unreadable ciphertext.

use bombdroid_dex::{asm, DexFile, MethodRef};

/// Patterns an analyst greps for.
pub const DEFAULT_PATTERNS: [&str; 6] = [
    "getPublicKey",
    "Manifest.getDigest",
    "Package.codeDigest",
    "invoke-reflect",
    "sha1-hash",
    "decrypt-exec",
];

/// One grep hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextHit {
    /// Method containing the hit.
    pub method: MethodRef,
    /// Instruction index.
    pub pc: usize,
    /// Which pattern matched.
    pub pattern: &'static str,
}

/// Greps every method's disassembly for `patterns`.
pub fn search(dex: &DexFile, patterns: &[&'static str]) -> Vec<TextHit> {
    let mut hits = Vec::new();
    for method in dex.methods() {
        for (pc, instr) in method.body.iter().enumerate() {
            let line = asm::disasm_instr(pc, instr);
            for p in patterns {
                if line.contains(p) {
                    hits.push(TextHit {
                        method: method.method_ref(),
                        pc,
                        pattern: p,
                    });
                }
            }
        }
    }
    hits
}

/// Greps with the default suspicious-pattern set.
pub fn search_default(dex: &DexFile) -> Vec<TextHit> {
    search(dex, &DEFAULT_PATTERNS)
}

/// Whether the plaintext mentions the key detection API at all — the test
/// SSN is designed to pass and naive protection fails.
pub fn exposes_get_public_key(dex: &DexFile) -> bool {
    search(dex, &["getPublicKey"])
        .iter()
        .any(|h| h.pattern == "getPublicKey")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::{Class, HostApi, MethodBuilder};

    #[test]
    fn finds_direct_api_calls() {
        let mut dex = DexFile::new();
        let mut c = Class::new("A");
        let mut b = MethodBuilder::new("A", "m", 0);
        let r = b.fresh_reg();
        b.host(HostApi::GetPublicKey, vec![], Some(r));
        b.ret_void();
        c.methods.push(b.finish());
        dex.classes.push(c);
        let hits = search_default(&dex);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].pattern, "getPublicKey");
        assert!(exposes_get_public_key(&dex));
    }

    #[test]
    fn clean_app_has_no_hits() {
        let mut dex = DexFile::new();
        let mut c = Class::new("A");
        let mut b = MethodBuilder::new("A", "m", 0);
        b.host_log("hello");
        b.ret_void();
        c.methods.push(b.finish());
        dex.classes.push(c);
        assert!(search_default(&dex).is_empty());
    }
}
