//! Code-instrumentation attacks (paper §2.1): the attacker "may modify
//! code to assist attack" — force `rand()` to 0, check reflection call
//! destinations, or flip suspicious branches outright.

use bombdroid_dex::{CondOp, DexFile, HostApi, Instr, RegOrConst, Value};

/// Rewrites every framework-RNG call to yield 0, turning SSN's
/// probabilistic invocation deterministic ("force rand() to return 0,
/// such that probabilistic invocation becomes deterministic").
///
/// Returns the number of calls rewritten.
pub fn force_random_zero(dex: &mut DexFile) -> usize {
    let mut n = 0;
    for method in dex.methods_mut() {
        for instr in &mut method.body {
            if let Instr::HostCall {
                api: HostApi::Random,
                dst: Some(d),
                ..
            } = instr
            {
                *instr = Instr::Const {
                    dst: *d,
                    value: Value::Int(0),
                };
                n += 1;
            }
        }
    }
    n
}

/// Inserts a `Log` of the resolved name before every reflective call
/// ("inserting code right before a suspicious reflection call to check the
/// destination of the call"). Running the instrumented app on the
/// attacker's device then prints every hidden API name.
///
/// Returns the number of call sites instrumented.
pub fn log_reflection_targets(dex: &mut DexFile) -> usize {
    let mut n = 0;
    for method in dex.methods_mut() {
        let mut pc = 0;
        while pc < method.body.len() {
            if let Instr::InvokeReflect { name, .. } = &method.body[pc] {
                let log = Instr::HostCall {
                    api: HostApi::Log,
                    args: vec![*name],
                    dst: None,
                };
                method.body.insert(pc, log);
                // Shift branch targets past the insertion point.
                let at = pc;
                for instr in &mut method.body {
                    match instr {
                        Instr::If { target, .. } | Instr::Goto { target } if *target > at => {
                            *target += 1;
                        }
                        Instr::Switch { arms, default, .. } => {
                            for (_, t) in arms.iter_mut() {
                                if *t > at {
                                    *t += 1;
                                }
                            }
                            if *default > at {
                                *default += 1;
                            }
                        }
                        _ => {}
                    }
                }
                n += 1;
                pc += 2;
            } else {
                pc += 1;
            }
        }
    }
    n
}

/// Forces every branch that compares a register against a `Bytes` constant
/// (the obfuscated outer trigger shape) so control always *reaches* the
/// guarded code — the "circumventing trigger conditions" attack. Against
/// BombDroid this drives execution into `DecryptExec` with an unknown key,
/// which fails authentication instead of exposing the payload.
///
/// Returns the number of branches flipped.
pub fn force_hash_branches(dex: &mut DexFile) -> usize {
    let mut n = 0;
    for method in dex.methods_mut() {
        for instr in &mut method.body {
            if let Instr::If {
                cond,
                rhs: RegOrConst::Const(Value::Bytes(_)),
                ..
            } = instr
            {
                // The protector emits `if h != Hc goto skip`; making it
                // never skip forces the payload path.
                if *cond == CondOp::Ne {
                    *instr = Instr::Nop;
                    n += 1;
                }
            }
        }
    }
    n
}

/// Strips SSN detection nodes: whenever a reflective call's result feeds a
/// comparison, nop out the comparison and the flag write behind it. This is
/// the end-to-end SSN bypass — after forcing the RNG and logging reflection
/// targets, the attacker knows exactly where the nodes are.
///
/// Returns the number of nodes stripped.
pub fn strip_ssn_nodes(dex: &mut DexFile) -> usize {
    let mut n = 0;
    for method in dex.methods_mut() {
        for pc in 0..method.body.len() {
            if !matches!(method.body[pc], Instr::InvokeReflect { .. }) {
                continue;
            }
            // Nop the reflect call, the following compare and the response
            // write (the Listing-1 node tail).
            let end = (pc + 3).min(method.body.len());
            for q in pc..end {
                let is_tail = matches!(
                    method.body[q],
                    Instr::InvokeReflect { .. }
                        | Instr::If { .. }
                        | Instr::Const { .. }
                        | Instr::PutStatic { .. }
                );
                if is_tail {
                    method.body[q] = Instr::Nop;
                }
            }
            // Also clear the trailing PutStatic if present.
            if let Some(Instr::PutStatic { .. }) = method.body.get(end) {
                method.body[end] = Instr::Nop;
            }
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::{Class, MethodBuilder, Reg};

    fn dex_with(body: impl FnOnce(&mut MethodBuilder)) -> DexFile {
        let mut dex = DexFile::new();
        let mut c = Class::new("A");
        let mut b = MethodBuilder::new("A", "m", 1);
        body(&mut b);
        b.ret_void();
        c.methods.push(b.finish());
        dex.classes.push(c);
        dex
    }

    #[test]
    fn random_forced_to_zero() {
        let mut dex = dex_with(|b| {
            let n = b.fresh_reg();
            b.const_(n, 100i64);
            let r = b.fresh_reg();
            b.host(HostApi::Random, vec![n], Some(r));
        });
        assert_eq!(force_random_zero(&mut dex), 1);
        assert!(dex.methods().flat_map(|m| m.body.iter()).any(|i| matches!(
            i,
            Instr::Const {
                value: Value::Int(0),
                ..
            }
        )));
    }

    #[test]
    fn reflection_logging_inserted_and_targets_shifted() {
        let mut dex = dex_with(|b| {
            let skip = b.fresh_label();
            b.if_(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(1)), skip);
            let n = b.fresh_reg();
            b.const_(n, Value::str("getPublicKey"));
            let k = b.fresh_reg();
            b.push(Instr::InvokeReflect {
                name: n,
                args: vec![],
                dst: Some(k),
            });
            b.place_label(skip);
        });
        let old_target = match &dex.methods().next().unwrap().body[0] {
            Instr::If { target, .. } => *target,
            _ => unreachable!(),
        };
        assert_eq!(log_reflection_targets(&mut dex), 1);
        match &dex.methods().next().unwrap().body[0] {
            Instr::If { target, .. } => assert_eq!(*target, old_target + 1),
            other => panic!("unexpected {other:?}"),
        };
    }

    #[test]
    fn hash_branches_flipped() {
        let mut dex = dex_with(|b| {
            let h = b.fresh_reg();
            b.hash(h, Reg(0), vec![1]);
            let skip = b.fresh_label();
            b.if_(
                CondOp::Ne,
                h,
                RegOrConst::Const(Value::bytes([0u8; 20])),
                skip,
            );
            b.host_log("payload path");
            b.place_label(skip);
        });
        assert_eq!(force_hash_branches(&mut dex), 1);
    }
}
