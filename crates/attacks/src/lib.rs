//! The adversary toolkit: every attack the paper evaluates BombDroid (and
//! its baselines) against.
//!
//! Paper §2.1 enumerates the threat model's analyses; §5 argues resilience;
//! §8.3 measures it. This crate makes each of them a runnable experiment:
//!
//! | Module | Paper attack |
//! |---|---|
//! | [`textsearch`] | grep for `getPublicKey` and friends |
//! | [`instrument`] | force `rand()`, check reflection targets, flip/strip suspicious code |
//! | [`fuzz`] | blackbox fuzzing with Monkey / PUMA / AndroidHooker / Dynodroid (Table 4, Fig. 5) |
//! | [`campaign`] (+ [`coverage`], [`corpus`]) | coverage-guided greybox fuzzing, the Difuzer-class attacker the paper predates |
//! | [`symbolic`] | symbolic execution & path exploration (TriggerScope et al.) |
//! | [`slicing`] | HARVESTER backward slicing + slice execution |
//! | [`forced`] | forced (sampled) execution of suspected payloads |
//! | [`brute`] | brute-force key search against `Hash(X|salt) == Hc` (§5.1) |
//! | [`deletion`] | delete suspicious code, ship, hope nothing breaks (§3.4) |
//! | [`analyst`] | 20-hour human analysts with environment mutation (§8.3.2) |
//! | [`resilience`] | the full attack × protection matrix of §5 |
//!
//! # Example
//!
//! ```no_run
//! use bombdroid_attacks::resilience::{resilience_matrix, AttackKind, Protection};
//!
//! let app = bombdroid_corpus::flagship::catlog();
//! let report = resilience_matrix(&app, 7);
//! let cell = report.cell(AttackKind::SymbolicExecution, Protection::BombDroid);
//! assert!(!cell.defeated, "{}", cell.note);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyst;
pub mod brute;
pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod deletion;
pub mod forced;
pub mod fuzz;
pub mod instrument;
pub mod resilience;
pub mod slicing;
pub mod symbolic;
pub mod textsearch;

pub use analyst::{analyst_campaign, AnalystReport};
pub use brute::{brute_force_campaign, BruteReport};
pub use campaign::{Finding, GuidedConfig, GuidedReport, ResetMode};
pub use corpus::{harvest_dictionary, havoc, seed_inputs, splice, Corpus, CorpusEntry, FuzzInput};
pub use coverage::{minset, CoverageMap};
pub use deletion::{deletion_attack, CorruptionReport};
pub use forced::{forced_execution, ForcedReport};
pub use fuzz::{count_outer_conditions, run_fuzzer, FuzzReport, FuzzerKind};
pub use resilience::{resilience_matrix, AttackKind, MatrixCell, Protection, ResilienceReport};
pub use slicing::{slice_attack, SliceOutcome};
pub use symbolic::{analyze_dex, analyze_method, Limits, SymbolicOutcome, Unsolvable};
pub use textsearch::{search_default, TextHit};
