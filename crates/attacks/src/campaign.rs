//! The coverage-guided fuzzing campaign (ROADMAP item 3: field a
//! Difuzer-class attacker at full strength).
//!
//! One campaign = N deterministic shards run through the fleet engine.
//! Every shard seeds its own corpus from the same deterministic seed round
//! (favourites + the Redqueen dictionary of cracked `Hash(X|salt) == Hc`
//! constants), then spends its exec budget on a classic greybox loop:
//! pick a corpus input, splice/havoc-mutate it, run it on a freshly reset
//! VM with edge coverage on, and keep it iff it covered a new edge.
//! Resets fork a *pristine* snapshot ([`ResetMode::SnapshotFork`], ~113×
//! cheaper than a cold boot) or boot cold ([`ResetMode::ColdBoot`]); a
//! pristine fork is bit-identical to a cold boot, so the two modes produce
//! byte-for-byte identical campaigns — the determinism suite pins this.
//!
//! # Determinism
//!
//! Each shard is a pure function of its fleet-derived seed, and the merge
//! walks shards in task index order (coverage union, key-deduplicated
//! corpus append, first-discovery findings). The bombs-vs-budget curve is
//! sampled per shard at fixed exec checkpoints and unioned across shards,
//! so every reported artifact is bit-identical for any `BOMBDROID_THREADS`
//! value. Per-window progress streams through an
//! [`bombdroid_obs::ShardAggregator`].

use crate::corpus::{harvest_dictionary, havoc, seed_inputs, splice, Corpus, FuzzInput};
use crate::coverage::CoverageMap;
use crate::fuzz::count_outer_conditions;
use bombdroid_apk::ApkFile;
use bombdroid_core::{derive_seed, expect_all, run_indexed_windowed, FleetConfig, TaskCtx};
use bombdroid_dex::Value;
use bombdroid_runtime::{DeviceEnv, InstalledPackage, Vm, VmEngine, VmOptions, VmSnapshot};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How each exec gets a fresh VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResetMode {
    /// Fork a pristine snapshot taken once at campaign start (fast path).
    SnapshotFork,
    /// Boot a new VM from scratch every exec (reference path; bit-identical
    /// to forking, only slower).
    ColdBoot,
}

/// Campaign parameters. All of them feed the deterministic shard seeds, so
/// two campaigns with equal configs produce identical reports regardless
/// of thread count or reset mode.
#[derive(Debug, Clone)]
pub struct GuidedConfig {
    /// Root seed for shard derivation.
    pub seed: u64,
    /// Independent fuzzing shards (also the fleet task count).
    pub shards: usize,
    /// Exec budget per shard.
    pub execs_per_shard: u64,
    /// Worker threads: `Some(n)` pins the count (the determinism suite
    /// compares 1/2/8), `None` defers to `BOMBDROID_THREADS` / all CPUs.
    pub threads: Option<usize>,
    /// VM reset strategy.
    pub reset: ResetMode,
    /// Brute-force tries per condition when harvesting the dictionary.
    pub crack_budget: u64,
    /// Sample count for the bombs-vs-budget curve.
    pub checkpoints: usize,
    /// Shards per obs aggregation window.
    pub window: usize,
}

impl GuidedConfig {
    /// A small fixed-budget smoke campaign (the CI configuration).
    pub fn smoke(seed: u64) -> Self {
        GuidedConfig {
            seed,
            shards: 4,
            execs_per_shard: 60,
            threads: None,
            reset: ResetMode::SnapshotFork,
            crack_budget: 5_000,
            checkpoints: 6,
            window: 2,
        }
    }
}

/// One confirmed bomb discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The bomb's payload marker id.
    pub marker: u32,
    /// Shard that found it first (lowest shard index wins on merge).
    pub shard: usize,
    /// 1-based exec number within that shard's budget.
    pub exec: u64,
    /// The triggering input.
    pub input: FuzzInput,
    /// The VM seed the discovery ran under (used for replay).
    pub vm_seed: u64,
    /// Whether the ground-truth replay on a fresh, uninstrumented VM
    /// re-fired the payload.
    pub validated: bool,
}

/// The merged result of a campaign.
#[derive(Debug, Clone)]
pub struct GuidedReport {
    /// Total execs spent (shards × budget).
    pub execs: u64,
    /// Union coverage across all shards.
    pub coverage: CoverageMap,
    /// Merged corpus (task-index-ordered shard append, deduplicated).
    pub corpus: Corpus,
    /// Greedy minset of the merged corpus; covers exactly what
    /// [`GuidedReport::corpus`] covers.
    pub minimized: Corpus,
    /// Distinct bombs found, sorted by marker id, each replay-validated.
    pub findings: Vec<Finding>,
    /// `(cumulative execs, distinct bombs found)` at fixed checkpoints.
    pub curve: Vec<(u64, usize)>,
    /// Obfuscated outer conditions present in the target (denominator for
    /// resilience percentages).
    pub total_outer: usize,
    /// Dictionary constants recovered by the input-to-state stage.
    pub dictionary_len: usize,
    /// Obs windows sealed while streaming shard progress.
    pub windows_sealed: usize,
}

impl GuidedReport {
    /// Marker ids of all validated findings.
    pub fn validated_markers(&self) -> Vec<u32> {
        self.findings
            .iter()
            .filter(|f| f.validated)
            .map(|f| f.marker)
            .collect()
    }
}

struct ShardResult {
    corpus: Corpus,
    coverage: CoverageMap,
    /// `(exec_no, marker, input, vm_seed)` per shard-locally-new marker,
    /// in discovery order.
    found: Vec<(u64, u32, FuzzInput, u64)>,
}

fn campaign_opts() -> VmOptions {
    VmOptions {
        // Pin the decoded engine: it hosts the coverage hook, and both
        // engines are behaviorally bit-identical anyway.
        engine: VmEngine::Decoded,
        collect_coverage: true,
        ..VmOptions::default()
    }
}

fn fresh_vm(
    reset: ResetMode,
    pristine: &VmSnapshot,
    pkg: &Arc<InstalledPackage>,
    env: &DeviceEnv,
    vm_seed: u64,
) -> Vm {
    match reset {
        ResetMode::SnapshotFork => pristine.fork(env.clone(), vm_seed),
        ResetMode::ColdBoot => Vm::new(Arc::clone(pkg), env.clone(), vm_seed, campaign_opts()),
    }
}

fn run_input(vm: &mut Vm, input: &FuzzInput) {
    for ev in &input.events {
        if vm.is_killed() || vm.is_frozen() {
            break;
        }
        let _ = vm.fire_entry(ev.entry_index, ev.args.clone());
        vm.advance_ms(1_000);
    }
}

fn run_shard(
    ctx: TaskCtx,
    cfg: &GuidedConfig,
    pkg: &Arc<InstalledPackage>,
    pristine: &VmSnapshot,
    env: &DeviceEnv,
    seeds: &[FuzzInput],
    dictionary: &[Value],
) -> ShardResult {
    let dex = pkg.dex.clone();
    let mut rng = ctx.rng();
    let mut corpus = Corpus::new();
    let mut coverage = CoverageMap::new();
    let mut found: Vec<(u64, u32, FuzzInput, u64)> = Vec::new();
    let mut markers_seen: BTreeSet<u32> = BTreeSet::new();
    let mut events_fired = 0u64;

    for exec_idx in 0..cfg.execs_per_shard {
        let input = if (exec_idx as usize) < seeds.len() {
            seeds[exec_idx as usize].clone()
        } else if corpus.is_empty() {
            havoc(
                &FuzzInput { events: Vec::new() },
                &dex,
                dictionary,
                &mut rng,
            )
        } else {
            let base = &corpus.entries()[rng.gen_range(0..corpus.len())].input;
            let staged = if corpus.len() > 1 && rng.gen_range(0..4u8) == 0 {
                let other = &corpus.entries()[rng.gen_range(0..corpus.len())].input;
                splice(base, other, &mut rng)
            } else {
                base.clone()
            };
            havoc(&staged, &dex, dictionary, &mut rng)
        };

        let vm_seed = derive_seed(ctx.seed ^ 0xF422, exec_idx);
        let mut vm = fresh_vm(cfg.reset, pristine, pkg, env, vm_seed);
        run_input(&mut vm, &input);
        events_fired += input.events.len() as u64;

        let edges = vm.coverage_edges();
        let new_edges = coverage.absorb(&edges);
        for &m in &vm.telemetry().markers {
            if markers_seen.insert(m) {
                found.push((exec_idx + 1, m, input.clone(), vm_seed));
            }
        }
        // Seeds are always kept (they are the mutation base line-up);
        // mutants must earn their slot with a new edge.
        if new_edges > 0 || (exec_idx as usize) < seeds.len() {
            corpus.add(input, edges);
        }
    }

    if bombdroid_obs::enabled() {
        bombdroid_obs::counter_add("fuzz.shards", 1);
        bombdroid_obs::counter_add("fuzz.execs", cfg.execs_per_shard);
        bombdroid_obs::counter_add_nz("fuzz.events_fired", events_fired);
        bombdroid_obs::counter_add_nz("fuzz.corpus_entries", corpus.len() as u64);
        bombdroid_obs::counter_add_nz("fuzz.edges_covered", coverage.len() as u64);
        bombdroid_obs::counter_add_nz("fuzz.bombs_found", markers_seen.len() as u64);
    }

    ShardResult {
        corpus,
        coverage,
        found,
    }
}

/// Replays a finding on a fresh, uninstrumented VM (coverage off, cold
/// boot) and reports whether the payload marker fires again — the
/// ground-truth check that a reported bomb is a real bomb.
fn validate_finding(pkg: &Arc<InstalledPackage>, env: &DeviceEnv, f: &Finding) -> bool {
    let opts = VmOptions {
        engine: VmEngine::Decoded,
        ..VmOptions::default()
    };
    let mut vm = Vm::new(Arc::clone(pkg), env.clone(), f.vm_seed, opts);
    run_input(&mut vm, &f.input);
    vm.telemetry().markers.contains(&f.marker)
}

/// Runs a guided campaign against the *original signed* protected `apk`
/// (the attacker's lab setup: detections compare equal and never kill the
/// process, while markers still record every payload that fires).
///
/// # Panics
///
/// Panics if `apk` does not verify.
pub fn run(apk: &ApkFile, cfg: &GuidedConfig) -> GuidedReport {
    let pkg = Arc::new(InstalledPackage::install(apk).expect("attacker installs the signed app"));
    let total_outer = count_outer_conditions(&pkg.dex);
    let dictionary = harvest_dictionary(&pkg.dex, cfg.crack_budget);
    let seeds = seed_inputs(&pkg.dex, &dictionary);
    let env = DeviceEnv::attacker_lab(1).remove(0);
    // The pristine snapshot is taken before any event, so forking it with
    // (env, seed) is bit-identical to `Vm::new` with the same pair; its
    // own boot env/seed are irrelevant.
    let pristine = Vm::new(Arc::clone(&pkg), env.clone(), 0, campaign_opts()).snapshot();

    let fleet = match cfg.threads {
        Some(t) => FleetConfig::serial(cfg.seed).with_threads(t),
        None => FleetConfig::from_env(cfg.seed),
    };
    let aggregator = bombdroid_obs::ShardAggregator::new(cfg.window);
    let shard_results: Vec<ShardResult> = expect_all(run_indexed_windowed(
        fleet,
        cfg.shards,
        &aggregator,
        |ctx| {
            Ok::<_, std::convert::Infallible>(run_shard(
                ctx,
                cfg,
                &pkg,
                &pristine,
                &env,
                &seeds,
                &dictionary,
            ))
        },
    ));
    aggregator.finish();
    let windows_sealed = aggregator.windows_sealed();
    if bombdroid_obs::enabled() {
        // Fold the streamed campaign counters into the caller's recorder
        // so `repro --fast guided` exports them in metrics.json.
        bombdroid_obs::current().merge_from(&aggregator.total());
    }

    // Task-index-ordered merge: identical for every worker count.
    let mut coverage = CoverageMap::new();
    let mut corpus = Corpus::new();
    let mut first_by_marker: BTreeMap<u32, Finding> = BTreeMap::new();
    for (shard, r) in shard_results.iter().enumerate() {
        coverage.merge(&r.coverage);
        corpus.merge_from(&r.corpus);
        for (exec, marker, input, vm_seed) in &r.found {
            first_by_marker.entry(*marker).or_insert(Finding {
                marker: *marker,
                shard,
                exec: *exec,
                input: input.clone(),
                vm_seed: *vm_seed,
                validated: false,
            });
        }
    }
    let mut findings: Vec<Finding> = first_by_marker.into_values().collect();
    for f in &mut findings {
        f.validated = validate_finding(&pkg, &env, f);
    }

    // Bombs-vs-budget curve: at checkpoint k every shard has spent the
    // same per-shard cutoff, so the sample is a union over shards of
    // markers discovered within that cutoff — order-independent.
    let checkpoints = cfg.checkpoints.max(1) as u64;
    let mut curve = Vec::with_capacity(checkpoints as usize);
    for k in 1..=checkpoints {
        let cutoff = cfg.execs_per_shard * k / checkpoints;
        let bombs: BTreeSet<u32> = shard_results
            .iter()
            .flat_map(|r| r.found.iter())
            .filter(|(exec, ..)| *exec <= cutoff)
            .map(|(_, marker, ..)| *marker)
            .collect();
        curve.push((cutoff * cfg.shards as u64, bombs.len()));
    }

    let minimized = corpus.minimized();
    GuidedReport {
        execs: cfg.execs_per_shard * cfg.shards as u64,
        coverage,
        corpus,
        minimized,
        findings,
        curve,
        total_outer,
        dictionary_len: dictionary.len(),
        windows_sealed,
    }
}
