//! Symbolic execution over the bytecode IR — the path-exploration attack
//! family of paper §2.1/§5 (TriggerScope, whitebox fuzzing, multi-path
//! execution).
//!
//! The engine tracks linear integer expressions over entry-point inputs and
//! string-equality tests, forks on symbolic branches, and *solves* path
//! constraints to synthesize triggering inputs. Its power matches the
//! state of the art the paper argues against: it cracks plain `X == c`
//! trigger conditions (naive bombs, SSN) outright — and hits a wall on
//! `Hash(X|salt) == Hc`, because a cryptographic hash is an uninterpreted,
//! non-invertible function to any constraint solver ("as cryptographic
//! hash functions cannot be reversed, no constraint solvers can solve it",
//! §5).

use bombdroid_crypto::kdf;
use bombdroid_dex::{BinOp, CondOp, DexFile, Instr, MethodRef, Reg, RegOrConst, StrOp, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A symbolic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Sym {
    /// Compile-time constant.
    Const(Value),
    /// Linear integer expression `a·input(var) + b`.
    Lin {
        /// Input variable index.
        var: usize,
        /// Coefficient.
        a: i64,
        /// Offset.
        b: i64,
    },
    /// The raw string input `var`.
    StrInput(usize),
    /// Boolean test `input == literal` produced by a string comparison.
    StrEq(usize, Arc<str>),
    /// Salted hash of another symbolic value — **uninterpreted**.
    HashOf(Box<Sym>, Vec<u8>),
    /// Anything the engine cannot reason about (env queries, fields,
    /// callee returns).
    Opaque,
}

impl Sym {
    fn input(var: usize) -> Sym {
        Sym::Lin { var, a: 1, b: 0 }
    }
}

/// One recorded path constraint: `sym op value` (register-vs-register
/// comparisons degrade to `Opaque`).
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Left-hand symbolic value.
    pub sym: Sym,
    /// Comparison (already oriented for the *taken* direction).
    pub op: CondOp,
    /// Right-hand constant.
    pub value: Value,
}

/// Why a path's constraints could not be solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unsolvable {
    /// A constraint equates a cryptographic hash with a constant — the
    /// solver cannot invert it. This is BombDroid's defence working.
    HashBarrier,
    /// A constraint involves values the engine cannot model.
    OpaqueValue,
    /// Constraints contradict each other.
    Contradiction,
}

/// Result of solving one path.
pub type Solution = Result<HashMap<usize, Value>, Unsolvable>;

/// Tries to satisfy all constraints, assigning input variables.
pub fn solve(constraints: &[Constraint]) -> Solution {
    let mut assign: HashMap<usize, Value> = HashMap::new();
    let pin =
        |var: usize, value: Value, assign: &mut HashMap<usize, Value>| -> Result<(), Unsolvable> {
            match assign.get(&var) {
                Some(existing) if *existing != value => Err(Unsolvable::Contradiction),
                _ => {
                    assign.insert(var, value);
                    Ok(())
                }
            }
        };
    for c in constraints {
        match (&c.sym, c.op) {
            (Sym::HashOf(..), _) => return Err(Unsolvable::HashBarrier),
            (Sym::Const(v), op) => {
                // Concrete-vs-concrete: just check.
                let holds = check_concrete(v, op, &c.value).ok_or(Unsolvable::OpaqueValue)?;
                if !holds {
                    return Err(Unsolvable::Contradiction);
                }
            }
            (Sym::Lin { var, a, b }, CondOp::Eq) => {
                let Value::Int(target) = c.value else {
                    return Err(Unsolvable::OpaqueValue);
                };
                if *a == 0 {
                    if *b != target {
                        return Err(Unsolvable::Contradiction);
                    }
                    continue;
                }
                let num = target - b;
                if num % a != 0 {
                    return Err(Unsolvable::Contradiction);
                }
                pin(*var, Value::Int(num / a), &mut assign)?;
            }
            (Sym::Lin { var, .. }, CondOp::Ne) => {
                // Satisfiable by picking any other value; only conflicts if
                // the variable is already pinned to the excluded value.
                if let (Some(Value::Int(pinned)), Value::Int(excl)) = (assign.get(var), &c.value) {
                    // Conservative: only exact pin-vs-exclusion conflicts.
                    let Sym::Lin { a, b, .. } = &c.sym else {
                        unreachable!()
                    };
                    if a * pinned + b == *excl {
                        return Err(Unsolvable::Contradiction);
                    }
                }
            }
            (Sym::Lin { .. }, _) => {
                // Ordered constraints: treated as satisfiable (the solver
                // picks values later); adequate for equality-centric QCs.
            }
            (Sym::StrEq(var, lit), CondOp::Eq) => match &c.value {
                Value::Bool(true) => pin(*var, Value::Str(lit.clone()), &mut assign)?,
                Value::Bool(false) => {}
                _ => return Err(Unsolvable::OpaqueValue),
            },
            (Sym::StrEq(var, lit), CondOp::Ne) => match &c.value {
                Value::Bool(false) => pin(*var, Value::Str(lit.clone()), &mut assign)?,
                Value::Bool(true) => {}
                _ => return Err(Unsolvable::OpaqueValue),
            },
            (Sym::StrInput(var), CondOp::Eq) => match &c.value {
                Value::Str(s) => pin(*var, Value::Str(s.clone()), &mut assign)?,
                _ => return Err(Unsolvable::OpaqueValue),
            },
            (Sym::StrInput(..), CondOp::Ne) => {}
            (Sym::Opaque, _) | (Sym::StrEq(..), _) | (Sym::StrInput(..), _) => {
                return Err(Unsolvable::OpaqueValue)
            }
        }
    }
    Ok(assign)
}

fn check_concrete(a: &Value, op: CondOp, b: &Value) -> Option<bool> {
    match op {
        CondOp::Eq => Some(a == b),
        CondOp::Ne => Some(a != b),
        _ => match (a, b) {
            (Value::Int(x), Value::Int(y)) => Some(match op {
                CondOp::Lt => x < y,
                CondOp::Le => x <= y,
                CondOp::Gt => x > y,
                CondOp::Ge => x >= y,
                _ => unreachable!(),
            }),
            _ => None,
        },
    }
}

/// A `DecryptExec` reached during exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct BombFinding {
    /// Method containing the bomb.
    pub method: MethodRef,
    /// Instruction index of the `DecryptExec`.
    pub pc: usize,
    /// `Ok(inputs)` when the solver can synthesize inputs that reach it
    /// (and therefore derive the decryption key); `Err` explains the wall.
    pub key_recovery: Solution,
}

/// A plaintext payload (marker or detection API call) reached with
/// solvable constraints — what happens to naive bombs and SSN.
#[derive(Debug, Clone, PartialEq)]
pub struct ExposedPayload {
    /// Method containing the payload.
    pub method: MethodRef,
    /// Instruction index.
    pub pc: usize,
    /// Concrete inputs that drive execution to it.
    pub inputs: HashMap<usize, Value>,
}

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum forked paths per method.
    pub max_paths: usize,
    /// Maximum instructions per path.
    pub max_steps: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_paths: 256,
            max_steps: 2_048,
        }
    }
}

/// Aggregate result over a DEX file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymbolicOutcome {
    /// Encrypted bombs found, with key-recovery verdicts.
    pub bombs: Vec<BombFinding>,
    /// Plaintext payloads exposed with concrete triggering inputs.
    pub exposed: Vec<ExposedPayload>,
    /// Paths explored in total.
    pub paths_explored: usize,
}

impl SymbolicOutcome {
    /// Bombs whose keys the solver recovered.
    pub fn keys_recovered(&self) -> usize {
        self.bombs.iter().filter(|b| b.key_recovery.is_ok()).count()
    }

    /// Bombs blocked by the hash barrier.
    pub fn hash_barriers(&self) -> usize {
        self.bombs
            .iter()
            .filter(|b| b.key_recovery == Err(Unsolvable::HashBarrier))
            .count()
    }
}

/// Symbolically executes every entry point of `dex`.
pub fn analyze_dex(dex: &DexFile, limits: Limits) -> SymbolicOutcome {
    let mut outcome = SymbolicOutcome::default();
    for ep in &dex.entry_points {
        if let Some(method) = dex.method(&ep.method) {
            explore_method(method, limits, &mut outcome);
        }
    }
    outcome
}

/// Symbolically executes a single method with fully symbolic parameters.
pub fn analyze_method(dex: &DexFile, mref: &MethodRef, limits: Limits) -> SymbolicOutcome {
    let mut outcome = SymbolicOutcome::default();
    if let Some(method) = dex.method(mref) {
        explore_method(method, limits, &mut outcome);
    }
    outcome
}

struct PathState {
    pc: usize,
    regs: Vec<Sym>,
    constraints: Vec<Constraint>,
    steps: usize,
    next_var: usize,
}

fn explore_method(method: &bombdroid_dex::Method, limits: Limits, outcome: &mut SymbolicOutcome) {
    let mref = method.method_ref();
    let mut regs = vec![Sym::Opaque; method.registers as usize];
    for (p, reg) in regs.iter_mut().enumerate().take(method.params as usize) {
        // Parameter types are unknown statically; track both linear-int and
        // string views by starting linear and switching on first string op.
        *reg = Sym::input(p);
    }
    let mut stack = vec![PathState {
        pc: 0,
        regs,
        constraints: Vec::new(),
        steps: 0,
        next_var: method.params as usize,
    }];
    let mut paths = 0usize;

    while let Some(mut st) = stack.pop() {
        if paths >= limits.max_paths {
            break;
        }
        loop {
            if st.steps >= limits.max_steps || st.pc >= method.body.len() {
                break;
            }
            st.steps += 1;
            let pc = st.pc;
            let mut next = pc + 1;
            match &method.body[pc] {
                Instr::Const { dst, value } => set(&mut st.regs, *dst, Sym::Const(value.clone())),
                Instr::Move { dst, src } => {
                    let v = get(&st.regs, *src);
                    set(&mut st.regs, *dst, v);
                }
                Instr::BinOpConst { op, dst, lhs, rhs } => {
                    let v = bin_const(get(&st.regs, *lhs), *op, *rhs);
                    set(&mut st.regs, *dst, v);
                }
                Instr::BinOp { op, dst, lhs, rhs } => {
                    let v = match (get(&st.regs, *lhs), get(&st.regs, *rhs)) {
                        (Sym::Const(Value::Int(a)), Sym::Const(Value::Int(b))) => {
                            concrete_bin(*op, a, b)
                                .map(|x| Sym::Const(Value::Int(x)))
                                .unwrap_or(Sym::Opaque)
                        }
                        (l, Sym::Const(Value::Int(b))) => bin_const(l, *op, b),
                        (Sym::Const(Value::Int(a)), r) if matches!(op, BinOp::Add | BinOp::Mul) => {
                            bin_const(r, *op, a)
                        }
                        _ => Sym::Opaque,
                    };
                    set(&mut st.regs, *dst, v);
                }
                Instr::UnOp { dst, .. } => set(&mut st.regs, *dst, Sym::Opaque),
                Instr::StrOp { op, dst, lhs, rhs } => {
                    let v = str_op_sym(&st.regs, *op, *lhs, *rhs);
                    set(&mut st.regs, *dst, v);
                }
                Instr::Hash { dst, src, salt } => {
                    let inner = get(&st.regs, *src);
                    let v = match inner {
                        // Hash of a concrete value computes concretely.
                        Sym::Const(c) => Sym::Const(Value::bytes(kdf::condition_hash(
                            &c.canonical_bytes(),
                            salt,
                        ))),
                        other => Sym::HashOf(Box::new(other), salt.clone()),
                    };
                    set(&mut st.regs, *dst, v);
                }
                Instr::If {
                    cond,
                    lhs,
                    rhs,
                    target,
                } => {
                    let l = get(&st.regs, *lhs);
                    let rv = match rhs {
                        RegOrConst::Const(v) => Some(v.clone()),
                        RegOrConst::Reg(r) => match get(&st.regs, *r) {
                            Sym::Const(v) => Some(v),
                            _ => None,
                        },
                    };
                    match (l, rv) {
                        (Sym::Const(lc), Some(rc)) => {
                            if check_concrete(&lc, *cond, &rc).unwrap_or(false) {
                                next = *target;
                            }
                        }
                        (lsym, Some(rc)) => {
                            // Fork: taken branch records `lsym cond rc`;
                            // fallthrough records the negation.
                            if paths + 1 < limits.max_paths {
                                let mut taken = PathState {
                                    pc: *target,
                                    regs: st.regs.clone(),
                                    constraints: st.constraints.clone(),
                                    steps: st.steps,
                                    next_var: st.next_var,
                                };
                                taken.constraints.push(Constraint {
                                    sym: lsym.clone(),
                                    op: *cond,
                                    value: rc.clone(),
                                });
                                stack.push(taken);
                                paths += 1;
                            }
                            st.constraints.push(Constraint {
                                sym: lsym,
                                op: cond.negate(),
                                value: rc,
                            });
                        }
                        (_, None) => {
                            // Register-register with symbolic rhs: explore
                            // the fallthrough only, conservatively.
                        }
                    }
                }
                Instr::Switch { src, arms, default } => match get(&st.regs, *src) {
                    Sym::Const(Value::Int(v)) => {
                        next = arms
                            .iter()
                            .find(|(c, _)| *c == v)
                            .map(|(_, t)| *t)
                            .unwrap_or(*default);
                    }
                    sym => {
                        for (case, t) in arms {
                            if paths + 1 < limits.max_paths {
                                let mut forked = PathState {
                                    pc: *t,
                                    regs: st.regs.clone(),
                                    constraints: st.constraints.clone(),
                                    steps: st.steps,
                                    next_var: st.next_var,
                                };
                                forked.constraints.push(Constraint {
                                    sym: sym.clone(),
                                    op: CondOp::Eq,
                                    value: Value::Int(*case),
                                });
                                stack.push(forked);
                                paths += 1;
                            }
                        }
                        next = *default;
                    }
                },
                Instr::Goto { target } => next = *target,
                Instr::DecryptExec { .. } => {
                    outcome.bombs.push(BombFinding {
                        method: mref.clone(),
                        pc,
                        key_recovery: solve(&st.constraints),
                    });
                    // The engine cannot see inside the blob; continue after.
                }
                Instr::HostCall { api, dst, .. } => {
                    use bombdroid_dex::HostApi;
                    if matches!(
                        api,
                        HostApi::Marker(_) | HostApi::GetPublicKey | HostApi::ReportPiracy
                    ) {
                        if let Ok(inputs) = solve(&st.constraints) {
                            outcome.exposed.push(ExposedPayload {
                                method: mref.clone(),
                                pc,
                                inputs,
                            });
                        }
                    }
                    if let Some(d) = dst {
                        // The framework RNG is *controllable* from the
                        // analyst's perspective ("such probabilistic
                        // computation can be turned deterministic", §1):
                        // model its result as a fresh solvable input, so
                        // SSN's `rand() < p` gate does not stop the
                        // explorer.
                        let v = if matches!(api, HostApi::Random) {
                            let var = st.next_var;
                            st.next_var += 1;
                            Sym::input(var)
                        } else {
                            Sym::Opaque
                        };
                        set(&mut st.regs, *d, v);
                    }
                }
                Instr::InvokeReflect { dst, .. } => {
                    // A reflective call on a solvable path exposes the
                    // hidden destination (SSN's concealment fails here).
                    if let Ok(inputs) = solve(&st.constraints) {
                        outcome.exposed.push(ExposedPayload {
                            method: mref.clone(),
                            pc,
                            inputs,
                        });
                    }
                    if let Some(d) = dst {
                        set(&mut st.regs, *d, Sym::Opaque);
                    }
                }
                Instr::Invoke { dst, .. } => {
                    if let Some(d) = dst {
                        set(&mut st.regs, *d, Sym::Opaque);
                    }
                }
                Instr::Return { .. } | Instr::Throw { .. } => break,
                other => {
                    if let Some(d) = other.def() {
                        set(&mut st.regs, d, Sym::Opaque);
                    }
                }
            }
            st.pc = next;
        }
        paths += 1;
        outcome.paths_explored += 1;
    }
}

fn get(regs: &[Sym], r: Reg) -> Sym {
    regs.get(r.0 as usize).cloned().unwrap_or(Sym::Opaque)
}

fn set(regs: &mut Vec<Sym>, r: Reg, v: Sym) {
    let i = r.0 as usize;
    if i >= regs.len() {
        regs.resize(i + 1, Sym::Opaque);
    }
    regs[i] = v;
}

fn concrete_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    })
}

fn bin_const(l: Sym, op: BinOp, rhs: i64) -> Sym {
    match (l, op) {
        (Sym::Const(Value::Int(a)), _) => concrete_bin(op, a, rhs)
            .map(|x| Sym::Const(Value::Int(x)))
            .unwrap_or(Sym::Opaque),
        (Sym::Lin { var, a, b }, BinOp::Add) => Sym::Lin {
            var,
            a,
            b: b.wrapping_add(rhs),
        },
        (Sym::Lin { var, a, b }, BinOp::Sub) => Sym::Lin {
            var,
            a,
            b: b.wrapping_sub(rhs),
        },
        (Sym::Lin { var, a, b }, BinOp::Mul) => Sym::Lin {
            var,
            a: a.wrapping_mul(rhs),
            b: b.wrapping_mul(rhs),
        },
        _ => Sym::Opaque,
    }
}

fn str_op_sym(regs: &[Sym], op: StrOp, lhs: Reg, rhs: Option<Reg>) -> Sym {
    if op != StrOp::Equals {
        return Sym::Opaque;
    }
    let receiver = get(regs, lhs);
    let lit = rhs.map(|r| get(regs, r));
    match (receiver, lit) {
        (Sym::Lin { var, a: 1, b: 0 }, Some(Sym::Const(Value::Str(s))))
        | (Sym::StrInput(var), Some(Sym::Const(Value::Str(s)))) => Sym::StrEq(var, s),
        (Sym::Const(Value::Str(a)), Some(Sym::Const(Value::Str(b)))) => {
            Sym::Const(Value::Bool(a == b))
        }
        _ => Sym::Opaque,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::{Class, HostApi, MethodBuilder};

    fn into_dex(m: bombdroid_dex::Method) -> (DexFile, MethodRef) {
        let mref = m.method_ref();
        let mut dex = DexFile::new();
        let mut c = Class::new(mref.class.as_str());
        c.methods.push(m);
        dex.classes.push(c);
        (dex, mref)
    }

    #[test]
    fn solves_plain_integer_trigger() {
        // Listing 2: if (x == 0x56789abc) { marker } — symbolic execution
        // finds the input instantly ("Line 1 cannot stop symbolic executor
        // from exploring the path").
        let mut b = MethodBuilder::new("T", "m", 1);
        let skip = b.fresh_label();
        b.if_not(
            CondOp::Eq,
            Reg(0),
            RegOrConst::Const(Value::Int(0x5678_9abc)),
            skip,
        );
        b.host(HostApi::Marker(0), vec![], None);
        b.place_label(skip);
        b.ret_void();
        let (dex, mref) = into_dex(b.finish());
        let out = analyze_method(&dex, &mref, Limits::default());
        assert_eq!(out.exposed.len(), 1);
        assert_eq!(
            out.exposed[0].inputs.get(&0),
            Some(&Value::Int(0x5678_9abc))
        );
    }

    #[test]
    fn inverts_linear_transformations() {
        // if (x*3 + 5 == senior) — solver inverts the arithmetic.
        let mut b = MethodBuilder::new("T", "lin", 1);
        let t = b.fresh_reg();
        b.bin_const(BinOp::Mul, t, Reg(0), 3);
        b.bin_const(BinOp::Add, t, t, 5);
        let skip = b.fresh_label();
        b.if_not(CondOp::Eq, t, RegOrConst::Const(Value::Int(35)), skip);
        b.host(HostApi::Marker(0), vec![], None);
        b.place_label(skip);
        b.ret_void();
        let (dex, mref) = into_dex(b.finish());
        let out = analyze_method(&dex, &mref, Limits::default());
        assert_eq!(out.exposed.len(), 1);
        assert_eq!(out.exposed[0].inputs.get(&0), Some(&Value::Int(10)));
    }

    #[test]
    fn solves_string_trigger() {
        let mut b = MethodBuilder::new("T", "s", 1);
        let lit = b.fresh_reg();
        b.const_(lit, Value::str("magic"));
        let flag = b.fresh_reg();
        b.str_op(StrOp::Equals, flag, Reg(0), Some(lit));
        let skip = b.fresh_label();
        b.if_not(CondOp::Eq, flag, RegOrConst::Const(Value::Bool(true)), skip);
        b.host(HostApi::Marker(0), vec![], None);
        b.place_label(skip);
        b.ret_void();
        let (dex, mref) = into_dex(b.finish());
        let out = analyze_method(&dex, &mref, Limits::default());
        assert_eq!(out.exposed.len(), 1);
        assert_eq!(out.exposed[0].inputs.get(&0), Some(&Value::str("magic")));
    }

    #[test]
    fn hash_condition_is_a_barrier() {
        // The BombDroid shape: Hash(x|salt) == Hc guarding DecryptExec.
        let mut b = MethodBuilder::new("T", "bomb", 1);
        let h = b.fresh_reg();
        b.hash(h, Reg(0), vec![7, 7]);
        let skip = b.fresh_label();
        b.if_not(
            CondOp::Eq,
            h,
            RegOrConst::Const(Value::bytes([9u8; 20])),
            skip,
        );
        b.decrypt_exec(bombdroid_dex::BlobId(0), Reg(0));
        b.place_label(skip);
        b.ret_void();
        let m = b.finish();
        let mref = m.method_ref();
        let mut dex = DexFile::new();
        let mut c = Class::new("T");
        c.methods.push(m);
        dex.classes.push(c);
        dex.add_blob(bombdroid_dex::EncryptedBlob {
            salt: vec![7, 7],
            sealed: vec![0; 40],
        });
        let out = analyze_method(&dex, &mref, Limits::default());
        assert_eq!(out.bombs.len(), 1);
        assert_eq!(out.bombs[0].key_recovery, Err(Unsolvable::HashBarrier));
        assert_eq!(out.hash_barriers(), 1);
        assert_eq!(out.keys_recovered(), 0);
    }

    #[test]
    fn concrete_hash_still_computes() {
        // Hashing a concrete value is not a barrier (sanity check that the
        // barrier comes from symbolism, not from the Hash instruction).
        let salt = vec![1, 2, 3];
        let hc = kdf::condition_hash(&Value::Int(5).canonical_bytes(), &salt);
        let mut b = MethodBuilder::new("T", "c", 0);
        let x = b.fresh_reg();
        b.const_(x, 5i64);
        let h = b.fresh_reg();
        b.hash(h, x, salt);
        let skip = b.fresh_label();
        b.if_not(CondOp::Eq, h, RegOrConst::Const(Value::bytes(hc)), skip);
        b.host(HostApi::Marker(1), vec![], None);
        b.place_label(skip);
        b.ret_void();
        let (dex, mref) = into_dex(b.finish());
        let out = analyze_method(&dex, &mref, Limits::default());
        assert_eq!(out.exposed.len(), 1, "concrete path taken");
    }

    #[test]
    fn contradictory_paths_pruned() {
        let constraints = vec![
            Constraint {
                sym: Sym::input(0),
                op: CondOp::Eq,
                value: Value::Int(3),
            },
            Constraint {
                sym: Sym::input(0),
                op: CondOp::Eq,
                value: Value::Int(4),
            },
        ];
        assert_eq!(solve(&constraints), Err(Unsolvable::Contradiction));
    }
}
