//! Fuzzing corpus: seed construction, deduplicated storage, deterministic
//! minimization, and the havoc/splice mutators.
//!
//! A [`FuzzInput`] is an event sequence; the [`Corpus`] keeps each input
//! together with the edge set it covered, deduplicated by a canonical key,
//! so shard merging in task-index order is reproducible byte-for-byte.
//! Seeds come from two deterministic sources: the salient per-parameter
//! "user favourite" values ([`bombdroid_runtime::param_favorites`]) and a
//! Redqueen-style dictionary of constants recovered from `Hash(X|salt) ==
//! Hc` guards by [`crate::brute`] (input-to-state solving: the cracked
//! compare operand is injected directly into argument slots).

use crate::coverage::{minset, CoverageMap};
use bombdroid_dex::{DexFile, Value};
use bombdroid_runtime::{driver, CovEdge, EventInvocation, RtValue};
use rand::{rngs::StdRng, Rng};
use std::collections::BTreeSet;

/// Hard cap on events per input: keeps mutated inputs short enough that a
/// single exec stays cheap, like AFL's input-length ceiling.
pub const MAX_EVENTS: usize = 8;

/// One fuzzing input: a sequence of entry-point invocations.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzInput {
    /// The events to fire, in order.
    pub events: Vec<EventInvocation>,
}

impl FuzzInput {
    /// A canonical dedup/comparison key. `RtValue`'s `Debug` form is
    /// value-complete for every scalar an input can hold, so equal keys
    /// mean equal inputs.
    pub fn key(&self) -> String {
        format!("{:?}", self.events)
    }
}

/// A corpus entry: the input plus the edges its execution covered.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// The input.
    pub input: FuzzInput,
    /// Edges covered when it ran (sorted, as exported by the VM).
    pub cover: Vec<CovEdge>,
}

/// A deduplicated, insertion-ordered corpus.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    keys: BTreeSet<String>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in insertion order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Adds an input with the edges it covered; returns `false` if an
    /// identical input was already present.
    pub fn add(&mut self, input: FuzzInput, cover: Vec<CovEdge>) -> bool {
        if !self.keys.insert(input.key()) {
            return false;
        }
        self.entries.push(CorpusEntry { input, cover });
        true
    }

    /// Appends every entry of `other` not already present, in `other`'s
    /// insertion order. The campaign calls this shard-by-shard in
    /// task-index order, which makes the merged corpus independent of the
    /// worker count.
    pub fn merge_from(&mut self, other: &Corpus) {
        for e in &other.entries {
            self.add(e.input.clone(), e.cover.clone());
        }
    }

    /// Union coverage of every entry.
    pub fn union_coverage(&self) -> CoverageMap {
        let mut map = CoverageMap::new();
        for e in &self.entries {
            map.absorb(&e.cover);
        }
        map
    }

    /// The entry keys in insertion order (the determinism suite compares
    /// these across thread counts).
    pub fn keys(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.input.key()).collect()
    }

    /// Deterministic greedy minimization: a sub-corpus whose union
    /// coverage equals [`Corpus::union_coverage`] (see
    /// [`crate::coverage::minset`]).
    pub fn minimized(&self) -> Corpus {
        let covers: Vec<Vec<CovEdge>> = self.entries.iter().map(|e| e.cover.clone()).collect();
        let mut out = Corpus::new();
        for i in minset(&covers) {
            out.add(self.entries[i].input.clone(), self.entries[i].cover.clone());
        }
        out
    }
}

/// Harvests the input-to-state dictionary: every constant recovered by
/// brute-forcing the app's `Hash(X|salt) == Hc` guards within `budget`
/// tries per condition. Deduplicated, in condition-scan order.
pub fn harvest_dictionary(dex: &DexFile, budget: u64) -> Vec<Value> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for cond in crate::brute::find_conditions(dex) {
        if let Some(v) = crate::brute::crack(&cond, budget).recovered {
            if seen.insert(format!("{v:?}")) {
                out.push(v);
            }
        }
    }
    out
}

/// Builds the deterministic seed inputs: per entry point a favourite-value
/// invocation, plus dictionary injections substituting each recovered
/// constant into each argument slot (capped to keep the seed round small).
pub fn seed_inputs(dex: &DexFile, dictionary: &[Value]) -> Vec<FuzzInput> {
    const MAX_SEEDS: usize = 48;
    let mut out = Vec::new();
    for (entry_index, ep) in dex.entry_points.iter().enumerate() {
        let args: Vec<RtValue> = ep
            .params
            .iter()
            .enumerate()
            .map(|(pi, d)| {
                let favs = driver::param_favorites(d, &ep.event, pi);
                favs.first().cloned().unwrap_or(Value::Int(0)).into()
            })
            .collect();
        out.push(FuzzInput {
            events: vec![EventInvocation { entry_index, args }],
        });
    }
    'inject: for (entry_index, ep) in dex.entry_points.iter().enumerate() {
        for pi in 0..ep.params.len() {
            for v in dictionary {
                if out.len() >= MAX_SEEDS {
                    break 'inject;
                }
                let base = &out[entry_index].events[0].args;
                let mut args = base.clone();
                args[pi] = v.clone().into();
                out.push(FuzzInput {
                    events: vec![EventInvocation { entry_index, args }],
                });
            }
        }
    }
    out
}

fn random_event(dex: &DexFile, dictionary: &[Value], rng: &mut StdRng) -> EventInvocation {
    let entry_index = rng.gen_range(0..dex.entry_points.len());
    let ep = &dex.entry_points[entry_index];
    let args = ep
        .params
        .iter()
        .enumerate()
        .map(|(pi, d)| mutated_arg(d, &ep.event, pi, dictionary, rng))
        .collect();
    EventInvocation { entry_index, args }
}

fn mutated_arg(
    domain: &bombdroid_dex::ParamDomain,
    event: &str,
    param_index: usize,
    dictionary: &[Value],
    rng: &mut StdRng,
) -> RtValue {
    match rng.gen_range(0..3u8) {
        0 if !dictionary.is_empty() => dictionary[rng.gen_range(0..dictionary.len())]
            .clone()
            .into(),
        1 => {
            let favs = driver::param_favorites(domain, event, param_index);
            if favs.is_empty() {
                driver::uniform_arg(domain, rng)
            } else {
                favs[rng.gen_range(0..favs.len())].clone().into()
            }
        }
        _ => driver::uniform_arg(domain, rng),
    }
}

/// AFL-style havoc: applies 1–3 random mutations (argument rewrite via
/// dictionary/favourite/uniform draw, event append, drop, duplicate, or
/// swap) to a copy of `input`. Fully determined by `rng`.
pub fn havoc(
    input: &FuzzInput,
    dex: &DexFile,
    dictionary: &[Value],
    rng: &mut StdRng,
) -> FuzzInput {
    let mut events = input.events.clone();
    if dex.entry_points.is_empty() {
        return FuzzInput { events };
    }
    let rounds = rng.gen_range(1..=3);
    for _ in 0..rounds {
        if events.is_empty() {
            events.push(random_event(dex, dictionary, rng));
            continue;
        }
        match rng.gen_range(0..6u8) {
            0 | 1 => {
                // Rewrite one argument of one event.
                let ei = rng.gen_range(0..events.len());
                let ev = &mut events[ei];
                let ep = &dex.entry_points[ev.entry_index];
                if ep.params.is_empty() {
                    *ev = random_event(dex, dictionary, rng);
                } else {
                    let pi = rng.gen_range(0..ep.params.len());
                    ev.args[pi] = mutated_arg(&ep.params[pi], &ep.event, pi, dictionary, rng);
                }
            }
            2 => {
                if events.len() < MAX_EVENTS {
                    events.push(random_event(dex, dictionary, rng));
                }
            }
            3 => {
                if events.len() > 1 {
                    let ei = rng.gen_range(0..events.len());
                    events.remove(ei);
                }
            }
            4 => {
                if events.len() < MAX_EVENTS {
                    let ei = rng.gen_range(0..events.len());
                    let dup = events[ei].clone();
                    events.insert(ei, dup);
                }
            }
            _ => {
                let a = rng.gen_range(0..events.len());
                let b = rng.gen_range(0..events.len());
                events.swap(a, b);
            }
        }
    }
    FuzzInput { events }
}

/// Splice crossover: a prefix of `a` followed by a suffix of `b`, capped
/// at [`MAX_EVENTS`].
pub fn splice(a: &FuzzInput, b: &FuzzInput, rng: &mut StdRng) -> FuzzInput {
    if a.events.is_empty() {
        return b.clone();
    }
    if b.events.is_empty() {
        return a.clone();
    }
    let cut_a = rng.gen_range(1..=a.events.len());
    let cut_b = rng.gen_range(0..b.events.len());
    let mut events: Vec<EventInvocation> = a.events[..cut_a].to_vec();
    events.extend(b.events[cut_b..].iter().cloned());
    events.truncate(MAX_EVENTS);
    FuzzInput { events }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(entry_index: usize, arg: i64) -> FuzzInput {
        FuzzInput {
            events: vec![EventInvocation {
                entry_index,
                args: vec![RtValue::Int(arg)],
            }],
        }
    }

    #[test]
    fn corpus_dedups_by_key_and_merges_in_order() {
        let mut a = Corpus::new();
        assert!(a.add(input(0, 1), vec![(0, 0, 1)]));
        assert!(!a.add(input(0, 1), vec![(0, 0, 1)]));
        let mut b = Corpus::new();
        b.add(input(0, 1), vec![(0, 0, 1)]);
        b.add(input(1, 2), vec![(0, 1, 2)]);
        a.merge_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.keys()[1], input(1, 2).key());
    }

    #[test]
    fn minimized_corpus_preserves_union_coverage() {
        let mut c = Corpus::new();
        c.add(input(0, 1), vec![(0, 0, 1), (0, 1, 2)]);
        c.add(input(0, 2), vec![(0, 0, 1)]);
        c.add(input(0, 3), vec![(0, 9, 10)]);
        let min = c.minimized();
        assert!(min.len() < c.len());
        assert_eq!(min.union_coverage(), c.union_coverage());
    }
}
