//! Code-deletion attacks (paper §2.1, §3.4).
//!
//! "A trivial attack is to delete any suspicious code." The attacker nops
//! out every `DecryptExec` (keeping the now-harmless guards so control
//! flow stays intact) and ships the result. With *code weaving*, each
//! deleted blob also contained part of the original app, so the repackaged
//! app misbehaves — "deletion of such code may lead to corruption of the
//! app"; bogus bombs ensure even selective deletion hits app code.

use bombdroid_apk::{repackage, ApkFile, DeveloperKey};
use bombdroid_dex::{DexFile, Instr};
use bombdroid_runtime::{run_session, DeviceEnv, InstalledPackage, UserEventSource, Vm};
use rand::{rngs::StdRng, SeedableRng};

/// Nops out every `DecryptExec`; returns how many were deleted.
pub fn delete_bombs(dex: &mut DexFile) -> usize {
    let mut n = 0;
    for method in dex.methods_mut() {
        for instr in &mut method.body {
            if matches!(instr, Instr::DecryptExec { .. }) {
                *instr = Instr::Nop;
                n += 1;
            }
        }
    }
    n
}

/// Result of comparing user sessions on a reference app vs. the
/// bomb-deleted repackage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorruptionReport {
    /// Sessions compared.
    pub sessions: usize,
    /// Sessions whose observable behaviour (log stream) diverged.
    pub divergent_sessions: usize,
    /// Faults in the reference runs.
    pub reference_faults: u64,
    /// Faults in the deleted-app runs.
    pub deleted_faults: u64,
}

impl CorruptionReport {
    /// Whether deletion visibly corrupted the app.
    pub fn corrupted(&self) -> bool {
        self.divergent_sessions > 0 || self.deleted_faults > self.reference_faults
    }
}

/// Runs the deletion attack end-to-end: delete every bomb from
/// `protected`, repackage under the attacker's key, and drive identical
/// user sessions against the *reference* behaviour (the original,
/// unprotected app), comparing log streams.
///
/// # Panics
///
/// Panics if either APK fails to install.
pub fn deletion_attack(
    reference: &ApkFile,
    protected: &ApkFile,
    attacker: &DeveloperKey,
    sessions: usize,
    minutes_per_session: u64,
    seed: u64,
) -> CorruptionReport {
    deletion_attack_with(
        reference,
        protected,
        attacker,
        delete_bombs,
        sessions,
        minutes_per_session,
        seed,
    )
}

/// [`deletion_attack`] with a custom deletion strategy — different
/// protections call for different surgery (plaintext payloads vs SSN nodes
/// vs `DecryptExec` sites).
///
/// # Panics
///
/// Panics if either APK fails to install.
pub fn deletion_attack_with<T>(
    reference: &ApkFile,
    protected: &ApkFile,
    attacker: &DeveloperKey,
    strategy: impl FnOnce(&mut DexFile) -> T,
    sessions: usize,
    minutes_per_session: u64,
    seed: u64,
) -> CorruptionReport {
    let deleted = repackage(protected, attacker, |dex| {
        strategy(dex);
    });
    let mut report = CorruptionReport {
        sessions,
        ..CorruptionReport::default()
    };
    for s in 0..sessions {
        let session_seed = seed.wrapping_add(s as u64).wrapping_mul(0x9E37_79B9);
        let (ref_logs, ref_state, ref_faults) = drive(reference, session_seed, minutes_per_session);
        let (del_logs, del_state, del_faults) = drive(&deleted, session_seed, minutes_per_session);
        // Divergence in either the log stream or the final program state
        // counts as corruption ("instability, visualization errors,
        // incorrect computation, or crashes", §3.4).
        if ref_logs != del_logs || ref_state != del_state {
            report.divergent_sessions += 1;
        }
        report.reference_faults += ref_faults;
        report.deleted_faults += del_faults;
    }
    report
}

fn drive(apk: &ApkFile, seed: u64, minutes: u64) -> (Vec<String>, Vec<(String, String)>, u64) {
    let pkg = InstalledPackage::install(apk).expect("install");
    let mut rng = StdRng::seed_from_u64(seed);
    let env = DeviceEnv::sample(&mut rng);
    let mut vm = Vm::boot(pkg, env, seed ^ 0xD00D);
    let mut source = UserEventSource;
    let r = run_session(&mut vm, &mut source, &mut rng, minutes, 60);
    (
        vm.telemetry().logs.clone(),
        vm.statics_snapshot(),
        r.faulted,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_core::{ProtectConfig, Protector};

    fn setup() -> (ApkFile, DeveloperKey, DeveloperKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(8);
        let dev = DeveloperKey::generate(&mut rng);
        let pirate = DeveloperKey::generate(&mut rng);
        let apk = bombdroid_corpus::flagship::androfish().apk(&dev);
        (apk, dev, pirate, rng)
    }

    #[test]
    fn deletion_corrupts_woven_apps() {
        let (apk, dev, pirate, mut rng) = setup();
        let protected = Protector::new(ProtectConfig::fast_profile())
            .protect(&apk, &mut rng)
            .unwrap()
            .package(&dev);
        let report = deletion_attack(&apk, &protected, &pirate, 6, 3, 42);
        assert!(
            report.corrupted(),
            "weaving must make deletion corrupt the app: {report:?}"
        );
    }

    #[test]
    fn deletion_is_harmless_without_weaving() {
        // The ablation: weave_original = false leaves original code in
        // plaintext, so deleting bombs yields a working pirated app.
        let (apk, dev, pirate, mut rng) = setup();
        let mut config = ProtectConfig::fast_profile();
        config.weave_original = false;
        config.bogus_ratio = 0.0;
        let protected = Protector::new(config)
            .protect(&apk, &mut rng)
            .unwrap()
            .package(&dev);
        let report = deletion_attack(&apk, &protected, &pirate, 6, 3, 42);
        assert_eq!(
            report.divergent_sessions, 0,
            "without weaving, deletion must not change behaviour: {report:?}"
        );
    }
}
