//! HARVESTER-style slice execution (paper §2.1): "perform backward program
//! slicing starting from that line of code, and then execute the extracted
//! slices to uncover the payload behavior".
//!
//! The slicer itself lives in `bombdroid_analysis::slice`; this module
//! drives it as an attack: find suspicious `DecryptExec` sites, slice
//! backwards, execute the slice detached from the app's control flow, and
//! see whether the payload decrypts. Against BombDroid it never does —
//! the slice recomputes everything *except* the erased constant `c`, so
//! the derived key is wrong and authentication fails.

use bombdroid_analysis::slice::backward_slice;
use bombdroid_apk::ApkFile;
use bombdroid_dex::{Instr, MethodRef};
use bombdroid_runtime::{DeviceEnv, Fault, InstalledPackage, RtValue, Vm};

/// Outcome of slice-executing one suspicious site.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceOutcome {
    /// Method sliced.
    pub method: MethodRef,
    /// The `DecryptExec` seed pc.
    pub seed_pc: usize,
    /// Number of instructions in the extracted slice.
    pub slice_len: usize,
    /// Whether the payload was uncovered (decryption succeeded).
    pub payload_uncovered: bool,
    /// The fault that stopped slice execution, if any.
    pub fault: Option<Fault>,
}

/// Runs the slicing attack against every `DecryptExec` in the app.
///
/// `probe_inputs` are the concrete values the analyst tries for the sliced
/// method's parameters (HARVESTER enumerates a small set).
///
/// # Panics
///
/// Panics if the APK does not verify at install.
pub fn slice_attack(apk: &ApkFile, probe_inputs: &[i64], seed: u64) -> Vec<SliceOutcome> {
    let pkg = InstalledPackage::install(apk).expect("attacker installs the app");
    let dex = pkg.dex.clone();
    let mut vm = Vm::boot(pkg, DeviceEnv::attacker_lab(1).remove(0), seed);
    let mut outcomes = Vec::new();

    for method in dex.methods() {
        for (pc, instr) in method.body.iter().enumerate() {
            // Suspicious seeds: encrypted-payload launches and the bare
            // detection APIs of plaintext (naive/SSN) protections.
            let suspicious = matches!(instr, Instr::DecryptExec { .. })
                || matches!(
                    instr,
                    Instr::HostCall {
                        api: bombdroid_dex::HostApi::GetPublicKey
                            | bombdroid_dex::HostApi::Marker(_),
                        ..
                    }
                );
            if !suspicious {
                continue;
            }
            let slice = backward_slice(method, pc);
            let fragment = slice.extract(method);
            let mut uncovered = false;
            let mut last_fault = None;
            for &probe in probe_inputs {
                let mut regs = vec![RtValue::Int(probe); method.registers as usize];
                // Parameters get the probe value; everything else starts 0.
                for r in regs.iter_mut().skip(method.params as usize) {
                    *r = RtValue::Int(0);
                }
                for (i, r) in regs.iter_mut().enumerate().take(method.params as usize) {
                    *r = RtValue::Int(probe.wrapping_add(i as i64));
                }
                match vm.run_detached_fragment(&fragment, regs) {
                    Ok(_) => {
                        // Reaching past DecryptExec without fault means the
                        // blob opened: payload uncovered.
                        uncovered = true;
                        break;
                    }
                    Err(f) => last_fault = Some(f),
                }
            }
            outcomes.push(SliceOutcome {
                method: method.method_ref(),
                seed_pc: pc,
                slice_len: slice.pcs.len(),
                payload_uncovered: uncovered,
                fault: last_fault,
            });
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_apk::DeveloperKey;
    use bombdroid_core::{ProtectConfig, Protector};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn slices_cannot_uncover_encrypted_payloads() {
        let mut rng = StdRng::seed_from_u64(5);
        let dev = DeveloperKey::generate(&mut rng);
        let apk = bombdroid_corpus::flagship::angulo().apk(&dev);
        let protected = Protector::new(ProtectConfig::fast_profile())
            .protect(&apk, &mut rng)
            .unwrap()
            .package(&dev);
        let outcomes = slice_attack(&protected, &[0, 1, 42, 999], 3);
        assert!(!outcomes.is_empty(), "bombs to attack");
        let uncovered = outcomes.iter().filter(|o| o.payload_uncovered).count();
        // A few *weak* (small-domain) constants may fall to lucky probes —
        // the §5.1 brute-force caveat — but the overwhelming majority of
        // payloads must stay sealed.
        assert!(
            uncovered * 5 < outcomes.len(),
            "slicing uncovered {uncovered}/{} payloads",
            outcomes.len()
        );
        // Failed slices die specifically on decryption.
        assert!(outcomes
            .iter()
            .filter(|o| !o.payload_uncovered)
            .all(|o| o.fault == Some(Fault::DecryptFailed)));
    }
}
