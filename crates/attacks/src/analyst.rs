//! Human-analyst attack (paper §8.3.2): skilled analysts who know
//! BombDroid's design run the app for many hours, use any tools they like,
//! and *mutate environment values* between runs — the paper's four
//! analysts each spent 20 hours per app and triggered at most 9.3% of
//! bombs.
//!
//! Modelled as coverage-guided (Dynodroid-grade) input generation with
//! periodic environment mutation and app restarts: each phase samples a
//! new device profile or tweaks individual properties, because "mutating
//! environment variables values is slightly helpful", but the space of
//! environments is far too large to sweep.

use crate::fuzz::count_outer_conditions;
use bombdroid_apk::ApkFile;
use bombdroid_dex::{EnvKey, ParamDomain};
use bombdroid_runtime::{driver, DeviceEnv, InstalledPackage, RtValue, Vm};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;

/// Result of the analyst campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalystReport {
    /// Total virtual hours spent.
    pub hours: u64,
    /// Environment phases (restarts with mutated env).
    pub phases: usize,
    /// Distinct bombs triggered across all phases.
    pub bombs_triggered: usize,
    /// Outer conditions satisfied across all phases.
    pub outer_satisfied: usize,
    /// Total outer conditions in the app.
    pub total_outer: usize,
}

/// Runs `hours` of guided analysis with env mutation every
/// `phase_minutes`.
///
/// # Panics
///
/// Panics if the APK does not verify at install.
pub fn analyst_campaign(apk: &ApkFile, hours: u64, phase_minutes: u64, seed: u64) -> AnalystReport {
    let total_minutes = hours * 60;
    let phases = (total_minutes / phase_minutes.max(1)).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut markers: BTreeSet<u32> = BTreeSet::new();
    let mut outer: BTreeSet<(bombdroid_dex::MethodRef, usize)> = BTreeSet::new();
    let pkg0 = InstalledPackage::install(apk).expect("analyst installs the app");
    let total_outer = count_outer_conditions(&pkg0.dex);

    for phase in 0..phases {
        // Environment strategy: the analyst owns a handful of emulator
        // images and mutates *individual* values between runs — "mutating
        // environment variables values is slightly helpful", but with tens
        // of properties, most having large domains, they "cannot configure
        // the environments in a guided way" (§8.3.2). They cannot fabricate
        // a fresh realistic device per run the way the user population
        // supplies one.
        let mut env = DeviceEnv::attacker_lab(3).remove((phase % 3) as usize);
        if phase % 2 == 1 {
            // Targeted tweaks of a couple of values per run.
            env.set_int(EnvKey::IpOctetC, rng.gen_range(0..256));
            env.set_int(EnvKey::BatteryPct, rng.gen_range(0..101));
            env.set_int(EnvKey::SdkInt, rng.gen_range(19..32));
        }
        let pkg = InstalledPackage::install(apk).expect("reinstall");
        let mut vm = Vm::boot(pkg, env, seed ^ phase);
        let dex = vm.pkg.dex.clone();
        if dex.entry_points.is_empty() {
            break;
        }
        // Dynodroid-grade driving: least-fired entries, systematic choices.
        let mut fired = vec![0u64; dex.entry_points.len()];
        let mut choice_cursor = 0usize;
        let deadline = phase_minutes * 60_000;
        while vm.clock_ms() < deadline && !vm.is_killed() && !vm.is_frozen() {
            let min = *fired.iter().min().expect("nonempty");
            let candidates: Vec<usize> = (0..fired.len()).filter(|&i| fired[i] == min).collect();
            let entry = candidates[rng.gen_range(0..candidates.len())];
            fired[entry] += 1;
            let args: Vec<RtValue> = dex.entry_points[entry]
                .params
                .iter()
                .map(|d| match d {
                    ParamDomain::Choice(vs) => {
                        choice_cursor += 1;
                        vs[choice_cursor % vs.len()].clone().into()
                    }
                    other => driver::uniform_arg(other, &mut rng),
                })
                .collect();
            let _ = vm.fire_entry(entry, args);
            vm.advance_ms(1_000);
        }
        markers.extend(vm.telemetry().markers.iter().copied());
        outer.extend(vm.telemetry().outer_satisfied.iter().cloned());
    }

    AnalystReport {
        hours,
        phases: phases as usize,
        bombs_triggered: markers.len(),
        outer_satisfied: outer.len(),
        total_outer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_apk::DeveloperKey;
    use bombdroid_core::{ProtectConfig, Protector};

    #[test]
    fn analysts_trigger_only_a_small_fraction() {
        let mut rng = StdRng::seed_from_u64(12);
        let dev = DeveloperKey::generate(&mut rng);
        let apk = bombdroid_corpus::flagship::binaural_beat().apk(&dev);
        let protected = Protector::new(ProtectConfig::fast_profile())
            .protect(&apk, &mut rng)
            .unwrap();
        let total_bombs = protected.report.bombs_injected();
        let signed = protected.package(&dev);
        // A shortened campaign (1 h) for test speed; the bench runs 20 h.
        let report = analyst_campaign(&signed, 1, 15, 3);
        assert!(report.phases >= 4);
        let pct = 100.0 * report.bombs_triggered as f64 / total_bombs.max(1) as f64;
        assert!(
            pct <= 35.0,
            "analysts should trigger a minority of bombs, got {pct:.1}%"
        );
    }
}
