//! Edge-coverage maps for the guided fuzzer.
//!
//! The runtime's decoded dispatch loop records every taken control-flow
//! transfer as a [`CovEdge`] `(unit, from_pc, to_pc)` when
//! `VmOptions::collect_coverage` is on. A [`CoverageMap`] accumulates those
//! edges as a sorted set, which buys the three properties the campaign's
//! determinism proofs rest on:
//!
//! * **monotone** — absorbing more executions never shrinks the map;
//! * **merge is a set union** — commutative, associative, idempotent, so
//!   task-index-ordered shard merging is order-insensitive by construction;
//! * **deterministic export** — [`CoverageMap::edges`] and
//!   [`CoverageMap::fingerprint`] iterate in sorted order, so two maps with
//!   equal contents serialize identically.
//!
//! [`minset`] is the deterministic greedy corpus minimizer: it keeps the
//! classical "most new edges first" guarantee that the selected subset
//! covers exactly the union of all inputs.

use bombdroid_runtime::CovEdge;
use std::collections::BTreeSet;

/// A set of observed control-flow edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    edges: BTreeSet<CovEdge>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        CoverageMap::default()
    }

    /// A map holding exactly `edges`.
    pub fn from_edges(edges: impl IntoIterator<Item = CovEdge>) -> Self {
        CoverageMap {
            edges: edges.into_iter().collect(),
        }
    }

    /// Distinct edges covered.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether nothing is covered yet.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether `edge` is covered.
    pub fn contains(&self, edge: &CovEdge) -> bool {
        self.edges.contains(edge)
    }

    /// Folds one execution's edges in; returns how many were new. A
    /// nonzero return is the fuzzer's "interesting input" signal.
    pub fn absorb(&mut self, edges: &[CovEdge]) -> usize {
        let before = self.edges.len();
        self.edges.extend(edges.iter().copied());
        self.edges.len() - before
    }

    /// Set-union merge with another map; returns how many edges were new.
    /// Commutative and idempotent (see the property suite in
    /// `tests/property.rs`).
    pub fn merge(&mut self, other: &CoverageMap) -> usize {
        let before = self.edges.len();
        self.edges.extend(other.edges.iter().copied());
        self.edges.len() - before
    }

    /// Whether every edge of `other` is also covered here.
    pub fn is_superset(&self, other: &CoverageMap) -> bool {
        self.edges.is_superset(&other.edges)
    }

    /// All covered edges in sorted order.
    pub fn edges(&self) -> Vec<CovEdge> {
        self.edges.iter().copied().collect()
    }

    /// An order-independent FNV-1a digest of the contents — cheap to
    /// compare across thread-count runs in the determinism suite.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for (unit, from, to) in &self.edges {
            for part in [*unit, *from, *to] {
                for byte in part.to_le_bytes() {
                    h ^= u64::from(byte);
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
        }
        h
    }
}

/// Greedy deterministic minset: given one edge list per corpus input,
/// selects a subset of input indices whose union coverage equals the union
/// of all inputs. Each round keeps the input contributing the most
/// still-uncovered edges, breaking ties toward the lowest index; inputs
/// contributing nothing new are dropped. Returns the kept indices in
/// ascending order.
pub fn minset(covers: &[Vec<CovEdge>]) -> Vec<usize> {
    let sets: Vec<BTreeSet<CovEdge>> = covers.iter().map(|c| c.iter().copied().collect()).collect();
    let mut covered: BTreeSet<CovEdge> = BTreeSet::new();
    let mut kept = Vec::new();
    let mut remaining: Vec<usize> = (0..sets.len()).collect();
    loop {
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for &i in &remaining {
            let gain = sets[i].difference(&covered).count();
            // Strict `>` keeps the lowest index on ties.
            if gain > 0 && best.map(|(g, _)| gain > g).unwrap_or(true) {
                best = Some((gain, i));
            }
        }
        let Some((_, i)) = best else { break };
        covered.extend(sets[i].iter().copied());
        kept.push(i);
        remaining.retain(|&r| r != i);
    }
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_counts_new_edges_only() {
        let mut m = CoverageMap::new();
        assert_eq!(m.absorb(&[(0, 1, 2), (0, 2, 3)]), 2);
        assert_eq!(m.absorb(&[(0, 2, 3), (1, 0, 1)]), 1);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn fingerprint_tracks_contents_not_insertion_order() {
        let a = CoverageMap::from_edges([(0, 1, 2), (3, 4, 5)]);
        let b = CoverageMap::from_edges([(3, 4, 5), (0, 1, 2)]);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = CoverageMap::from_edges([(0, 1, 2)]);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn minset_covers_the_union_and_drops_redundant_inputs() {
        let covers = vec![
            vec![(0, 0, 1), (0, 1, 2)],
            vec![(0, 0, 1)], // subset of input 0 — dropped
            vec![(0, 5, 6), (0, 6, 7)],
            vec![(0, 1, 2), (0, 5, 6)], // union of others — dropped
        ];
        let kept = minset(&covers);
        assert_eq!(kept, vec![0, 2]);
        let mut union = CoverageMap::new();
        for c in &covers {
            union.absorb(c);
        }
        let mut minimized = CoverageMap::new();
        for &i in &kept {
            minimized.absorb(&covers[i]);
        }
        assert_eq!(minimized, union);
    }
}
