//! Brute-force key attacks (paper §5.1 and §8.3.1).
//!
//! Given an obfuscated condition `Hash(X|salt) == Hc`, the attacker may
//! "compute Hash(X) for all possible values of X". The cost is
//! `|dom(X)| · t`; the paper grades conditions *weak / medium / strong* by
//! whether the constant is a bool, int, or string. This module actually
//! cracks what is crackable within a try budget and cost-models the rest.

use bombdroid_apk::ApkFile;
use bombdroid_crypto::kdf;
use bombdroid_dex::{DexFile, Instr, MethodRef, RegOrConst, Value};

/// One obfuscated condition found in the bytecode.
#[derive(Debug, Clone, PartialEq)]
pub struct ObfuscatedCondition {
    /// Method holding the condition.
    pub method: MethodRef,
    /// The branch pc.
    pub pc: usize,
    /// Salt from the feeding `Hash` instruction.
    pub salt: Vec<u8>,
    /// The stored hash `Hc`.
    pub hc: Vec<u8>,
}

/// Result of attacking one condition.
#[derive(Debug, Clone, PartialEq)]
pub struct CrackResult {
    /// The condition attacked.
    pub condition: ObfuscatedCondition,
    /// The recovered constant, if cracked within budget.
    pub recovered: Option<Value>,
    /// Hash evaluations spent.
    pub tries: u64,
}

/// Scans for `Hash` → `If (== Bytes)` pairs — the outer-trigger shape.
pub fn find_conditions(dex: &DexFile) -> Vec<ObfuscatedCondition> {
    let mut found = Vec::new();
    for method in dex.methods() {
        for (pc, instr) in method.body.iter().enumerate() {
            let Instr::If {
                lhs,
                rhs: RegOrConst::Const(Value::Bytes(hc)),
                ..
            } = instr
            else {
                continue;
            };
            // Find the Hash feeding this branch (scan back a small window).
            for back in (pc.saturating_sub(4)..pc).rev() {
                if let Instr::Hash { dst, salt, .. } = &method.body[back] {
                    if dst == lhs {
                        found.push(ObfuscatedCondition {
                            method: method.method_ref(),
                            pc,
                            salt: salt.clone(),
                            hc: hc.to_vec(),
                        });
                        break;
                    }
                }
            }
        }
    }
    found
}

/// Attacks one condition with a candidate-enumeration budget.
///
/// Enumerates booleans, then integers `0, 1, -1, 2, -2, …` up to the
/// budget. Strings are effectively un-enumerable and only the empty and
/// single-char candidates are tried (the paper's *strong* grade).
pub fn crack(condition: &ObfuscatedCondition, budget: u64) -> CrackResult {
    let mut tries = 0u64;
    let check = |v: &Value, tries: &mut u64| -> bool {
        *tries += 1;
        kdf::condition_hash(&v.canonical_bytes(), &condition.salt)[..] == condition.hc[..]
    };
    // Booleans (weak: 2 tries).
    for b in [false, true] {
        let v = Value::Bool(b);
        if check(&v, &mut tries) {
            return CrackResult {
                condition: condition.clone(),
                recovered: Some(v),
                tries,
            };
        }
    }
    // Strings: trivial candidates only.
    for s in ["", "a", "ok", "yes", "true", "admin"] {
        let v = Value::str(s);
        if tries >= budget {
            break;
        }
        if check(&v, &mut tries) {
            return CrackResult {
                condition: condition.clone(),
                recovered: Some(v),
                tries,
            };
        }
    }
    // Integers, outward from zero.
    let mut k = 0i64;
    while tries < budget {
        let v = Value::Int(k);
        if check(&v, &mut tries) {
            return CrackResult {
                condition: condition.clone(),
                recovered: Some(v),
                tries,
            };
        }
        k = if k >= 0 { -(k + 1) } else { -k };
    }
    CrackResult {
        condition: condition.clone(),
        recovered: None,
        tries,
    }
}

/// Expected brute-force time for a domain of `bits` bits at `tries_per_sec`
/// (the paper's `2^n · t`).
pub fn expected_seconds(bits: u32, tries_per_sec: f64) -> f64 {
    if bits >= 1024 {
        return f64::INFINITY;
    }
    (2f64).powi(bits as i32) / tries_per_sec
}

/// Aggregate brute-force campaign over an APK.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BruteReport {
    /// Conditions found.
    pub total: usize,
    /// Conditions cracked within the budget.
    pub cracked: usize,
    /// Hash evaluations spent in total.
    pub tries: u64,
    /// Recovered constants by type name.
    pub recovered_types: Vec<&'static str>,
}

/// Runs the campaign with `budget` tries per condition.
///
/// # Panics
///
/// Panics if the APK does not verify.
pub fn brute_force_campaign(apk: &ApkFile, budget: u64) -> BruteReport {
    let conditions = find_conditions(&apk.dex);
    let mut report = BruteReport {
        total: conditions.len(),
        ..BruteReport::default()
    };
    for c in &conditions {
        let r = crack(c, budget);
        report.tries += r.tries;
        if let Some(v) = r.recovered {
            report.cracked += 1;
            report.recovered_types.push(v.type_name());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn condition_for(value: &Value) -> ObfuscatedCondition {
        let salt = vec![3, 1, 4];
        ObfuscatedCondition {
            method: MethodRef::new("T", "m"),
            pc: 1,
            hc: kdf::condition_hash(&value.canonical_bytes(), &salt).to_vec(),
            salt,
        }
    }

    #[test]
    fn weak_bool_cracks_in_two_tries() {
        let r = crack(&condition_for(&Value::Bool(true)), 1_000);
        assert_eq!(r.recovered, Some(Value::Bool(true)));
        assert!(r.tries <= 2);
    }

    #[test]
    fn small_int_cracks_within_budget() {
        let r = crack(&condition_for(&Value::Int(-37)), 10_000);
        assert_eq!(r.recovered, Some(Value::Int(-37)));
    }

    #[test]
    fn large_int_exceeds_budget() {
        let r = crack(&condition_for(&Value::Int(987_654_321)), 10_000);
        assert_eq!(r.recovered, None);
        assert_eq!(r.tries, 10_000);
    }

    #[test]
    fn strings_resist() {
        let r = crack(&condition_for(&Value::str("sid-gukevizo")), 100_000);
        assert_eq!(r.recovered, None);
    }

    #[test]
    fn salt_defeats_rainbow_style_reuse() {
        // Same constant, different salts → different Hc, so a precomputed
        // table for one bomb is useless against another (§5.1).
        let a = condition_for(&Value::Int(5));
        let mut b = condition_for(&Value::Int(5));
        b.salt = vec![9, 9, 9];
        b.hc = kdf::condition_hash(&Value::Int(5).canonical_bytes(), &b.salt).to_vec();
        assert_ne!(a.hc, b.hc);
    }

    #[test]
    fn cost_model_scales_exponentially() {
        let t = 1e6; // a million hashes per second
        assert!(expected_seconds(1, t) < 1.0);
        assert!(expected_seconds(32, t) > 1_000.0);
        assert!(expected_seconds(64, t) > 1e12);
        assert!(expected_seconds(2048, t).is_infinite());
    }
}
