//! The synthetic app generator.
//!
//! Produces F-Droid-shaped apps whose *static characteristics* track the
//! paper's Table 1 (LOC, candidate methods, existing qualified conditions,
//! environment-variable usage) and whose *dynamic behaviour* reproduces the
//! asymmetries the evaluation depends on:
//!
//! * handlers write program state to static fields with varied entropy
//!   (profiling material for artificial QCs, Fig. 3);
//! * qualified conditions come in calibrated flavours — bool params and
//!   small-choice identities that blackbox fuzzing can satisfy, plus
//!   wide-integer and string comparisons against *user-salient* values
//!   (`bombdroid_runtime::param_favorites`) that random inputs essentially
//!   never hit but real users hit constantly (observations D1/D2);
//! * a screen-state machine gates part of the logic, so input generators
//!   that waste events satisfy measurably fewer conditions per hour
//!   (Table 4's tool spread);
//! * a handful of hot methods dominate invocation counts (the top-10%
//!   exclusion of §7.1).

use crate::profiles::{profile_of, Category};
use bombdroid_apk::{package_app, ApkFile, AppMeta, DeveloperKey, StringsXml};
use bombdroid_dex::{
    BinOp, Class, CondOp, DexFile, EntryPoint, EnvKey, Field, FieldRef, HostApi, MethodBuilder,
    MethodRef, ParamDomain, Reg, RegOrConst, StrOp, Value,
};
use bombdroid_runtime::param_favorites;
use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
use std::sync::Arc;

/// Number of screens in the app's state machine.
const SCREENS: i64 = 6;

/// QC flavour mix: (bool-param, bool-flag, small-int, wide-int, string).
/// Weak ≈ 45%, medium ≈ 37%, strong ≈ 18% — matching Fig. 4a's
/// weak-dominant distribution for existing QCs — with roughly a third
/// satisfiable by uniform fuzzing (Table 4's 26–38%).
const QC_MIX: [(QcFlavour, u32); 5] = [
    (QcFlavour::BoolParam, 18),
    (QcFlavour::BoolFlag, 27),
    (QcFlavour::SmallInt, 15),
    (QcFlavour::WideInt, 22),
    (QcFlavour::StrCmd, 18),
];

#[derive(Debug, Clone, Copy, PartialEq)]
enum QcFlavour {
    BoolParam,
    BoolFlag,
    SmallInt,
    WideInt,
    StrCmd,
}

/// A generated app, ready to package.
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    /// App name.
    pub name: String,
    /// Category it was generated for.
    pub category: Category,
    /// The code.
    pub dex: DexFile,
    /// String resources.
    pub strings: StringsXml,
}

impl GeneratedApp {
    /// Packages and signs the app.
    pub fn apk(&self, key: &DeveloperKey) -> ApkFile {
        package_app(
            &self.dex,
            self.strings.clone(),
            AppMeta::named(&self.name),
            key,
        )
    }
}

/// Size/shape targets, derived from a category profile with jitter.
#[derive(Debug, Clone, Copy)]
pub struct GenTargets {
    /// Total methods (candidates ≈ 90% of these).
    pub methods: usize,
    /// Instruction-count target (the LOC analogue).
    pub loc: usize,
    /// Existing qualified conditions to emit.
    pub qcs: usize,
    /// Distinct environment variables to use.
    pub env_vars: usize,
}

impl GenTargets {
    /// Targets for a category, jittered ±15% by `rng`.
    pub fn for_category(category: Category, rng: &mut StdRng) -> Self {
        let p = profile_of(category);
        let mut j = |v: usize| -> usize {
            let f = rng.gen_range(0.85..1.15);
            ((v as f64) * f).round() as usize
        };
        GenTargets {
            methods: j((p.avg_candidate_methods as f64 / 0.9) as usize).max(8),
            loc: j(p.avg_loc),
            qcs: j(p.avg_existing_qcs).max(4),
            env_vars: j(p.avg_env_vars).clamp(1, EnvKey::ALL.len()),
        }
    }
}

/// Generates one app deterministically from `(name, category, seed)`.
pub fn generate_app(name: &str, category: Category, seed: u64) -> GeneratedApp {
    let mut rng = StdRng::seed_from_u64(seed);
    let targets = GenTargets::for_category(category, &mut rng);
    generate_with_targets(name, category, targets, &mut rng)
}

/// Generates an app with explicit targets (used by flagships and tests).
pub fn generate_with_targets(
    name: &str,
    category: Category,
    targets: GenTargets,
    rng: &mut StdRng,
) -> GeneratedApp {
    let pkg = name.to_lowercase().replace([' ', '-'], "");
    let mut g = Gen {
        pkg: pkg.clone(),
        rng,
        dex: DexFile::new(),
        qc_budget: targets.qcs,
        helper_refs: Vec::new(),
        hot_refs: Vec::new(),
        env_keys: Vec::new(),
    };

    // Environment keys this app consults.
    let mut keys: Vec<EnvKey> = EnvKey::ALL.to_vec();
    keys.shuffle(g.rng);
    g.env_keys = keys.into_iter().take(targets.env_vars).collect();

    g.state_class();
    let hot_count = (targets.methods / 20).max(1);
    let handler_count = ((targets.methods as f64) * 0.35).round().max(3.0) as usize;
    let helper_count = targets
        .methods
        .saturating_sub(hot_count + handler_count + 1)
        .max(2);

    for i in 0..hot_count {
        g.hot_method(i);
    }
    // Average instructions each helper should carry to hit the LOC target.
    let handler_loc = handler_count * 24;
    let helper_loc_each =
        (targets.loc.saturating_sub(handler_loc + hot_count * 8) / helper_count).clamp(6, 120);
    let helper_qcs = (targets.qcs as f64 * 0.3) as usize;
    for i in 0..helper_count {
        let with_qc = i < helper_qcs;
        g.helper_method(i, helper_loc_each, with_qc);
    }
    for i in 0..handler_count {
        g.handler(i);
    }

    let mut strings = StringsXml::new();
    strings.set("app_name", name);
    strings.set("greeting", format!("welcome to {name}"));
    strings.set("version_label", "v1.0");

    GeneratedApp {
        name: name.to_string(),
        category,
        dex: g.dex,
        strings,
    }
}

struct Gen<'r> {
    pkg: String,
    rng: &'r mut StdRng,
    dex: DexFile,
    qc_budget: usize,
    helper_refs: Vec<MethodRef>,
    hot_refs: Vec<MethodRef>,
    env_keys: Vec<EnvKey>,
}

impl Gen<'_> {
    fn state_class_name(&self) -> String {
        format!("{}/State", self.pkg)
    }

    fn class_for(&mut self, kind: &str, index: usize) -> String {
        // ~8 methods per class.
        let cname = format!("{}/{}{}", self.pkg, kind, index / 8);
        if self.dex.class(&cname).is_none() {
            self.dex.classes.push(Class::new(cname.as_str()));
        }
        cname
    }

    fn field(&self, name: &str) -> FieldRef {
        FieldRef::new(self.state_class_name().as_str(), name)
    }

    fn state_class(&mut self) {
        let cname = self.state_class_name();
        let mut class = Class::new(cname.as_str());
        for f in [
            "screen", "score", "counter", "ticks", "mode", "posX", "posY", "speed",
        ] {
            class.fields.push(Field::stat(f));
        }
        for f in ["flag0", "flag1", "flag2", "flag3"] {
            class.fields.push(Field::stat(f));
        }
        for f in ["label", "lastCmd"] {
            class.fields.push(Field::stat(f));
        }
        // Init method, fired at app start.
        let mut b = MethodBuilder::new(cname.as_str(), "init", 0);
        let z = b.fresh_reg();
        b.const_(z, 0i64);
        for f in [
            "screen", "score", "counter", "ticks", "mode", "posX", "posY", "speed",
        ] {
            b.put_static(FieldRef::new(cname.as_str(), f), z);
        }
        let fl = b.fresh_reg();
        b.const_(fl, false);
        for f in ["flag0", "flag1", "flag2", "flag3"] {
            b.put_static(FieldRef::new(cname.as_str(), f), fl);
        }
        let s = b.fresh_reg();
        b.const_(s, Value::str("ready"));
        b.put_static(FieldRef::new(cname.as_str(), "label"), s);
        b.put_static(FieldRef::new(cname.as_str(), "lastCmd"), s);
        b.ret_void();
        class.methods.push(b.finish());
        self.dex.classes.push(class);
        self.dex.entry_points.push(EntryPoint {
            event: Arc::from("onCreate"),
            method: MethodRef::new(cname.as_str(), "init"),
            params: vec![],
            user_weight: 0.5,
        });
    }

    fn hot_method(&mut self, i: usize) {
        let cname = self.class_for("Engine", i);
        let mname = format!("update{i}");
        let mut b = MethodBuilder::new(cname.as_str(), &mname, 0);
        // Small counted loop plus a tick increment: cheap but hot.
        let acc = b.fresh_reg();
        let idx = b.fresh_reg();
        b.const_(acc, 0i64);
        b.const_(idx, 0i64);
        let top = b.fresh_label();
        b.place_label(top);
        b.bin_const(BinOp::Add, idx, idx, 1);
        b.bin(BinOp::Add, acc, acc, idx);
        b.if_(CondOp::Ne, idx, RegOrConst::Const(Value::Int(6)), top);
        let t = b.fresh_reg();
        b.get_static(t, self.field("ticks"));
        b.bin_const(BinOp::Add, t, t, 1);
        b.put_static(self.field("ticks"), t);
        b.ret_void();
        let mref = MethodRef::new(cname.as_str(), mname.as_str());
        self.dex
            .class_mut(&cname)
            .expect("class exists")
            .methods
            .push(b.finish());
        self.hot_refs.push(mref);
    }

    fn helper_method(&mut self, i: usize, loc: usize, with_qc: bool) {
        let cname = self.class_for("Util", i);
        let mname = format!("helper{i}");
        let mut b = MethodBuilder::new(cname.as_str(), &mname, 1);
        // Arithmetic filler to hit the LOC budget.
        let a = b.fresh_reg();
        let c = b.fresh_reg();
        b.mov(a, Reg(0));
        b.const_(c, 17i64);
        let filler = loc.saturating_sub(10);
        for k in 0..filler {
            match k % 4 {
                0 => b.bin_const(BinOp::Mul, a, a, 3),
                1 => b.bin(BinOp::Xor, a, a, c),
                2 => b.bin_const(BinOp::Add, a, a, (k as i64 % 97) + 1),
                _ => b.bin_const(BinOp::Rem, a, a, 1_000_003),
            };
        }
        if with_qc && self.qc_budget > 0 {
            self.qc_budget -= 1;
            // Field-int QC: reachable counter value.
            let f = b.fresh_reg();
            b.get_static(f, self.field("counter"));
            let skip = b.fresh_label();
            let c = self.rng.gen_range(1..6);
            b.if_not(CondOp::Eq, f, RegOrConst::Const(Value::Int(c)), skip);
            let v = b.fresh_reg();
            b.const_(v, 1i64);
            b.put_static(self.field("mode"), v);
            b.place_label(skip);
        }
        b.put_static(self.field("score"), a);
        b.ret(a);
        let mref = MethodRef::new(cname.as_str(), mname.as_str());
        self.dex
            .class_mut(&cname)
            .expect("class exists")
            .methods
            .push(b.finish());
        self.helper_refs.push(mref);
    }

    fn pick_flavour(&mut self) -> QcFlavour {
        let total: u32 = QC_MIX.iter().map(|(_, w)| w).sum();
        let mut roll = self.rng.gen_range(0..total);
        for (f, w) in QC_MIX {
            if roll < w {
                return f;
            }
            roll -= w;
        }
        QcFlavour::BoolParam
    }

    /// Emits one handler: entry point + method with state writes, env
    /// queries, QCs and helper/hot calls.
    fn handler(&mut self, i: usize) {
        let event = format!("onEvent{i}");
        // Parameter plan: wide int, small choice, bool choice, text.
        let choice_k = self.rng.gen_range(4..40i64);
        let params = vec![
            ParamDomain::IntRange(0, i64::from(i32::MAX)),
            ParamDomain::Choice((0..choice_k).map(Value::Int).collect()),
            ParamDomain::Choice(vec![Value::Bool(false), Value::Bool(true)]),
            ParamDomain::Text { max_len: 12 },
        ];
        let cname = self.class_for("Ui", i);
        let mut b = MethodBuilder::new(cname.as_str(), &event, params.len() as u16);
        let wide = Reg(0);
        let choice = Reg(1);
        let boolp = Reg(2);
        let text = Reg(3);

        // Call a hot engine method.
        if let Some(hot) = self.hot_refs.get(i % self.hot_refs.len().max(1)).cloned() {
            b.invoke(hot, vec![], None);
        }

        // Env usage: a couple of keys per handler until all assigned keys
        // appear somewhere.
        if !self.env_keys.is_empty() {
            let key = self.env_keys[i % self.env_keys.len()];
            let e = b.fresh_reg();
            b.host(HostApi::EnvQuery(key), vec![], Some(e));
            b.host(HostApi::Log, vec![e], None);
        }

        // State writes with varied entropy (profiling material). The
        // position wraps over a screen-sized domain, so values *recur* the
        // way UI coordinates do — which is what makes artificial QCs on
        // this field triggerable by users later.
        let t = b.fresh_reg();
        b.get_static(t, self.field("posX"));
        b.bin(BinOp::Add, t, t, wide);
        b.bin_const(BinOp::Rem, t, t, 1_024);
        b.put_static(self.field("posX"), t);
        let u = b.fresh_reg();
        b.get_static(u, self.field("counter"));
        b.bin_const(BinOp::Add, u, u, 1);
        b.bin_const(BinOp::Rem, u, u, 7);
        b.put_static(self.field("counter"), u);
        b.put_static(self.field("lastCmd"), text);

        // Navigation: some handlers switch screens (small-int QCs via
        // TABLESWITCH or direct assignment).
        if i.is_multiple_of(3) {
            if i.is_multiple_of(6) {
                // switch on the choice param: arms set the screen.
                let arms: Vec<i64> = (0..3).collect();
                let labels: Vec<_> = arms.iter().map(|_| b.fresh_label()).collect();
                let done = b.fresh_label();
                b.switch(
                    choice,
                    arms.iter().copied().zip(labels.iter().copied()).collect(),
                    done,
                );
                for (k, l) in labels.iter().enumerate() {
                    b.place_label(*l);
                    let s = b.fresh_reg();
                    b.const_(s, k as i64);
                    b.put_static(self.field("screen"), s);
                    b.goto(done);
                }
                b.place_label(done);
            } else {
                let s = b.fresh_reg();
                b.mov(s, choice);
                b.bin_const(BinOp::Rem, s, s, SCREENS);
                b.put_static(self.field("screen"), s);
            }
        }

        // Qualified conditions.
        let qcs_here = if self.qc_budget > 0 {
            1 + (self.rng.gen_range(0..100) < 40) as usize
        } else {
            0
        };
        for q in 0..qcs_here {
            if self.qc_budget == 0 {
                break;
            }
            let flavour = self.pick_flavour();
            let gate = self.rng.gen_bool(0.5) && self.qc_budget >= 2;
            let gate_label = if gate {
                self.qc_budget -= 1;
                // Screen gate: itself a small-int field QC.
                let s = b.fresh_reg();
                b.get_static(s, self.field("screen"));
                let skip_all = b.fresh_label();
                let want = self.rng.gen_range(0..SCREENS);
                b.if_not(CondOp::Eq, s, RegOrConst::Const(Value::Int(want)), skip_all);
                Some(skip_all)
            } else {
                None
            };
            self.qc_budget -= 1;
            self.emit_qc(&mut b, flavour, &event, i, q, wide, choice, boolp, text);
            if let Some(l) = gate_label {
                b.place_label(l);
            }
        }

        // Call a helper with the wide param.
        if !self.helper_refs.is_empty() {
            let h = self.helper_refs[i % self.helper_refs.len()].clone();
            let r = b.fresh_reg();
            b.invoke(h, vec![wide], Some(r));
        }
        b.ret_void();

        let mref = MethodRef::new(cname.as_str(), event.as_str());
        self.dex
            .class_mut(&cname)
            .expect("class exists")
            .methods
            .push(b.finish());
        let weight = if i.is_multiple_of(3) { 3.0 } else { 1.0 };
        self.dex.entry_points.push(EntryPoint {
            event: Arc::from(event.as_str()),
            method: mref,
            params,
            user_weight: weight,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_qc(
        &mut self,
        b: &mut MethodBuilder,
        flavour: QcFlavour,
        event: &str,
        handler_i: usize,
        qc_i: usize,
        wide: Reg,
        choice: Reg,
        boolp: Reg,
        text: Reg,
    ) {
        let skip = b.fresh_label();
        match flavour {
            QcFlavour::BoolParam => {
                b.if_not(
                    CondOp::Eq,
                    boolp,
                    RegOrConst::Const(Value::Bool(true)),
                    skip,
                );
                let v = b.fresh_reg();
                b.const_(v, 2i64);
                b.put_static(self.field("mode"), v);
            }
            QcFlavour::BoolFlag => {
                let f = self.rng.gen_range(0..4);
                let freg = b.fresh_reg();
                b.get_static(freg, self.field(&format!("flag{f}")));
                b.if_not(CondOp::Eq, freg, RegOrConst::Const(Value::Bool(true)), skip);
                let v = b.fresh_reg();
                b.get_static(v, self.field("score"));
                b.bin_const(BinOp::Add, v, v, 10);
                b.put_static(self.field("score"), v);
            }
            QcFlavour::SmallInt => {
                // Identity check on the small-choice param; the body has a
                // user-visible effect so deleting it is observable.
                let k = self.rng.gen_range(0..4);
                b.if_not(CondOp::Eq, choice, RegOrConst::Const(Value::Int(k)), skip);
                let v = b.fresh_reg();
                b.const_(v, k + 100);
                b.put_static(self.field("mode"), v);
                b.host_log(&format!("tool {k} selected"));
            }
            QcFlavour::WideInt => {
                // Compare the wide param against a user-salient value; the
                // body raises a flag (feeding BoolFlag QCs elsewhere).
                let favs =
                    param_favorites(&ParamDomain::IntRange(0, i64::from(i32::MAX)), event, 0);
                let fav = favs[(handler_i + qc_i) % favs.len()].clone();
                b.if_not(CondOp::Eq, wide, RegOrConst::Const(fav), skip);
                let f = self.rng.gen_range(0..4);
                let v = b.fresh_reg();
                b.const_(v, true);
                b.put_static(self.field(&format!("flag{f}")), v);
                b.host_log("achievement unlocked");
            }
            QcFlavour::StrCmd => {
                let favs = param_favorites(&ParamDomain::Text { max_len: 12 }, event, 3);
                let fav = favs[(handler_i + qc_i) % favs.len()].clone();
                let lit = b.fresh_reg();
                b.const_(lit, fav);
                let flag = b.fresh_reg();
                let op = match qc_i % 3 {
                    0 => StrOp::Equals,
                    1 => StrOp::StartsWith,
                    _ => StrOp::EndsWith,
                };
                b.str_op(op, flag, text, Some(lit));
                b.if_not(CondOp::Eq, flag, RegOrConst::Const(Value::Bool(true)), skip);
                b.put_static(self.field("label"), text);
                b.host_log("command accepted");
            }
        }
        b.place_label(skip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_analysis::qc;
    use bombdroid_dex::validate;

    #[test]
    fn generated_app_is_structurally_valid() {
        let app = generate_app("TestGame", Category::Game, 42);
        validate(&app.dex).expect("generated dex must validate");
        assert!(!app.dex.entry_points.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_app("Same", Category::Writing, 7);
        let b = generate_app("Same", Category::Writing, 7);
        assert_eq!(a.dex, b.dex);
    }

    #[test]
    fn stats_track_category_targets() {
        let app = generate_app("StatsCheck", Category::Game, 3);
        let p = profile_of(Category::Game);
        let loc = app.dex.instruction_count();
        assert!(
            (loc as f64) > 0.5 * p.avg_loc as f64 && (loc as f64) < 2.0 * p.avg_loc as f64,
            "loc {loc} vs target {}",
            p.avg_loc
        );
        let qcs = qc::scan_dex(&app.dex).len();
        assert!(
            (qcs as f64) > 0.5 * p.avg_existing_qcs as f64,
            "qcs {qcs} vs target {}",
            p.avg_existing_qcs
        );
        let methods = app.dex.methods().count();
        assert!(
            (methods as f64) > 0.6 * (p.avg_candidate_methods as f64 / 0.9),
            "methods {methods}"
        );
    }

    #[test]
    fn qc_mix_has_all_strengths() {
        let app = generate_app("MixCheck", Category::Security, 11);
        let sites = qc::scan_dex(&app.dex);
        let weak = sites
            .iter()
            .filter(|s| s.strength() == bombdroid_analysis::Strength::Weak)
            .count();
        let strong = sites
            .iter()
            .filter(|s| s.strength() == bombdroid_analysis::Strength::Strong)
            .count();
        assert!(weak > 0, "weak QCs present");
        assert!(strong > 0, "strong QCs present");
        // Weak should dominate (Fig. 4a shape).
        assert!(weak * 2 > strong, "weak {weak} vs strong {strong}");
    }

    #[test]
    fn apps_run_without_faulting_much() -> Result<(), crate::CorpusError> {
        use bombdroid_runtime::{run_session, DeviceEnv, InstalledPackage, UserEventSource, Vm};
        let app = generate_app("RunCheck", Category::Game, 13);
        let mut rng = StdRng::seed_from_u64(1);
        let dev = DeveloperKey::generate(&mut rng);
        let pkg = InstalledPackage::install(&app.apk(&dev))?;
        let mut vm = Vm::boot(pkg, DeviceEnv::sample(&mut rng), 5);
        let mut source = UserEventSource;
        let report = run_session(&mut vm, &mut source, &mut rng, 5, 60);
        assert!(report.events > 100);
        assert!(
            report.completed as f64 >= report.events as f64 * 0.95,
            "most events complete: {report:?}"
        );
        // Users exercising the app satisfy some equality conditions.
        assert!(!vm.telemetry().eq_satisfied.is_empty());
        Ok(())
    }
}
