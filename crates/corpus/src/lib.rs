//! Synthetic F-Droid-like app corpus.
//!
//! The paper evaluates BombDroid on 963 apps downloaded from F-Droid,
//! grouped into eight categories (Table 1), and demonstrates detailed
//! results on eight flagship apps, one per category (Tables 2–5,
//! Figs. 3–5). Real F-Droid APKs are unavailable to this reproduction, so
//! this crate generates a *calibrated* corpus:
//!
//! * [`profiles`] — the Table 1 category statistics, verbatim;
//! * [`gen`] — a seeded generator producing apps whose LOC, method count,
//!   qualified-condition census and environment-variable usage track their
//!   category, and whose runtime behaviour reproduces the user/fuzzer
//!   asymmetries the paper's measurements rest on;
//! * [`flagship`] — AndroFish, Angulo, SWJournal, Calendar, BRouter,
//!   Binaural Beat, Hash Droid, CatLog (AndroFish with the Fig. 3 fish
//!   state model);
//! * [`stats`] — Table 1-style measurements over generated apps.
//!
//! # Example
//!
//! ```
//! use bombdroid_corpus::{flagship, stats};
//!
//! let app = flagship::androfish();
//! let s = stats::app_stats(&app);
//! assert!(s.existing_qcs > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flagship;
pub mod gen;
pub mod profiles;
pub mod stats;

pub use gen::{generate_app, generate_with_targets, GenTargets, GeneratedApp};
pub use profiles::{
    corpus_size, profile_of, Category, CategoryProfile, UserArchetype, UserProfile, ARCHETYPES,
    CATEGORY_PROFILES, CATEGORY_WEIGHTS,
};
pub use stats::{app_stats, env_var_count, AppStats};

/// Why exercising a generated app on the runtime failed: either the
/// packaged APK did not verify at install time, or an event handler
/// faulted mid-run. Corpus checks propagate this instead of unwrapping so
/// a generator regression reports *which* stage rejected the app.
#[derive(Debug)]
pub enum CorpusError {
    /// The generated APK failed signature verification at install.
    Install(bombdroid_apk::VerifyError),
    /// An event handler faulted while driving the generated app.
    Fault(bombdroid_runtime::Fault),
}

impl From<bombdroid_apk::VerifyError> for CorpusError {
    fn from(e: bombdroid_apk::VerifyError) -> Self {
        CorpusError::Install(e)
    }
}

impl From<bombdroid_runtime::Fault> for CorpusError {
    fn from(e: bombdroid_runtime::Fault) -> Self {
        CorpusError::Fault(e)
    }
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Install(e) => write!(f, "generated app failed install: {e}"),
            CorpusError::Fault(e) => write!(f, "generated app faulted: {e:?}"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// Specs for the full 963-app corpus: `(name, category, seed)` triples,
/// deterministic across runs.
pub fn corpus_specs() -> Vec<(String, Category, u64)> {
    let mut specs = Vec::with_capacity(corpus_size());
    for p in &CATEGORY_PROFILES {
        for i in 0..p.apps {
            let name = format!("{}{:03}", p.category.label().replace(['&', '.'], ""), i);
            let seed = 0xC0_5105u64
                .wrapping_mul(31)
                .wrapping_add(p.category as u64)
                .wrapping_mul(1_000_003)
                .wrapping_add(i as u64);
            specs.push((name, p.category, seed));
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_specs_cover_all_apps() {
        let specs = corpus_specs();
        assert_eq!(specs.len(), 963);
        // Unique names and seeds.
        let names: std::collections::HashSet<_> = specs.iter().map(|(n, _, _)| n).collect();
        assert_eq!(names.len(), 963);
        let seeds: std::collections::HashSet<_> = specs.iter().map(|(_, _, s)| s).collect();
        assert_eq!(seeds.len(), 963);
    }
}
