//! The eight flagship apps of Tables 2–5, one per category (the paper
//! randomly selected one app from each of the eight categories and used
//! them "to demonstrate all the evaluation results in the rest of the
//! section", §8.1).
//!
//! AndroFish gets a faithful behaviour model: its main loop moves fish
//! around and players tap them for points; six state variables (`dir`,
//! `width`, `height`, `speed`, `posX`, `posY`) evolve with sharply
//! different entropies, reproducing the Fig. 3 visualization.

use crate::gen::{generate_with_targets, GenTargets, GeneratedApp};
use crate::profiles::Category;
use bombdroid_dex::{
    BinOp, Class, CondOp, EntryPoint, Field, FieldRef, MethodBuilder, MethodRef, ParamDomain, Reg,
    RegOrConst, Value,
};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

/// The six profiled AndroFish variables of Fig. 3, in paper order.
pub const ANDROFISH_VARS: [&str; 6] = ["dir", "width", "height", "speed", "posX", "posY"];

/// Names of the eight flagship apps, Table 2 order.
pub const FLAGSHIP_NAMES: [&str; 8] = [
    "AndroFish",
    "Angulo",
    "SWJournal",
    "Calendar",
    "BRouter",
    "Binaural Beat",
    "Hash Droid",
    "CatLog",
];

/// Builds all eight flagship apps.
pub fn all() -> Vec<GeneratedApp> {
    vec![
        androfish(),
        angulo(),
        swjournal(),
        calendar(),
        brouter(),
        binaural_beat(),
        hash_droid(),
        catlog(),
    ]
}

fn sized(name: &str, category: Category, seed: u64, scale: f64) -> GeneratedApp {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = GenTargets::for_category(category, &mut rng);
    t.methods = ((t.methods as f64) * scale) as usize;
    t.loc = ((t.loc as f64) * scale) as usize;
    t.qcs = ((t.qcs as f64) * scale) as usize;
    generate_with_targets(name, category, t, &mut rng)
}

/// AndroFish (Game): generated base app plus the fish simulation class of
/// Fig. 3.
pub fn androfish() -> GeneratedApp {
    let mut app = sized("AndroFish", Category::Game, 0xA17D_0F15, 1.0);
    let cname = "androfish/Fish";
    let mut class = Class::new(cname);
    for f in ANDROFISH_VARS {
        class.fields.push(Field::stat(f));
    }
    let fish = |f: &str| FieldRef::new(cname, f);

    // onFrame(): the game loop tick driving the currently visible fish.
    // dir bounces between 0 and 1 (2 uniques); width/height cycle over
    // narrow ranges; speed/posX/posY wander over wide ranges.
    let mut b = MethodBuilder::new(cname, "onFrame", 0);
    let s = b.fresh_reg();
    b.get_static(s, fish("speed"));
    b.bin_const(BinOp::Mul, s, s, 29);
    b.bin_const(BinOp::Add, s, s, 17);
    b.bin_const(BinOp::Rem, s, s, 193);
    b.put_static(fish("speed"), s);

    let x = b.fresh_reg();
    b.get_static(x, fish("posX"));
    let t = b.fresh_reg();
    b.mov(t, s);
    b.bin_const(BinOp::Mul, t, t, 501);
    b.bin(BinOp::Add, x, x, t);
    b.bin_const(BinOp::Rem, x, x, 100_000);
    b.put_static(fish("posX"), x);

    let y = b.fresh_reg();
    b.get_static(y, fish("posY"));
    b.mov(t, s);
    b.bin_const(BinOp::Mul, t, t, 803);
    b.bin(BinOp::Add, y, y, t);
    b.bin_const(BinOp::Rem, y, y, 160_000);
    b.put_static(fish("posY"), y);

    // dir = (posX / 50000) % 2  — flips occasionally between 0 and 1.
    let d = b.fresh_reg();
    b.mov(d, x);
    b.bin_const(BinOp::Div, d, d, 50_000);
    b.bin_const(BinOp::Rem, d, d, 2);
    b.put_static(fish("dir"), d);

    // width = 10 + (posX / 2000) % 18 ; height = 10 + (posY / 4000) % 14
    let w = b.fresh_reg();
    b.mov(w, x);
    b.bin_const(BinOp::Div, w, w, 2_000);
    b.bin_const(BinOp::Rem, w, w, 18);
    b.bin_const(BinOp::Add, w, w, 10);
    b.put_static(fish("width"), w);
    let h = b.fresh_reg();
    b.mov(h, y);
    b.bin_const(BinOp::Div, h, h, 4_000);
    b.bin_const(BinOp::Rem, h, h, 14);
    b.bin_const(BinOp::Add, h, h, 10);
    b.put_static(fish("height"), h);
    b.ret_void();
    class.methods.push(b.finish());

    // onFishTapped(tapX): score when the tap lands near the fish — an
    // existing wide-int qualified condition in the real app's spirit.
    let mut b = MethodBuilder::new(cname, "onFishTapped", 1);
    let px = b.fresh_reg();
    b.get_static(px, fish("posX"));
    let skip = b.fresh_label();
    // Register-register compare: not a QC (no constant); the bonus check
    // below is the QC.
    b.if_(CondOp::Ne, Reg(0), RegOrConst::Reg(px), skip);
    let sc = b.fresh_reg();
    b.get_static(sc, FieldRef::new(cname, "speed"));
    b.bin_const(BinOp::Add, sc, sc, 5);
    b.put_static(FieldRef::new(cname, "speed"), sc);
    b.place_label(skip);
    // Golden-fish bonus: exact dir+width combination.
    let wreg = b.fresh_reg();
    b.get_static(wreg, fish("width"));
    let skip2 = b.fresh_label();
    b.if_not(CondOp::Eq, wreg, RegOrConst::Const(Value::Int(27)), skip2);
    b.host_log("golden fish!");
    b.place_label(skip2);
    b.ret_void();
    class.methods.push(b.finish());

    app.dex.classes.push(class);
    app.dex.entry_points.push(EntryPoint {
        event: Arc::from("onFrame"),
        method: MethodRef::new(cname, "onFrame"),
        params: vec![],
        user_weight: 6.0, // the game loop dominates user sessions
    });
    app.dex.entry_points.push(EntryPoint {
        event: Arc::from("onFishTapped"),
        method: MethodRef::new(cname, "onFishTapped"),
        params: vec![ParamDomain::IntRange(0, 100_000)],
        user_weight: 4.0,
    });
    app
}

/// Angulo (Science & Education).
pub fn angulo() -> GeneratedApp {
    sized("Angulo", Category::ScienceEdu, 0xA2610, 0.8)
}

/// SWJournal (Sport & Health).
pub fn swjournal() -> GeneratedApp {
    sized("SWJournal", Category::SportHealth, 0x53A1, 0.9)
}

/// Calendar (Writing).
pub fn calendar() -> GeneratedApp {
    sized("Calendar", Category::Writing, 0xCA1E, 1.2)
}

/// BRouter (Navigation) — the biggest flagship (263 bombs in Table 2).
pub fn brouter() -> GeneratedApp {
    sized("BRouter", Category::Navigation, 0xB207, 2.2)
}

/// Binaural Beat (Multimedia).
pub fn binaural_beat() -> GeneratedApp {
    sized("Binaural Beat", Category::Multimedia, 0xB1BE, 0.8)
}

/// Hash Droid (Security).
pub fn hash_droid() -> GeneratedApp {
    sized("Hash Droid", Category::Security, 0x4A54, 0.55)
}

/// CatLog (Development).
pub fn catlog() -> GeneratedApp {
    sized("CatLog", Category::Development, 0xCA71, 0.45)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::validate;

    #[test]
    fn all_flagships_validate() {
        for app in all() {
            validate(&app.dex)
                .unwrap_or_else(|e| panic!("{} invalid: {:?}", app.name, &e[..e.len().min(3)]));
        }
    }

    #[test]
    fn androfish_has_fish_state() {
        let app = androfish();
        let fish = app.dex.class("androfish/Fish").expect("Fish class");
        for f in ANDROFISH_VARS {
            assert!(
                fish.fields.iter().any(|x| &*x.name == f),
                "missing field {f}"
            );
        }
        assert!(app.dex.entry_points.iter().any(|e| &*e.event == "onFrame"));
    }

    #[test]
    fn fish_variables_have_expected_entropy_split() -> Result<(), crate::CorpusError> {
        use bombdroid_apk::DeveloperKey;
        use bombdroid_runtime::{DeviceEnv, InstalledPackage, Vm, VmOptions};
        use rand::Rng;

        let app = androfish();
        let mut rng = StdRng::seed_from_u64(3);
        let dev = DeveloperKey::generate(&mut rng);
        let pkg = InstalledPackage::install(&app.apk(&dev))?;
        let opts = VmOptions {
            record_field_values: true,
            ..VmOptions::default()
        };
        let mut vm = Vm::new(pkg, DeviceEnv::sample(&mut rng), 1, opts);
        let frame = app
            .dex
            .entry_points
            .iter()
            .position(|e| &*e.event == "onFrame")
            .expect("androfish exposes onFrame");
        let tap = app
            .dex
            .entry_points
            .iter()
            .position(|e| &*e.event == "onFishTapped")
            .expect("androfish exposes onFishTapped");
        for _ in 0..500 {
            vm.fire_entry(frame, vec![]).result?;
            if rng.gen_bool(0.3) {
                vm.fire_entry(
                    tap,
                    vec![bombdroid_runtime::RtValue::Int(rng.gen_range(0..100_000))],
                )
                .result?;
            }
        }
        let fv = &vm.telemetry().field_values;
        let uniques = |name: &str| -> usize {
            let samples = &fv[&format!("androfish/Fish.{name}")];
            let set: std::collections::HashSet<_> =
                samples.iter().map(|(_, v)| v.clone()).collect();
            set.len()
        };
        assert!(uniques("dir") <= 3, "dir is low-entropy");
        assert!(uniques("width") <= 20, "width narrow");
        assert!(uniques("posX") > 50, "posX wanders widely");
        assert!(uniques("posY") > 50, "posY wanders widely");
        Ok(())
    }
}
