//! Static characteristics of generated apps (Table 1 columns).

use crate::gen::GeneratedApp;
use bombdroid_analysis::qc;
use bombdroid_dex::{DexFile, HostApi, Instr};
use std::collections::BTreeSet;

/// Table 1 measurements for one app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppStats {
    /// App name.
    pub name: String,
    /// Instruction count (LOC analogue).
    pub loc: usize,
    /// Total methods.
    pub methods: usize,
    /// Existing qualified conditions.
    pub existing_qcs: usize,
    /// Distinct environment variables queried.
    pub env_vars: usize,
    /// Entry points (events).
    pub entry_points: usize,
}

/// Distinct environment variables used by a DEX file.
pub fn env_var_count(dex: &DexFile) -> usize {
    let mut keys = BTreeSet::new();
    for m in dex.methods() {
        for i in &m.body {
            if let Instr::HostCall {
                api: HostApi::EnvQuery(k),
                ..
            } = i
            {
                keys.insert(*k);
            }
        }
    }
    keys.len()
}

/// Computes Table 1 statistics for one app.
pub fn app_stats(app: &GeneratedApp) -> AppStats {
    AppStats {
        name: app.name.clone(),
        loc: app.dex.instruction_count(),
        methods: app.dex.methods().count(),
        existing_qcs: qc::scan_dex(&app.dex).len(),
        env_vars: env_var_count(&app.dex),
        entry_points: app.dex.entry_points.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_app;
    use crate::profiles::Category;

    #[test]
    fn stats_are_nonzero_for_generated_apps() {
        let app = generate_app("StatsApp", Category::Multimedia, 21);
        let s = app_stats(&app);
        assert!(s.loc > 1_000);
        assert!(s.methods > 20);
        assert!(s.existing_qcs > 10);
        assert!(s.env_vars >= 1);
        assert!(s.entry_points > 3);
    }
}
