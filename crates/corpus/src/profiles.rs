//! Category profiles calibrated to the paper's Table 1 (963 F-Droid apps
//! in eight categories).

use std::fmt;

/// The eight app categories of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Category {
    Game,
    ScienceEdu,
    SportHealth,
    Writing,
    Navigation,
    Multimedia,
    Security,
    Development,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Category {
    /// Table 1 row label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Game => "Game",
            Category::ScienceEdu => "Science&Edu.",
            Category::SportHealth => "Sport&Health",
            Category::Writing => "Writing",
            Category::Navigation => "Navigation",
            Category::Multimedia => "Multimedia",
            Category::Security => "Security",
            Category::Development => "Development",
        }
    }

    /// All categories in Table 1 order.
    pub const ALL: [Category; 8] = [
        Category::Game,
        Category::ScienceEdu,
        Category::SportHealth,
        Category::Writing,
        Category::Navigation,
        Category::Multimedia,
        Category::Security,
        Category::Development,
    ];
}

/// Target statistics for one category (the paper's Table 1 values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryProfile {
    /// Category.
    pub category: Category,
    /// Number of apps in the corpus.
    pub apps: usize,
    /// Average lines of (Java) code — our instruction-count analogue.
    pub avg_loc: usize,
    /// Average candidate (non-hot) methods.
    pub avg_candidate_methods: usize,
    /// Average existing qualified conditions.
    pub avg_existing_qcs: usize,
    /// Average distinct environment variables used.
    pub avg_env_vars: usize,
}

/// Table 1, verbatim.
pub const CATEGORY_PROFILES: [CategoryProfile; 8] = [
    CategoryProfile {
        category: Category::Game,
        apps: 105,
        avg_loc: 3_043,
        avg_candidate_methods: 95,
        avg_existing_qcs: 56,
        avg_env_vars: 16,
    },
    CategoryProfile {
        category: Category::ScienceEdu,
        apps: 98,
        avg_loc: 4_046,
        avg_candidate_methods: 86,
        avg_existing_qcs: 44,
        avg_env_vars: 8,
    },
    CategoryProfile {
        category: Category::SportHealth,
        apps: 87,
        avg_loc: 5_467,
        avg_candidate_methods: 113,
        avg_existing_qcs: 40,
        avg_env_vars: 11,
    },
    CategoryProfile {
        category: Category::Writing,
        apps: 149,
        avg_loc: 7_099,
        avg_candidate_methods: 149,
        avg_existing_qcs: 67,
        avg_env_vars: 6,
    },
    CategoryProfile {
        category: Category::Navigation,
        apps: 121,
        avg_loc: 9_374,
        avg_candidate_methods: 185,
        avg_existing_qcs: 52,
        avg_env_vars: 9,
    },
    CategoryProfile {
        category: Category::Multimedia,
        apps: 108,
        avg_loc: 10_032,
        avg_candidate_methods: 203,
        avg_existing_qcs: 72,
        avg_env_vars: 17,
    },
    CategoryProfile {
        category: Category::Security,
        apps: 152,
        avg_loc: 11_073,
        avg_candidate_methods: 242,
        avg_existing_qcs: 86,
        avg_env_vars: 12,
    },
    CategoryProfile {
        category: Category::Development,
        apps: 143,
        avg_loc: 14_376,
        avg_candidate_methods: 373,
        avg_existing_qcs: 93,
        avg_env_vars: 11,
    },
];

/// Total corpus size (963 in the paper).
pub fn corpus_size() -> usize {
    CATEGORY_PROFILES.iter().map(|p| p.apps).sum()
}

/// Profile for a category.
pub fn profile_of(category: Category) -> &'static CategoryProfile {
    CATEGORY_PROFILES
        .iter()
        .find(|p| p.category == category)
        .expect("all categories present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_totals_963() {
        assert_eq!(corpus_size(), 963);
    }

    #[test]
    fn every_category_has_a_profile() {
        for c in Category::ALL {
            assert_eq!(profile_of(c).category, c);
        }
    }
}
