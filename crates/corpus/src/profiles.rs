//! Category profiles calibrated to the paper's Table 1 (963 F-Droid apps
//! in eight categories), and the shared population-sampling layer: user
//! archetypes and per-user engagement profiles drawn on top of the
//! compact [`DeviceProfile`] from the runtime.

use bombdroid_runtime::{DeviceProfile, WeightedTable};
use rand::Rng;
use std::fmt;

/// The eight app categories of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Category {
    Game,
    ScienceEdu,
    SportHealth,
    Writing,
    Navigation,
    Multimedia,
    Security,
    Development,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Category {
    /// Table 1 row label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Game => "Game",
            Category::ScienceEdu => "Science&Edu.",
            Category::SportHealth => "Sport&Health",
            Category::Writing => "Writing",
            Category::Navigation => "Navigation",
            Category::Multimedia => "Multimedia",
            Category::Security => "Security",
            Category::Development => "Development",
        }
    }

    /// All categories in Table 1 order.
    pub const ALL: [Category; 8] = [
        Category::Game,
        Category::ScienceEdu,
        Category::SportHealth,
        Category::Writing,
        Category::Navigation,
        Category::Multimedia,
        Category::Security,
        Category::Development,
    ];
}

/// Target statistics for one category (the paper's Table 1 values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryProfile {
    /// Category.
    pub category: Category,
    /// Number of apps in the corpus.
    pub apps: usize,
    /// Average lines of (Java) code — our instruction-count analogue.
    pub avg_loc: usize,
    /// Average candidate (non-hot) methods.
    pub avg_candidate_methods: usize,
    /// Average existing qualified conditions.
    pub avg_existing_qcs: usize,
    /// Average distinct environment variables used.
    pub avg_env_vars: usize,
}

/// Table 1, verbatim.
pub const CATEGORY_PROFILES: [CategoryProfile; 8] = [
    CategoryProfile {
        category: Category::Game,
        apps: 105,
        avg_loc: 3_043,
        avg_candidate_methods: 95,
        avg_existing_qcs: 56,
        avg_env_vars: 16,
    },
    CategoryProfile {
        category: Category::ScienceEdu,
        apps: 98,
        avg_loc: 4_046,
        avg_candidate_methods: 86,
        avg_existing_qcs: 44,
        avg_env_vars: 8,
    },
    CategoryProfile {
        category: Category::SportHealth,
        apps: 87,
        avg_loc: 5_467,
        avg_candidate_methods: 113,
        avg_existing_qcs: 40,
        avg_env_vars: 11,
    },
    CategoryProfile {
        category: Category::Writing,
        apps: 149,
        avg_loc: 7_099,
        avg_candidate_methods: 149,
        avg_existing_qcs: 67,
        avg_env_vars: 6,
    },
    CategoryProfile {
        category: Category::Navigation,
        apps: 121,
        avg_loc: 9_374,
        avg_candidate_methods: 185,
        avg_existing_qcs: 52,
        avg_env_vars: 9,
    },
    CategoryProfile {
        category: Category::Multimedia,
        apps: 108,
        avg_loc: 10_032,
        avg_candidate_methods: 203,
        avg_existing_qcs: 72,
        avg_env_vars: 17,
    },
    CategoryProfile {
        category: Category::Security,
        apps: 152,
        avg_loc: 11_073,
        avg_candidate_methods: 242,
        avg_existing_qcs: 86,
        avg_env_vars: 12,
    },
    CategoryProfile {
        category: Category::Development,
        apps: 143,
        avg_loc: 14_376,
        avg_candidate_methods: 373,
        avg_existing_qcs: 93,
        avg_env_vars: 11,
    },
];

/// Total corpus size (963 in the paper).
pub fn corpus_size() -> usize {
    CATEGORY_PROFILES.iter().map(|p| p.apps).sum()
}

/// Profile for a category.
pub fn profile_of(category: Category) -> &'static CategoryProfile {
    CATEGORY_PROFILES
        .iter()
        .find(|p| p.category == category)
        .expect("all categories present")
}

/// How intensely a user exercises an app. Shapes session length and event
/// density; the split keeps population-scale runs realistic (a long tail of
/// light users, a small head of heavy ones) without ballooning event
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UserArchetype {
    /// Opens the app rarely and briefly.
    Casual,
    /// Typical daily-driver usage.
    Regular,
    /// Long sessions, dense interaction.
    Power,
}

impl fmt::Display for UserArchetype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UserArchetype::Casual => "casual",
            UserArchetype::Regular => "regular",
            UserArchetype::Power => "power",
        })
    }
}

/// Archetype mix in the simulated user base.
pub const ARCHETYPES: WeightedTable<UserArchetype> = WeightedTable::new(&[
    (UserArchetype::Casual, 55),
    (UserArchetype::Regular, 35),
    (UserArchetype::Power, 10),
]);

/// Category popularity for sampled users, weighted by the Table 1 app
/// counts: categories with more apps attract proportionally more users.
pub const CATEGORY_WEIGHTS: WeightedTable<Category> = WeightedTable::new(&[
    (Category::Game, 105),
    (Category::ScienceEdu, 98),
    (Category::SportHealth, 87),
    (Category::Writing, 149),
    (Category::Navigation, 121),
    (Category::Multimedia, 108),
    (Category::Security, 152),
    (Category::Development, 143),
]);

impl UserArchetype {
    /// Session-length band (minutes, half-open).
    fn minutes_range(self) -> (u16, u16) {
        match self {
            UserArchetype::Casual => (1, 5),
            UserArchetype::Regular => (3, 10),
            UserArchetype::Power => (8, 20),
        }
    }

    /// Event-density band (events per minute, half-open).
    fn epm_range(self) -> (u16, u16) {
        match self {
            UserArchetype::Casual => (2, 5),
            UserArchetype::Regular => (3, 8),
            UserArchetype::Power => (6, 12),
        }
    }
}

/// One simulated market user: a compact device plus engagement shape.
/// Like [`DeviceProfile`], this is a fixed-size value — a population of a
/// million users is re-derivable from seeds and need never be resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserProfile {
    /// The user's device.
    pub device: DeviceProfile,
    /// Engagement archetype.
    pub archetype: UserArchetype,
    /// App category this user favours.
    pub category: Category,
    /// Minutes per session for this user.
    pub session_minutes: u16,
    /// Events injected per simulated minute.
    pub events_per_minute: u16,
}

impl UserProfile {
    /// Samples a user: device first (preserving the device RNG stream),
    /// then archetype, category, and engagement within archetype bands.
    pub fn sample(rng: &mut impl Rng) -> Self {
        let device = DeviceProfile::sample(rng);
        let archetype = ARCHETYPES.pick(rng);
        let category = CATEGORY_WEIGHTS.pick(rng);
        let (mlo, mhi) = archetype.minutes_range();
        let session_minutes = rng.gen_range(u32::from(mlo)..u32::from(mhi)) as u16;
        let (elo, ehi) = archetype.epm_range();
        let events_per_minute = rng.gen_range(u32::from(elo)..u32::from(ehi)) as u16;
        UserProfile {
            device,
            archetype,
            category,
            session_minutes,
            events_per_minute,
        }
    }

    /// Total events this user's session injects.
    pub fn events_per_session(&self) -> u32 {
        u32::from(self.session_minutes) * u32::from(self.events_per_minute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn corpus_totals_963() {
        assert_eq!(corpus_size(), 963);
    }

    #[test]
    fn every_category_has_a_profile() {
        for c in Category::ALL {
            assert_eq!(profile_of(c).category, c);
        }
    }

    #[test]
    fn category_weights_mirror_table1_app_counts() {
        for &(category, weight) in CATEGORY_WEIGHTS.entries() {
            assert_eq!(weight as usize, profile_of(category).apps);
        }
        assert_eq!(CATEGORY_WEIGHTS.total_weight() as usize, corpus_size());
    }

    #[test]
    fn user_sampling_is_deterministic_and_bounded() {
        let a = UserProfile::sample(&mut StdRng::seed_from_u64(11));
        let b = UserProfile::sample(&mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);

        let mut rng = StdRng::seed_from_u64(3);
        let mut archetypes = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let u = UserProfile::sample(&mut rng);
            let (mlo, mhi) = u.archetype.minutes_range();
            assert!((mlo..mhi).contains(&u.session_minutes));
            let (elo, ehi) = u.archetype.epm_range();
            assert!((elo..ehi).contains(&u.events_per_minute));
            assert!(u.events_per_session() <= 20 * 12);
            archetypes.insert(u.archetype);
        }
        assert_eq!(archetypes.len(), 3, "all archetypes appear in 500 draws");
    }

    #[test]
    fn archetype_mix_matches_weights() {
        let mut rng = StdRng::seed_from_u64(21);
        let casual = (0..4000)
            .filter(|_| UserProfile::sample(&mut rng).archetype == UserArchetype::Casual)
            .count() as f64
            / 4000.0;
        assert!((casual - 0.55).abs() < 0.04, "casual share {casual}");
    }
}
