//! Deterministic binary encoding — the `classes.dex` byte format.
//!
//! Used for:
//! * packaging into APK entries (and therefore MANIFEST.MF digests),
//! * the paper's *code size increase* measurement (§8.4),
//! * sealing decrypted-fragment plaintext inside [`EncryptedBlob`]s,
//! * per-class code digests for the code-snippet-scanning detection method.
//!
//! The encoding is deliberately simple (LE fixed-width lengths, one tag byte
//! per construct) but complete and round-trip tested, including a fuzz-style
//! property test.
//!
//! [`EncryptedBlob`]: crate::dex_file::EncryptedBlob

use crate::class::{Class, Field, FieldKind, Method};
use crate::dex_file::{BlobId, DexFile, EncryptedBlob, EntryPoint, ParamDomain};
use crate::instr::{
    BinOp, CondOp, EnvKey, HostApi, Instr, Reg, RegOrConst, SensorKind, StrOp, UiKind, UnOp,
};
use crate::value::{ClassName, FieldRef, MethodRef, Value};
use bombdroid_crypto::{sha256, Digest256};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"BDEX0001";

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before a complete construct was read.
    UnexpectedEof {
        /// Byte offset at which more data was needed.
        at: usize,
    },
    /// A tag byte did not correspond to any known construct.
    BadTag {
        /// Offending tag value.
        tag: u8,
        /// What was being decoded.
        context: &'static str,
    },
    /// The file did not start with the `BDEX0001` magic.
    BadMagic,
    /// A string was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { at } => write!(f, "unexpected end of input at offset {at}"),
            WireError::BadTag { tag, context } => {
                write!(f, "invalid tag byte {tag:#04x} while decoding {context}")
            }
            WireError::BadMagic => write!(f, "missing BDEX0001 magic header"),
            WireError::BadUtf8 => write!(f, "string is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------- writer --

/// Where encoded bytes go: a real buffer, or a counter that only measures.
/// Every `write_*` function is generic over the sink, so the byte format
/// and the length computation can never drift apart.
trait Sink {
    fn put(&mut self, bytes: &[u8]);
    fn put_byte(&mut self, b: u8);
}

impl Sink for Vec<u8> {
    fn put(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
    fn put_byte(&mut self, b: u8) {
        self.push(b);
    }
}

/// Counts bytes without storing them — exact encoded lengths with no
/// allocation or copying.
#[derive(Default)]
struct Counter(usize);

impl Sink for Counter {
    fn put(&mut self, bytes: &[u8]) {
        self.0 += bytes.len();
    }
    fn put_byte(&mut self, _b: u8) {
        self.0 += 1;
    }
}

#[derive(Default)]
struct Writer<S = Vec<u8>> {
    buf: S,
}

impl<S: Sink> Writer<S> {
    fn raw(&mut self, b: &[u8]) {
        self.buf.put(b);
    }
    fn u8(&mut self, v: u8) {
        self.buf.put_byte(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.put(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.put(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.put(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.put(&v.to_le_bytes());
    }
    fn usize32(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("construct too large for wire format"));
    }
    fn bytes(&mut self, b: &[u8]) {
        self.usize32(b.len());
        self.buf.put(b);
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
    fn reg(&mut self, r: Reg) {
        self.u16(r.0);
    }
    fn opt_reg(&mut self, r: Option<Reg>) {
        match r {
            None => self.u8(0),
            Some(r) => {
                self.u8(1);
                self.reg(r);
            }
        }
    }
    fn regs(&mut self, rs: &[Reg]) {
        self.usize32(rs.len());
        for r in rs {
            self.reg(*r);
        }
    }
}

// ---------------------------------------------------------------- reader --

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Decode-side string interner, keyed on borrowed input slices. Class,
    /// method, and field names repeat throughout a DEX image; interning
    /// collapses each distinct name to one `Arc<str>` allocation and makes
    /// every later occurrence a hash lookup plus a refcount bump — the
    /// single-pass string-table read that pays for most of the decode
    /// speedup (decoded structures also end up sharing name storage).
    strings: HashMap<&'a [u8], Arc<str>>,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            strings: HashMap::new(),
        }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::UnexpectedEof { at: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn len(&mut self) -> Result<usize, WireError> {
        Ok(self.u32()? as usize)
    }
    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }
    fn str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::BadUtf8)
    }
    fn arc_str(&mut self) -> Result<Arc<str>, WireError> {
        let n = self.len()?;
        let raw = self.take(n)?;
        if let Some(s) = self.strings.get(raw) {
            return Ok(Arc::clone(s));
        }
        let s = std::str::from_utf8(raw).map_err(|_| WireError::BadUtf8)?;
        let arc: Arc<str> = Arc::from(s);
        self.strings.insert(raw, Arc::clone(&arc));
        Ok(arc)
    }
    fn reg(&mut self) -> Result<Reg, WireError> {
        Ok(Reg(self.u16()?))
    }
    fn opt_reg(&mut self) -> Result<Option<Reg>, WireError> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.reg()?),
        })
    }
    fn regs(&mut self) -> Result<Vec<Reg>, WireError> {
        let n = self.len()?;
        (0..n).map(|_| self.reg()).collect()
    }
}

// ---------------------------------------------------------------- values --

fn write_value<S: Sink>(w: &mut Writer<S>, v: &Value) {
    match v {
        Value::Null => w.u8(0),
        Value::Bool(b) => {
            w.u8(1);
            w.u8(*b as u8);
        }
        Value::Int(i) => {
            w.u8(2);
            w.i64(*i);
        }
        Value::Str(s) => {
            w.u8(3);
            w.str(s);
        }
        Value::Bytes(b) => {
            w.u8(4);
            w.bytes(b);
        }
    }
}

fn read_value(r: &mut Reader) -> Result<Value, WireError> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::Int(r.i64()?),
        3 => Value::Str(r.arc_str()?),
        4 => Value::Bytes(Arc::from(r.bytes()?)),
        tag => {
            return Err(WireError::BadTag {
                tag,
                context: "value",
            })
        }
    })
}

fn write_method_ref<S: Sink>(w: &mut Writer<S>, m: &MethodRef) {
    w.str(m.class.as_str());
    w.str(&m.name);
}

fn read_method_ref(r: &mut Reader) -> Result<MethodRef, WireError> {
    let class = ClassName(r.arc_str()?);
    let name = r.arc_str()?;
    Ok(MethodRef { class, name })
}

fn write_field_ref<S: Sink>(w: &mut Writer<S>, f: &FieldRef) {
    w.str(f.class.as_str());
    w.str(&f.name);
}

fn read_field_ref(r: &mut Reader) -> Result<FieldRef, WireError> {
    let class = ClassName(r.arc_str()?);
    let name = r.arc_str()?;
    Ok(FieldRef { class, name })
}

fn bin_op_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
        BinOp::Min => 10,
        BinOp::Max => 11,
    }
}

fn bin_op_from(tag: u8) -> Result<BinOp, WireError> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Shl,
        9 => BinOp::Shr,
        10 => BinOp::Min,
        11 => BinOp::Max,
        tag => {
            return Err(WireError::BadTag {
                tag,
                context: "binop",
            })
        }
    })
}

fn cond_op_tag(op: CondOp) -> u8 {
    match op {
        CondOp::Eq => 0,
        CondOp::Ne => 1,
        CondOp::Lt => 2,
        CondOp::Le => 3,
        CondOp::Gt => 4,
        CondOp::Ge => 5,
    }
}

fn cond_op_from(tag: u8) -> Result<CondOp, WireError> {
    Ok(match tag {
        0 => CondOp::Eq,
        1 => CondOp::Ne,
        2 => CondOp::Lt,
        3 => CondOp::Le,
        4 => CondOp::Gt,
        5 => CondOp::Ge,
        tag => {
            return Err(WireError::BadTag {
                tag,
                context: "condop",
            })
        }
    })
}

fn un_op_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
        UnOp::Abs => 2,
    }
}

fn un_op_from(tag: u8) -> Result<UnOp, WireError> {
    Ok(match tag {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        2 => UnOp::Abs,
        tag => {
            return Err(WireError::BadTag {
                tag,
                context: "unop",
            })
        }
    })
}

fn str_op_tag(op: StrOp) -> u8 {
    match op {
        StrOp::Equals => 0,
        StrOp::StartsWith => 1,
        StrOp::EndsWith => 2,
        StrOp::Contains => 3,
        StrOp::Concat => 4,
        StrOp::Length => 5,
        StrOp::HashCode => 6,
        StrOp::CharAt => 7,
        StrOp::ToUpper => 8,
        StrOp::Substring => 9,
        StrOp::Rot13 => 10,
    }
}

fn str_op_from(tag: u8) -> Result<StrOp, WireError> {
    Ok(match tag {
        0 => StrOp::Equals,
        1 => StrOp::StartsWith,
        2 => StrOp::EndsWith,
        3 => StrOp::Contains,
        4 => StrOp::Concat,
        5 => StrOp::Length,
        6 => StrOp::HashCode,
        7 => StrOp::CharAt,
        8 => StrOp::ToUpper,
        9 => StrOp::Substring,
        10 => StrOp::Rot13,
        tag => {
            return Err(WireError::BadTag {
                tag,
                context: "strop",
            })
        }
    })
}

fn env_key_tag(k: EnvKey) -> u8 {
    EnvKey::ALL.iter().position(|e| *e == k).expect("in ALL") as u8
}

fn env_key_from(tag: u8) -> Result<EnvKey, WireError> {
    EnvKey::ALL
        .get(tag as usize)
        .copied()
        .ok_or(WireError::BadTag {
            tag,
            context: "envkey",
        })
}

fn sensor_tag(s: SensorKind) -> u8 {
    SensorKind::ALL
        .iter()
        .position(|e| *e == s)
        .expect("in ALL") as u8
}

fn sensor_from(tag: u8) -> Result<SensorKind, WireError> {
    SensorKind::ALL
        .get(tag as usize)
        .copied()
        .ok_or(WireError::BadTag {
            tag,
            context: "sensor",
        })
}

fn write_host_api<S: Sink>(w: &mut Writer<S>, api: &HostApi) {
    match api {
        HostApi::GetPublicKey => w.u8(0),
        HostApi::GetManifestDigest => w.u8(1),
        HostApi::GetResourceString => w.u8(2),
        HostApi::CodeDigest => w.u8(3),
        HostApi::EnvQuery(k) => {
            w.u8(4);
            w.u8(env_key_tag(*k));
        }
        HostApi::Sensor(s) => {
            w.u8(5);
            w.u8(sensor_tag(*s));
        }
        HostApi::TimeMillis => w.u8(6),
        HostApi::WallClockMinute => w.u8(7),
        HostApi::Random => w.u8(8),
        HostApi::Log => w.u8(9),
        HostApi::UiNotify(k) => {
            w.u8(10);
            w.u8(match k {
                UiKind::Toast => 0,
                UiKind::Dialog => 1,
                UiKind::TextView => 2,
            });
        }
        HostApi::ReportPiracy => w.u8(11),
        HostApi::LeakMemory => w.u8(12),
        HostApi::KillProcess => w.u8(13),
        HostApi::Freeze => w.u8(14),
        HostApi::NullOutField => w.u8(15),
        HostApi::SleepMs => w.u8(16),
        HostApi::Marker(id) => {
            w.u8(17);
            w.u32(*id);
        }
    }
}

fn read_host_api(r: &mut Reader) -> Result<HostApi, WireError> {
    Ok(match r.u8()? {
        0 => HostApi::GetPublicKey,
        1 => HostApi::GetManifestDigest,
        2 => HostApi::GetResourceString,
        3 => HostApi::CodeDigest,
        4 => HostApi::EnvQuery(env_key_from(r.u8()?)?),
        5 => HostApi::Sensor(sensor_from(r.u8()?)?),
        6 => HostApi::TimeMillis,
        7 => HostApi::WallClockMinute,
        8 => HostApi::Random,
        9 => HostApi::Log,
        10 => HostApi::UiNotify(match r.u8()? {
            0 => UiKind::Toast,
            1 => UiKind::Dialog,
            2 => UiKind::TextView,
            tag => {
                return Err(WireError::BadTag {
                    tag,
                    context: "uikind",
                })
            }
        }),
        11 => HostApi::ReportPiracy,
        12 => HostApi::LeakMemory,
        13 => HostApi::KillProcess,
        14 => HostApi::Freeze,
        15 => HostApi::NullOutField,
        16 => HostApi::SleepMs,
        17 => HostApi::Marker(r.u32()?),
        tag => {
            return Err(WireError::BadTag {
                tag,
                context: "hostapi",
            })
        }
    })
}

// ------------------------------------------------------------ instruction --

fn write_instr<S: Sink>(w: &mut Writer<S>, i: &Instr) {
    match i {
        Instr::Const { dst, value } => {
            w.u8(0);
            w.reg(*dst);
            write_value(w, value);
        }
        Instr::Move { dst, src } => {
            w.u8(1);
            w.reg(*dst);
            w.reg(*src);
        }
        Instr::BinOp { op, dst, lhs, rhs } => {
            w.u8(2);
            w.u8(bin_op_tag(*op));
            w.reg(*dst);
            w.reg(*lhs);
            w.reg(*rhs);
        }
        Instr::BinOpConst { op, dst, lhs, rhs } => {
            w.u8(3);
            w.u8(bin_op_tag(*op));
            w.reg(*dst);
            w.reg(*lhs);
            w.i64(*rhs);
        }
        Instr::UnOp { op, dst, src } => {
            w.u8(4);
            w.u8(un_op_tag(*op));
            w.reg(*dst);
            w.reg(*src);
        }
        Instr::StrOp { op, dst, lhs, rhs } => {
            w.u8(5);
            w.u8(str_op_tag(*op));
            w.reg(*dst);
            w.reg(*lhs);
            w.opt_reg(*rhs);
        }
        Instr::If {
            cond,
            lhs,
            rhs,
            target,
        } => {
            w.u8(6);
            w.u8(cond_op_tag(*cond));
            w.reg(*lhs);
            match rhs {
                RegOrConst::Reg(r) => {
                    w.u8(0);
                    w.reg(*r);
                }
                RegOrConst::Const(v) => {
                    w.u8(1);
                    write_value(w, v);
                }
            }
            w.usize32(*target);
        }
        Instr::Switch { src, arms, default } => {
            w.u8(7);
            w.reg(*src);
            w.usize32(arms.len());
            for (v, t) in arms {
                w.i64(*v);
                w.usize32(*t);
            }
            w.usize32(*default);
        }
        Instr::Goto { target } => {
            w.u8(8);
            w.usize32(*target);
        }
        Instr::Invoke { method, args, dst } => {
            w.u8(9);
            write_method_ref(w, method);
            w.regs(args);
            w.opt_reg(*dst);
        }
        Instr::InvokeReflect { name, args, dst } => {
            w.u8(10);
            w.reg(*name);
            w.regs(args);
            w.opt_reg(*dst);
        }
        Instr::HostCall { api, args, dst } => {
            w.u8(11);
            write_host_api(w, api);
            w.regs(args);
            w.opt_reg(*dst);
        }
        Instr::GetField { dst, obj, field } => {
            w.u8(12);
            w.reg(*dst);
            w.reg(*obj);
            write_field_ref(w, field);
        }
        Instr::PutField { obj, field, src } => {
            w.u8(13);
            w.reg(*obj);
            write_field_ref(w, field);
            w.reg(*src);
        }
        Instr::GetStatic { dst, field } => {
            w.u8(14);
            w.reg(*dst);
            write_field_ref(w, field);
        }
        Instr::PutStatic { field, src } => {
            w.u8(15);
            write_field_ref(w, field);
            w.reg(*src);
        }
        Instr::NewInstance { dst, class } => {
            w.u8(16);
            w.reg(*dst);
            w.str(class.as_str());
        }
        Instr::NewArray { dst, len } => {
            w.u8(17);
            w.reg(*dst);
            w.reg(*len);
        }
        Instr::ArrayGet { dst, arr, idx } => {
            w.u8(18);
            w.reg(*dst);
            w.reg(*arr);
            w.reg(*idx);
        }
        Instr::ArrayPut { arr, idx, src } => {
            w.u8(19);
            w.reg(*arr);
            w.reg(*idx);
            w.reg(*src);
        }
        Instr::ArrayLen { dst, arr } => {
            w.u8(20);
            w.reg(*dst);
            w.reg(*arr);
        }
        Instr::Hash { dst, src, salt } => {
            w.u8(21);
            w.reg(*dst);
            w.reg(*src);
            w.bytes(salt);
        }
        Instr::DecryptExec { blob, key_src } => {
            w.u8(22);
            w.u32(blob.0);
            w.reg(*key_src);
        }
        Instr::Return { src } => {
            w.u8(23);
            w.opt_reg(*src);
        }
        Instr::Throw { msg } => {
            w.u8(24);
            w.str(msg);
        }
        Instr::Nop => w.u8(25),
        Instr::StegoExtract { dst, src } => {
            w.u8(26);
            w.reg(*dst);
            w.reg(*src);
        }
    }
}

fn read_instr(r: &mut Reader) -> Result<Instr, WireError> {
    Ok(match r.u8()? {
        0 => Instr::Const {
            dst: r.reg()?,
            value: read_value(r)?,
        },
        1 => Instr::Move {
            dst: r.reg()?,
            src: r.reg()?,
        },
        2 => Instr::BinOp {
            op: bin_op_from(r.u8()?)?,
            dst: r.reg()?,
            lhs: r.reg()?,
            rhs: r.reg()?,
        },
        3 => Instr::BinOpConst {
            op: bin_op_from(r.u8()?)?,
            dst: r.reg()?,
            lhs: r.reg()?,
            rhs: r.i64()?,
        },
        4 => Instr::UnOp {
            op: un_op_from(r.u8()?)?,
            dst: r.reg()?,
            src: r.reg()?,
        },
        5 => Instr::StrOp {
            op: str_op_from(r.u8()?)?,
            dst: r.reg()?,
            lhs: r.reg()?,
            rhs: r.opt_reg()?,
        },
        6 => {
            let cond = cond_op_from(r.u8()?)?;
            let lhs = r.reg()?;
            let rhs = match r.u8()? {
                0 => RegOrConst::Reg(r.reg()?),
                1 => RegOrConst::Const(read_value(r)?),
                tag => {
                    return Err(WireError::BadTag {
                        tag,
                        context: "if-rhs",
                    })
                }
            };
            let target = r.len()?;
            Instr::If {
                cond,
                lhs,
                rhs,
                target,
            }
        }
        7 => {
            let src = r.reg()?;
            let n = r.len()?;
            let mut arms = Vec::with_capacity(n);
            for _ in 0..n {
                let v = r.i64()?;
                let t = r.len()?;
                arms.push((v, t));
            }
            let default = r.len()?;
            Instr::Switch { src, arms, default }
        }
        8 => Instr::Goto { target: r.len()? },
        9 => Instr::Invoke {
            method: read_method_ref(r)?,
            args: r.regs()?,
            dst: r.opt_reg()?,
        },
        10 => Instr::InvokeReflect {
            name: r.reg()?,
            args: r.regs()?,
            dst: r.opt_reg()?,
        },
        11 => Instr::HostCall {
            api: read_host_api(r)?,
            args: r.regs()?,
            dst: r.opt_reg()?,
        },
        12 => Instr::GetField {
            dst: r.reg()?,
            obj: r.reg()?,
            field: read_field_ref(r)?,
        },
        13 => Instr::PutField {
            obj: r.reg()?,
            field: read_field_ref(r)?,
            src: r.reg()?,
        },
        14 => Instr::GetStatic {
            dst: r.reg()?,
            field: read_field_ref(r)?,
        },
        15 => Instr::PutStatic {
            field: read_field_ref(r)?,
            src: r.reg()?,
        },
        16 => Instr::NewInstance {
            dst: r.reg()?,
            class: ClassName(r.arc_str()?),
        },
        17 => Instr::NewArray {
            dst: r.reg()?,
            len: r.reg()?,
        },
        18 => Instr::ArrayGet {
            dst: r.reg()?,
            arr: r.reg()?,
            idx: r.reg()?,
        },
        19 => Instr::ArrayPut {
            arr: r.reg()?,
            idx: r.reg()?,
            src: r.reg()?,
        },
        20 => Instr::ArrayLen {
            dst: r.reg()?,
            arr: r.reg()?,
        },
        21 => Instr::Hash {
            dst: r.reg()?,
            src: r.reg()?,
            salt: r.bytes()?,
        },
        22 => Instr::DecryptExec {
            blob: BlobId(r.u32()?),
            key_src: r.reg()?,
        },
        23 => Instr::Return { src: r.opt_reg()? },
        24 => Instr::Throw { msg: r.str()? },
        25 => Instr::Nop,
        26 => Instr::StegoExtract {
            dst: r.reg()?,
            src: r.reg()?,
        },
        tag => {
            return Err(WireError::BadTag {
                tag,
                context: "instr",
            })
        }
    })
}

// ---------------------------------------------------------------- method --

fn write_method<S: Sink>(w: &mut Writer<S>, m: &Method) {
    w.str(m.class.as_str());
    w.str(&m.name);
    w.u16(m.params);
    w.u16(m.registers);
    w.usize32(m.body.len());
    for i in &m.body {
        write_instr(w, i);
    }
}

fn read_method(r: &mut Reader) -> Result<Method, WireError> {
    let class = ClassName(r.arc_str()?);
    let name = r.arc_str()?;
    let params = r.u16()?;
    let registers = r.u16()?;
    let n = r.len()?;
    let mut body = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        body.push(read_instr(r)?);
    }
    Ok(Method {
        class,
        name,
        params,
        registers,
        body,
    })
}

fn write_class<S: Sink>(w: &mut Writer<S>, c: &Class) {
    w.str(c.name.as_str());
    w.usize32(c.fields.len());
    for f in &c.fields {
        w.str(&f.name);
        w.u8(match f.kind {
            FieldKind::Instance => 0,
            FieldKind::Static => 1,
        });
    }
    w.usize32(c.methods.len());
    for m in &c.methods {
        write_method(w, m);
    }
}

fn read_class(r: &mut Reader) -> Result<Class, WireError> {
    let name = ClassName(r.arc_str()?);
    let nf = r.len()?;
    let mut fields = Vec::with_capacity(nf.min(1 << 12));
    for _ in 0..nf {
        let fname = r.arc_str()?;
        let kind = match r.u8()? {
            0 => FieldKind::Instance,
            1 => FieldKind::Static,
            tag => {
                return Err(WireError::BadTag {
                    tag,
                    context: "fieldkind",
                })
            }
        };
        fields.push(Field { name: fname, kind });
    }
    let nm = r.len()?;
    let mut methods = Vec::with_capacity(nm.min(1 << 12));
    for _ in 0..nm {
        methods.push(read_method(r)?);
    }
    Ok(Class {
        name,
        fields,
        methods,
    })
}

fn write_entry_point<S: Sink>(w: &mut Writer<S>, e: &EntryPoint) {
    w.str(&e.event);
    write_method_ref(w, &e.method);
    w.usize32(e.params.len());
    for p in &e.params {
        match p {
            ParamDomain::IntRange(lo, hi) => {
                w.u8(0);
                w.i64(*lo);
                w.i64(*hi);
            }
            ParamDomain::Choice(vs) => {
                w.u8(1);
                w.usize32(vs.len());
                for v in vs {
                    write_value(w, v);
                }
            }
            ParamDomain::Text { max_len } => {
                w.u8(2);
                w.u32(*max_len);
            }
        }
    }
    w.f64(e.user_weight);
}

fn read_entry_point(r: &mut Reader) -> Result<EntryPoint, WireError> {
    let event = r.arc_str()?;
    let method = read_method_ref(r)?;
    let n = r.len()?;
    let mut params = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        params.push(match r.u8()? {
            0 => ParamDomain::IntRange(r.i64()?, r.i64()?),
            1 => {
                let k = r.len()?;
                let mut vs = Vec::with_capacity(k.min(1 << 12));
                for _ in 0..k {
                    vs.push(read_value(r)?);
                }
                ParamDomain::Choice(vs)
            }
            2 => ParamDomain::Text { max_len: r.u32()? },
            tag => {
                return Err(WireError::BadTag {
                    tag,
                    context: "paramdomain",
                })
            }
        });
    }
    let user_weight = r.f64()?;
    Ok(EntryPoint {
        event,
        method,
        params,
        user_weight,
    })
}

// -------------------------------------------------------------- dex file --

fn write_dex<S: Sink>(w: &mut Writer<S>, dex: &DexFile) {
    w.raw(MAGIC);
    w.usize32(dex.classes.len());
    for c in &dex.classes {
        write_class(w, c);
    }
    w.usize32(dex.blobs.len());
    for b in &dex.blobs {
        w.bytes(&b.salt);
        w.bytes(&b.sealed);
    }
    w.usize32(dex.entry_points.len());
    for e in &dex.entry_points {
        write_entry_point(w, e);
    }
}

/// Encodes a complete DEX file.
pub fn encode_dex(dex: &DexFile) -> Vec<u8> {
    // Measured: an exact-count pre-sizing pass costs a second full
    // traversal, which is slower than amortized growth here; start from a
    // page-sized buffer instead and let it double.
    let mut w = Writer {
        buf: Vec::with_capacity(4096),
    };
    write_dex(&mut w, dex);
    w.buf
}

/// Exact byte length of [`encode_dex`]'s output, without materializing it.
///
/// The protection pipeline records original/protected DEX sizes; counting
/// through the same writers costs a traversal but no allocation or copying.
pub fn encoded_dex_len(dex: &DexFile) -> usize {
    let mut w = Writer {
        buf: Counter::default(),
    };
    write_dex(&mut w, dex);
    w.buf.0
}

/// Streams encoded bytes straight into a SHA-256 state — digesting without
/// materializing (manifest computation hashes the full DEX; going through
/// the hasher's 64-byte buffer skips the transient multi-hundred-KB copy).
struct HashSink(sha256::Sha256);

impl Sink for HashSink {
    fn put(&mut self, bytes: &[u8]) {
        self.0.update(bytes);
    }
    fn put_byte(&mut self, b: u8) {
        self.0.update(&[b]);
    }
}

/// SHA-256 of [`encode_dex`]'s output, computed by streaming the encoding
/// through the digest state instead of materializing the byte vector.
/// Bit-identical to `sha256::digest(&encode_dex(dex))` because both paths
/// share the same generic writers.
pub fn dex_digest(dex: &DexFile) -> Digest256 {
    let mut w = Writer {
        buf: HashSink(sha256::Sha256::new()),
    };
    write_dex(&mut w, dex);
    w.buf.0.finalize()
}

/// Decodes a complete DEX file.
///
/// # Errors
///
/// Returns [`WireError`] on any malformed input (bad magic, truncation,
/// unknown tags, invalid UTF-8).
pub fn decode_dex(bytes: &[u8]) -> Result<DexFile, WireError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let nc = r.len()?;
    let mut classes = Vec::with_capacity(nc.min(1 << 12));
    for _ in 0..nc {
        classes.push(read_class(&mut r)?);
    }
    let nb = r.len()?;
    let mut blobs = Vec::with_capacity(nb.min(1 << 12));
    for _ in 0..nb {
        let salt = r.bytes()?;
        let sealed = r.bytes()?;
        blobs.push(EncryptedBlob { salt, sealed });
    }
    let ne = r.len()?;
    let mut entry_points = Vec::with_capacity(ne.min(1 << 12));
    for _ in 0..ne {
        entry_points.push(read_entry_point(&mut r)?);
    }
    Ok(DexFile {
        classes,
        blobs,
        entry_points,
    })
}

fn write_fragment<S: Sink>(w: &mut Writer<S>, body: &[Instr]) {
    w.usize32(body.len());
    for i in body {
        write_instr(w, i);
    }
}

/// Encodes a standalone instruction fragment (the plaintext stored inside
/// encrypted blobs), pre-sized like [`encode_dex`].
pub fn encode_fragment(body: &[Instr]) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(encoded_fragment_len(body)),
    };
    write_fragment(&mut w, body);
    w.buf
}

/// Exact byte length of [`encode_fragment`]'s output.
pub fn encoded_fragment_len(body: &[Instr]) -> usize {
    let mut w = Writer {
        buf: Counter::default(),
    };
    write_fragment(&mut w, body);
    w.buf.0
}

/// Decodes a standalone instruction fragment.
///
/// # Errors
///
/// Returns [`WireError`] on malformed input.
pub fn decode_fragment(bytes: &[u8]) -> Result<Vec<Instr>, WireError> {
    let mut r = Reader::new(bytes);
    let n = r.len()?;
    let mut body = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        body.push(read_instr(&mut r)?);
    }
    Ok(body)
}

/// SHA-256 digest of a method's encoded body — the unit the code-snippet
/// scanning detection method compares.
pub fn method_digest(m: &Method) -> Digest256 {
    let mut w: Writer = Writer::default();
    write_method(&mut w, m);
    sha256::digest(&w.buf)
}

/// SHA-256 digest of a class's encoded form (used for per-class install
/// digests).
pub fn class_digest(c: &Class) -> Digest256 {
    let mut w: Writer = Writer::default();
    write_class(&mut w, c);
    sha256::digest(&w.buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;
    use crate::instr::HostApi;

    fn rich_dex() -> DexFile {
        let mut dex = DexFile::new();
        let mut class = Class::new("pkg/Main");
        class.fields.push(Field::instance("score"));
        class.fields.push(Field::stat("MODE"));
        let mut b = MethodBuilder::new("pkg/Main", "handle", 2);
        let end = b.fresh_label();
        b.if_not(
            CondOp::Eq,
            Reg(0),
            RegOrConst::Const(Value::Int(0xfff000)),
            end,
        );
        let h = b.fresh_reg();
        b.hash(h, Reg(0), vec![9, 9, 9]);
        b.decrypt_exec(BlobId(0), Reg(0));
        b.place_label(end);
        let s = b.fresh_reg();
        b.const_(s, Value::str("done"));
        b.host(HostApi::Log, vec![s], None);
        b.ret_void();
        class.methods.push(b.finish());
        dex.classes.push(class);
        dex.add_blob(EncryptedBlob {
            salt: vec![1, 2, 3],
            sealed: vec![7; 50],
        });
        dex.entry_points.push(EntryPoint {
            event: Arc::from("onClick"),
            method: MethodRef::new("pkg/Main", "handle"),
            params: vec![
                ParamDomain::IntRange(0, 100),
                ParamDomain::Choice(vec![Value::str("a"), Value::Bool(true)]),
            ],
            user_weight: 2.5,
        });
        dex
    }

    #[test]
    fn dex_roundtrip() {
        let dex = rich_dex();
        let bytes = encode_dex(&dex);
        let back = decode_dex(&bytes).unwrap();
        assert_eq!(dex, back);
    }

    #[test]
    fn fragment_roundtrip() {
        let dex = rich_dex();
        let body = &dex.classes[0].methods[0].body;
        let bytes = encode_fragment(body);
        assert_eq!(&decode_fragment(&bytes).unwrap(), body);
    }

    #[test]
    fn bad_magic_rejected() {
        let dex = rich_dex();
        let mut bytes = encode_dex(&dex);
        bytes[0] ^= 0xff;
        assert_eq!(decode_dex(&bytes), Err(WireError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let dex = rich_dex();
        let bytes = encode_dex(&dex);
        for cut in [9, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_dex(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn digests_change_with_code() {
        let dex = rich_dex();
        let d1 = method_digest(&dex.classes[0].methods[0]);
        let mut m2 = dex.classes[0].methods[0].clone();
        m2.body.push(Instr::Nop);
        assert_ne!(d1, method_digest(&m2));
        let c1 = class_digest(&dex.classes[0]);
        let mut cl2 = dex.classes[0].clone();
        cl2.methods[0] = m2;
        assert_ne!(c1, class_digest(&cl2));
    }

    #[test]
    fn encoding_is_deterministic() {
        let dex = rich_dex();
        assert_eq!(encode_dex(&dex), encode_dex(&dex));
    }

    #[test]
    fn streamed_digest_matches_materialized() {
        let dex = rich_dex();
        assert_eq!(dex_digest(&dex), sha256::digest(&encode_dex(&dex)));
        assert_eq!(
            dex_digest(&DexFile::new()),
            sha256::digest(&encode_dex(&DexFile::new()))
        );
    }

    #[test]
    fn counted_lengths_match_encoded_lengths() {
        let dex = rich_dex();
        let bytes = encode_dex(&dex);
        assert_eq!(encoded_dex_len(&dex), bytes.len());
        let body = &dex.classes[0].methods[0].body;
        assert_eq!(encoded_fragment_len(body), encode_fragment(body).len());
        assert_eq!(
            encoded_dex_len(&DexFile::new()),
            encode_dex(&DexFile::new()).len()
        );
    }
}
