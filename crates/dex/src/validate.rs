//! Structural validation of DEX files.
//!
//! Instrumentation passes rewrite bytecode aggressively; the validator
//! catches malformed output early (branch targets out of range, register
//! overflow, dangling blob references) instead of at interpretation time.

use crate::class::Method;
use crate::dex_file::DexFile;
use crate::instr::Instr;
use crate::value::MethodRef;
use std::collections::HashSet;
use std::fmt;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A branch target is outside the method body.
    BadBranchTarget {
        /// Offending method.
        method: MethodRef,
        /// Instruction index containing the branch.
        at: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// An instruction touches a register ≥ the declared frame size.
    RegisterOutOfRange {
        /// Offending method.
        method: MethodRef,
        /// Instruction index.
        at: usize,
        /// Offending register index.
        reg: u16,
        /// Declared frame size.
        registers: u16,
    },
    /// A `DecryptExec` references a blob id not present in the DEX.
    DanglingBlob {
        /// Offending method.
        method: MethodRef,
        /// Instruction index.
        at: usize,
        /// Missing blob index.
        blob: u32,
    },
    /// Control flow can run off the end of the method body.
    FallsOffEnd {
        /// Offending method.
        method: MethodRef,
    },
    /// Two classes share a name.
    DuplicateClass {
        /// The duplicated name.
        name: String,
    },
    /// An entry point references a missing method.
    MissingEntryMethod {
        /// The dangling reference.
        method: MethodRef,
    },
    /// An entry point's parameter count does not match its handler.
    EntryArityMismatch {
        /// Handler method.
        method: MethodRef,
        /// Parameters declared by the entry point.
        declared: usize,
        /// Parameters expected by the method.
        expected: u16,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadBranchTarget { method, at, target } => {
                write!(f, "{method}@{at}: branch target @{target} out of range")
            }
            ValidateError::RegisterOutOfRange {
                method,
                at,
                reg,
                registers,
            } => write!(
                f,
                "{method}@{at}: register v{reg} exceeds frame size {registers}"
            ),
            ValidateError::DanglingBlob { method, at, blob } => {
                write!(f, "{method}@{at}: blob #{blob} does not exist")
            }
            ValidateError::FallsOffEnd { method } => {
                write!(f, "{method}: control flow can fall off the end")
            }
            ValidateError::DuplicateClass { name } => write!(f, "duplicate class {name}"),
            ValidateError::MissingEntryMethod { method } => {
                write!(f, "entry point references missing method {method}")
            }
            ValidateError::EntryArityMismatch {
                method,
                declared,
                expected,
            } => write!(
                f,
                "entry point for {method} declares {declared} params, method expects {expected}"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

fn validate_method(m: &Method, blob_count: usize, errors: &mut Vec<ValidateError>) {
    let len = m.body.len();
    let mref = m.method_ref();
    for (at, instr) in m.body.iter().enumerate() {
        // Visitor form: this loop touches every instruction of every
        // method, so the per-instruction `Vec`s of `branch_targets`/`uses`
        // would cost more than the checks themselves.
        instr.for_each_branch_target(|target| {
            if target >= len {
                errors.push(ValidateError::BadBranchTarget {
                    method: mref.clone(),
                    at,
                    target,
                });
            }
        });
        instr.for_each_reg(|r| {
            if r.0 >= m.registers {
                errors.push(ValidateError::RegisterOutOfRange {
                    method: mref.clone(),
                    at,
                    reg: r.0,
                    registers: m.registers,
                });
            }
        });
        if let Instr::DecryptExec { blob, .. } = instr {
            if blob.0 as usize >= blob_count {
                errors.push(ValidateError::DanglingBlob {
                    method: mref.clone(),
                    at,
                    blob: blob.0,
                });
            }
        }
    }
    match m.body.last() {
        None => errors.push(ValidateError::FallsOffEnd { method: mref }),
        Some(last) if last.falls_through() => {
            errors.push(ValidateError::FallsOffEnd { method: mref })
        }
        _ => {}
    }
}

/// Validates a DEX file, returning every problem found.
///
/// # Errors
///
/// Returns the full list of [`ValidateError`]s (empty `Ok(())` means the
/// file is structurally sound).
pub fn validate(dex: &DexFile) -> Result<(), Vec<ValidateError>> {
    let mut errors = Vec::new();
    let mut seen = HashSet::new();
    for c in &dex.classes {
        if !seen.insert(c.name.clone()) {
            errors.push(ValidateError::DuplicateClass {
                name: c.name.as_str().to_string(),
            });
        }
        for m in &c.methods {
            validate_method(m, dex.blobs.len(), &mut errors);
        }
    }
    for e in &dex.entry_points {
        match dex.method(&e.method) {
            None => errors.push(ValidateError::MissingEntryMethod {
                method: e.method.clone(),
            }),
            Some(m) => {
                if e.params.len() != m.params as usize {
                    errors.push(ValidateError::EntryArityMismatch {
                        method: e.method.clone(),
                        declared: e.params.len(),
                        expected: m.params,
                    });
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;
    use crate::class::Class;
    use crate::dex_file::{BlobId, EntryPoint, ParamDomain};
    use crate::instr::Reg;
    use std::sync::Arc;

    fn ok_dex() -> DexFile {
        let mut dex = DexFile::new();
        let mut c = Class::new("A");
        let mut b = MethodBuilder::new("A", "m", 1);
        b.host_log("x");
        b.ret_void();
        c.methods.push(b.finish());
        dex.classes.push(c);
        dex.entry_points.push(EntryPoint {
            event: Arc::from("m"),
            method: MethodRef::new("A", "m"),
            params: vec![ParamDomain::IntRange(0, 5)],
            user_weight: 1.0,
        });
        dex
    }

    #[test]
    fn valid_dex_passes() {
        assert!(validate(&ok_dex()).is_ok());
    }

    #[test]
    fn catches_bad_branch() {
        let mut dex = ok_dex();
        dex.classes[0].methods[0]
            .body
            .insert(0, Instr::Goto { target: 999 });
        let errs = validate(&dex).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::BadBranchTarget { .. })));
    }

    #[test]
    fn catches_register_overflow() {
        let mut dex = ok_dex();
        dex.classes[0].methods[0].body.insert(
            0,
            Instr::Move {
                dst: Reg(200),
                src: Reg(0),
            },
        );
        let errs = validate(&dex).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::RegisterOutOfRange { reg: 200, .. })));
    }

    #[test]
    fn catches_dangling_blob() {
        let mut dex = ok_dex();
        dex.classes[0].methods[0].body.insert(
            0,
            Instr::DecryptExec {
                blob: BlobId(3),
                key_src: Reg(0),
            },
        );
        let errs = validate(&dex).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::DanglingBlob { blob: 3, .. })));
    }

    #[test]
    fn catches_fall_off_end() {
        let mut dex = ok_dex();
        dex.classes[0].methods[0].body.pop(); // remove trailing return
        let errs = validate(&dex).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::FallsOffEnd { .. })));
    }

    #[test]
    fn catches_missing_entry_and_arity() {
        let mut dex = ok_dex();
        dex.entry_points.push(EntryPoint {
            event: Arc::from("ghost"),
            method: MethodRef::new("A", "ghost"),
            params: vec![],
            user_weight: 1.0,
        });
        dex.entry_points[0].params.clear(); // arity mismatch for A.m
        let errs = validate(&dex).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::MissingEntryMethod { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::EntryArityMismatch { .. })));
    }

    #[test]
    fn catches_duplicate_class() {
        let mut dex = ok_dex();
        let c = dex.classes[0].clone();
        dex.classes.push(c);
        let errs = validate(&dex).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::DuplicateClass { .. })));
    }
}
