//! The DEX container: classes, encrypted blobs, and app entry points.

use crate::class::{Class, Method};
use crate::value::{MethodRef, Value};
use std::fmt;
use std::sync::Arc;

/// Index of an [`EncryptedBlob`] within a [`DexFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobId(pub u32);

impl fmt::Display for BlobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blob#{}", self.0)
    }
}

/// An encrypted code fragment embedded in the DEX file.
///
/// The plaintext (produced by `bombdroid_crypto::blob::open` with the
/// correct key) is a wire-encoded instruction fragment that the VM executes
/// inline — the analogue of the paper's "decrypted and stored in a separate
/// .dex file, which is then loaded and invoked" (§7.5).
#[derive(Debug, Clone, PartialEq)]
pub struct EncryptedBlob {
    /// Per-bomb salt, visible in the bytecode (like the hash salt).
    pub salt: Vec<u8>,
    /// Sealed ciphertext (`bombdroid_crypto::blob` format).
    pub sealed: Vec<u8>,
}

/// Domain of one entry-point parameter, advertised to event generators
/// (fuzzers pick from this; users draw from app-specific usage
/// distributions).
#[derive(Debug, Clone, PartialEq)]
pub enum ParamDomain {
    /// Integer in `[lo, hi]` inclusive.
    IntRange(i64, i64),
    /// One of a fixed set of values.
    Choice(Vec<Value>),
    /// Free-form text up to `max_len` characters.
    Text {
        /// Maximum generated length.
        max_len: u32,
    },
}

/// An app entry point: an event handler reachable from the UI, with the
/// parameter domains an input generator may draw from.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryPoint {
    /// Human-readable event name (e.g. `onFishTapped`).
    pub event: Arc<str>,
    /// Handler method.
    pub method: MethodRef,
    /// One domain per handler parameter.
    pub params: Vec<ParamDomain>,
    /// Relative likelihood that an ordinary user session fires this event
    /// (used by the user-side driver; fuzzers ignore it).
    pub user_weight: f64,
}

/// A parsed `classes.dex` equivalent.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DexFile {
    /// All classes.
    pub classes: Vec<Class>,
    /// Encrypted code fragments referenced by `DecryptExec`.
    pub blobs: Vec<EncryptedBlob>,
    /// Event handlers (the app's attack/usage surface).
    pub entry_points: Vec<EntryPoint>,
}

impl DexFile {
    /// Creates an empty DEX file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<&Class> {
        self.classes.iter().find(|c| c.name.as_str() == name)
    }

    /// Looks up a class by name, mutably.
    pub fn class_mut(&mut self, name: &str) -> Option<&mut Class> {
        self.classes.iter_mut().find(|c| c.name.as_str() == name)
    }

    /// Resolves a method reference.
    pub fn method(&self, mref: &MethodRef) -> Option<&Method> {
        self.class(mref.class.as_str())?.method(&mref.name)
    }

    /// Resolves a method reference, mutably.
    pub fn method_mut(&mut self, mref: &MethodRef) -> Option<&mut Method> {
        self.class_mut(mref.class.as_str())?.method_mut(&mref.name)
    }

    /// Fetches a blob by id.
    pub fn blob(&self, id: BlobId) -> Option<&EncryptedBlob> {
        self.blobs.get(id.0 as usize)
    }

    /// Registers a blob and returns its id.
    pub fn add_blob(&mut self, blob: EncryptedBlob) -> BlobId {
        let id = BlobId(self.blobs.len() as u32);
        self.blobs.push(blob);
        id
    }

    /// Iterates over all methods in all classes.
    pub fn methods(&self) -> impl Iterator<Item = &Method> {
        self.classes.iter().flat_map(|c| c.methods.iter())
    }

    /// Iterates over all methods, mutably.
    pub fn methods_mut(&mut self) -> impl Iterator<Item = &mut Method> {
        self.classes.iter_mut().flat_map(|c| c.methods.iter_mut())
    }

    /// Total instruction count across all method bodies (an LOC analogue
    /// for Table 1; decrypted fragments are *not* included, mirroring how
    /// encrypted payloads are opaque strings in the real system).
    pub fn instruction_count(&self) -> usize {
        self.methods().map(|m| m.body.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;

    fn sample() -> DexFile {
        let mut dex = DexFile::new();
        let mut class = Class::new("Main");
        let mut b = MethodBuilder::new("Main", "onCreate", 0);
        b.host_log("hello");
        b.ret_void();
        class.methods.push(b.finish());
        dex.classes.push(class);
        dex.entry_points.push(EntryPoint {
            event: Arc::from("onCreate"),
            method: MethodRef::new("Main", "onCreate"),
            params: vec![],
            user_weight: 1.0,
        });
        dex
    }

    #[test]
    fn lookups() {
        let dex = sample();
        assert!(dex.class("Main").is_some());
        assert!(dex.method(&MethodRef::new("Main", "onCreate")).is_some());
        assert!(dex.method(&MethodRef::new("Main", "missing")).is_none());
        assert_eq!(dex.instruction_count(), 3);
    }

    #[test]
    fn blob_registry() {
        let mut dex = sample();
        let id = dex.add_blob(EncryptedBlob {
            salt: vec![1, 2],
            sealed: vec![0; 40],
        });
        assert_eq!(id, BlobId(0));
        assert!(dex.blob(id).is_some());
        assert!(dex.blob(BlobId(5)).is_none());
    }
}
