//! Ergonomic method construction with symbolic labels.
//!
//! Both the corpus generator and the instrumentation passes build method
//! bodies; raw absolute branch targets would be unmanageable, so the builder
//! provides forward-referencing labels that are resolved in
//! [`MethodBuilder::finish`].

use crate::class::Method;
use crate::dex_file::BlobId;
use crate::instr::{BinOp, CondOp, HostApi, Instr, Reg, RegOrConst, StrOp, UnOp};
use crate::value::{ClassName, FieldRef, MethodRef, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A symbolic jump target. Created by [`MethodBuilder::fresh_label`] and
/// pinned to a position with [`MethodBuilder::place_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelId(u32);

/// Builder for [`Method`] bodies.
#[derive(Debug)]
pub struct MethodBuilder {
    class: ClassName,
    name: Arc<str>,
    params: u16,
    max_reg: u16,
    body: Vec<Instr>,
    next_label: u32,
    placed: HashMap<LabelId, usize>,
    // (instruction index, which target slot) -> label awaiting resolution
    pending: Vec<(usize, usize, LabelId)>,
}

impl MethodBuilder {
    /// Starts a method of `params` parameters on class `class`.
    pub fn new(class: impl Into<ClassName>, name: impl AsRef<str>, params: u16) -> Self {
        MethodBuilder {
            class: class.into(),
            name: Arc::from(name.as_ref()),
            params,
            max_reg: params.saturating_sub(1),
            body: Vec::new(),
            next_label: 0,
            placed: HashMap::new(),
            pending: Vec::new(),
        }
    }

    /// Allocates a fresh register above the parameters and everything used
    /// so far.
    pub fn fresh_reg(&mut self) -> Reg {
        self.max_reg += 1;
        Reg(self.max_reg)
    }

    /// Creates an unplaced label.
    pub fn fresh_label(&mut self) -> LabelId {
        let id = LabelId(self.next_label);
        self.next_label += 1;
        id
    }

    /// Pins `label` to the *next* emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn place_label(&mut self, label: LabelId) {
        let pos = self.body.len();
        let prev = self.placed.insert(label, pos);
        assert!(prev.is_none(), "label {label:?} placed twice");
    }

    /// Current instruction index (where the next instruction will land).
    pub fn cursor(&self) -> usize {
        self.body.len()
    }

    fn track(&mut self, instr: &Instr) {
        for r in instr.uses() {
            self.max_reg = self.max_reg.max(r.0);
        }
        if let Some(r) = instr.def() {
            self.max_reg = self.max_reg.max(r.0);
        }
    }

    /// Emits a raw instruction (targets must already be absolute).
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.track(&instr);
        self.body.push(instr);
        self
    }

    /// `dst := value`.
    pub fn const_(&mut self, dst: Reg, value: impl Into<Value>) -> &mut Self {
        self.push(Instr::Const {
            dst,
            value: value.into(),
        })
    }

    /// `dst := src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Move { dst, src })
    }

    /// `dst := lhs op rhs`.
    pub fn bin(&mut self, op: BinOp, dst: Reg, lhs: Reg, rhs: Reg) -> &mut Self {
        self.push(Instr::BinOp { op, dst, lhs, rhs })
    }

    /// `dst := lhs op literal`.
    pub fn bin_const(&mut self, op: BinOp, dst: Reg, lhs: Reg, rhs: i64) -> &mut Self {
        self.push(Instr::BinOpConst { op, dst, lhs, rhs })
    }

    /// `dst := op src`.
    pub fn un(&mut self, op: UnOp, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::UnOp { op, dst, src })
    }

    /// String operation.
    pub fn str_op(&mut self, op: StrOp, dst: Reg, lhs: Reg, rhs: Option<Reg>) -> &mut Self {
        self.push(Instr::StrOp { op, dst, lhs, rhs })
    }

    /// Branch to `label` when `lhs cond rhs`.
    pub fn if_(&mut self, cond: CondOp, lhs: Reg, rhs: RegOrConst, label: LabelId) -> &mut Self {
        let at = self.body.len();
        let instr = Instr::If {
            cond,
            lhs,
            rhs,
            target: usize::MAX,
        };
        self.track(&instr);
        self.body.push(instr);
        self.pending.push((at, 0, label));
        self
    }

    /// Branch to `label` when NOT (`lhs cond rhs`) — the branch-over idiom
    /// for compiling `if (cond) { body }`.
    pub fn if_not(&mut self, cond: CondOp, lhs: Reg, rhs: RegOrConst, label: LabelId) -> &mut Self {
        self.if_(cond.negate(), lhs, rhs, label)
    }

    /// Unconditional jump to `label`.
    pub fn goto(&mut self, label: LabelId) -> &mut Self {
        let at = self.body.len();
        self.body.push(Instr::Goto { target: usize::MAX });
        self.pending.push((at, 0, label));
        self
    }

    /// `TABLESWITCH` over labelled arms.
    pub fn switch(&mut self, src: Reg, arms: Vec<(i64, LabelId)>, default: LabelId) -> &mut Self {
        let at = self.body.len();
        let instr = Instr::Switch {
            src,
            arms: arms.iter().map(|(v, _)| (*v, usize::MAX)).collect(),
            default: usize::MAX,
        };
        self.track(&instr);
        self.body.push(instr);
        for (slot, (_, label)) in arms.iter().enumerate() {
            self.pending.push((at, slot + 1, *label));
        }
        self.pending.push((at, 0, default));
        self
    }

    /// Static invocation.
    pub fn invoke(&mut self, method: MethodRef, args: Vec<Reg>, dst: Option<Reg>) -> &mut Self {
        self.push(Instr::Invoke { method, args, dst })
    }

    /// Framework call.
    pub fn host(&mut self, api: HostApi, args: Vec<Reg>, dst: Option<Reg>) -> &mut Self {
        self.push(Instr::HostCall { api, args, dst })
    }

    /// Logs a constant message (allocates a scratch register).
    pub fn host_log(&mut self, msg: &str) -> &mut Self {
        let r = self.fresh_reg();
        self.const_(r, Value::str(msg));
        self.host(HostApi::Log, vec![r], None)
    }

    /// `dst := obj.field`.
    pub fn get_field(&mut self, dst: Reg, obj: Reg, field: FieldRef) -> &mut Self {
        self.push(Instr::GetField { dst, obj, field })
    }

    /// `obj.field := src`.
    pub fn put_field(&mut self, obj: Reg, field: FieldRef, src: Reg) -> &mut Self {
        self.push(Instr::PutField { obj, field, src })
    }

    /// `dst := Class.field`.
    pub fn get_static(&mut self, dst: Reg, field: FieldRef) -> &mut Self {
        self.push(Instr::GetStatic { dst, field })
    }

    /// `Class.field := src`.
    pub fn put_static(&mut self, field: FieldRef, src: Reg) -> &mut Self {
        self.push(Instr::PutStatic { field, src })
    }

    /// `dst := SHA1(canonical(src)|salt)`.
    pub fn hash(&mut self, dst: Reg, src: Reg, salt: Vec<u8>) -> &mut Self {
        self.push(Instr::Hash { dst, src, salt })
    }

    /// Decrypt-and-execute an embedded blob keyed by `key_src`.
    pub fn decrypt_exec(&mut self, blob: BlobId, key_src: Reg) -> &mut Self {
        self.push(Instr::DecryptExec { blob, key_src })
    }

    /// `return src`.
    pub fn ret(&mut self, src: Reg) -> &mut Self {
        self.push(Instr::Return { src: Some(src) })
    }

    /// `return` (void).
    pub fn ret_void(&mut self) -> &mut Self {
        self.push(Instr::Return { src: None })
    }

    /// Resolves all labels and produces the method.
    ///
    /// A trailing `return-void` is appended if the body can fall off the
    /// end. Labels placed at the very end of the body resolve to the
    /// appended return.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never placed.
    pub fn finish(mut self) -> Method {
        let needs_trailing_return = self.body.last().map(|i| i.falls_through()).unwrap_or(true)
            || self.placed.values().any(|&p| p == self.body.len());
        if needs_trailing_return {
            self.body.push(Instr::Return { src: None });
        }
        for (at, slot, label) in &self.pending {
            let pos = *self
                .placed
                .get(label)
                .unwrap_or_else(|| panic!("label {label:?} referenced but never placed"));
            match &mut self.body[*at] {
                Instr::If { target, .. } | Instr::Goto { target } => *target = pos,
                Instr::Switch { arms, default, .. } => {
                    if *slot == 0 {
                        *default = pos;
                    } else {
                        arms[*slot - 1].1 = pos;
                    }
                }
                other => panic!("pending label on non-branch instruction {other:?}"),
            }
        }
        Method {
            class: self.class,
            name: self.name,
            params: self.params,
            registers: self.max_reg + 1,
            body: self.body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_label_resolution() {
        let mut b = MethodBuilder::new("T", "m", 1);
        let end = b.fresh_label();
        b.if_(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(3)), end);
        b.host_log("not three");
        b.place_label(end);
        b.ret_void();
        let m = b.finish();
        match &m.body[0] {
            Instr::If { target, .. } => assert_eq!(*target, 3),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.registers, 2); // v0 param + v1 scratch for log
    }

    #[test]
    fn switch_labels() {
        let mut b = MethodBuilder::new("T", "s", 1);
        let a = b.fresh_label();
        let c = b.fresh_label();
        let d = b.fresh_label();
        b.switch(Reg(0), vec![(1, a), (2, c)], d);
        b.place_label(a);
        b.host_log("one");
        b.place_label(c);
        b.host_log("two");
        b.place_label(d);
        b.ret_void();
        let m = b.finish();
        match &m.body[0] {
            Instr::Switch { arms, default, .. } => {
                assert_eq!(arms, &vec![(1, 1), (2, 3)]);
                assert_eq!(*default, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_return_added() {
        let mut b = MethodBuilder::new("T", "empty", 0);
        b.host_log("x");
        let m = b.finish();
        assert!(matches!(m.body.last(), Some(Instr::Return { src: None })));
    }

    #[test]
    fn end_label_resolves_to_trailing_return() {
        let mut b = MethodBuilder::new("T", "endlbl", 1);
        let end = b.fresh_label();
        b.if_(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(0)), end);
        b.host_log("nonzero");
        b.place_label(end);
        let m = b.finish();
        match &m.body[0] {
            Instr::If { target, .. } => assert_eq!(*target, m.body.len() - 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn unplaced_label_panics() {
        let mut b = MethodBuilder::new("T", "bad", 0);
        let l = b.fresh_label();
        b.goto(l);
        let _ = b.finish();
    }
}
