//! The instruction set.

use crate::value::{ClassName, FieldRef, MethodRef, Value};
use std::fmt;

/// A virtual register within a method frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Right-hand operand of a conditional branch: either a register or an
/// immediate constant (the `IF_*Z` / literal-compare forms).
#[derive(Debug, Clone, PartialEq)]
pub enum RegOrConst {
    /// Compare against another register.
    Reg(Reg),
    /// Compare against an immediate constant.
    Const(Value),
}

impl fmt::Display for RegOrConst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegOrConst::Reg(r) => write!(f, "{r}"),
            RegOrConst::Const(v) => write!(f, "#{v}"),
        }
    }
}

/// Comparison operators for [`Instr::If`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondOp {
    /// Equal — the equality form the paper's qualified conditions require.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (ints only).
    Lt,
    /// Less or equal (ints only).
    Le,
    /// Greater than (ints only).
    Gt,
    /// Greater or equal (ints only).
    Ge,
}

impl CondOp {
    /// The negated operator (used to compile `if (c) {body}` as a
    /// branch-over on `!c`).
    pub fn negate(self) -> CondOp {
        match self {
            CondOp::Eq => CondOp::Ne,
            CondOp::Ne => CondOp::Eq,
            CondOp::Lt => CondOp::Ge,
            CondOp::Le => CondOp::Gt,
            CondOp::Gt => CondOp::Le,
            CondOp::Ge => CondOp::Lt,
        }
    }

    /// Mnemonic used by the disassembler (`if-eq`, mirroring smali).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CondOp::Eq => "if-eq",
            CondOp::Ne => "if-ne",
            CondOp::Lt => "if-lt",
            CondOp::Le => "if-le",
            CondOp::Gt => "if-gt",
            CondOp::Ge => "if-ge",
        }
    }
}

/// Integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Min,
    Max,
}

impl BinOp {
    /// Mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add-int",
            BinOp::Sub => "sub-int",
            BinOp::Mul => "mul-int",
            BinOp::Div => "div-int",
            BinOp::Rem => "rem-int",
            BinOp::And => "and-int",
            BinOp::Or => "or-int",
            BinOp::Xor => "xor-int",
            BinOp::Shl => "shl-int",
            BinOp::Shr => "shr-int",
            BinOp::Min => "min-int",
            BinOp::Max => "max-int",
        }
    }
}

/// Integer/boolean unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    Abs,
}

impl UnOp {
    /// Mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg-int",
            UnOp::Not => "not-int",
            UnOp::Abs => "abs-int",
        }
    }
}

/// String operations — `equals`/`startsWith`/`endsWith` are the comparison
/// methods the paper accepts in qualified conditions (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum StrOp {
    Equals,
    StartsWith,
    EndsWith,
    Contains,
    Concat,
    Length,
    HashCode,
    CharAt,
    ToUpper,
    Substring,
    /// Letter rotation — the string-deobfuscation routine SSN-style
    /// protections use to recover hidden API names at runtime (§2.1's
    /// `recoverFunName`).
    Rot13,
}

impl StrOp {
    /// Mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            StrOp::Equals => "str-equals",
            StrOp::StartsWith => "str-starts-with",
            StrOp::EndsWith => "str-ends-with",
            StrOp::Contains => "str-contains",
            StrOp::Concat => "str-concat",
            StrOp::Length => "str-length",
            StrOp::HashCode => "str-hash-code",
            StrOp::CharAt => "str-char-at",
            StrOp::ToUpper => "str-to-upper",
            StrOp::Substring => "str-substring",
            StrOp::Rot13 => "str-rot13",
        }
    }

    /// Whether this op is an equality-style comparison usable as a
    /// qualified condition.
    pub fn is_equality_check(self) -> bool {
        matches!(self, StrOp::Equals | StrOp::StartsWith | StrOp::EndsWith)
    }
}

/// Device/environment properties queryable through the framework — the
/// paper's §6 list: hardware environment, software environment, time and
/// sensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum EnvKey {
    Manufacturer,
    Board,
    BootloaderVersion,
    Brand,
    CpuAbi,
    DisplayDensityDpi,
    MacAddrHash,
    SerialHash,
    FlashSizeGb,
    SdkInt,
    ApiLevel,
    OsVersionCode,
    IpOctetC,
    IpOctetD,
    CountryCode,
    LanguageCode,
    TimezoneOffsetMin,
    BatteryPct,
}

impl EnvKey {
    /// All environment keys, for iteration in condition synthesis.
    pub const ALL: [EnvKey; 18] = [
        EnvKey::Manufacturer,
        EnvKey::Board,
        EnvKey::BootloaderVersion,
        EnvKey::Brand,
        EnvKey::CpuAbi,
        EnvKey::DisplayDensityDpi,
        EnvKey::MacAddrHash,
        EnvKey::SerialHash,
        EnvKey::FlashSizeGb,
        EnvKey::SdkInt,
        EnvKey::ApiLevel,
        EnvKey::OsVersionCode,
        EnvKey::IpOctetC,
        EnvKey::IpOctetD,
        EnvKey::CountryCode,
        EnvKey::LanguageCode,
        EnvKey::TimezoneOffsetMin,
        EnvKey::BatteryPct,
    ];

    /// Name used by the disassembler and reports.
    pub fn name(self) -> &'static str {
        match self {
            EnvKey::Manufacturer => "Build.MANUFACTURER",
            EnvKey::Board => "Build.BOARD",
            EnvKey::BootloaderVersion => "Build.BOOTLOADER",
            EnvKey::Brand => "Build.BRAND",
            EnvKey::CpuAbi => "Build.CPU_ABI",
            EnvKey::DisplayDensityDpi => "DisplayMetrics.densityDpi",
            EnvKey::MacAddrHash => "WifiInfo.macAddressHash",
            EnvKey::SerialHash => "Build.SERIAL.hash",
            EnvKey::FlashSizeGb => "StatFs.flashSizeGb",
            EnvKey::SdkInt => "Build.VERSION.SDK_INT",
            EnvKey::ApiLevel => "Build.VERSION.API_LEVEL",
            EnvKey::OsVersionCode => "Build.VERSION.RELEASE",
            EnvKey::IpOctetC => "NetworkInterface.ip[2]",
            EnvKey::IpOctetD => "NetworkInterface.ip[3]",
            EnvKey::CountryCode => "Locale.country",
            EnvKey::LanguageCode => "Locale.language",
            EnvKey::TimezoneOffsetMin => "TimeZone.rawOffsetMin",
            EnvKey::BatteryPct => "BatteryManager.pct",
        }
    }
}

/// Physical sensors queryable at runtime (paper §6: "GPS, light, and
/// temperature").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SensorKind {
    GpsLatE3,
    GpsLonE3,
    LightLux,
    TemperatureDeciC,
    Accelerometer,
    Pressure,
}

impl SensorKind {
    /// All sensor kinds, for iteration in condition synthesis.
    pub const ALL: [SensorKind; 6] = [
        SensorKind::GpsLatE3,
        SensorKind::GpsLonE3,
        SensorKind::LightLux,
        SensorKind::TemperatureDeciC,
        SensorKind::Accelerometer,
        SensorKind::Pressure,
    ];

    /// Name used by the disassembler and reports.
    pub fn name(self) -> &'static str {
        match self {
            SensorKind::GpsLatE3 => "gps.lat",
            SensorKind::GpsLonE3 => "gps.lon",
            SensorKind::LightLux => "sensor.light",
            SensorKind::TemperatureDeciC => "sensor.temperature",
            SensorKind::Accelerometer => "sensor.accel",
            SensorKind::Pressure => "sensor.pressure",
        }
    }
}

/// User-visible response channels (paper §4.2: TextViews, PopupWindows,
/// Dialogs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UiKind {
    Toast,
    Dialog,
    TextView,
}

/// Calls into the (shimmed) Android framework. `GetPublicKey`,
/// `GetManifestDigest` and `CodeDigest` are the three repackaging-detection
/// primitives of §4.1; the rest support inner triggers, app behaviour, and
/// responses.
#[derive(Debug, Clone, PartialEq)]
pub enum HostApi {
    /// `Certificate.getPublicKey` — returns the installed cert's public key
    /// bytes (managed by the Android system, not forgeable by the app).
    GetPublicKey,
    /// Digest of an APK entry from `MANIFEST.MF`; argument: entry name.
    GetManifestDigest,
    /// Reads a string resource from `strings.xml`; argument: key.
    GetResourceString,
    /// Digest of a class's installed bytecode (code-snippet scanning);
    /// argument: class name.
    CodeDigest,
    /// Queries a device/environment property.
    EnvQuery(EnvKey),
    /// Reads a sensor value as an integer.
    Sensor(SensorKind),
    /// Milliseconds since the app process started.
    TimeMillis,
    /// Wall-clock minute-of-day on the device.
    WallClockMinute,
    /// Framework RNG (`rand()` in SSN's Listing 1); returns an int in
    /// `[0, arg)`.
    Random,
    /// Appends a log line; arguments are stringified.
    Log,
    /// Shows a user-visible notification (response channel).
    UiNotify(UiKind),
    /// Sends a piracy report to the developer (decentralized aggregation).
    ReportPiracy,
    /// Response: leak a large allocation reachable from a static field.
    LeakMemory,
    /// Response: kill the app process.
    KillProcess,
    /// Response: spin forever (freeze).
    Freeze,
    /// Response: make a reference field null so the app crashes later.
    NullOutField,
    /// Sleeps for the given number of milliseconds (burns time budget).
    SleepMs,
    /// Analytics-style instrumentation point with a numeric id. The
    /// protector tags each bomb payload with one so the measurement harness
    /// can count *triggered* bombs (Tables 3–4, Fig. 5); it reads as an
    /// ordinary analytics call in disassembly.
    Marker(u32),
}

impl HostApi {
    /// Name used by the disassembler — this is what text-search attacks grep
    /// for.
    pub fn name(&self) -> String {
        match self {
            HostApi::GetPublicKey => "Certificate.getPublicKey".into(),
            HostApi::GetManifestDigest => "Manifest.getDigest".into(),
            HostApi::GetResourceString => "Resources.getString".into(),
            HostApi::CodeDigest => "Package.codeDigest".into(),
            HostApi::EnvQuery(k) => format!("Env.{}", k.name()),
            HostApi::Sensor(s) => format!("Sensor.{}", s.name()),
            HostApi::TimeMillis => "SystemClock.uptimeMillis".into(),
            HostApi::WallClockMinute => "Calendar.minuteOfDay".into(),
            HostApi::Random => "Random.nextInt".into(),
            HostApi::Log => "Log.d".into(),
            HostApi::UiNotify(UiKind::Toast) => "Toast.show".into(),
            HostApi::UiNotify(UiKind::Dialog) => "Dialog.show".into(),
            HostApi::UiNotify(UiKind::TextView) => "TextView.setText".into(),
            HostApi::ReportPiracy => "Telemetry.reportPiracy".into(),
            HostApi::LeakMemory => "Response.leakMemory".into(),
            HostApi::KillProcess => "Process.killProcess".into(),
            HostApi::Freeze => "Response.freeze".into(),
            HostApi::NullOutField => "Response.nullOutField".into(),
            HostApi::SleepMs => "Thread.sleep".into(),
            HostApi::Marker(id) => format!("Analytics.trackEvent#{id}"),
        }
    }
}

/// One bytecode instruction.
///
/// Branch targets are absolute instruction indices within the enclosing
/// body (method body or decrypted fragment).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst := value`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Constant loaded.
        value: Value,
    },
    /// `dst := src`.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst := lhs op rhs` over integers.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst := lhs op literal` (Dalvik's `*-int/lit` forms).
    BinOpConst {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Immediate right operand.
        rhs: i64,
    },
    /// `dst := op src` over integers/booleans.
    UnOp {
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// String operation; `rhs` is absent for unary ops such as `Length`.
    StrOp {
        /// Operator.
        op: StrOp,
        /// Destination register.
        dst: Reg,
        /// Left operand (the receiver string).
        lhs: Reg,
        /// Optional right operand.
        rhs: Option<Reg>,
    },
    /// Conditional branch: `if lhs cond rhs goto target`.
    If {
        /// Comparison operator.
        cond: CondOp,
        /// Left operand.
        lhs: Reg,
        /// Right operand (register or immediate).
        rhs: RegOrConst,
        /// Absolute instruction index to jump to when the condition holds.
        target: usize,
    },
    /// `TABLESWITCH` analogue: jump to the arm matching the register value.
    Switch {
        /// Scrutinee register (integer).
        src: Reg,
        /// `(case value, target)` arms.
        arms: Vec<(i64, usize)>,
        /// Fallthrough target when no arm matches.
        default: usize,
    },
    /// Unconditional jump.
    Goto {
        /// Absolute instruction index.
        target: usize,
    },
    /// Static method invocation.
    Invoke {
        /// Callee.
        method: MethodRef,
        /// Argument registers, copied into the callee frame.
        args: Vec<Reg>,
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
    },
    /// Reflective call: the *method name* is a string in a register
    /// (SSN's hidden `getPublicKey` call goes through this).
    InvokeReflect {
        /// Register holding the method/API name string.
        name: Reg,
        /// Argument registers.
        args: Vec<Reg>,
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
    },
    /// Call into the Android framework shim.
    HostCall {
        /// Which framework API.
        api: HostApi,
        /// Argument registers.
        args: Vec<Reg>,
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
    },
    /// `dst := obj.field`.
    GetField {
        /// Destination register.
        dst: Reg,
        /// Object reference register.
        obj: Reg,
        /// Field reference.
        field: FieldRef,
    },
    /// `obj.field := src`.
    PutField {
        /// Object reference register.
        obj: Reg,
        /// Field reference.
        field: FieldRef,
        /// Source register.
        src: Reg,
    },
    /// `dst := Class.field` (static).
    GetStatic {
        /// Destination register.
        dst: Reg,
        /// Static field reference.
        field: FieldRef,
    },
    /// `Class.field := src` (static).
    PutStatic {
        /// Static field reference.
        field: FieldRef,
        /// Source register.
        src: Reg,
    },
    /// Allocates a new object of `class`; fields start zeroed/null.
    NewInstance {
        /// Destination register.
        dst: Reg,
        /// Class to instantiate.
        class: ClassName,
    },
    /// Allocates an integer array of length `len`.
    NewArray {
        /// Destination register.
        dst: Reg,
        /// Length register.
        len: Reg,
    },
    /// `dst := arr[idx]`.
    ArrayGet {
        /// Destination register.
        dst: Reg,
        /// Array reference register.
        arr: Reg,
        /// Index register.
        idx: Reg,
    },
    /// `arr[idx] := src`.
    ArrayPut {
        /// Array reference register.
        arr: Reg,
        /// Index register.
        idx: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst := arr.length`.
    ArrayLen {
        /// Destination register.
        dst: Reg,
        /// Array reference register.
        arr: Reg,
    },
    /// `dst := SHA1(canonical(src) | salt)` as `Value::Bytes` — the
    /// obfuscated-condition hash (paper Listing 3, line 1).
    Hash {
        /// Destination register (receives a 20-byte `Bytes`).
        dst: Reg,
        /// Register holding the value `X` being tested.
        src: Reg,
        /// Per-bomb salt baked into the instruction.
        salt: Vec<u8>,
    },
    /// Derive `key = KDF(canonical(key_src) | blob.salt)`, authenticate and
    /// decrypt the referenced blob, and execute the decrypted code fragment
    /// inline in the current frame (paper Listing 3, lines 3–4).
    ///
    /// Decryption failure (wrong key) raises a VM fault — this is what
    /// forced execution and condition-circumvention attacks observe.
    DecryptExec {
        /// Index of the encrypted blob in the DEX file.
        blob: crate::dex_file::BlobId,
        /// Register whose value re-derives the key.
        key_src: Reg,
    },
    /// `dst := stego_decode(src)` — recovers bytes hidden in a resource
    /// string (the paper hides expected digests `Do` in `strings.xml`,
    /// §4.1). This intrinsic stands for the inlined recovery routine; in
    /// BombDroid that logic ships *inside the encrypted payload*, and the
    /// instrumentation here likewise only ever emits it into encrypted
    /// fragments, so it is invisible to text search. Yields `Null` for an
    /// invalid cover string (i.e. after resource tampering).
    StegoExtract {
        /// Destination register (receives `Bytes` or `Null`).
        dst: Reg,
        /// Register holding the cover string.
        src: Reg,
    },
    /// Return from the enclosing *method* (bubbles out of decrypted
    /// fragments).
    Return {
        /// Returned register, if the method returns a value.
        src: Option<Reg>,
    },
    /// Raise an unconditional runtime fault (used by app logic and bogus
    /// error paths).
    Throw {
        /// Human-readable fault description.
        msg: String,
    },
    /// No operation.
    Nop,
}

impl Instr {
    /// Registers read by this instruction (for def-use analysis).
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Instr::Const { .. }
            | Instr::Goto { .. }
            | Instr::GetStatic { .. }
            | Instr::NewInstance { .. }
            | Instr::Throw { .. }
            | Instr::Nop => vec![],
            Instr::Move { src, .. } | Instr::UnOp { src, .. } => vec![*src],
            Instr::BinOp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Instr::BinOpConst { lhs, .. } => vec![*lhs],
            Instr::StrOp { lhs, rhs, .. } => {
                let mut v = vec![*lhs];
                if let Some(r) = rhs {
                    v.push(*r);
                }
                v
            }
            Instr::If { lhs, rhs, .. } => {
                let mut v = vec![*lhs];
                if let RegOrConst::Reg(r) = rhs {
                    v.push(*r);
                }
                v
            }
            Instr::Switch { src, .. } => vec![*src],
            Instr::Invoke { args, .. } | Instr::HostCall { args, .. } => args.clone(),
            Instr::InvokeReflect { name, args, .. } => {
                let mut v = vec![*name];
                v.extend_from_slice(args);
                v
            }
            Instr::GetField { obj, .. } => vec![*obj],
            Instr::PutField { obj, src, .. } => vec![*obj, *src],
            Instr::PutStatic { src, .. } => vec![*src],
            Instr::NewArray { len, .. } => vec![*len],
            Instr::ArrayGet { arr, idx, .. } => vec![*arr, *idx],
            Instr::ArrayPut { arr, idx, src } => vec![*arr, *idx, *src],
            Instr::ArrayLen { arr, .. } => vec![*arr],
            Instr::Hash { src, .. } => vec![*src],
            Instr::StegoExtract { src, .. } => vec![*src],
            Instr::DecryptExec { key_src, .. } => vec![*key_src],
            Instr::Return { src } => src.iter().copied().collect(),
        }
    }

    /// Register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Move { dst, .. }
            | Instr::BinOp { dst, .. }
            | Instr::BinOpConst { dst, .. }
            | Instr::UnOp { dst, .. }
            | Instr::StrOp { dst, .. }
            | Instr::GetField { dst, .. }
            | Instr::GetStatic { dst, .. }
            | Instr::NewInstance { dst, .. }
            | Instr::NewArray { dst, .. }
            | Instr::ArrayGet { dst, .. }
            | Instr::ArrayLen { dst, .. }
            | Instr::Hash { dst, .. }
            | Instr::StegoExtract { dst, .. } => Some(*dst),
            Instr::Invoke { dst, .. }
            | Instr::InvokeReflect { dst, .. }
            | Instr::HostCall { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Branch targets of this instruction (empty for straight-line code).
    pub fn branch_targets(&self) -> Vec<usize> {
        match self {
            Instr::If { target, .. } | Instr::Goto { target } => vec![*target],
            Instr::Switch { arms, default, .. } => {
                let mut t: Vec<usize> = arms.iter().map(|(_, tgt)| *tgt).collect();
                t.push(*default);
                t
            }
            _ => vec![],
        }
    }

    /// Visits every branch target without allocating — the stable decode
    /// hook used by runtime pre-decoding, which scans whole method bodies
    /// (where a per-instruction `Vec` would dominate the pass).
    pub fn for_each_branch_target(&self, mut f: impl FnMut(usize)) {
        match self {
            Instr::If { target, .. } | Instr::Goto { target } => f(*target),
            Instr::Switch { arms, default, .. } => {
                for (_, tgt) in arms {
                    f(*tgt);
                }
                f(*default);
            }
            _ => {}
        }
    }

    /// Visits every register this instruction touches (uses then def)
    /// without allocating — the validator walks every instruction of every
    /// method, where the `Vec`s returned by [`uses`](Self::uses) would
    /// dominate the pass.
    pub fn for_each_reg(&self, mut f: impl FnMut(Reg)) {
        match self {
            Instr::Const { .. }
            | Instr::Goto { .. }
            | Instr::GetStatic { .. }
            | Instr::NewInstance { .. }
            | Instr::Throw { .. }
            | Instr::Nop => {}
            Instr::Move { src, .. } | Instr::UnOp { src, .. } => f(*src),
            Instr::BinOp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Instr::BinOpConst { lhs, .. } => f(*lhs),
            Instr::StrOp { lhs, rhs, .. } => {
                f(*lhs);
                if let Some(r) = rhs {
                    f(*r);
                }
            }
            Instr::If { lhs, rhs, .. } => {
                f(*lhs);
                if let RegOrConst::Reg(r) = rhs {
                    f(*r);
                }
            }
            Instr::Switch { src, .. } => f(*src),
            Instr::Invoke { args, .. } | Instr::HostCall { args, .. } => {
                for r in args {
                    f(*r);
                }
            }
            Instr::InvokeReflect { name, args, .. } => {
                f(*name);
                for r in args {
                    f(*r);
                }
            }
            Instr::GetField { obj, .. } => f(*obj),
            Instr::PutField { obj, src, .. } => {
                f(*obj);
                f(*src);
            }
            Instr::PutStatic { src, .. } => f(*src),
            Instr::NewArray { len, .. } => f(*len),
            Instr::ArrayGet { arr, idx, .. } => {
                f(*arr);
                f(*idx);
            }
            Instr::ArrayPut { arr, idx, src } => {
                f(*arr);
                f(*idx);
                f(*src);
            }
            Instr::ArrayLen { arr, .. } => f(*arr),
            Instr::Hash { src, .. } => f(*src),
            Instr::StegoExtract { src, .. } => f(*src),
            Instr::DecryptExec { key_src, .. } => f(*key_src),
            Instr::Return { src } => {
                if let Some(r) = src {
                    f(*r);
                }
            }
        }
        if let Some(d) = self.def() {
            f(d);
        }
    }

    /// Whether control can fall through to the next instruction.
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            Instr::Goto { .. } | Instr::Return { .. } | Instr::Throw { .. } | Instr::Switch { .. }
        )
    }

    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::If { .. }
                | Instr::Switch { .. }
                | Instr::Goto { .. }
                | Instr::Return { .. }
                | Instr::Throw { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        for op in [
            CondOp::Eq,
            CondOp::Ne,
            CondOp::Lt,
            CondOp::Le,
            CondOp::Gt,
            CondOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn def_use_coverage() {
        let i = Instr::BinOp {
            op: BinOp::Add,
            dst: Reg(2),
            lhs: Reg(0),
            rhs: Reg(1),
        };
        assert_eq!(i.def(), Some(Reg(2)));
        assert_eq!(i.uses(), vec![Reg(0), Reg(1)]);

        let j = Instr::If {
            cond: CondOp::Eq,
            lhs: Reg(3),
            rhs: RegOrConst::Const(Value::Int(5)),
            target: 7,
        };
        assert_eq!(j.def(), None);
        assert_eq!(j.uses(), vec![Reg(3)]);
        assert_eq!(j.branch_targets(), vec![7]);
        assert!(j.falls_through());

        let g = Instr::Goto { target: 3 };
        assert!(!g.falls_through());
        assert!(g.is_terminator());
    }

    #[test]
    fn switch_targets_include_default() {
        let s = Instr::Switch {
            src: Reg(0),
            arms: vec![(1, 10), (2, 20)],
            default: 30,
        };
        assert_eq!(s.branch_targets(), vec![10, 20, 30]);
        assert!(!s.falls_through());
    }
}
