//! Classes, fields, and methods.

use crate::instr::Instr;
use crate::value::{ClassName, MethodRef};
use std::sync::Arc;

/// Whether a field is per-instance or class-static.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// One slot per object.
    Instance,
    /// One slot per class, shared by all code.
    Static,
}

/// A declared field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name, unique within the class.
    pub name: Arc<str>,
    /// Instance or static.
    pub kind: FieldKind,
}

impl Field {
    /// Declares an instance field.
    pub fn instance(name: impl AsRef<str>) -> Self {
        Field {
            name: Arc::from(name.as_ref()),
            kind: FieldKind::Instance,
        }
    }

    /// Declares a static field.
    pub fn stat(name: impl AsRef<str>) -> Self {
        Field {
            name: Arc::from(name.as_ref()),
            kind: FieldKind::Static,
        }
    }
}

/// A method: name, frame size, parameter count, and body.
///
/// Parameters arrive in registers `v0..v(params-1)`; the frame has
/// `registers` slots total.
#[derive(Debug, Clone, PartialEq)]
pub struct Method {
    /// Owning class.
    pub class: ClassName,
    /// Method name, unique within the class.
    pub name: Arc<str>,
    /// Number of parameters (stored in the lowest registers).
    pub params: u16,
    /// Total frame registers.
    pub registers: u16,
    /// Instruction list; branch targets are absolute indices into it.
    pub body: Vec<Instr>,
}

impl Method {
    /// This method's [`MethodRef`].
    pub fn method_ref(&self) -> MethodRef {
        MethodRef {
            class: self.class.clone(),
            name: self.name.clone(),
        }
    }
}

/// A class: named fields plus methods.
#[derive(Debug, Clone, PartialEq)]
pub struct Class {
    /// Class name, unique within the DEX file.
    pub name: ClassName,
    /// Declared fields.
    pub fields: Vec<Field>,
    /// Declared methods.
    pub methods: Vec<Method>,
}

impl Class {
    /// Creates an empty class.
    pub fn new(name: impl Into<ClassName>) -> Self {
        Class {
            name: name.into(),
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Looks up a method by name.
    pub fn method(&self, name: &str) -> Option<&Method> {
        self.methods.iter().find(|m| &*m.name == name)
    }

    /// Looks up a method by name, mutably.
    pub fn method_mut(&mut self, name: &str) -> Option<&mut Method> {
        self.methods.iter_mut().find(|m| &*m.name == name)
    }

    /// Whether the class declares a field with this name and kind.
    pub fn has_field(&self, name: &str, kind: FieldKind) -> bool {
        self.fields
            .iter()
            .any(|f| &*f.name == name && f.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        let mut c = Class::new("A");
        c.fields.push(Field::instance("x"));
        c.fields.push(Field::stat("S"));
        c.methods.push(Method {
            class: ClassName::new("A"),
            name: Arc::from("m"),
            params: 0,
            registers: 1,
            body: vec![Instr::Return { src: None }],
        });
        assert!(c.method("m").is_some());
        assert!(c.method("nope").is_none());
        assert!(c.has_field("x", FieldKind::Instance));
        assert!(!c.has_field("x", FieldKind::Static));
        assert!(c.has_field("S", FieldKind::Static));
        assert_eq!(c.method("m").unwrap().method_ref().to_string(), "A.m");
    }
}
