//! Textual disassembler (smali-flavoured).
//!
//! This is the view an attacker gets of the protected bytecode: the *text
//! search* attack of §2.1 greps the output for suspicious strings such as
//! `getPublicKey`, `sha1-hash` or `decrypt-exec`. Encrypted blob contents
//! appear only as opaque hex, which is the point of the whole design.

use crate::class::{Class, FieldKind, Method};
use crate::dex_file::DexFile;
use crate::instr::Instr;
use std::fmt::Write as _;

/// Disassembles a single instruction at index `idx`.
pub fn disasm_instr(idx: usize, instr: &Instr) -> String {
    let body = match instr {
        Instr::Const { dst, value } => format!("const {dst}, #{value}"),
        Instr::Move { dst, src } => format!("move {dst}, {src}"),
        Instr::BinOp { op, dst, lhs, rhs } => {
            format!("{} {dst}, {lhs}, {rhs}", op.mnemonic())
        }
        Instr::BinOpConst { op, dst, lhs, rhs } => {
            format!("{}/lit {dst}, {lhs}, #{rhs}", op.mnemonic())
        }
        Instr::UnOp { op, dst, src } => format!("{} {dst}, {src}", op.mnemonic()),
        Instr::StrOp { op, dst, lhs, rhs } => match rhs {
            Some(r) => format!("{} {dst}, {lhs}, {r}", op.mnemonic()),
            None => format!("{} {dst}, {lhs}", op.mnemonic()),
        },
        Instr::If {
            cond,
            lhs,
            rhs,
            target,
        } => format!("{} {lhs}, {rhs} -> @{target}", cond.mnemonic()),
        Instr::Switch { src, arms, default } => {
            let mut s = format!("table-switch {src} {{");
            for (v, t) in arms {
                let _ = write!(s, " {v}->@{t}");
            }
            let _ = write!(s, " default->@{default} }}");
            s
        }
        Instr::Goto { target } => format!("goto @{target}"),
        Instr::Invoke { method, args, dst } => {
            format_call(&format!("invoke-static {method}"), args_str(args), dst)
        }
        Instr::InvokeReflect { name, args, dst } => {
            format_call(&format!("invoke-reflect name={name}"), args_str(args), dst)
        }
        Instr::HostCall { api, args, dst } => {
            format_call(&format!("invoke-host {}", api.name()), args_str(args), dst)
        }
        Instr::GetField { dst, obj, field } => format!("iget {dst}, {obj}, {field}"),
        Instr::PutField { obj, field, src } => format!("iput {src}, {obj}, {field}"),
        Instr::GetStatic { dst, field } => format!("sget {dst}, {field}"),
        Instr::PutStatic { field, src } => format!("sput {src}, {field}"),
        Instr::NewInstance { dst, class } => format!("new-instance {dst}, {class}"),
        Instr::NewArray { dst, len } => format!("new-array {dst}, {len}"),
        Instr::ArrayGet { dst, arr, idx } => format!("aget {dst}, {arr}, {idx}"),
        Instr::ArrayPut { arr, idx, src } => format!("aput {src}, {arr}, {idx}"),
        Instr::ArrayLen { dst, arr } => format!("array-length {dst}, {arr}"),
        Instr::Hash { dst, src, salt } => format!(
            "sha1-hash {dst}, {src}, salt=0x{}",
            bombdroid_crypto::hex::encode(salt)
        ),
        Instr::DecryptExec { blob, key_src } => {
            format!("decrypt-exec {blob}, key={key_src}")
        }
        Instr::StegoExtract { dst, src } => format!("cfg-decode {dst}, {src}"),
        Instr::Return { src } => match src {
            Some(r) => format!("return {r}"),
            None => "return-void".to_string(),
        },
        Instr::Throw { msg } => format!("throw {msg:?}"),
        Instr::Nop => "nop".to_string(),
    };
    format!("  @{idx:<4} {body}")
}

fn args_str(args: &[crate::instr::Reg]) -> String {
    let parts: Vec<String> = args.iter().map(|r| r.to_string()).collect();
    parts.join(", ")
}

fn format_call(head: &str, args: String, dst: &Option<crate::instr::Reg>) -> String {
    let mut s = format!("{head} ({args})");
    if let Some(d) = dst {
        let _ = write!(s, " -> {d}");
    }
    s
}

/// Disassembles a full method.
pub fn disasm_method(m: &Method) -> String {
    let mut out = format!(
        ".method {}.{} params={} registers={}\n",
        m.class, m.name, m.params, m.registers
    );
    for (i, instr) in m.body.iter().enumerate() {
        out.push_str(&disasm_instr(i, instr));
        out.push('\n');
    }
    out.push_str(".end method\n");
    out
}

/// Disassembles a class.
pub fn disasm_class(c: &Class) -> String {
    let mut out = format!(".class {}\n", c.name);
    for f in &c.fields {
        let kind = match f.kind {
            FieldKind::Instance => "field",
            FieldKind::Static => "static-field",
        };
        let _ = writeln!(out, ".{kind} {}", f.name);
    }
    for m in &c.methods {
        out.push_str(&disasm_method(m));
    }
    out.push_str(".end class\n");
    out
}

/// Disassembles an entire DEX file, including opaque blob hex.
pub fn disasm_dex(dex: &DexFile) -> String {
    let mut out = String::new();
    for c in &dex.classes {
        out.push_str(&disasm_class(c));
        out.push('\n');
    }
    for (i, b) in dex.blobs.iter().enumerate() {
        let _ = writeln!(
            out,
            ".blob #{i} salt=0x{} sealed=0x{}",
            bombdroid_crypto::hex::encode(&b.salt),
            bombdroid_crypto::hex::encode(&b.sealed)
        );
    }
    for e in &dex.entry_points {
        let _ = writeln!(out, ".entry {} -> {}", e.event, e.method);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;
    use crate::dex_file::{BlobId, EncryptedBlob};
    use crate::instr::{CondOp, HostApi, Reg, RegOrConst};
    use crate::value::Value;

    #[test]
    fn disassembly_mentions_key_constructs() {
        let mut dex = DexFile::new();
        let mut c = Class::new("A");
        let mut b = MethodBuilder::new("A", "m", 1);
        let end = b.fresh_label();
        let h = b.fresh_reg();
        b.hash(h, Reg(0), vec![0xAA]);
        b.if_not(
            CondOp::Eq,
            h,
            RegOrConst::Const(Value::bytes([1, 2, 3])),
            end,
        );
        b.decrypt_exec(BlobId(0), Reg(0));
        b.place_label(end);
        b.host(HostApi::GetPublicKey, vec![], Some(h));
        b.ret_void();
        c.methods.push(b.finish());
        dex.classes.push(c);
        dex.add_blob(EncryptedBlob {
            salt: vec![0xAA],
            sealed: vec![0xBB; 30],
        });
        let text = disasm_dex(&dex);
        assert!(text.contains("sha1-hash"));
        assert!(text.contains("decrypt-exec"));
        assert!(text.contains("Certificate.getPublicKey"));
        assert!(text.contains(".blob #0 salt=0xaa"));
        // Blob plaintext is NOT visible.
        assert!(!text.contains("plaintext"));
    }

    #[test]
    fn every_instruction_disassembles() {
        // Smoke-test the formatter across the whole ISA.
        use crate::instr::{BinOp, StrOp, UnOp};
        let instrs = vec![
            Instr::Const {
                dst: Reg(0),
                value: Value::Int(1),
            },
            Instr::Move {
                dst: Reg(0),
                src: Reg(1),
            },
            Instr::BinOp {
                op: BinOp::Add,
                dst: Reg(0),
                lhs: Reg(1),
                rhs: Reg(2),
            },
            Instr::BinOpConst {
                op: BinOp::Xor,
                dst: Reg(0),
                lhs: Reg(1),
                rhs: 5,
            },
            Instr::UnOp {
                op: UnOp::Neg,
                dst: Reg(0),
                src: Reg(1),
            },
            Instr::StrOp {
                op: StrOp::Equals,
                dst: Reg(0),
                lhs: Reg(1),
                rhs: Some(Reg(2)),
            },
            Instr::Switch {
                src: Reg(0),
                arms: vec![(1, 2)],
                default: 3,
            },
            Instr::Goto { target: 0 },
            Instr::Throw { msg: "bad".into() },
            Instr::Nop,
        ];
        for (i, instr) in instrs.iter().enumerate() {
            let line = disasm_instr(i, instr);
            assert!(line.contains(&format!("@{i}")), "line: {line}");
        }
    }
}
