//! Constant values and symbolic references (class/method/field names).

use std::fmt;
use std::sync::Arc;

/// A constant value embeddable in bytecode.
///
/// The paper's qualified conditions compare booleans, integers and strings
/// (§8.3.1 grades obfuscation strength *weak/medium/strong* by exactly these
/// three types); `Bytes` carries hash digests for obfuscated conditions and
/// steganographic resource payloads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Absence of an object reference.
    Null,
    /// Boolean constant (weak obfuscation strength: |dom| = 2).
    Bool(bool),
    /// 64-bit integer constant (medium strength: |dom| ≤ 2^32 in practice).
    Int(i64),
    /// String constant (strong strength: unbounded domain).
    Str(Arc<str>),
    /// Raw bytes: digests, public keys, steganographic payloads.
    Bytes(Arc<[u8]>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for byte values.
    pub fn bytes(b: impl AsRef<[u8]>) -> Self {
        Value::Bytes(Arc::from(b.as_ref()))
    }

    /// Canonical byte encoding used for hashing (`Hash(X|salt)`) and key
    /// derivation (`KDF(c|salt)`). Tagged so different types with identical
    /// raw bytes never collide.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        match self {
            Value::Null => vec![0x00],
            Value::Bool(b) => vec![0x01, *b as u8],
            Value::Int(i) => {
                let mut v = Vec::with_capacity(9);
                v.push(0x02);
                v.extend_from_slice(&i.to_be_bytes());
                v
            }
            Value::Str(s) => {
                let mut v = Vec::with_capacity(1 + s.len());
                v.push(0x03);
                v.extend_from_slice(s.as_bytes());
                v
            }
            Value::Bytes(b) => {
                let mut v = Vec::with_capacity(1 + b.len());
                v.push(0x04);
                v.extend_from_slice(b);
                v
            }
        }
    }

    /// The type tag used by strength grading and the wire format.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
        }
    }

    /// Whether the value is "truthy" when used in a boolean position
    /// (non-zero int, `true`, non-empty string/bytes, non-null).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Str(s) => !s.is_empty(),
            Value::Bytes(b) => !b.is_empty(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => {
                write!(f, "0x")?;
                for byte in b.iter() {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

/// A fully-qualified class name, e.g. `com/example/MainActivity`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassName(pub Arc<str>);

impl ClassName {
    /// Creates a class name from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        ClassName(Arc::from(name.as_ref()))
    }

    /// The name as a `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for ClassName {
    fn from(s: &str) -> Self {
        ClassName::new(s)
    }
}

/// A reference to a method: owning class + method name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodRef {
    /// Owning class.
    pub class: ClassName,
    /// Method name within the class.
    pub name: Arc<str>,
}

impl MethodRef {
    /// Creates a method reference.
    pub fn new(class: impl Into<ClassName>, name: impl AsRef<str>) -> Self {
        MethodRef {
            class: class.into(),
            name: Arc::from(name.as_ref()),
        }
    }
}

impl fmt::Display for MethodRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.name)
    }
}

/// A reference to a field: owning class + field name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldRef {
    /// Owning class.
    pub class: ClassName,
    /// Field name within the class.
    pub name: Arc<str>,
}

impl FieldRef {
    /// Creates a field reference.
    pub fn new(class: impl Into<ClassName>, name: impl AsRef<str>) -> Self {
        FieldRef {
            class: class.into(),
            name: Arc::from(name.as_ref()),
        }
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_bytes_are_type_tagged() {
        // Int 0 and Bool false must hash differently.
        assert_ne!(
            Value::Int(0).canonical_bytes(),
            Value::Bool(false).canonical_bytes()
        );
        // Str "a" and Bytes b"a" must differ.
        assert_ne!(
            Value::str("a").canonical_bytes(),
            Value::bytes(b"a").canonical_bytes()
        );
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(Value::str("x").is_truthy());
        assert!(!Value::str("").is_truthy());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::bytes([0xde, 0xad]).to_string(), "0xdead");
        assert_eq!(MethodRef::new("A", "m").to_string(), "A.m");
    }
}
