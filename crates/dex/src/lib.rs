//! A Dalvik-style register-machine bytecode substrate.
//!
//! The real BombDroid operates on Android DEX bytecode via apktool, dex2jar,
//! Javassist and Soot. None of those exist for this reproduction, so this
//! crate provides the equivalent substrate: a compact register-based IR with
//! classes, fields, methods, equality-checking conditional branches (the
//! analogues of `IFEQ`, `IFNE`, `IF_ICMPEQ`, `IF_ICMPNE`, `TABLESWITCH` the
//! paper scans for in §7.2), string comparison operations (`equals`,
//! `startsWith`, `endsWith` — §3.3), host-API calls into the Android
//! framework shims, and two instructions at the heart of the paper's
//! contribution:
//!
//! * [`Instr::Hash`] — computes the salted SHA-1 of a register, used to
//!   rewrite `X == c` into `Hash(X|salt) == Hc`;
//! * [`Instr::DecryptExec`] — derives `key = KDF(X|salt)`, opens an
//!   [`EncryptedBlob`] embedded in the DEX, and executes the decrypted code
//!   fragment inline (the analogue of writing a `.dex` file and loading it
//!   through ART's dynamic class loading, §7.5).
//!
//! The crate also provides:
//!
//! * [`wire`] — a deterministic binary encoding (the "classes.dex file"),
//!   used for APK packaging, code-size measurements, and digest computation;
//! * [`asm`] — a textual disassembler, which is what the *text search*
//!   attack greps through;
//! * [`validate`] — structural validation (register bounds, branch targets,
//!   blob references).
//!
//! # Example: building a method with a qualified condition
//!
//! ```
//! use bombdroid_dex::{MethodBuilder, Reg, Value, CondOp, RegOrConst};
//!
//! // void check(int x) { if (x == 0xfff000) { log(); } }
//! let mut b = MethodBuilder::new("Example", "check", 1);
//! let x = Reg(0);
//! let skip = b.fresh_label();
//! b.if_not(CondOp::Eq, x, RegOrConst::Const(Value::Int(0xfff000)), skip);
//! b.host_log("mode matched");
//! b.place_label(skip);
//! b.ret_void();
//! let method = b.finish();
//! assert_eq!(method.body.len(), 4); // if + const(msg) + log + return
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod class;
pub mod dex_file;
pub mod instr;
pub mod validate;
pub mod value;
pub mod wire;

pub use builder::MethodBuilder;
pub use class::{Class, Field, FieldKind, Method};
pub use dex_file::{BlobId, DexFile, EncryptedBlob, EntryPoint, ParamDomain};
pub use instr::{
    BinOp, CondOp, EnvKey, HostApi, Instr, Reg, RegOrConst, SensorKind, StrOp, UiKind, UnOp,
};
pub use validate::{validate, ValidateError};
pub use value::{ClassName, FieldRef, MethodRef, Value};
