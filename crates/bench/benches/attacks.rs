//! Attack-cost benchmarks: what the adversary pays per analysis pass —
//! symbolic exploration, slicing, brute-force tries, and a minute of
//! fuzzing.

use bombdroid_attacks::{brute, fuzz, symbolic};
use bombdroid_bench::experiments::protect_app;
use bombdroid_core::ProtectConfig;
use bombdroid_crypto::kdf;
use bombdroid_dex::Value;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_symbolic(c: &mut Criterion) {
    let app = bombdroid_corpus::flagship::hash_droid();
    let (_, signed) = protect_app(&app, ProtectConfig::fast_profile(), 0xA77);
    c.bench_function("attacks/symbolic_analyze_dex", |b| {
        b.iter(|| {
            symbolic::analyze_dex(
                std::hint::black_box(&signed.dex),
                symbolic::Limits {
                    max_paths: 64,
                    max_steps: 512,
                },
            )
            .bombs
            .len()
        })
    });
}

fn bench_brute(c: &mut Criterion) {
    let salt = b"bench-salt".to_vec();
    let weak = brute::ObfuscatedCondition {
        method: bombdroid_dex::MethodRef::new("T", "m"),
        pc: 0,
        hc: kdf::condition_hash(&Value::Bool(true).canonical_bytes(), &salt).to_vec(),
        salt: salt.clone(),
    };
    c.bench_function("attacks/brute_crack_weak", |b| {
        b.iter(|| brute::crack(std::hint::black_box(&weak), 1_000).tries)
    });
    let medium = brute::ObfuscatedCondition {
        method: bombdroid_dex::MethodRef::new("T", "m"),
        pc: 0,
        hc: kdf::condition_hash(&Value::Int(40_000).canonical_bytes(), &salt).to_vec(),
        salt,
    };
    c.bench_function("attacks/brute_crack_medium_80k_tries", |b| {
        b.iter(|| brute::crack(std::hint::black_box(&medium), 100_000).tries)
    });
}

fn bench_fuzz_minute(c: &mut Criterion) {
    let app = bombdroid_corpus::flagship::angulo();
    let (_, signed) = protect_app(&app, ProtectConfig::fast_profile(), 0xA78);
    c.bench_function("attacks/dynodroid_one_minute", |b| {
        b.iter(|| {
            fuzz::run_fuzzer(
                fuzz::FuzzerKind::Dynodroid,
                std::hint::black_box(&signed),
                1,
                9,
            )
            .events
        })
    });
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_symbolic, bench_brute, bench_fuzz_minute
}
criterion_main!(benches);
