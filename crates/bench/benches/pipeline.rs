//! Protection-pipeline benchmarks: what it costs to harden an app with
//! each scheme (BombDroid, naive, SSN) — the offline cost a protection
//! service pays per submitted APK.

use bombdroid_bench::fixed_keys;
use bombdroid_core::{NaiveProtector, ProtectConfig, Protector};
use bombdroid_ssn::{SsnConfig, SsnProtector};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};

fn bench_protectors(c: &mut Criterion) {
    let (dev, _) = fixed_keys();
    let app = bombdroid_corpus::flagship::angulo();
    let apk = app.apk(&dev);
    let config = ProtectConfig::fast_profile();

    c.bench_function("pipeline/bombdroid_protect", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            Protector::new(config.clone())
                .protect(std::hint::black_box(&apk), &mut rng)
                .unwrap()
                .report
                .bombs_injected()
        })
    });
    c.bench_function("pipeline/naive_protect", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            NaiveProtector::new(config.clone())
                .protect(std::hint::black_box(&apk), &mut rng)
                .unwrap()
                .report
                .bombs_injected()
        })
    });
    c.bench_function("pipeline/ssn_protect", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            SsnProtector::new(SsnConfig::default())
                .protect(std::hint::black_box(&apk), &mut rng)
                .report
                .detection_nodes
        })
    });
}

fn bench_generation(c: &mut Criterion) {
    c.bench_function("pipeline/generate_game_app", |b| {
        b.iter(|| {
            bombdroid_corpus::generate_app("BenchApp", bombdroid_corpus::Category::Game, 5)
                .dex
                .instruction_count()
        })
    });
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_protectors, bench_generation
}
criterion_main!(benches);
