//! VM throughput benchmarks: event execution on original vs protected
//! builds (the Table 5 kernel) and the decrypt-exec cold/warm costs.

use bombdroid_bench::{experiments::protect_app, fixed_keys};
use bombdroid_core::ProtectConfig;
use bombdroid_runtime::{DeviceEnv, EventSource, InstalledPackage, RandomEventSource, Vm};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn run_events(pkg: &Arc<InstalledPackage>, n: u64, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vm = Vm::boot(Arc::clone(pkg), DeviceEnv::sample(&mut rng), seed);
    let mut source = RandomEventSource;
    let dex = Arc::clone(&vm.pkg.dex);
    for _ in 0..n {
        if let Some(ev) = source.next_event(&dex, &mut rng) {
            let _ = vm.fire_entry(ev.entry_index, ev.args);
        }
        if vm.is_killed() || vm.is_frozen() {
            break;
        }
    }
    vm.telemetry().instr_executed
}

fn bench_event_throughput(c: &mut Criterion) {
    let (dev, _) = fixed_keys();
    let app = bombdroid_corpus::flagship::hash_droid();
    let original = Arc::new(InstalledPackage::install(&app.apk(&dev)).unwrap());
    let (_, signed) = protect_app(&app, ProtectConfig::fast_profile(), 0xBE);
    let protected = Arc::new(InstalledPackage::install(&signed).unwrap());

    c.bench_function("vm/100_events_original", |b| {
        b.iter(|| run_events(std::hint::black_box(&original), 100, 3))
    });
    c.bench_function("vm/100_events_protected", |b| {
        b.iter(|| run_events(std::hint::black_box(&protected), 100, 3))
    });
}

fn bench_install(c: &mut Criterion) {
    let (dev, _) = fixed_keys();
    let app = bombdroid_corpus::flagship::catlog();
    let apk = app.apk(&dev);
    c.bench_function("vm/install_verify", |b| {
        b.iter(|| InstalledPackage::install(std::hint::black_box(&apk)).unwrap())
    });
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_event_throughput, bench_install
}
criterion_main!(benches);
