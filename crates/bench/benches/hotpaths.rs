//! Criterion mirror of the `perf` harness suite: the same hot paths,
//! interactively. Use `perf` (the bin) for the committed machine-readable
//! artifact; use this for quick local iteration on one path.

use bombdroid_bench::{experiments::protect_app, fixed_keys};
use bombdroid_core::ProtectConfig;
use bombdroid_crypto::{aes, blob, kdf};
use bombdroid_dex::{wire, Value};
use bombdroid_runtime::{DeviceEnv, EventSource, InstalledPackage, RandomEventSource, Vm};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::{rngs::StdRng, SeedableRng};

fn bench_site_material(c: &mut Criterion) {
    // The one-pass per-bomb derivation: condition hash + payload key.
    let constant = Value::Int(0xfff000);
    let salt = [9u8; 8];
    c.bench_function("site_material/int", |b| {
        b.iter(|| {
            kdf::site_material(
                &std::hint::black_box(&constant).canonical_bytes(),
                std::hint::black_box(&salt),
            )
        })
    });
}

fn bench_schedule_reuse(c: &mut Criterion) {
    // Free-function CTR re-expands the key schedule per call; the method
    // amortizes it. The gap is what blob::seal saves per bomb.
    let key = [7u8; 16];
    let mut data = vec![0u8; 1024];
    let mut g = c.benchmark_group("ctr_schedule");
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("fresh_schedule", |b| {
        b.iter(|| aes::ctr_xor(&key, 42, std::hint::black_box(&mut data)))
    });
    let aes = aes::Aes128::new(&key);
    g.bench_function("reused_schedule", |b| {
        b.iter(|| aes.ctr_xor(42, std::hint::black_box(&mut data)))
    });
    g.finish();
}

fn bench_seal(c: &mut Criterion) {
    let key = kdf::derive_key(b"constant", b"salt");
    let payload = vec![0x5Au8; 400];
    let mut g = c.benchmark_group("blob");
    g.throughput(Throughput::Bytes(400));
    g.bench_function("seal/400", |b| {
        b.iter(|| blob::seal(&key, std::hint::black_box(&payload)))
    });
    g.finish();
}

fn bench_dex_sizes(c: &mut Criterion) {
    // encoded_dex_len vs a full encode: the size-reporting path the protect
    // pipeline runs twice per APK.
    let app = bombdroid_corpus::flagship::hash_droid();
    let mut g = c.benchmark_group("dex_size");
    g.bench_function("encode_then_len", |b| {
        b.iter(|| wire::encode_dex(std::hint::black_box(&app.dex)).len())
    });
    g.bench_function("encoded_dex_len", |b| {
        b.iter(|| wire::encoded_dex_len(std::hint::black_box(&app.dex)))
    });
    g.finish();
}

fn bench_protect(c: &mut Criterion) {
    let (dev, _) = fixed_keys();
    let app = bombdroid_corpus::flagship::hash_droid();
    let apk = app.apk(&dev);
    let protector = bombdroid_core::Protector::new(ProtectConfig::fast_profile());
    c.bench_function("protect/hash_droid", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            protector
                .protect(std::hint::black_box(&apk), &mut rng)
                .unwrap()
                .report
                .bombs_injected()
        })
    });
}

fn bench_vm_drive(c: &mut Criterion) {
    let app = bombdroid_corpus::flagship::hash_droid();
    let (_, signed) = protect_app(&app, ProtectConfig::fast_profile(), 0xBE);
    let pkg = std::sync::Arc::new(InstalledPackage::install(&signed).expect("signed install"));
    c.bench_function("vm/drive_50ev", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut vm = Vm::boot(std::sync::Arc::clone(&pkg), DeviceEnv::sample(&mut rng), 3);
            let mut source = RandomEventSource;
            let dex = std::sync::Arc::clone(&vm.pkg.dex);
            for _ in 0..50 {
                if let Some(ev) = source.next_event(&dex, &mut rng) {
                    let _ = vm.fire_entry(ev.entry_index, ev.args);
                }
                if vm.is_killed() || vm.is_frozen() {
                    break;
                }
            }
            vm.telemetry().instr_executed
        })
    });
}

criterion_group!(
    benches,
    bench_site_material,
    bench_schedule_reuse,
    bench_seal,
    bench_dex_sizes,
    bench_protect,
    bench_vm_drive
);
criterion_main!(benches);
