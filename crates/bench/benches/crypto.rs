//! Microbenchmarks for the from-scratch crypto substrate: the cost of one
//! trigger-condition hash and one payload seal/open — the per-bomb runtime
//! primitives behind Table 5's overhead.

use bombdroid_crypto::{aes, blob, kdf, sha1, sha256};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for size in [16usize, 256, 4_096] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha1/{size}"), |b| {
            b.iter(|| sha1::digest(std::hint::black_box(&data)))
        });
        g.bench_function(format!("sha256/{size}"), |b| {
            b.iter(|| sha256::digest(std::hint::black_box(&data)))
        });
    }
    g.finish();
}

fn bench_condition_hash(c: &mut Criterion) {
    // The exact operation every outer trigger evaluation performs.
    c.bench_function("condition_hash/int", |b| {
        let v = bombdroid_dex::Value::Int(0xfff000).canonical_bytes();
        b.iter(|| kdf::condition_hash(std::hint::black_box(&v), b"salt-16-bytes!!!"))
    });
}

fn bench_aes(c: &mut Criterion) {
    let key = [7u8; 16];
    let mut g = c.benchmark_group("aes128");
    for size in [64usize, 1_024, 16_384] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("ctr/{size}"), |b| {
            let mut data = vec![0u8; size];
            b.iter(|| aes::ctr_xor(&key, 42, std::hint::black_box(&mut data)))
        });
    }
    g.finish();
    c.bench_function("aes128/expand_key", |b| {
        b.iter(|| aes::Aes128::new(std::hint::black_box(&key)))
    });
}

fn bench_blob(c: &mut Criterion) {
    // A typical bomb payload is a few hundred bytes of encoded fragment.
    let key = kdf::derive_key(b"constant", b"salt");
    let payload = vec![0x5Au8; 400];
    let sealed = blob::seal(&key, &payload);
    c.bench_function("blob/seal_400B", |b| {
        b.iter(|| blob::seal(std::hint::black_box(&key), std::hint::black_box(&payload)))
    });
    c.bench_function("blob/open_400B", |b| {
        b.iter(|| blob::open(std::hint::black_box(&key), std::hint::black_box(&sealed)).unwrap())
    });
    // What a forced-execution attacker pays per wrong-key attempt.
    let wrong = kdf::derive_key(b"wrong", b"salt");
    c.bench_function("blob/open_wrong_key", |b| {
        b.iter(|| {
            blob::open(std::hint::black_box(&wrong), std::hint::black_box(&sealed)).unwrap_err()
        })
    });
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_hashes, bench_condition_hash, bench_aes, bench_blob
}
criterion_main!(benches);
