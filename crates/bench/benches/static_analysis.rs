//! Benchmarks for the Soot-shaped analysis substrate: CFG construction,
//! dominators, loop detection, QC scanning, and slicing over a realistic
//! flagship app (protection Step 2 of the paper's Fig. 1).

use bombdroid_analysis::{backward_slice, qc, Cfg, Dominators, LoopInfo};
use bombdroid_dex::Instr;
use criterion::{criterion_group, criterion_main, Criterion};

fn app() -> bombdroid_corpus::GeneratedApp {
    bombdroid_corpus::flagship::hash_droid()
}

fn bench_cfg(c: &mut Criterion) {
    let app = app();
    c.bench_function("analysis/cfg_all_methods", |b| {
        b.iter(|| {
            let mut blocks = 0usize;
            for m in app.dex.methods() {
                blocks += Cfg::build(std::hint::black_box(m)).len();
            }
            blocks
        })
    });
}

fn bench_dominators_and_loops(c: &mut Criterion) {
    let app = app();
    let methods: Vec<_> = app.dex.methods().cloned().collect();
    c.bench_function("analysis/dominators_loops_all_methods", |b| {
        b.iter(|| {
            let mut loops = 0usize;
            for m in &methods {
                let cfg = Cfg::build(m);
                if !cfg.is_empty() {
                    let dom = Dominators::compute(&cfg);
                    loops += LoopInfo::compute(&cfg, &dom).back_edges.len();
                }
            }
            loops
        })
    });
}

fn bench_qc_scan(c: &mut Criterion) {
    let app = app();
    c.bench_function("analysis/qc_scan_dex", |b| {
        b.iter(|| qc::scan_dex(std::hint::black_box(&app.dex)).len())
    });
}

fn bench_slicing(c: &mut Criterion) {
    let app = app();
    // Slice from the last instruction of the biggest method.
    let method = app
        .dex
        .methods()
        .max_by_key(|m| m.body.len())
        .expect("nonempty app")
        .clone();
    let seed = method
        .body
        .iter()
        .rposition(|i| !matches!(i, Instr::Return { .. }))
        .unwrap_or(0);
    c.bench_function("analysis/backward_slice_largest_method", |b| {
        b.iter(|| {
            backward_slice(std::hint::black_box(&method), seed)
                .pcs
                .len()
        })
    });
}

fn bench_wire(c: &mut Criterion) {
    let app = app();
    let bytes = bombdroid_dex::wire::encode_dex(&app.dex);
    c.bench_function("wire/encode_dex", |b| {
        b.iter(|| bombdroid_dex::wire::encode_dex(std::hint::black_box(&app.dex)).len())
    });
    c.bench_function("wire/decode_dex", |b| {
        b.iter(|| bombdroid_dex::wire::decode_dex(std::hint::black_box(&bytes)).unwrap())
    });
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets =
    bench_cfg,
    bench_dominators_and_loops,
    bench_qc_scan,
    bench_slicing,
    bench_wire

}
criterion_main!(benches);
