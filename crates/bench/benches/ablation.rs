//! Ablation benchmarks for DESIGN.md's called-out design choices,
//! measured at the protection-pipeline level: what each defence layer
//! costs to build.

use bombdroid_bench::fixed_keys;
use bombdroid_core::{ProtectConfig, Protector};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};

fn protect_with(config: ProtectConfig) -> usize {
    let (dev, _) = fixed_keys();
    let app = bombdroid_corpus::flagship::angulo();
    let apk = app.apk(&dev);
    let mut rng = StdRng::seed_from_u64(2);
    Protector::new(config)
        .protect(&apk, &mut rng)
        .unwrap()
        .report
        .bombs_injected()
}

fn bench_trigger_structure(c: &mut Criterion) {
    for (name, double) in [("single_trigger", false), ("double_trigger", true)] {
        c.bench_function(format!("ablation/protect_{name}"), |b| {
            b.iter(|| {
                protect_with(ProtectConfig {
                    double_trigger: double,
                    ..ProtectConfig::fast_profile()
                })
            })
        });
    }
}

fn bench_alpha(c: &mut Criterion) {
    for alpha in [0.0, 0.25, 0.5] {
        c.bench_function(format!("ablation/protect_alpha_{alpha}"), |b| {
            b.iter(|| {
                protect_with(ProtectConfig {
                    alpha,
                    ..ProtectConfig::fast_profile()
                })
            })
        });
    }
}

fn bench_weaving(c: &mut Criterion) {
    for (name, weave) in [("weave_on", true), ("weave_off", false)] {
        c.bench_function(format!("ablation/protect_{name}"), |b| {
            b.iter(|| {
                protect_with(ProtectConfig {
                    weave_original: weave,
                    ..ProtectConfig::fast_profile()
                })
            })
        });
    }
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_trigger_structure, bench_alpha, bench_weaving
}
criterion_main!(benches);
