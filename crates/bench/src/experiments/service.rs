//! Protect-as-a-service smoke: drives `bombdroid_core::service` end to
//! end with a fixed-seed job mix (duplicates included), exercises
//! admission control, and exports the schema-versioned `service.json`
//! artifact that `service_check` validates in CI.
//!
//! Everything in the artifact is deterministic: job outcomes depend only
//! on `(app bytes, config, effective seed)`, the drain returns results in
//! submission order regardless of `BOMBDROID_THREADS`, and the smoke
//! re-runs the same mix serially to prove the parallel drain produced
//! bit-identical bytes.

use super::harness::{flagships, PROTECT_BASE};
use crate::fixed_keys;
use bombdroid_core::service::{ProtectJob, ProtectService, ProtectionCache, SeedPolicy};
use bombdroid_core::{FleetConfig, ProtectConfig};
use bombdroid_crypto::{hex, sha256};
use bombdroid_dex::wire;
use bombdroid_obs::json::{self, JsonValue};
use std::sync::Arc;

/// `service.json` schema version.
pub const SERVICE_SCHEMA_VERSION: u32 = 1;

/// One drained job in the smoke run.
pub struct ServiceJobRow {
    /// Submission index (drain must return rows in this order).
    pub index: usize,
    /// Flagship app name.
    pub app: String,
    /// Effective seed the job's policy resolved to.
    pub seed: u64,
    /// Whether the artifact came out of the cache.
    pub cache_hit: bool,
    /// SHA-256 (hex) of the protected DEX wire bytes.
    pub dex_digest: String,
    /// Whether the signed package passed install-time verification.
    pub verified: bool,
    /// Bombs injected (real + bogus) per the protect report.
    pub bombs: usize,
}

/// Result of the service smoke run.
pub struct ServiceSmokeResult {
    /// Worker threads the parallel drain used.
    pub threads: usize,
    /// Per-job rows in submission order.
    pub rows: Vec<ServiceJobRow>,
    /// Protect passes the cache actually ran (misses).
    pub protects: usize,
    /// Requests served from a populated slot.
    pub hits: usize,
    /// Jobs refused by admission control during the overflow probe.
    pub shed: usize,
    /// Whether a serial (threads = 1) re-run of the same mix produced
    /// byte-identical artifacts in the same order.
    pub serial_identical: bool,
}

/// The fixed job mix: eight jobs over four distinct flagships, with every
/// distinct app also submitted a second time (four duplicates total).
const JOB_MIX: [usize; 8] = [0, 1, 0, 2, 1, 3, 0, 2];

fn run_mix(threads: usize, config: &ProtectConfig) -> (ProtectService, Vec<ServiceJobRow>) {
    let apps = flagships();
    let (dev, _) = fixed_keys();
    let apks: Vec<Arc<_>> = apps.iter().take(4).map(|a| Arc::new(a.apk(&dev))).collect();
    let mut svc =
        ProtectService::with_parts(threads, JOB_MIX.len(), Arc::new(ProtectionCache::new()));
    for &app_idx in &JOB_MIX {
        svc.submit(ProtectJob {
            apk: Arc::clone(&apks[app_idx]),
            config: config.clone(),
            seed: SeedPolicy::PerApp { base: PROTECT_BASE },
        })
        .expect("mix fits the queue bound");
    }
    // Overflow probe: the queue is at capacity, so one more submission
    // must shed with a typed error instead of growing the queue.
    let overflow = svc.submit(ProtectJob {
        apk: Arc::clone(&apks[0]),
        config: config.clone(),
        seed: SeedPolicy::PerApp { base: PROTECT_BASE },
    });
    assert!(overflow.is_err(), "submission past the bound must shed");
    let rows = svc
        .drain()
        .into_iter()
        .map(|o| {
            let protected = o.result.expect("flagships protect cleanly");
            let signed = protected.package(&dev);
            ServiceJobRow {
                index: o.index,
                app: apps[JOB_MIX[o.index]].name.clone(),
                seed: o.seed,
                cache_hit: o.cache_hit,
                dex_digest: hex::encode(&sha256::digest(&wire::encode_dex(&protected.dex))),
                verified: signed.verify().is_ok(),
                bombs: protected.report.bombs.len(),
            }
        })
        .collect();
    (svc, rows)
}

/// Runs the fixed-seed smoke: parallel drain (thread count from
/// `BOMBDROID_THREADS`, default all CPUs), then a serial control run to
/// prove the parallel outputs are bit-identical and identically ordered.
pub fn service_smoke(config: &ProtectConfig) -> ServiceSmokeResult {
    let threads = FleetConfig::from_env(PROTECT_BASE).threads;
    let (svc, rows) = run_mix(threads, config);
    let (_, serial_rows) = run_mix(1, config);
    let serial_identical = rows.len() == serial_rows.len()
        && rows.iter().zip(&serial_rows).all(|(a, b)| {
            a.index == b.index
                && a.seed == b.seed
                && a.cache_hit == b.cache_hit
                && a.dex_digest == b.dex_digest
        });
    ServiceSmokeResult {
        threads,
        protects: svc.cache().protect_count(),
        hits: svc.cache().hit_count(),
        shed: svc.shed_count(),
        serial_identical,
        rows,
    }
}

/// Renders the smoke result as the `service.json` artifact.
pub fn service_json(r: &ServiceSmokeResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema_version\": {SERVICE_SCHEMA_VERSION},\n"
    ));
    out.push_str("  \"kind\": \"service_smoke\",\n");
    out.push_str(&format!("  \"threads\": {},\n", r.threads));
    out.push_str(&format!("  \"protects\": {},\n", r.protects));
    out.push_str(&format!("  \"hits\": {},\n", r.hits));
    out.push_str(&format!("  \"shed\": {},\n", r.shed));
    out.push_str(&format!(
        "  \"serial_identical\": {},\n",
        r.serial_identical
    ));
    out.push_str("  \"jobs\": [\n");
    for (i, row) in r.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"index\": {}, \"app\": \"{}\", \"seed\": {}, \"cache_hit\": {}, \"dex_digest\": \"{}\", \"verified\": {}, \"bombs\": {}}}{}\n",
            row.index,
            row.app,
            row.seed,
            row.cache_hit,
            row.dex_digest,
            row.verified,
            row.bombs,
            if i + 1 == r.rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn req_int(obj: &JsonValue, key: &str, ctx: &str) -> Result<i128, String> {
    obj.get(key)
        .and_then(JsonValue::as_int)
        .ok_or_else(|| format!("{ctx}: missing or non-integer {key:?}"))
}

fn req_bool(obj: &JsonValue, key: &str, ctx: &str) -> Result<bool, String> {
    match obj.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("{ctx}: missing or non-bool {key:?}")),
    }
}

/// Validates a `service.json` document: schema shape plus the smoke's
/// acceptance rules — every job verified, submission-order indexes,
/// single-flight accounting (`hits + protects == jobs`, `protects` equals
/// the number of distinct artifacts), duplicate jobs byte-identical,
/// `cache_hit` exactly on re-requests, at least one shed submission, and
/// a serial control run that reproduced the parallel bytes.
pub fn validate_service_json(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("parse error: {e}"))?;
    let version = req_int(&doc, "schema_version", "document")?;
    if version != i128::from(SERVICE_SCHEMA_VERSION) {
        return Err(format!("unsupported schema_version {version}"));
    }
    match doc.get("kind").and_then(JsonValue::as_str) {
        Some("service_smoke") => {}
        other => return Err(format!("kind is {other:?}, expected \"service_smoke\"")),
    }
    let protects = req_int(&doc, "protects", "document")?;
    let hits = req_int(&doc, "hits", "document")?;
    let shed = req_int(&doc, "shed", "document")?;
    if !req_bool(&doc, "serial_identical", "document")? {
        return Err("serial control run diverged from the parallel drain".into());
    }
    if shed < 1 {
        return Err("overflow probe did not shed (admission control broken)".into());
    }
    let jobs = doc
        .get("jobs")
        .and_then(JsonValue::as_array)
        .ok_or("document: missing jobs array")?;
    if jobs.is_empty() {
        return Err("jobs array is empty".into());
    }
    let mut seen: Vec<&str> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        let ctx = format!("jobs[{i}]");
        let index = req_int(job, "index", &ctx)?;
        if index != i as i128 {
            return Err(format!("{ctx}: index {index} out of submission order"));
        }
        if !req_bool(job, "verified", &ctx)? {
            return Err(format!("{ctx}: signed package failed verification"));
        }
        if req_int(job, "bombs", &ctx)? < 1 {
            return Err(format!("{ctx}: protected app reports no bombs"));
        }
        let digest = job
            .get("dex_digest")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{ctx}: missing dex_digest"))?;
        let dup = seen.contains(&digest);
        if req_bool(job, "cache_hit", &ctx)? != dup {
            return Err(format!(
                "{ctx}: cache_hit disagrees with first-occurrence order"
            ));
        }
        seen.push(digest);
    }
    let mut distinct: Vec<&&str> = seen.iter().collect();
    distinct.sort();
    distinct.dedup();
    if protects != distinct.len() as i128 {
        return Err(format!(
            "protects = {protects} but jobs cover {} distinct artifacts",
            distinct.len()
        ));
    }
    if hits + protects != jobs.len() as i128 {
        return Err(format!(
            "hits ({hits}) + protects ({protects}) != jobs ({})",
            jobs.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_artifact_validates_and_is_thread_identical() {
        let r = service_smoke(&ProtectConfig::fast_profile());
        assert!(r.serial_identical);
        assert_eq!(r.protects, 4, "four distinct apps in the mix");
        assert_eq!(r.hits, 4, "four duplicates served from cache");
        assert_eq!(r.shed, 1, "overflow probe shed exactly once");
        let text = service_json(&r);
        validate_service_json(&text).expect("self-produced artifact validates");
    }

    #[test]
    fn validator_rejects_tampered_artifacts() {
        let r = service_smoke(&ProtectConfig::fast_profile());
        let good = service_json(&r);
        let bad = good.replace("\"serial_identical\": true", "\"serial_identical\": false");
        assert!(validate_service_json(&bad).is_err());
        let bad = good.replace("\"shed\": 1", "\"shed\": 0");
        assert!(validate_service_json(&bad).is_err());
        let bad = good.replace("\"verified\": true", "\"verified\": false");
        assert!(validate_service_json(&bad).is_err());
    }
}
