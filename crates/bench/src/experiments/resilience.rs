//! §5 — attack × protection resilience matrix.

use super::harness::{default_fleet, flagships, ExperimentError};
use bombdroid_attacks::resilience;
use bombdroid_core::{expect_all, run_fleet, FleetConfig};

/// Runs the attack × protection matrix for `app_count` flagships.
pub fn resilience_reports(app_count: usize) -> Vec<(String, resilience::ResilienceReport)> {
    resilience_reports_with(default_fleet(0x5EC), app_count)
}

/// [`resilience_reports`] with explicit fleet scheduling: one matrix per
/// flagship.
pub fn resilience_reports_with(
    fleet: FleetConfig,
    app_count: usize,
) -> Vec<(String, resilience::ResilienceReport)> {
    let apps: Vec<_> = flagships().into_iter().take(app_count).collect();
    expect_all(run_fleet(
        fleet,
        apps,
        |ctx, app| -> Result<(String, resilience::ResilienceReport), ExperimentError> {
            let report = resilience::resilience_matrix(&app, ctx.seed);
            Ok((app.name.clone(), report))
        },
    ))
}
