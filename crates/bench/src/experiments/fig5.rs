//! Fig. 5 — % of bombs triggered by Dynodroid over time.

use super::harness::{default_fleet, flagships, shared_cache, ExperimentError, PROTECT_BASE};
use bombdroid_attacks::fuzz;
use bombdroid_core::{expect_all, run_fleet, FleetConfig, ProtectConfig};

/// One Fig. 5 series: percentage of bombs triggered per minute.
#[derive(Debug, Clone)]
pub struct Fig5Series {
    /// App name.
    pub app: String,
    /// Real bombs in the app.
    pub total_bombs: usize,
    /// `(minute, % of bombs triggered)`.
    pub points: Vec<(u64, f64)>,
}

/// Regenerates Fig. 5: Dynodroid for `minutes` against each flagship,
/// sampling the triggered-bomb percentage per minute.
pub fn fig5(config: ProtectConfig, minutes: u64) -> Vec<Fig5Series> {
    fig5_with(default_fleet(0x7AB5), config, minutes)
}

/// [`fig5`] with explicit fleet scheduling: one task per flagship.
pub fn fig5_with(fleet: FleetConfig, config: ProtectConfig, minutes: u64) -> Vec<Fig5Series> {
    expect_all(run_fleet(
        fleet,
        flagships(),
        |ctx, app| -> Result<Fig5Series, ExperimentError> {
            let artifact =
                shared_cache().get_or_protect(&app, &config, PROTECT_BASE + ctx.index as u64)?;
            let total = artifact.0.report.bombs_injected().max(1);
            let report =
                fuzz::run_fuzzer(fuzz::FuzzerKind::Dynodroid, &artifact.1, minutes, ctx.seed);
            Ok(Fig5Series {
                app: app.name.clone(),
                total_bombs: total,
                points: report
                    .timeline
                    .iter()
                    .map(|(m, n)| (*m, 100.0 * *n as f64 / total as f64))
                    .collect(),
            })
        },
    ))
}
