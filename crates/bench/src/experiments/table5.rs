//! Table 5 — execution-time overhead of protection.

use super::harness::{
    default_fleet, drive_events, flagships, shared_cache, ExperimentError, PROTECT_BASE,
};
use crate::fixed_keys;
use bombdroid_core::{expect_all, run_fleet, FleetConfig, ProtectConfig};

/// One Table 5 row.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// App name.
    pub app: String,
    /// Instructions executed by the original app (the `Ta` analogue).
    pub ta_instr: u64,
    /// Instructions executed by the protected app (the `Tb` analogue).
    pub tb_instr: u64,
    /// Overhead `(Tb - Ta) / Ta` in percent.
    pub overhead_pct: f64,
}

/// Regenerates Table 5: feed the same `events` random events to the
/// original and protected builds and compare executed instructions (the
/// deterministic cost model's stand-in for wall-clock).
pub fn table5(config: ProtectConfig, events: u64) -> Vec<Table5Row> {
    table5_with(default_fleet(0x7AB7), config, events)
}

/// [`table5`] with explicit fleet scheduling: one task per flagship. Both
/// builds are driven with the *same* task seed so the event streams match.
pub fn table5_with(fleet: FleetConfig, config: ProtectConfig, events: u64) -> Vec<Table5Row> {
    let (dev, _) = fixed_keys();
    expect_all(run_fleet(
        fleet,
        flagships(),
        |ctx, app| -> Result<Table5Row, ExperimentError> {
            let apk = app.apk(&dev);
            let artifact =
                shared_cache().get_or_protect(&app, &config, PROTECT_BASE + ctx.index as u64)?;
            let ta = drive_events(&apk, events, ctx.seed)?;
            let tb = drive_events(&artifact.1, events, ctx.seed)?;
            Ok(Table5Row {
                app: app.name.clone(),
                ta_instr: ta,
                tb_instr: tb,
                overhead_pct: 100.0 * (tb as f64 - ta as f64) / ta as f64,
            })
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_overhead_is_small() {
        let rows = table5(ProtectConfig::fast_profile(), 2_000);
        for r in &rows {
            assert!(
                r.overhead_pct < 25.0,
                "{}: overhead {:.1}% too large",
                r.app,
                r.overhead_pct
            );
            assert!(r.overhead_pct > -1.0);
        }
    }
}
