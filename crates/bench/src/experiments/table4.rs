//! Table 4 — fuzzers vs outer trigger conditions.

use super::harness::{default_fleet, flagships, shared_cache, ExperimentError, PROTECT_BASE};
use bombdroid_attacks::fuzz;
use bombdroid_core::{derive_seed, expect_all, run_fleet, FleetConfig, ProtectConfig};

/// One Table 4 row: per-tool percentages of satisfied outer conditions.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// App name.
    pub app: String,
    /// `(tool, satisfied %)` in paper column order.
    pub tools: Vec<(fuzz::FuzzerKind, f64)>,
}

/// Regenerates Table 4: one hour of each fuzzer against each flagship.
pub fn table4(config: ProtectConfig, minutes: u64) -> Vec<Table4Row> {
    table4_with(default_fleet(0x7AB4), config, minutes)
}

/// [`table4`] with explicit fleet scheduling: one task per flagship, each
/// running the four fuzzers with seeds derived from the task seed.
pub fn table4_with(fleet: FleetConfig, config: ProtectConfig, minutes: u64) -> Vec<Table4Row> {
    expect_all(run_fleet(
        fleet,
        flagships(),
        |ctx, app| -> Result<Table4Row, ExperimentError> {
            let artifact =
                shared_cache().get_or_protect(&app, &config, PROTECT_BASE + ctx.index as u64)?;
            let tools = fuzz::FuzzerKind::ALL
                .iter()
                .enumerate()
                .map(|(k, &kind)| {
                    let seed = derive_seed(ctx.seed, k as u64);
                    let report = fuzz::run_fuzzer(kind, &artifact.1, minutes, seed);
                    (kind, report.satisfied_pct())
                })
                .collect();
            Ok(Table4Row {
                app: app.name.clone(),
                tools,
            })
        },
    ))
}
