//! Table 3 — time to the first triggered bomb in user sessions.

use super::harness::{
    default_fleet, flagships, session_pool, shared_cache, time_to_first_bomb, ExperimentError,
    PROTECT_BASE,
};
use crate::fixed_keys;
use bombdroid_apk::repackage;
use bombdroid_core::{derive_seed, expect_all, run_fleet, FleetConfig, ProtectConfig};
use bombdroid_runtime::InstalledPackage;

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// App name.
    pub app: String,
    /// Fastest first trigger (seconds).
    pub min_s: f64,
    /// Slowest first trigger (seconds).
    pub max_s: f64,
    /// Mean first trigger (seconds).
    pub avg_s: f64,
    /// Runs in which a bomb fired before the cap.
    pub successes: usize,
    /// Total runs.
    pub runs: usize,
}

/// Regenerates Table 3: `runs` user sessions per flagship on freshly
/// sampled devices, measuring the time to the first triggered bomb
/// (cap: `cap_minutes`, the paper uses 60).
pub fn table3(config: ProtectConfig, runs: usize, cap_minutes: u64) -> Vec<Table3Row> {
    table3_with(default_fleet(0x7AB3), config, runs, cap_minutes)
}

/// [`table3`] with explicit fleet scheduling: one task per flagship; the
/// per-run session seeds derive from the task seed, so rows are identical
/// for any worker count.
pub fn table3_with(
    fleet: FleetConfig,
    config: ProtectConfig,
    runs: usize,
    cap_minutes: u64,
) -> Vec<Table3Row> {
    let (_, pirate) = fixed_keys();
    expect_all(run_fleet(
        fleet,
        flagships(),
        |ctx, app| -> Result<Table3Row, ExperimentError> {
            let artifact =
                shared_cache().get_or_protect(&app, &config, PROTECT_BASE + ctx.index as u64)?;
            // Users play the *repackaged* app (the detection scenario).
            let pirated = repackage(&artifact.1, &pirate, |_| {});
            // All of this task's sessions mint from one pristine pool:
            // bit-identical to cold boots, but the package is decoded once.
            let pool = session_pool(std::sync::Arc::new(InstalledPackage::install(&pirated)?));
            let mut times = Vec::new();
            for run in 0..runs {
                let seed = derive_seed(ctx.seed, run as u64);
                if let Some(ms) = time_to_first_bomb(&pool, seed, cap_minutes) {
                    times.push(ms as f64 / 1_000.0);
                }
            }
            let successes = times.len();
            let (min_s, max_s, avg_s) = if times.is_empty() {
                (f64::NAN, f64::NAN, f64::NAN)
            } else {
                (
                    times.iter().cloned().fold(f64::INFINITY, f64::min),
                    times.iter().cloned().fold(0.0, f64::max),
                    times.iter().sum::<f64>() / successes as f64,
                )
            };
            Ok(Table3Row {
                app: app.name.clone(),
                min_s,
                max_s,
                avg_s,
                successes,
                runs,
            })
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_users_trigger_quickly() {
        let rows = table3(ProtectConfig::fast_profile(), 5, 60);
        let (succ, runs) = rows
            .iter()
            .fold((0, 0), |acc, r| (acc.0 + r.successes, acc.1 + r.runs));
        // The paper reports 50/50 everywhere with human testers who play
        // until a bomb fires; our scripted users explore less aggressively,
        // so a small per-device miss rate remains (documented in
        // EXPERIMENTS.md). Require a high aggregate success rate.
        assert!(
            succ * 10 >= runs * 8,
            "only {succ}/{runs} sessions triggered a bomb"
        );
        for r in &rows {
            assert!(r.successes > 0, "{}: no session triggered any bomb", r.app);
            assert!(r.min_s < 900.0, "{}: min {}s too slow", r.app, r.min_s);
        }
    }
}
