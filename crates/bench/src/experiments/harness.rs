//! Shared experiment machinery: typed errors, the protection cache, and
//! the session/event helpers every table reuses.

use crate::fixed_keys;
use bombdroid_apk::{ApkFile, VerifyError};
use bombdroid_core::{FleetConfig, ProtectConfig, ProtectError, ProtectedApp, Protector};
// Re-exported so bench callers reach the service-layer cache types through
// the harness (one cache implementation, shared with the protect service).
pub use bombdroid_core::service::{ProtectionCache, SeedPolicy};
use bombdroid_corpus::{flagship, GeneratedApp};
use bombdroid_obs as obs;
use bombdroid_runtime::{
    DeviceEnv, EventSource, InstalledPackage, RandomEventSource, SessionPool, UserEventSource, Vm,
    VmOptions,
};
use parking_lot::Mutex;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Shared base seed for protecting flagship `i` (`PROTECT_BASE + i`).
///
/// Every experiment uses the same protection seed so the
/// [`ProtectedAppCache`] collapses the ~10 protection passes per flagship
/// of a full `repro all` run into one.
pub const PROTECT_BASE: u64 = 0x7AB0;

/// Why an experiment task failed. The fleet engine surfaces this per task
/// (with the task index) instead of a bare panic mid-experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// The protection pipeline rejected the app.
    Protect(ProtectError),
    /// An APK failed signature verification at install time.
    Install(VerifyError),
}

impl From<ProtectError> for ExperimentError {
    fn from(e: ProtectError) -> Self {
        ExperimentError::Protect(e)
    }
}

impl From<VerifyError> for ExperimentError {
    fn from(e: VerifyError) -> Self {
        ExperimentError::Install(e)
    }
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Protect(e) => write!(f, "protection failed: {e}"),
            ExperimentError::Install(e) => write!(f, "install failed: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Fleet configuration for an experiment: all CPUs, overridable with the
/// `BOMBDROID_THREADS` environment variable (`1` reproduces the old serial
/// driver exactly — results are identical either way).
pub fn default_fleet(base_seed: u64) -> FleetConfig {
    FleetConfig::from_env(base_seed)
}

/// Protects a generated app with the given config; returns the protected
/// app plus its signed APK.
pub fn try_protect_app(
    app: &GeneratedApp,
    config: ProtectConfig,
    seed: u64,
) -> Result<(ProtectedApp, ApkFile), ExperimentError> {
    let (dev, _) = fixed_keys();
    let mut rng = StdRng::seed_from_u64(seed);
    let apk = app.apk(&dev);
    let protected = Protector::new(config).protect(&apk, &mut rng)?;
    let signed = protected.package(&dev);
    Ok((protected, signed))
}

/// [`try_protect_app`], panicking on failure (generated apps always
/// protect; kept for callers that treat failure as fatal).
pub fn protect_app(
    app: &GeneratedApp,
    config: ProtectConfig,
    seed: u64,
) -> (ProtectedApp, ApkFile) {
    try_protect_app(app, config, seed).expect("protection succeeds on generated apps")
}

/// The eight flagship apps (cached generation is cheap; callers reuse).
pub fn flagships() -> Vec<GeneratedApp> {
    flagship::all()
}

type Artifact = Arc<(ProtectedApp, ApkFile)>;

#[derive(PartialEq, Eq, Hash)]
struct SignKey {
    app: String,
    seed: u64,
    /// `ProtectConfig` fingerprint (its `Debug` form covers every field).
    config: String,
}

/// Memoizes protection runs by `(app, seed, config)` — a thin wrapper over
/// core's content-addressed [`ProtectionCache`]. The protect pass itself
/// (and its single-flight deduplication) lives in
/// `bombdroid_core::service`; what this wrapper adds is the
/// developer-signed APK, which the core cache deliberately does not hold
/// (the signing key never enters the protect pipeline). Concurrent
/// requests for the same key protect and sign once and share the
/// artifact; requests for different keys proceed in parallel.
#[derive(Default)]
pub struct ProtectedAppCache {
    core: ProtectionCache,
    signed: Mutex<HashMap<SignKey, Arc<Mutex<Option<Artifact>>>>>,
}

impl ProtectedAppCache {
    /// An empty cache.
    pub fn new() -> Self {
        ProtectedAppCache::default()
    }

    /// How many protection passes actually ran (cache misses), as counted
    /// by the underlying core cache.
    pub fn protect_count(&self) -> usize {
        self.core.protect_count()
    }

    /// The core content-addressed cache this wrapper delegates to.
    pub fn core(&self) -> &ProtectionCache {
        &self.core
    }

    /// Returns the cached artifact for `(app, config, seed)`, protecting it
    /// first if this is the first request for that key.
    pub fn get_or_protect(
        &self,
        app: &GeneratedApp,
        config: &ProtectConfig,
        seed: u64,
    ) -> Result<Artifact, ExperimentError> {
        let key = SignKey {
            app: app.name.clone(),
            seed,
            config: format!("{config:?}"),
        };
        obs::counter_add("cache.requests", 1);
        // Per-key slot: the outer map lock is held only for the lookup, so
        // distinct apps protect concurrently while a second request for the
        // same key blocks until the first finishes and then reuses it.
        let slot = self.signed.lock().entry(key).or_default().clone();
        let mut guard = slot.lock();
        if let Some(artifact) = &*guard {
            return Ok(artifact.clone());
        }
        let (dev, _) = fixed_keys();
        let apk = app.apk(&dev);
        let (protected, hit) = self.core.get_or_protect(&apk, config, seed)?;
        if !hit {
            obs::counter_add("cache.protects", 1);
        }
        let signed = protected.package(&dev);
        let artifact = Arc::new(((*protected).clone(), signed));
        *guard = Some(artifact.clone());
        Ok(artifact)
    }
}

/// The process-wide cache all experiments share.
pub fn shared_cache() -> &'static ProtectedAppCache {
    static CACHE: OnceLock<ProtectedAppCache> = OnceLock::new();
    CACHE.get_or_init(ProtectedAppCache::new)
}

/// [`VmOptions`] for fleet sessions: many devices run the same protected
/// package, so decrypted fragments are shared process-wide (per-VM
/// telemetry and cost charging are unchanged by the cache).
fn fleet_vm_options() -> VmOptions {
    VmOptions {
        shared_fragment_cache: true,
        ..VmOptions::default()
    }
}

/// A pristine [`SessionPool`] over `pkg` with the fleet options. Sessions
/// minted from it are bit-identical to direct `Vm::new` boots, but share
/// the package's decoded program, so the per-method lowering pass runs
/// once per package instead of once per device.
pub fn session_pool(pkg: Arc<InstalledPackage>) -> SessionPool {
    SessionPool::new(pkg, fleet_vm_options())
}

/// Drives one user session until the first bomb triggers; `None` if the
/// cap is reached first.
pub fn time_to_first_bomb(pool: &SessionPool, seed: u64, cap_minutes: u64) -> Option<u64> {
    let _span = obs::span("vm.session");
    let mut rng = StdRng::seed_from_u64(seed);
    // Each run varies the emulator configuration (§8.2: testers varied
    // device types, SDK versions, CPU/ABI between runs).
    let env = DeviceEnv::sample(&mut rng);
    let mut vm = pool.session(env, seed ^ 0x7E57);
    let mut source = UserEventSource;
    let dex = Arc::clone(&vm.pkg.dex);
    let deadline = cap_minutes * 60_000;
    // Engaged users: ~30 meaningful events per minute.
    let first_marker = 'session: {
        while vm.clock_ms() < deadline {
            if let Some(at) = vm.telemetry().first_marker_ms {
                break 'session Some(at);
            }
            if vm.is_killed() || vm.is_frozen() {
                // The response itself proves a bomb fired.
                break 'session vm.telemetry().first_marker_ms;
            }
            let Some(ev) = source.next_event(&dex, &mut rng) else {
                break 'session None;
            };
            let _ = vm.fire_entry(ev.entry_index, ev.args);
            vm.advance_ms(1_000);
        }
        vm.telemetry().first_marker_ms
    };
    vm.publish_obs();
    first_marker
}

/// Feeds `events` random events to an installed copy of `apk` and returns
/// the executed-instruction count (the deterministic cost model's stand-in
/// for wall-clock).
pub fn drive_events(apk: &ApkFile, events: u64, seed: u64) -> Result<u64, ExperimentError> {
    let _span = obs::span("vm.drive");
    let pkg = InstalledPackage::install(apk)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vm = Vm::new(pkg, DeviceEnv::sample(&mut rng), seed, fleet_vm_options());
    let mut source = RandomEventSource;
    let dex = Arc::clone(&vm.pkg.dex);
    for _ in 0..events {
        let Some(ev) = source.next_event(&dex, &mut rng) else {
            break;
        };
        let _ = vm.fire_entry(ev.entry_index, ev.args);
        if vm.is_killed() || vm.is_frozen() {
            break;
        }
    }
    vm.publish_obs();
    Ok(vm.telemetry().instr_executed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_protects_each_key_once() {
        let cache = ProtectedAppCache::new();
        let app = flagship::androfish();
        let config = ProtectConfig::fast_profile();

        let first = cache.get_or_protect(&app, &config, 1).expect("protect");
        let second = cache.get_or_protect(&app, &config, 1).expect("protect");
        assert_eq!(cache.protect_count(), 1, "same key must protect once");
        assert!(
            Arc::ptr_eq(&first, &second),
            "both callers must share one artifact"
        );

        // A different seed (or config) is a different key.
        cache.get_or_protect(&app, &config, 2).expect("protect");
        assert_eq!(cache.protect_count(), 2);
    }

    #[test]
    fn cached_artifact_matches_direct_protection() {
        let cache = ProtectedAppCache::new();
        let app = flagship::androfish();
        let config = ProtectConfig::fast_profile();
        let cached = cache
            .get_or_protect(&app, &config, 7)
            .expect("protect via cache");
        let (direct, _) = protect_app(&app, config, 7);
        assert_eq!(
            cached.0.report.bombs_injected(),
            direct.report.bombs_injected()
        );
    }
}
