//! Population-scale market validation.
//!
//! Sweeps device counts through the checkpointable sharded market
//! simulator (`bombdroid-sim`) with real VM sessions, and checks the
//! measured system against the paper's closed-form predictions:
//!
//! * per-bomb *conditional* trigger rates — sessions that fired a bomb
//!   over sessions that decrypted its blob — must converge to the inner
//!   trigger's predicted probability (§6 targets p ∈ [0.1, 0.2]);
//! * the detection-latency CDF must be a valid monotone distribution;
//! * live metric memory must stay O(windows), independent of device
//!   count (the streaming-aggregation contract);
//! * a mid-run kill + resume cycle at the smallest scale must reproduce
//!   the uninterrupted run's report byte-for-byte.
//!
//! Results are exported as the schema-versioned `population.json`
//! artifact, validated by the `population_check` bin in CI.

use super::harness::{shared_cache, PROTECT_BASE};
use bombdroid_apk::{repackage, DeveloperKey};
use bombdroid_core::ProtectConfig;
use bombdroid_corpus::flagship;
use bombdroid_obs::json::{self, JsonValue};
use bombdroid_runtime::{InstalledPackage, SessionPool, VmOptions};
use bombdroid_sim::{BombCatalog, SimConfig, Simulator, VmRunner};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

/// Artifact schema version; bump on breaking layout changes.
pub const POPULATION_SCHEMA_VERSION: u64 = 1;

/// The flagship under simulation (same target as the guided curves).
pub const POPULATION_APP: &str = "Hash Droid";

/// Sessions are capped at this length so the sweep's wall-clock scales
/// with device count, not with the heavy tail of power users. Conditional
/// trigger rates are unaffected in expectation (the measurement
/// conditions on the outer trigger having fired).
const CAP_MINUTES: u16 = 6;

/// Per-bomb measurement at one scale.
#[derive(Debug, Clone)]
pub struct PopulationBombRow {
    /// Bomb marker id.
    pub marker: u32,
    /// Closed-form predicted inner-trigger probability (ppm).
    pub predicted_ppm: u64,
    /// Measured conditional firing rate (ppm).
    pub measured_ppm: u64,
    /// Sessions whose outer trigger decrypted the bomb's blob.
    pub outer_sessions: u64,
    /// Sessions where the bomb fired.
    pub fired_sessions: u64,
}

/// One device-count scale of the sweep.
#[derive(Debug, Clone)]
pub struct PopulationScaleRow {
    /// Devices simulated.
    pub devices: usize,
    /// Sessions actually run (equal to `devices`: halting is disabled so
    /// every session contributes to the estimate).
    pub sessions_run: usize,
    /// Day the market pulled the listing (−1 = survived).
    pub taken_down_day: i64,
    /// Outer-weighted mean of measured per-bomb rates (ppm).
    pub weighted_measured_ppm: u64,
    /// Outer-weighted mean of predicted per-bomb rates (ppm).
    pub weighted_predicted_ppm: u64,
    /// Per-bomb rows (only bombs observed at least once).
    pub bombs: Vec<PopulationBombRow>,
    /// Detection-latency CDF over detected sessions (ppm per minute
    /// bucket).
    pub latency_cdf_ppm: Vec<u64>,
    /// Peak live metric names observed across the run — the bounded-
    /// memory claim under test.
    pub live_metric_names_max: usize,
    /// Observability windows sealed.
    pub windows_sealed: u64,
}

/// Outcome of the kill + resume cycle at the smallest scale.
#[derive(Debug, Clone)]
pub struct PopulationResume {
    /// Scale the cycle ran at.
    pub devices: usize,
    /// Chunks completed before the simulated kill.
    pub killed_after_chunks: usize,
    /// Whether the resumed report was byte-identical to the
    /// uninterrupted run's.
    pub identical: bool,
    /// Sealed-window digests of the resumed run (fingerprint of the
    /// whole metric stream).
    pub window_digests: Vec<u64>,
}

/// Shapes the simulator for one scale: windows grow with the population
/// (so chunk count stays manageable) but are clamped, keeping live metric
/// memory bounded by a constant independent of device count.
pub fn population_config(devices: usize, days: u32) -> SimConfig {
    let mut config = SimConfig::new(devices, days, PROTECT_BASE ^ 0x509);
    config.window = (devices / 32).clamp(32, 1_024);
    config.checkpoint_every = 4;
    // Measurement mode: every device's session contributes to the
    // estimate even after the listing would have been pulled.
    config.market.halt_on_takedown = false;
    config
}

/// Builds the pirated install the whole sweep shares: protect the
/// flagship, sign as the developer, repackage under a pirate key.
fn pirated_install() -> (Arc<InstalledPackage>, BombCatalog) {
    let apps = flagship::all();
    let idx = apps
        .iter()
        .position(|a| a.name == POPULATION_APP)
        .expect("Hash Droid is a flagship");
    let app = &apps[idx];
    let seed = PROTECT_BASE + idx as u64;
    let artifact = shared_cache()
        .get_or_protect(app, &ProtectConfig::fast_profile(), seed)
        .expect("flagships always protect");
    let (protected, signed) = (&artifact.0, &artifact.1);
    let catalog = BombCatalog::from_report(&protected.report);
    let pirate = DeveloperKey::generate(&mut StdRng::seed_from_u64(seed ^ 0xBAD));
    let pirated = repackage(signed, &pirate, |_| {});
    let pkg = Arc::new(InstalledPackage::install(&pirated).expect("pirated install"));
    (pkg, catalog)
}

fn vm_runner(pkg: &Arc<InstalledPackage>) -> VmRunner {
    VmRunner {
        pool: SessionPool::new(Arc::clone(pkg), VmOptions::default()),
        cap_minutes: Some(CAP_MINUTES),
    }
}

fn weighted_mean_ppm(rows: &[PopulationBombRow], value: impl Fn(&PopulationBombRow) -> u64) -> u64 {
    let mut weighted = 0u128;
    let mut outer = 0u128;
    for r in rows {
        weighted += u128::from(value(r)) * u128::from(r.outer_sessions);
        outer += u128::from(r.outer_sessions);
    }
    weighted.checked_div(outer).unwrap_or(0) as u64
}

/// Runs the sweep: one simulator per scale plus the kill + resume cycle
/// at the smallest scale. Bit-identical for any `BOMBDROID_THREADS`.
pub fn population_rows(scales: &[usize], days: u32) -> (Vec<PopulationScaleRow>, PopulationResume) {
    assert!(!scales.is_empty(), "population sweep needs scales");
    let (pkg, catalog) = pirated_install();
    let mut rows = Vec::new();
    for &devices in scales {
        let config = population_config(devices, days);
        let mut sim = Simulator::new(config, catalog.clone(), vm_runner(&pkg));
        let mut live_max = 0usize;
        sim.run_with(|s| {
            live_max = live_max.max(s.aggregator().live_metric_names());
            s.aggregator().drain_windows();
        });
        live_max = live_max.max(sim.aggregator().live_metric_names());
        let bombs: Vec<PopulationBombRow> = sim
            .bomb_stats()
            .filter(|(_, s)| s.outer_sessions > 0)
            .map(|(e, s)| PopulationBombRow {
                marker: e.marker,
                predicted_ppm: e.predicted_ppm,
                measured_ppm: s.measured_ppm(),
                outer_sessions: s.outer_sessions,
                fired_sessions: s.fired_sessions,
            })
            .collect();
        let report = sim.report_json().expect("sweep runs to completion");
        let doc = json::parse(&report).expect("own report parses");
        let latency_cdf_ppm: Vec<u64> = doc
            .get("latency_cdf_ppm")
            .and_then(JsonValue::as_array)
            .expect("report carries CDF")
            .iter()
            .filter_map(|v| v.as_int().and_then(|i| u64::try_from(i).ok()))
            .collect();
        rows.push(PopulationScaleRow {
            devices,
            sessions_run: sim.sessions_run(),
            taken_down_day: sim.market().taken_down_day.map_or(-1, i64::from),
            weighted_measured_ppm: weighted_mean_ppm(&bombs, |r| r.measured_ppm),
            weighted_predicted_ppm: weighted_mean_ppm(&bombs, |r| r.predicted_ppm),
            bombs,
            latency_cdf_ppm,
            live_metric_names_max: live_max,
            windows_sealed: sim.aggregator().windows_sealed() as u64,
        });
    }

    // Kill + resume cycle at the smallest scale: run uninterrupted, then
    // kill after two chunks, resume from the checkpoint JSON, and compare
    // final reports byte-for-byte.
    let smallest = *scales.iter().min().expect("nonempty");
    let config = population_config(smallest, days);
    let mut whole = Simulator::new(config, catalog.clone(), vm_runner(&pkg));
    whole.run();
    let expected = whole.report_json().expect("finished");

    let mut killed = Simulator::new(config, catalog.clone(), vm_runner(&pkg));
    let mut killed_after_chunks = 0usize;
    while killed_after_chunks < 2 && killed.step() {
        killed_after_chunks += 1;
    }
    let resumed_report = if killed.done() {
        killed.report_json().expect("finished")
    } else {
        let ckpt = killed.checkpoint_json().expect("at chunk boundary");
        drop(killed);
        let mut resumed =
            Simulator::from_checkpoint(&ckpt, vm_runner(&pkg)).expect("own checkpoint parses");
        resumed.run();
        resumed.report_json().expect("finished")
    };
    let digests: Vec<u64> = json::parse(&resumed_report)
        .ok()
        .and_then(|doc| {
            doc.get("aggregator")?
                .get("window_digests")?
                .as_array()
                .map(|a| {
                    a.iter()
                        .filter_map(|v| v.as_int().and_then(|i| u64::try_from(i).ok()))
                        .collect()
                })
        })
        .unwrap_or_default();
    let resume = PopulationResume {
        devices: smallest,
        killed_after_chunks,
        identical: resumed_report == expected,
        window_digests: digests,
    };
    (rows, resume)
}

/// Renders the sweep as the `population.json` artifact.
pub fn population_json(
    app: &str,
    days: u32,
    rows: &[PopulationScaleRow],
    resume: &PopulationResume,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema_version\": {POPULATION_SCHEMA_VERSION},\n"
    ));
    out.push_str("  \"kind\": \"population_validation\",\n");
    out.push_str(&format!("  \"app\": \"{}\",\n", esc(app)));
    out.push_str(&format!("  \"days\": {days},\n"));
    out.push_str("  \"scales\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"devices\": {},\n", r.devices));
        out.push_str(&format!("      \"sessions_run\": {},\n", r.sessions_run));
        out.push_str(&format!(
            "      \"taken_down_day\": {},\n",
            r.taken_down_day
        ));
        out.push_str(&format!(
            "      \"weighted_measured_ppm\": {},\n",
            r.weighted_measured_ppm
        ));
        out.push_str(&format!(
            "      \"weighted_predicted_ppm\": {},\n",
            r.weighted_predicted_ppm
        ));
        out.push_str(&format!(
            "      \"live_metric_names_max\": {},\n",
            r.live_metric_names_max
        ));
        out.push_str(&format!(
            "      \"windows_sealed\": {},\n",
            r.windows_sealed
        ));
        let bombs: Vec<String> = r
            .bombs
            .iter()
            .map(|b| {
                format!(
                    "{{\"fired_sessions\": {}, \"marker\": {}, \"measured_ppm\": {}, \"outer_sessions\": {}, \"predicted_ppm\": {}}}",
                    b.fired_sessions, b.marker, b.measured_ppm, b.outer_sessions, b.predicted_ppm,
                )
            })
            .collect();
        out.push_str(&format!("      \"bombs\": [{}],\n", bombs.join(", ")));
        let cdf: Vec<String> = r.latency_cdf_ppm.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "      \"latency_cdf_ppm\": [{}]\n",
            cdf.join(", ")
        ));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    let digests: Vec<String> = resume.window_digests.iter().map(u64::to_string).collect();
    out.push_str(&format!(
        "  \"resume\": {{\"devices\": {}, \"identical\": {}, \"killed_after_chunks\": {}, \"window_digests\": [{}]}}\n",
        resume.devices,
        resume.identical,
        resume.killed_after_chunks,
        digests.join(", "),
    ));
    out.push_str("}\n");
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn req_int(obj: &JsonValue, key: &str, ctx: &str) -> Result<i128, String> {
    obj.get(key)
        .and_then(JsonValue::as_int)
        .ok_or_else(|| format!("{ctx}: missing or non-integer {key:?}"))
}

/// How many outer-trigger observations a bomb needs before its measured
/// rate is held against the prediction.
const MIN_OUTER_SESSIONS: i128 = 200;

/// Fixed slack (ppm) added on top of the 3σ binomial band.
const SLACK_PPM: f64 = 25_000.0;

/// Validates a `population.json` document: schema, scale ordering,
/// per-bomb closed-form agreement (3σ + slack for sufficiently observed
/// bombs), weighted mean inside the paper's p ∈ [0.1, 0.2] band (with
/// slack), CDF validity, bounded live-metric memory, and a successful
/// bit-identical resume cycle.
pub fn validate_population_json(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let version = req_int(&doc, "schema_version", "document")?;
    if version != POPULATION_SCHEMA_VERSION as i128 {
        return Err(format!(
            "unsupported schema_version {version} (expected {POPULATION_SCHEMA_VERSION})"
        ));
    }
    match doc.get("kind").and_then(JsonValue::as_str) {
        Some("population_validation") => {}
        other => return Err(format!("bad kind {other:?}")),
    }
    if doc
        .get("app")
        .and_then(JsonValue::as_str)
        .is_none_or(str::is_empty)
    {
        return Err("missing or empty \"app\"".to_string());
    }
    req_int(&doc, "days", "document")?;
    let scales = doc
        .get("scales")
        .and_then(JsonValue::as_array)
        .ok_or("missing \"scales\" array")?;
    if scales.is_empty() {
        return Err("\"scales\" must not be empty".to_string());
    }
    let mut prev_devices = 0i128;
    for s in scales {
        let devices = req_int(s, "devices", "scale")?;
        let ctx = format!("scale {devices}");
        if devices <= prev_devices {
            return Err(format!("{ctx}: device counts must strictly increase"));
        }
        prev_devices = devices;
        let sessions = req_int(s, "sessions_run", &ctx)?;
        if sessions != devices {
            return Err(format!(
                "{ctx}: measurement mode must run every session ({sessions} of {devices})"
            ));
        }
        req_int(s, "taken_down_day", &ctx)?;
        req_int(s, "windows_sealed", &ctx)?;
        let live = req_int(s, "live_metric_names_max", &ctx)?;
        if live > 50_000 {
            return Err(format!(
                "{ctx}: live metric names {live} — streaming memory bound violated"
            ));
        }
        let bombs = s
            .get("bombs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("{ctx}: missing \"bombs\" array"))?;
        if bombs.is_empty() {
            return Err(format!("{ctx}: no bombs observed"));
        }
        for b in bombs {
            let marker = req_int(b, "marker", &ctx)?;
            let bctx = format!("{ctx} bomb {marker}");
            let outer = req_int(b, "outer_sessions", &bctx)?;
            let fired = req_int(b, "fired_sessions", &bctx)?;
            let measured = req_int(b, "measured_ppm", &bctx)?;
            let predicted = req_int(b, "predicted_ppm", &bctx)?;
            if fired > outer {
                return Err(format!("{bctx}: fired {fired} exceeds outer {outer}"));
            }
            if outer >= MIN_OUTER_SESSIONS {
                let p = predicted as f64 / 1e6;
                let sigma_ppm = (p * (1.0 - p) / outer as f64).sqrt() * 1e6;
                let tol = (3.0 * sigma_ppm + SLACK_PPM) as i128;
                if (measured - predicted).abs() > tol {
                    return Err(format!(
                        "{bctx}: measured {measured} ppm vs predicted {predicted} ppm \
                         exceeds tolerance {tol} ppm over {outer} outer sessions"
                    ));
                }
            }
        }
        let mean = req_int(s, "weighted_measured_ppm", &ctx)?;
        if !(70_000..=230_000).contains(&mean) {
            return Err(format!(
                "{ctx}: weighted measured mean {mean} ppm outside the paper's band"
            ));
        }
        let cdf = s
            .get("latency_cdf_ppm")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("{ctx}: missing \"latency_cdf_ppm\""))?;
        let mut prev = 0i128;
        for v in cdf {
            let v = v.as_int().ok_or_else(|| format!("{ctx}: bad CDF entry"))?;
            if v < prev {
                return Err(format!("{ctx}: latency CDF not monotone"));
            }
            prev = v;
        }
        if !cdf.is_empty() && prev != 0 && prev != 1_000_000 {
            return Err(format!("{ctx}: latency CDF ends at {prev}, not 1.0"));
        }
    }
    let resume = doc.get("resume").ok_or("missing \"resume\" object")?;
    req_int(resume, "devices", "resume")?;
    req_int(resume, "killed_after_chunks", "resume")?;
    match resume.get("identical") {
        Some(JsonValue::Bool(true)) => {}
        Some(JsonValue::Bool(false)) => {
            return Err("resume: resumed report was NOT bit-identical".to_string())
        }
        _ => return Err("resume: missing \"identical\" flag".to_string()),
    }
    resume
        .get("window_digests")
        .and_then(JsonValue::as_array)
        .ok_or("resume: missing \"window_digests\"")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> (Vec<PopulationScaleRow>, PopulationResume) {
        let bombs = vec![PopulationBombRow {
            marker: 7,
            predicted_ppm: 150_000,
            measured_ppm: 152_000,
            outer_sessions: 4_000,
            fired_sessions: 608,
        }];
        (
            vec![PopulationScaleRow {
                devices: 1_000,
                sessions_run: 1_000,
                taken_down_day: 2,
                weighted_measured_ppm: 152_000,
                weighted_predicted_ppm: 150_000,
                bombs,
                latency_cdf_ppm: vec![250_000, 600_000, 1_000_000],
                live_metric_names_max: 120,
                windows_sealed: 32,
            }],
            PopulationResume {
                devices: 1_000,
                killed_after_chunks: 2,
                identical: true,
                window_digests: vec![1, 2, 3],
            },
        )
    }

    #[test]
    fn artifact_round_trips_through_its_validator() {
        let (rows, resume) = rows();
        let text = population_json(POPULATION_APP, 14, &rows, &resume);
        validate_population_json(&text).expect("self-produced artifact validates");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_population_json("{}").is_err());
        let (rows_ok, resume_ok) = rows();

        let mut drifted = rows_ok.clone();
        drifted[0].bombs[0].measured_ppm = 400_000; // far outside 3σ + slack
        let text = population_json(POPULATION_APP, 14, &drifted, &resume_ok);
        assert!(validate_population_json(&text).is_err());

        let mut non_monotone = rows_ok.clone();
        non_monotone[0].latency_cdf_ppm = vec![600_000, 250_000, 1_000_000];
        let text = population_json(POPULATION_APP, 14, &non_monotone, &resume_ok);
        assert!(validate_population_json(&text).is_err());

        let mut unbounded = rows_ok.clone();
        unbounded[0].live_metric_names_max = 1_000_000;
        let text = population_json(POPULATION_APP, 14, &unbounded, &resume_ok);
        assert!(validate_population_json(&text).is_err());

        let mut broken_resume = resume_ok.clone();
        broken_resume.identical = false;
        let text = population_json(POPULATION_APP, 14, &rows_ok, &broken_resume);
        assert!(validate_population_json(&text).is_err());
    }

    #[test]
    fn smoke_sweep_validates_end_to_end() {
        let (rows, resume) = population_rows(&[600], 3);
        assert_eq!(rows.len(), 1);
        assert!(resume.identical, "kill+resume must be bit-identical");
        assert!(
            rows[0].bombs.iter().any(|b| b.fired_sessions > 0),
            "some bomb must fire across 600 sessions"
        );
        // The full-band assertions need 10^4 sessions to converge; the
        // smoke only checks structure + resume, via a permissive check
        // that the artifact is well-formed JSON of the right kind.
        let text = population_json(POPULATION_APP, 3, &rows, &resume);
        let doc = json::parse(&text).expect("artifact parses");
        assert_eq!(
            doc.get("kind").and_then(JsonValue::as_str),
            Some("population_validation")
        );
    }
}
