//! §8.4 — code-size increase from protection.

use super::harness::{default_fleet, flagships, shared_cache, ExperimentError, PROTECT_BASE};
use bombdroid_core::{expect_all, run_fleet, FleetConfig, ProtectConfig};

/// One code-size row.
#[derive(Debug, Clone)]
pub struct CodeSizeRow {
    /// App name.
    pub app: String,
    /// Original `classes.dex` bytes.
    pub original: usize,
    /// Protected `classes.dex` bytes.
    pub protected: usize,
    /// Increase in percent.
    pub increase_pct: f64,
}

/// Regenerates the code-size measurement (paper: 8–13%, avg 9.7%).
pub fn code_size(config: ProtectConfig) -> Vec<CodeSizeRow> {
    code_size_with(default_fleet(0x7AB9), config)
}

/// [`code_size`] with explicit fleet scheduling: one task per flagship.
pub fn code_size_with(fleet: FleetConfig, config: ProtectConfig) -> Vec<CodeSizeRow> {
    expect_all(run_fleet(
        fleet,
        flagships(),
        |ctx, app| -> Result<CodeSizeRow, ExperimentError> {
            let artifact =
                shared_cache().get_or_protect(&app, &config, PROTECT_BASE + ctx.index as u64)?;
            let report = &artifact.0.report;
            Ok(CodeSizeRow {
                app: app.name.clone(),
                original: report.original_dex_size,
                protected: report.protected_dex_size,
                increase_pct: 100.0 * report.code_size_increase(),
            })
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_size_increase_is_moderate() {
        let rows = code_size(ProtectConfig::fast_profile());
        for r in &rows {
            assert!(
                r.increase_pct > 1.0 && r.increase_pct < 60.0,
                "{}: {:.1}%",
                r.app,
                r.increase_pct
            );
        }
    }
}
