//! §8.3.2 — human-analyst campaigns (guided exploration, env mutation).

use super::harness::{default_fleet, flagships, shared_cache, ExperimentError, PROTECT_BASE};
use bombdroid_attacks::analyst;
use bombdroid_core::{expect_all, run_fleet, FleetConfig, ProtectConfig};

/// One analyst-campaign row.
#[derive(Debug, Clone)]
pub struct AnalystRow {
    /// App name.
    pub app: String,
    /// Bombs triggered.
    pub triggered: usize,
    /// Total real bombs.
    pub total: usize,
    /// Percentage.
    pub pct: f64,
}

/// Regenerates the human-analyst result (paper: 20 h per app, ≤ 9.3%
/// of bombs triggered).
pub fn analysts(config: ProtectConfig, hours: u64, phase_minutes: u64) -> Vec<AnalystRow> {
    analysts_with(default_fleet(0x7AB6), config, hours, phase_minutes)
}

/// [`analysts`] with explicit fleet scheduling: one campaign per flagship.
pub fn analysts_with(
    fleet: FleetConfig,
    config: ProtectConfig,
    hours: u64,
    phase_minutes: u64,
) -> Vec<AnalystRow> {
    expect_all(run_fleet(
        fleet,
        flagships(),
        |ctx, app| -> Result<AnalystRow, ExperimentError> {
            let artifact =
                shared_cache().get_or_protect(&app, &config, PROTECT_BASE + ctx.index as u64)?;
            let total = artifact.0.report.bombs_injected().max(1);
            let report = analyst::analyst_campaign(&artifact.1, hours, phase_minutes, ctx.seed);
            Ok(AnalystRow {
                app: app.name.clone(),
                triggered: report.bombs_triggered,
                total,
                pct: 100.0 * report.bombs_triggered as f64 / total as f64,
            })
        },
    ))
}
