//! Resilience of the protection schemes against the coverage-guided
//! greybox fuzzer ([`bombdroid_attacks::campaign`]) — the Difuzer-class
//! attacker the paper predates.
//!
//! One campaign per protection config (unprotected-control, the paper's
//! default, and a bogus-bomb-dense variant), all against the HashDroid
//! flagship under the shared [`PROTECT_BASE`] seed, producing a
//! bombs-found-vs-exec-budget curve per config. The curves are exported as
//! a schema-versioned JSON artifact (`guided_resilience.json`) that
//! `guided_check` validates in CI: the control curve must reach at least
//! one bomb, and every reported bomb must have replay-validated.

use super::harness::{shared_cache, PROTECT_BASE};
use bombdroid_attacks::{fuzz, GuidedConfig};
use bombdroid_core::ProtectConfig;
use bombdroid_corpus::flagship;
use bombdroid_obs::json::{self, JsonValue};

/// Artifact schema version; bump on breaking layout changes.
pub const GUIDED_SCHEMA_VERSION: u64 = 1;

/// The flagship the curve targets (rich hash/crypto branching makes it the
/// hardest honest target among the eight).
pub const GUIDED_APP: &str = "Hash Droid";

/// One protection config's campaign outcome.
#[derive(Debug, Clone)]
pub struct GuidedCurveRow {
    /// Protection config label (`control` / `default` / `bogus_dense`).
    pub config: String,
    /// Real (marker-carrying) bombs planted by the protector.
    pub total_bombs: usize,
    /// Obfuscated outer conditions in the protected DEX.
    pub total_outer: usize,
    /// Distinct bombs the fuzzer reported.
    pub found: usize,
    /// Reported bombs whose ground-truth replay re-fired.
    pub validated: usize,
    /// Total execs spent.
    pub execs: u64,
    /// `(cumulative execs, distinct bombs)` at fixed checkpoints.
    pub curve: Vec<(u64, usize)>,
}

/// The three protection configs the curve compares, derived from `base`.
/// `control` (single trigger, no bogus bombs) is the sanity floor a
/// working fuzzer must crack; `bogus_dense` maximizes decoys.
pub fn guided_configs(base: &ProtectConfig) -> Vec<(&'static str, ProtectConfig)> {
    vec![
        (
            "control",
            ProtectConfig {
                double_trigger: false,
                bogus_ratio: 0.0,
                ..base.clone()
            },
        ),
        ("default", base.clone()),
        (
            "bogus_dense",
            ProtectConfig {
                bogus_ratio: 1.0,
                ..base.clone()
            },
        ),
    ]
}

/// Runs one guided campaign per protection config against HashDroid and
/// returns the per-config curves. Bit-identical for any thread count.
pub fn guided_curves(campaign: &GuidedConfig, base: &ProtectConfig) -> Vec<GuidedCurveRow> {
    let apps = flagship::all();
    let idx = apps
        .iter()
        .position(|a| a.name == GUIDED_APP)
        .expect("Hash Droid is a flagship");
    let app = &apps[idx];
    let seed = PROTECT_BASE + idx as u64;
    guided_configs(base)
        .into_iter()
        .map(|(name, config)| {
            let artifact = shared_cache()
                .get_or_protect(app, &config, seed)
                .expect("flagships always protect");
            let (protected, signed) = (&artifact.0, &artifact.1);
            let report = fuzz::guided(signed, campaign);
            GuidedCurveRow {
                config: name.to_string(),
                total_bombs: protected.report.marker_ids().len(),
                total_outer: report.total_outer,
                found: report.findings.len(),
                validated: report.validated_markers().len(),
                execs: report.execs,
                curve: report.curve.clone(),
            }
        })
        .collect()
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the curves as the `guided_resilience.json` artifact.
pub fn guided_json(app: &str, seed: u64, rows: &[GuidedCurveRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {GUIDED_SCHEMA_VERSION},\n"));
    out.push_str("  \"kind\": \"guided_resilience_curve\",\n");
    out.push_str(&format!("  \"app\": \"{}\",\n", esc(app)));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", esc(&r.config)));
        out.push_str(&format!("      \"total_bombs\": {},\n", r.total_bombs));
        out.push_str(&format!("      \"total_outer\": {},\n", r.total_outer));
        out.push_str(&format!("      \"found\": {},\n", r.found));
        out.push_str(&format!("      \"validated\": {},\n", r.validated));
        out.push_str(&format!("      \"execs\": {},\n", r.execs));
        let points: Vec<String> = r
            .curve
            .iter()
            .map(|(execs, bombs)| format!("{{\"execs\": {execs}, \"bombs\": {bombs}}}"))
            .collect();
        out.push_str(&format!("      \"curve\": [{}]\n", points.join(", ")));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn req_int(obj: &JsonValue, key: &str, ctx: &str) -> Result<i128, String> {
    obj.get(key)
        .and_then(JsonValue::as_int)
        .ok_or_else(|| format!("{ctx}: missing or non-integer {key:?}"))
}

/// Validates a `guided_resilience.json` document: schema version, field
/// shapes, count consistency (`validated <= found <= total_bombs`), and
/// per-config curve sanity (strictly increasing exec axis, monotone
/// nondecreasing bomb counts, final point equal to `found`).
pub fn validate_guided_json(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let version = req_int(&doc, "schema_version", "document")?;
    if version != GUIDED_SCHEMA_VERSION as i128 {
        return Err(format!(
            "unsupported schema_version {version} (expected {GUIDED_SCHEMA_VERSION})"
        ));
    }
    match doc.get("kind").and_then(JsonValue::as_str) {
        Some("guided_resilience_curve") => {}
        other => return Err(format!("bad kind {other:?}")),
    }
    if doc
        .get("app")
        .and_then(JsonValue::as_str)
        .is_none_or(str::is_empty)
    {
        return Err("missing or empty \"app\"".to_string());
    }
    req_int(&doc, "seed", "document")?;
    let configs = doc
        .get("configs")
        .and_then(JsonValue::as_array)
        .ok_or("missing \"configs\" array")?;
    if configs.is_empty() {
        return Err("\"configs\" must not be empty".to_string());
    }
    for c in configs {
        let name = c
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("config: missing \"name\"")?;
        let ctx = format!("config {name:?}");
        let total_bombs = req_int(c, "total_bombs", &ctx)?;
        let found = req_int(c, "found", &ctx)?;
        let validated = req_int(c, "validated", &ctx)?;
        let execs = req_int(c, "execs", &ctx)?;
        req_int(c, "total_outer", &ctx)?;
        if !(0..=found).contains(&validated) || found > total_bombs {
            return Err(format!(
                "{ctx}: counts inconsistent (validated {validated} <= found {found} <= total_bombs {total_bombs} violated)"
            ));
        }
        let curve = c
            .get("curve")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("{ctx}: missing \"curve\" array"))?;
        if curve.is_empty() {
            return Err(format!("{ctx}: empty curve"));
        }
        let mut prev_execs = 0i128;
        let mut prev_bombs = -1i128;
        for p in curve {
            let e = req_int(p, "execs", &ctx)?;
            let b = req_int(p, "bombs", &ctx)?;
            if e <= prev_execs {
                return Err(format!("{ctx}: exec axis not strictly increasing at {e}"));
            }
            if b < prev_bombs {
                return Err(format!("{ctx}: bomb count decreased at execs {e}"));
            }
            (prev_execs, prev_bombs) = (e, b);
        }
        if prev_execs != execs {
            return Err(format!(
                "{ctx}: final curve point at {prev_execs} execs, but campaign spent {execs}"
            ));
        }
        if prev_bombs != found {
            return Err(format!(
                "{ctx}: final curve point reports {prev_bombs} bombs but \"found\" is {found}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_attacks::ResetMode;

    fn rows() -> Vec<GuidedCurveRow> {
        vec![GuidedCurveRow {
            config: "control".to_string(),
            total_bombs: 9,
            total_outer: 12,
            found: 2,
            validated: 2,
            execs: 240,
            curve: vec![(120, 1), (240, 2)],
        }]
    }

    #[test]
    fn artifact_round_trips_through_its_validator() {
        let text = guided_json("HashDroid", PROTECT_BASE, &rows());
        validate_guided_json(&text).expect("self-produced artifact validates");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_guided_json("{}").is_err());
        let mut bad_counts = rows();
        bad_counts[0].validated = 3; // validated > found
        let text = guided_json("HashDroid", 1, &bad_counts);
        assert!(validate_guided_json(&text).is_err());
        let mut bad_curve = rows();
        bad_curve[0].curve = vec![(120, 2), (240, 1)]; // non-monotone
        let text = guided_json("HashDroid", 1, &bad_curve);
        assert!(validate_guided_json(&text).is_err());
        let mut short_curve = rows();
        short_curve[0].curve = vec![(120, 2)]; // never reaches `execs`
        let text = guided_json("HashDroid", 1, &short_curve);
        assert!(validate_guided_json(&text).is_err());
    }

    #[test]
    fn smoke_campaign_cracks_the_control_app() {
        let campaign = GuidedConfig {
            threads: Some(2),
            reset: ResetMode::SnapshotFork,
            ..GuidedConfig::smoke(PROTECT_BASE)
        };
        let rows = guided_curves(&campaign, &ProtectConfig::fast_profile());
        assert_eq!(rows.len(), 3);
        let control = &rows[0];
        assert_eq!(control.config, "control");
        assert!(
            control.found >= 1,
            "control app must yield at least one bomb"
        );
        assert_eq!(control.validated, control.found);
        let text = guided_json("HashDroid", PROTECT_BASE, &rows);
        validate_guided_json(&text).expect("experiment artifact validates");
    }
}
