//! Table 1 — static corpus characteristics per category.

use super::harness::{default_fleet, ExperimentError};
use crate::fixed_keys;
use bombdroid_core::{expect_all, run_fleet, FleetConfig, ProtectConfig};
use bombdroid_corpus::{corpus_specs, generate_app, Category};

/// One Table 1 row: measured corpus statistics next to the paper's values.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Category label.
    pub category: Category,
    /// Apps measured.
    pub apps: usize,
    /// Average instruction count (LOC analogue).
    pub avg_loc: f64,
    /// Average candidate (non-hot) methods.
    pub avg_candidate_methods: f64,
    /// Average existing QCs.
    pub avg_existing_qcs: f64,
    /// Average distinct environment variables.
    pub avg_env_vars: f64,
}

/// Regenerates Table 1 over `apps_per_category` sampled apps (the paper
/// uses every app; pass `usize::MAX` for the full 963).
pub fn table1(apps_per_category: usize, profiling_events: u64) -> Vec<Table1Row> {
    table1_with(default_fleet(0x7AB1), apps_per_category, profiling_events)
}

/// [`table1`] with explicit fleet scheduling: one task per category.
pub fn table1_with(
    fleet: FleetConfig,
    apps_per_category: usize,
    profiling_events: u64,
) -> Vec<Table1Row> {
    let (dev, _) = fixed_keys();
    let specs = corpus_specs();
    expect_all(run_fleet(
        fleet,
        Category::ALL.to_vec(),
        |_ctx, category| -> Result<Table1Row, ExperimentError> {
            let selected: Vec<_> = specs
                .iter()
                .filter(|(_, c, _)| *c == category)
                .take(apps_per_category)
                .collect();
            let mut loc = 0usize;
            let mut cand = 0usize;
            let mut qcs = 0usize;
            let mut envs = 0usize;
            for (name, cat, seed) in &selected {
                let app = generate_app(name, *cat, *seed);
                let stats = bombdroid_corpus::app_stats(&app);
                loc += stats.loc;
                qcs += stats.existing_qcs;
                envs += stats.env_vars;
                // Candidate methods need the profiling phase (§7.1).
                let config = ProtectConfig {
                    profiling_events,
                    ..ProtectConfig::default()
                };
                let apk = app.apk(&dev);
                let profile = bombdroid_core::profile_app(&apk, &config, *seed)?;
                cand += stats.methods - profile.hot.len();
            }
            let n = selected.len().max(1) as f64;
            Ok(Table1Row {
                category,
                apps: selected.len(),
                avg_loc: loc as f64 / n,
                avg_candidate_methods: cand as f64 / n,
                avg_existing_qcs: qcs as f64 / n,
                avg_env_vars: envs as f64 / n,
            })
        },
    ))
}
