//! Ablations for DESIGN.md's called-out design choices.

use super::harness::{drive_events, protect_app};
use crate::fixed_keys;
use bombdroid_attacks::{deletion, fuzz};
use bombdroid_core::ProtectConfig;
use bombdroid_corpus::flagship;

/// Ablation results for DESIGN.md's called-out design choices.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// `(config name, % bombs triggered by 30-min Dynodroid)` — single vs
    /// double trigger.
    pub trigger_structure: Vec<(String, f64)>,
    /// `(alpha, bombs injected, code-size %)`.
    pub alpha_sweep: Vec<(f64, usize, f64)>,
    /// `(hot exclusion on/off, overhead %)`.
    pub hot_exclusion: Vec<(bool, f64)>,
    /// `(weaving on/off, deletion corrupted?)`.
    pub weaving: Vec<(bool, bool)>,
}

/// Runs all ablations on one mid-sized flagship (Binaural Beat). Each
/// variant needs its own `ProtectConfig`, so nothing is cacheable and the
/// sweep stays serial.
pub fn ablation(minutes: u64) -> AblationReport {
    let app = flagship::binaural_beat();
    let (_, pirate) = fixed_keys();
    let (dev, _) = fixed_keys();

    // (a) single vs double trigger under fuzzing.
    let mut trigger_structure = Vec::new();
    for (name, double) in [("single-trigger", false), ("double-trigger", true)] {
        let config = ProtectConfig {
            double_trigger: double,
            ..ProtectConfig::default()
        };
        let (protected, signed) = protect_app(&app, config, 0xAB1);
        let total = protected.report.bombs_injected().max(1);
        let report = fuzz::run_fuzzer(fuzz::FuzzerKind::Dynodroid, &signed, minutes, 0xAB2);
        trigger_structure.push((
            name.to_string(),
            100.0 * report.bombs_triggered as f64 / total as f64,
        ));
    }

    // (b) alpha sweep.
    let mut alpha_sweep = Vec::new();
    for alpha in [0.0, 0.25, 0.5] {
        let config = ProtectConfig {
            alpha,
            ..ProtectConfig::default()
        };
        let (protected, _) = protect_app(&app, config, 0xAB3);
        alpha_sweep.push((
            alpha,
            protected.report.bombs_injected(),
            100.0 * protected.report.code_size_increase(),
        ));
    }

    // (c) hot-method exclusion vs overhead.
    let mut hot_exclusion = Vec::new();
    for (on, ratio) in [(true, 0.10), (false, 0.0)] {
        let config = ProtectConfig {
            hot_method_ratio: ratio,
            ..ProtectConfig::default()
        };
        let apk = app.apk(&dev);
        let (_, signed) = protect_app(&app, config, 0xAB4);
        let ta = drive_events(&apk, 3_000, 0xAB5).expect("original installs");
        let tb = drive_events(&signed, 3_000, 0xAB5).expect("protected installs");
        hot_exclusion.push((on, 100.0 * (tb as f64 - ta as f64) / ta as f64));
    }

    // (d) weaving vs deletion.
    let mut weaving = Vec::new();
    for weave in [true, false] {
        let config = ProtectConfig {
            weave_original: weave,
            bogus_ratio: if weave { 0.5 } else { 0.0 },
            ..ProtectConfig::default()
        };
        let apk = app.apk(&dev);
        let (_, signed) = protect_app(&app, config, 0xAB6);
        let report = deletion::deletion_attack(&apk, &signed, &pirate, 5, 2, 0xAB7);
        weaving.push((weave, report.corrupted()));
    }

    AblationReport {
        trigger_structure,
        alpha_sweep,
        hot_exclusion,
        weaving,
    }
}
