//! The experiment implementations. See the crate docs for the mapping to
//! the paper's tables and figures.
//!
//! Each table/figure lives in its own module, and every fan-out workload
//! (one task per flagship, per category, per user session batch) runs on
//! the deterministic fleet engine ([`bombdroid_core::fleet`]): a
//! `table3(..)`-style entry point is a thin wrapper over a
//! `table3_with(FleetConfig, ..)` variant that schedules the per-app tasks
//! on a worker pool. Results are bit-identical regardless of thread count —
//! every task derives its randomness from `(base_seed, task index)` alone.
//!
//! Protection artifacts are shared through [`harness::ProtectedAppCache`]:
//! all experiments protect flagship `i` under the same
//! [`harness::PROTECT_BASE`]`+ i` seed, so a full `repro all` run protects
//! each `(app, config)` pair exactly once instead of once per experiment.

pub mod ablation;
pub mod analysts;
pub mod brute;
pub mod codesize;
pub mod falsepos;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod guided;
pub mod harness;
pub mod population;
pub mod resilience;
pub mod service;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

pub use ablation::{ablation, AblationReport};
pub use analysts::{analysts, analysts_with, AnalystRow};
pub use brute::{brute_force, brute_force_with, BruteRow};
pub use codesize::{code_size, code_size_with, CodeSizeRow};
pub use falsepos::{false_positives, false_positives_with, FalsePositiveRow};
pub use fig3::{fig3, Fig3Data};
pub use fig4::{fig4, fig4_with, Fig4Row};
pub use fig5::{fig5, fig5_with, Fig5Series};
pub use guided::{
    guided_configs, guided_curves, guided_json, validate_guided_json, GuidedCurveRow,
    GUIDED_SCHEMA_VERSION,
};
pub use harness::{
    default_fleet, drive_events, flagships, protect_app, session_pool, shared_cache,
    time_to_first_bomb, ExperimentError, ProtectedAppCache, PROTECT_BASE,
};
pub use population::{
    population_config, population_json, population_rows, validate_population_json,
    PopulationBombRow, PopulationResume, PopulationScaleRow, POPULATION_SCHEMA_VERSION,
};
pub use resilience::{resilience_reports, resilience_reports_with};
pub use service::{
    service_json, service_smoke, validate_service_json, ServiceJobRow, ServiceSmokeResult,
    SERVICE_SCHEMA_VERSION,
};
pub use table1::{table1, table1_with, Table1Row};
pub use table2::{table2, table2_with, Table2Row};
pub use table3::{table3, table3_with, Table3Row};
pub use table4::{table4, table4_with, Table4Row};
pub use table5::{table5, table5_with, Table5Row};
