//! §8.4 — false positives: legitimate copies must never respond.

use super::harness::{default_fleet, flagships, shared_cache, ExperimentError, PROTECT_BASE};
use bombdroid_core::{expect_all, run_fleet, FleetConfig, ProtectConfig};
use bombdroid_runtime::{DeviceEnv, InstalledPackage, RandomEventSource, Vm};
use rand::{rngs::StdRng, SeedableRng};

/// One false-positive row.
#[derive(Debug, Clone)]
pub struct FalsePositiveRow {
    /// App name.
    pub app: String,
    /// Events driven.
    pub events: u64,
    /// Responses fired (must be 0).
    pub responses: usize,
    /// Piracy reports sent (must be 0).
    pub reports: u64,
}

/// Checks for false positives: drive the *original-signed* protected app
/// for `minutes` of random events; no response may ever fire (§8.4 runs
/// ten hours per app).
pub fn false_positives(config: ProtectConfig, minutes: u64) -> Vec<FalsePositiveRow> {
    false_positives_with(default_fleet(0x7AB8), config, minutes)
}

/// [`false_positives`] with explicit fleet scheduling: one session per
/// flagship.
pub fn false_positives_with(
    fleet: FleetConfig,
    config: ProtectConfig,
    minutes: u64,
) -> Vec<FalsePositiveRow> {
    expect_all(run_fleet(
        fleet,
        flagships(),
        |ctx, app| -> Result<FalsePositiveRow, ExperimentError> {
            let artifact =
                shared_cache().get_or_protect(&app, &config, PROTECT_BASE + ctx.index as u64)?;
            let pkg = InstalledPackage::install(&artifact.1)?;
            let mut rng = StdRng::seed_from_u64(ctx.seed);
            let mut vm = Vm::boot(pkg, DeviceEnv::sample(&mut rng), ctx.seed);
            let mut source = RandomEventSource;
            let report =
                bombdroid_runtime::run_session(&mut vm, &mut source, &mut rng, minutes, 60);
            Ok(FalsePositiveRow {
                app: app.name.clone(),
                events: report.events,
                responses: vm.telemetry().responses.len(),
                reports: vm.telemetry().piracy_reports,
            })
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_positive_free() {
        let rows = false_positives(ProtectConfig::fast_profile(), 10);
        for r in &rows {
            assert_eq!(r.responses, 0, "{}: response fired on legit copy", r.app);
            assert_eq!(r.reports, 0);
        }
    }
}
