//! §5.1 — brute-force resistance of obfuscated conditions.

use super::harness::{default_fleet, flagships, shared_cache, ExperimentError, PROTECT_BASE};
use bombdroid_core::{expect_all, run_fleet, FleetConfig, ProtectConfig};

/// One brute-force row.
#[derive(Debug, Clone)]
pub struct BruteRow {
    /// App name.
    pub app: String,
    /// Obfuscated conditions found.
    pub total: usize,
    /// Cracked within the budget.
    pub cracked: usize,
    /// Hash evaluations spent.
    pub tries: u64,
}

/// Brute-force campaigns against every flagship.
pub fn brute_force(config: ProtectConfig, budget: u64) -> Vec<BruteRow> {
    brute_force_with(default_fleet(0x7ABB), config, budget)
}

/// [`brute_force`] with explicit fleet scheduling: one campaign per
/// flagship.
pub fn brute_force_with(fleet: FleetConfig, config: ProtectConfig, budget: u64) -> Vec<BruteRow> {
    expect_all(run_fleet(
        fleet,
        flagships(),
        |ctx, app| -> Result<BruteRow, ExperimentError> {
            let artifact =
                shared_cache().get_or_protect(&app, &config, PROTECT_BASE + ctx.index as u64)?;
            let report = bombdroid_attacks::brute_force_campaign(&artifact.1, budget);
            Ok(BruteRow {
                app: app.name.clone(),
                total: report.total,
                cracked: report.cracked,
                tries: report.tries,
            })
        },
    ))
}
