//! Fig. 3 — AndroFish variable traces under a random driver.

use crate::fixed_keys;
use bombdroid_corpus::flagship;
use bombdroid_runtime::{DeviceEnv, InstalledPackage, RandomEventSource, Vm, VmOptions};
use rand::{rngs::StdRng, SeedableRng};

/// Per-minute traces of the six AndroFish variables.
#[derive(Debug, Clone)]
pub struct Fig3Data {
    /// `(variable name, [(minute, value)])` series, paper order.
    pub series: Vec<(String, Vec<(u64, i64)>)>,
    /// Distinct values per variable (the entropy ranking input).
    pub unique_counts: Vec<(String, usize)>,
}

/// Regenerates Fig. 3: run AndroFish under a Dynodroid-style driver for
/// `minutes`, recording the fish state variables once per minute. One
/// continuous session — inherently serial, so it does not use the fleet.
pub fn fig3(minutes: u64) -> Fig3Data {
    let (dev, _) = fixed_keys();
    let app = flagship::androfish();
    let pkg = InstalledPackage::install(&app.apk(&dev)).expect("install");
    let opts = VmOptions {
        record_field_values: true,
        ..VmOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(33);
    let mut vm = Vm::new(pkg, DeviceEnv::sample(&mut rng), 33, opts);
    let mut source = RandomEventSource;
    bombdroid_runtime::run_session(&mut vm, &mut source, &mut rng, minutes, 60);
    let telemetry = vm.into_telemetry();

    let mut series = Vec::new();
    let mut unique_counts = Vec::new();
    for var in flagship::ANDROFISH_VARS {
        let key = format!("androfish/Fish.{var}");
        let samples = telemetry
            .field_values
            .get(&key)
            .cloned()
            .unwrap_or_default();
        // Last value seen in each minute.
        let mut per_minute: Vec<(u64, i64)> = Vec::new();
        for minute in 0..minutes {
            let lo = minute * 60_000;
            let hi = lo + 60_000;
            if let Some((_, bombdroid_dex::Value::Int(i))) =
                samples.iter().rfind(|(at, _)| *at >= lo && *at < hi)
            {
                per_minute.push((minute, *i));
            }
        }
        let uniq: std::collections::HashSet<_> = samples.iter().map(|(_, v)| v.clone()).collect();
        unique_counts.push((var.to_string(), uniq.len()));
        series.push((var.to_string(), per_minute));
    }
    Fig3Data {
        series,
        unique_counts,
    }
}
