//! Table 2 — bombs injected per flagship.

use super::harness::{default_fleet, flagships, shared_cache, ExperimentError, PROTECT_BASE};
use bombdroid_core::{expect_all, run_fleet, FleetConfig, ProtectConfig};

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// App name.
    pub app: String,
    /// Real bombs injected.
    pub total: usize,
    /// On existing qualified conditions.
    pub existing: usize,
    /// On artificial qualified conditions.
    pub artificial: usize,
    /// Bogus bombs (extra, not in the paper's total).
    pub bogus: usize,
}

/// Regenerates Table 2 by protecting all eight flagships.
pub fn table2(config: ProtectConfig) -> Vec<Table2Row> {
    table2_with(default_fleet(0x7AB2), config)
}

/// [`table2`] with explicit fleet scheduling: one task per flagship.
pub fn table2_with(fleet: FleetConfig, config: ProtectConfig) -> Vec<Table2Row> {
    expect_all(run_fleet(
        fleet,
        flagships(),
        |ctx, app| -> Result<Table2Row, ExperimentError> {
            let artifact =
                shared_cache().get_or_protect(&app, &config, PROTECT_BASE + ctx.index as u64)?;
            let report = &artifact.0.report;
            Ok(Table2Row {
                app: app.name.clone(),
                total: report.bombs_injected(),
                existing: report.existing_bombs(),
                artificial: report.artificial_bombs(),
                bogus: report.bogus_bombs(),
            })
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_injects_bombs_everywhere() {
        let rows = table2(ProtectConfig::fast_profile());
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.total > 5, "{}: only {} bombs", r.app, r.total);
            assert!(r.existing > 0, "{}: no existing-QC bombs", r.app);
            assert!(r.artificial > 0, "{}: no artificial-QC bombs", r.app);
        }
        // BRouter is the biggest, as in the paper.
        let brouter = rows.iter().find(|r| r.app == "BRouter").unwrap();
        for r in &rows {
            assert!(brouter.total >= r.total, "BRouter must lead");
        }
    }
}
