//! Fig. 4 — outer-trigger strength histograms.

use super::harness::{default_fleet, flagships, shared_cache, ExperimentError, PROTECT_BASE};
use bombdroid_core::{expect_all, run_fleet, BombKind, FleetConfig, ProtectConfig};

/// One Fig. 4 row: strength histograms for existing vs artificial QCs.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// App name.
    pub app: String,
    /// `(weak, medium, strong)` among existing-QC bombs.
    pub existing: (usize, usize, usize),
    /// `(weak, medium, strong)` among artificial-QC bombs.
    pub artificial: (usize, usize, usize),
}

/// Regenerates Fig. 4 from the protection reports.
pub fn fig4(config: ProtectConfig) -> Vec<Fig4Row> {
    fig4_with(default_fleet(0x7ABA), config)
}

/// [`fig4`] with explicit fleet scheduling: one task per flagship.
pub fn fig4_with(fleet: FleetConfig, config: ProtectConfig) -> Vec<Fig4Row> {
    expect_all(run_fleet(
        fleet,
        flagships(),
        |ctx, app| -> Result<Fig4Row, ExperimentError> {
            let artifact =
                shared_cache().get_or_protect(&app, &config, PROTECT_BASE + ctx.index as u64)?;
            let report = &artifact.0.report;
            Ok(Fig4Row {
                app: app.name.clone(),
                existing: report.strength_histogram(BombKind::ExistingQc),
                artificial: report.strength_histogram(BombKind::ArtificialQc),
            })
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_artificial_qcs_never_weak() {
        let rows = fig4(ProtectConfig::fast_profile());
        for r in &rows {
            let (weak, med, strong) = r.artificial;
            assert_eq!(weak, 0, "{}: artificial QCs must be medium/strong", r.app);
            assert!(med + strong > 0, "{}", r.app);
        }
    }
}
