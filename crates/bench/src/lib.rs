//! The measurement harness: every table and figure of the paper's
//! evaluation (§8), regenerated.
//!
//! Each experiment is a pure function returning structured rows, consumed
//! by the `repro` binary (which prints paper-style tables) and by the
//! Criterion benches. Experiments take explicit budgets so tests can run
//! scaled-down versions of the same code paths the full reproduction uses.
//!
//! | Function | Paper artefact |
//! |---|---|
//! | [`experiments::table1`] | Table 1 — static characteristics of the corpus |
//! | [`experiments::fig3`] | Fig. 3 — AndroFish variable traces |
//! | [`experiments::table2`] | Table 2 — injected bombs per flagship |
//! | [`experiments::table3`] | Table 3 — time to first triggered bomb (users) |
//! | [`experiments::table4`] | Table 4 — outer conditions satisfied by fuzzers |
//! | [`experiments::fig5`] | Fig. 5 — bombs triggered by Dynodroid over an hour |
//! | [`experiments::analysts`] | §8.3.2 — human analysts with env mutation |
//! | [`experiments::table5`] | Table 5 — execution-time overhead |
//! | [`experiments::false_positives`] | §8.4 — zero false positives |
//! | [`experiments::code_size`] | §8.4 — code-size increase |
//! | [`experiments::fig4`] | Fig. 4 — outer-condition strength |
//! | [`experiments::resilience`] | §5 — the attack × protection matrix |
//! | [`experiments::brute_force`] | §5.1/§8.3.1 — brute-force resistance |
//! | [`experiments::ablation`] | DESIGN.md ablations |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod print;

/// Developer/pirate keypair fixture shared by all experiments so results
/// are reproducible run-to-run.
pub fn fixed_keys() -> (bombdroid_apk::DeveloperKey, bombdroid_apk::DeveloperKey) {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xB0_0B5);
    (
        bombdroid_apk::DeveloperKey::generate(&mut rng),
        bombdroid_apk::DeveloperKey::generate(&mut rng),
    )
}
