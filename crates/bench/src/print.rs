//! Minimal fixed-width table rendering for the `repro` binary.

/// Renders a table with a header row, column-aligned.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            if i < widths.len() {
                for _ in cell.len()..widths[i] {
                    out.push(' ');
                }
            }
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    render(&header_cells, &widths, &mut out);
    let rule_len = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        render(row, &widths, &mut out);
    }
    out
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let s = table(
            &["App", "Bombs"],
            &[
                vec!["AndroFish".into(), "67".into()],
                vec!["BRouter".into(), "263".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("App      "));
        assert!(lines[2].starts_with("AndroFish"));
        assert_eq!(lines.len(), 4);
    }
}
