//! The `perf` harness: repeatable hot-path measurements with a
//! machine-readable artifact.
//!
//! Unlike the Criterion-style benches under `benches/` (interactive,
//! print-only), this module produces a structured [`BenchResult`] per
//! benchmark and serializes the whole run as `BENCH_pipeline.json` so
//! perf numbers accumulate across PRs and regressions are diffable:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "mode": "full",
//!   "benches": [
//!     {"name": "crypto/sha256_4k", "iters": 4000,
//!      "p50_ns": 5100, "p95_ns": 5400, "mean_ns": 5188,
//!      "bytes_per_s": 803137254}
//!   ]
//! }
//! ```
//!
//! Timing method: each benchmark is auto-calibrated to a batch size whose
//! wall-clock is comfortably above timer resolution, then `samples`
//! batches are timed; per-iteration p50/p95/mean come from the batch
//! samples. `bytes_per_s` is derived from the p50 when the benchmark
//! declares a per-iteration byte volume.

use bombdroid_obs::json::{self, JsonValue};
use std::time::Instant;

/// Version stamp of the `BENCH_pipeline.json` layout.
pub const BENCH_SCHEMA_VERSION: i128 = 1;

/// How hard to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfConfig {
    /// Batch samples to collect per benchmark.
    pub samples: usize,
    /// Target wall-clock per batch, in nanoseconds (sets the batch size).
    pub batch_target_ns: u64,
    /// Hard cap on wall-clock per benchmark, in nanoseconds.
    pub max_total_ns: u64,
}

impl PerfConfig {
    /// The default measurement profile (committed artifacts).
    pub fn full() -> Self {
        PerfConfig {
            samples: 40,
            batch_target_ns: 2_000_000,
            max_total_ns: 3_000_000_000,
        }
    }

    /// A quick smoke profile for CI (validates the plumbing, not the
    /// numbers).
    pub fn fast() -> Self {
        PerfConfig {
            samples: 6,
            batch_target_ns: 300_000,
            max_total_ns: 300_000_000,
        }
    }
}

/// One benchmark's measured result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Stable benchmark name (`area/case`).
    pub name: String,
    /// Total closure invocations across all batches.
    pub iters: u64,
    /// Median nanoseconds per iteration.
    pub p50_ns: u64,
    /// 95th-percentile nanoseconds per iteration.
    pub p95_ns: u64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: u64,
    /// Bytes processed per iteration, when the benchmark is
    /// byte-oriented.
    pub bytes_per_iter: Option<u64>,
}

impl BenchResult {
    /// Throughput derived from the median, when byte-oriented.
    pub fn bytes_per_s(&self) -> Option<u64> {
        let bytes = self.bytes_per_iter?;
        if self.p50_ns == 0 {
            return None;
        }
        Some(((bytes as u128 * 1_000_000_000) / self.p50_ns as u128) as u64)
    }
}

/// Nearest-rank percentile of an already-sorted sample set.
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (pct * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Measures `f`, returning per-iteration statistics.
///
/// The closure runs once for warm-up, once for calibration, then in
/// `config.samples` timed batches (or fewer if `max_total_ns` is hit —
/// at least one batch always completes).
pub fn run_bench<F: FnMut()>(
    name: impl Into<String>,
    bytes_per_iter: Option<u64>,
    config: &PerfConfig,
    mut f: F,
) -> BenchResult {
    // Warm-up (page in code/data), then calibrate the batch size.
    f();
    let probe_start = Instant::now();
    f();
    let probe_ns = (probe_start.elapsed().as_nanos() as u64).max(1);
    let batch = (config.batch_target_ns / probe_ns).clamp(1, 4_000_000);

    let mut samples_ns: Vec<u64> = Vec::with_capacity(config.samples);
    let total_start = Instant::now();
    let mut iters = 0u64;
    for _ in 0..config.samples.max(1) {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        samples_ns.push(elapsed / batch);
        iters += batch;
        if total_start.elapsed().as_nanos() as u64 > config.max_total_ns {
            break;
        }
    }
    samples_ns.sort_unstable();
    let mean_ns = samples_ns.iter().sum::<u64>() / samples_ns.len() as u64;
    BenchResult {
        name: name.into(),
        iters,
        p50_ns: percentile(&samples_ns, 50),
        p95_ns: percentile(&samples_ns, 95),
        mean_ns,
        bytes_per_iter,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a perf run as the `BENCH_pipeline.json` document.
pub fn to_json(mode: &str, results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape(mode)));
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let bps = match r.bytes_per_s() {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"mean_ns\": {}, \"bytes_per_s\": {}}}{}\n",
            json_escape(&r.name),
            r.iters,
            r.p50_ns,
            r.p95_ns,
            r.mean_ns,
            bps,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a `BENCH_pipeline.json` document: schema version, non-empty
/// bench list, required per-bench fields with sane values, unique names.
/// Returns the number of benchmarks on success.
pub fn validate_bench_json(text: &str) -> Result<usize, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::as_int)
        .ok_or("missing integer schema_version")?;
    if version != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {BENCH_SCHEMA_VERSION}"
        ));
    }
    match doc.get("mode") {
        Some(JsonValue::Str(_)) => {}
        _ => return Err("missing string mode".to_string()),
    }
    let benches = doc
        .get("benches")
        .and_then(JsonValue::as_array)
        .ok_or("missing benches array")?;
    if benches.is_empty() {
        return Err("benches array is empty".to_string());
    }
    let mut names = std::collections::BTreeSet::new();
    for (i, b) in benches.iter().enumerate() {
        let name = match b.get("name") {
            Some(JsonValue::Str(s)) if !s.is_empty() => s.clone(),
            _ => return Err(format!("bench #{i}: missing non-empty name")),
        };
        if !names.insert(name.clone()) {
            return Err(format!("duplicate bench name {name:?}"));
        }
        let int_field = |key: &str| -> Result<i128, String> {
            b.get(key)
                .and_then(JsonValue::as_int)
                .ok_or_else(|| format!("bench {name:?}: missing integer {key}"))
        };
        if int_field("iters")? <= 0 {
            return Err(format!("bench {name:?}: iters must be positive"));
        }
        let p50 = int_field("p50_ns")?;
        let p95 = int_field("p95_ns")?;
        int_field("mean_ns")?;
        if p50 < 0 || p95 < p50 {
            return Err(format!("bench {name:?}: need 0 <= p50_ns <= p95_ns"));
        }
        match b.get("bytes_per_s") {
            Some(JsonValue::Null) | Some(JsonValue::Int(_)) => {}
            _ => return Err(format!("bench {name:?}: bytes_per_s must be int or null")),
        }
    }
    Ok(benches.len())
}

/// One row of a [`CompareReport`]: a benchmark present in the baseline
/// artifact, the candidate artifact, or both.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Benchmark name (`area/case`).
    pub name: String,
    /// Baseline median, when the baseline has this benchmark.
    pub base_p50_ns: Option<u64>,
    /// Candidate median, when the candidate has this benchmark.
    pub cand_p50_ns: Option<u64>,
}

impl BenchDelta {
    /// Median change in percent (positive = slower); `None` unless both
    /// sides measured the benchmark and the baseline median is nonzero.
    pub fn delta_pct(&self) -> Option<f64> {
        let base = self.base_p50_ns?;
        let cand = self.cand_p50_ns?;
        if base == 0 {
            return None;
        }
        Some((cand as f64 - base as f64) / base as f64 * 100.0)
    }
}

/// Result of comparing two perf artifacts (see [`compare_bench_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Per-benchmark deltas, in baseline order with candidate-only
    /// benchmarks appended.
    pub rows: Vec<BenchDelta>,
    /// Regression threshold in percent: a benchmark slower than this is a
    /// breach.
    pub threshold_pct: f64,
}

impl CompareReport {
    /// Names of benchmarks whose median regressed past the threshold.
    pub fn regressions(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.delta_pct().is_some_and(|d| d > self.threshold_pct))
            .map(|r| r.name.as_str())
            .collect()
    }

    /// The human-readable delta table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<32} {:>14} {:>14} {:>9}\n",
            "benchmark", "base p50", "cand p50", "delta"
        ));
        for r in &self.rows {
            let fmt_ns = |v: Option<u64>| match v {
                Some(n) => format!("{n} ns"),
                None => "-".to_string(),
            };
            let delta = match r.delta_pct() {
                Some(d) => format!("{d:+.1}%"),
                None => "-".to_string(),
            };
            let flag = match r.delta_pct() {
                Some(d) if d > self.threshold_pct => "  REGRESSION",
                _ => "",
            };
            out.push_str(&format!(
                "{:<32} {:>14} {:>14} {:>9}{}\n",
                r.name,
                fmt_ns(r.base_p50_ns),
                fmt_ns(r.cand_p50_ns),
                delta,
                flag,
            ));
        }
        out
    }
}

/// Extracts `name -> p50_ns` from a validated perf artifact, preserving
/// document order.
fn bench_medians(text: &str) -> Result<Vec<(String, u64)>, String> {
    validate_bench_json(text)?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let benches = doc
        .get("benches")
        .and_then(JsonValue::as_array)
        .ok_or("missing benches array")?;
    benches
        .iter()
        .map(|b| {
            let name = match b.get("name") {
                Some(JsonValue::Str(s)) => s.clone(),
                _ => return Err("missing name".to_string()),
            };
            let p50 = b
                .get("p50_ns")
                .and_then(JsonValue::as_int)
                .ok_or("missing p50_ns")? as u64;
            Ok((name, p50))
        })
        .collect()
}

/// Compares two `BENCH_pipeline.json` documents by median (`p50_ns`).
///
/// Both documents must validate against the schema. Rows keep the
/// baseline's order (candidate-only benchmarks are appended); a benchmark
/// missing on either side gets a dash instead of a delta. A candidate
/// median more than `threshold_pct` percent above the baseline counts as
/// a regression.
///
/// # Errors
///
/// Returns the validation or parse error of the offending document.
pub fn compare_bench_json(
    base: &str,
    cand: &str,
    threshold_pct: f64,
) -> Result<CompareReport, String> {
    let base = bench_medians(base).map_err(|e| format!("baseline: {e}"))?;
    let cand = bench_medians(cand).map_err(|e| format!("candidate: {e}"))?;
    let cand_map: std::collections::HashMap<&str, u64> =
        cand.iter().map(|(n, p)| (n.as_str(), *p)).collect();
    let base_names: std::collections::HashSet<&str> =
        base.iter().map(|(n, _)| n.as_str()).collect();
    let mut rows: Vec<BenchDelta> = base
        .iter()
        .map(|(name, p50)| BenchDelta {
            name: name.clone(),
            base_p50_ns: Some(*p50),
            cand_p50_ns: cand_map.get(name.as_str()).copied(),
        })
        .collect();
    for (name, p50) in &cand {
        if !base_names.contains(name.as_str()) {
            rows.push(BenchDelta {
                name: name.clone(),
                base_p50_ns: None,
                cand_p50_ns: Some(*p50),
            });
        }
    }
    Ok(CompareReport {
        rows,
        threshold_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PerfConfig {
        PerfConfig {
            samples: 4,
            batch_target_ns: 10_000,
            max_total_ns: 50_000_000,
        }
    }

    #[test]
    fn run_bench_produces_ordered_stats() {
        let mut x = 0u64;
        let r = run_bench("t/spin", Some(64), &cfg(), || {
            x = std::hint::black_box(x.wrapping_mul(6364136223846793005).wrapping_add(1));
        });
        assert!(r.iters > 0);
        assert!(r.p50_ns <= r.p95_ns);
        assert!(r.bytes_per_s().is_some());
    }

    #[test]
    fn json_roundtrip_validates() {
        let results = vec![
            BenchResult {
                name: "a/one".into(),
                iters: 10,
                p50_ns: 5,
                p95_ns: 9,
                mean_ns: 6,
                bytes_per_iter: Some(4096),
            },
            BenchResult {
                name: "b/two".into(),
                iters: 3,
                p50_ns: 100,
                p95_ns: 200,
                mean_ns: 120,
                bytes_per_iter: None,
            },
        ];
        let text = to_json("full", &results);
        assert_eq!(validate_bench_json(&text), Ok(2));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_bench_json("").is_err());
        assert!(validate_bench_json("{}").is_err());
        assert!(
            validate_bench_json(r#"{"schema_version": 2, "mode": "full", "benches": []}"#).is_err()
        );
        assert!(
            validate_bench_json(r#"{"schema_version": 1, "mode": "full", "benches": []}"#).is_err(),
            "empty bench list must fail"
        );
        let missing_field = r#"{"schema_version": 1, "mode": "full", "benches": [
            {"name": "x", "iters": 1, "p50_ns": 2, "p95_ns": 3}]}"#;
        assert!(validate_bench_json(missing_field).is_err());
        let dup = r#"{"schema_version": 1, "mode": "full", "benches": [
            {"name": "x", "iters": 1, "p50_ns": 2, "p95_ns": 3, "mean_ns": 2, "bytes_per_s": null},
            {"name": "x", "iters": 1, "p50_ns": 2, "p95_ns": 3, "mean_ns": 2, "bytes_per_s": null}]}"#;
        assert!(validate_bench_json(dup).unwrap_err().contains("duplicate"));
        let bad_order = r#"{"schema_version": 1, "mode": "full", "benches": [
            {"name": "x", "iters": 1, "p50_ns": 9, "p95_ns": 3, "mean_ns": 2, "bytes_per_s": null}]}"#;
        assert!(validate_bench_json(bad_order).is_err());
    }

    fn doc(benches: &[(&str, u64)]) -> String {
        let results: Vec<BenchResult> = benches
            .iter()
            .map(|(name, p50)| BenchResult {
                name: (*name).into(),
                iters: 10,
                p50_ns: *p50,
                p95_ns: *p50 * 2,
                mean_ns: *p50,
                bytes_per_iter: None,
            })
            .collect();
        to_json("full", &results)
    }

    #[test]
    fn compare_flags_only_regressions_past_threshold() {
        let base = doc(&[("a/fast", 100), ("b/slow", 1_000), ("c/same", 50)]);
        let cand = doc(&[("a/fast", 130), ("b/slow", 800), ("c/same", 52)]);
        let report = compare_bench_json(&base, &cand, 10.0).unwrap();
        assert_eq!(report.regressions(), vec!["a/fast"]);
        let a = &report.rows[0];
        assert_eq!(a.delta_pct().map(|d| d.round()), Some(30.0));
        // 4% noise on c/same stays under the 10% bar.
        assert!(report.render().contains("REGRESSION"));

        // A looser threshold clears it.
        let lax = compare_bench_json(&base, &cand, 35.0).unwrap();
        assert!(lax.regressions().is_empty());
    }

    #[test]
    fn compare_tolerates_asymmetric_bench_sets() {
        let base = doc(&[("a/x", 100), ("old/gone", 10)]);
        let cand = doc(&[("a/x", 90), ("new/added", 20)]);
        let report = compare_bench_json(&base, &cand, 10.0).unwrap();
        assert_eq!(report.rows.len(), 3);
        assert!(report.regressions().is_empty(), "missing rows never breach");
        let gone = report.rows.iter().find(|r| r.name == "old/gone").unwrap();
        assert_eq!(gone.cand_p50_ns, None);
        assert_eq!(gone.delta_pct(), None);
        let added = report.rows.iter().find(|r| r.name == "new/added").unwrap();
        assert_eq!(added.base_p50_ns, None);
    }

    #[test]
    fn compare_rejects_invalid_documents() {
        let good = doc(&[("a/x", 100)]);
        assert!(compare_bench_json("{}", &good, 10.0)
            .unwrap_err()
            .starts_with("baseline:"));
        assert!(compare_bench_json(&good, "nope", 10.0)
            .unwrap_err()
            .starts_with("candidate:"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [10, 20, 30, 40];
        assert_eq!(percentile(&s, 50), 20);
        assert_eq!(percentile(&s, 95), 40);
        assert_eq!(percentile(&[7], 50), 7);
    }

    #[test]
    fn escaping_survives_parse() {
        let r = BenchResult {
            name: "we\"ird\\name".into(),
            iters: 1,
            p50_ns: 1,
            p95_ns: 1,
            mean_ns: 1,
            bytes_per_iter: None,
        };
        assert_eq!(validate_bench_json(&to_json("f\"ast", &[r])), Ok(1));
    }
}
