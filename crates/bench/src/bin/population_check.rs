//! Validates the `population.json` artifact written by `repro population`.
//!
//! ```text
//! population_check <population.json>
//! ```
//!
//! Exits 0 if the document parses, matches the population-validation
//! schema (strictly increasing scales, per-bomb closed-form agreement
//! within 3σ + slack, monotone latency CDF, bounded live-metric memory),
//! the kill + resume cycle reproduced a bit-identical report, and the
//! largest scale observed enough outer-trigger sessions for the band
//! checks to have teeth. Exits 1 with a diagnostic otherwise. CI runs
//! this after the `repro --fast population` smoke so a refactor that
//! breaks checkpointing, the streaming memory bound, or the measured
//! trigger rates fails the pipeline.

use bombdroid_bench::experiments::validate_population_json;
use bombdroid_obs::json::{self, JsonValue};

fn fail(msg: &str) -> ! {
    eprintln!("population_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: population_check <population.json>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    if let Err(e) = validate_population_json(&text) {
        fail(&format!("{path} INVALID: {e}"));
    }
    // Schema is valid; now the CI-level acceptance checks.
    let doc = json::parse(&text).expect("validated text parses");
    let scales = doc
        .get("scales")
        .and_then(JsonValue::as_array)
        .expect("validated doc has scales");
    let largest = scales.last().expect("validated doc has a scale");
    let devices = largest
        .get("devices")
        .and_then(JsonValue::as_int)
        .unwrap_or(0);
    let outer_total: i128 = largest
        .get("bombs")
        .and_then(JsonValue::as_array)
        .map(|bombs| {
            bombs
                .iter()
                .filter_map(|b| b.get("outer_sessions").and_then(JsonValue::as_int))
                .sum()
        })
        .unwrap_or(0);
    // Without a meaningful number of outer-trigger observations the 3σ
    // bands are vacuous — a broken VM that never decrypts a blob would
    // otherwise sail through.
    if outer_total < 100 {
        fail(&format!(
            "{path}: largest scale ({devices} devices) saw only {outer_total} \
             outer-trigger sessions — bomb triggering looks broken"
        ));
    }
    let identical = doc
        .get("resume")
        .and_then(|r| r.get("identical"))
        .map(|v| matches!(v, JsonValue::Bool(true)))
        .unwrap_or(false);
    if !identical {
        fail(&format!("{path}: kill+resume cycle was not bit-identical"));
    }
    println!(
        "population_check: {path} OK ({} scales, largest {devices} devices, \
         {outer_total} outer sessions, resume bit-identical)",
        scales.len(),
    );
}
