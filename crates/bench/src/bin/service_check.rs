//! Validates the `service.json` artifact written by `repro service`.
//!
//! ```text
//! service_check <service.json>
//! ```
//!
//! Exits 0 if the document parses, matches the service-smoke schema, and
//! passes the acceptance rules: every signed package verified, results in
//! submission order, single-flight accounting consistent (`hits +
//! protects == jobs`, `protects` = distinct artifacts), duplicate jobs
//! byte-identical with `cache_hit` set exactly on re-requests, the
//! overflow probe shed, and the serial control run bit-identical to the
//! parallel drain. Exits 1 with a diagnostic otherwise. CI runs this
//! after the `repro --fast service` smoke so a refactor that breaks the
//! cache, admission control, or drain ordering fails the pipeline.

use bombdroid_bench::experiments::validate_service_json;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: service_check <service.json>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("service_check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    if let Err(e) = validate_service_json(&text) {
        eprintln!("service_check: {path} INVALID: {e}");
        std::process::exit(1);
    }
    println!("service_check: {path} OK");
}
