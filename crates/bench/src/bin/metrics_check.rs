//! Validates a `metrics.json` artifact written by `repro`.
//!
//! ```text
//! metrics_check <path> [required-metric]...
//! ```
//!
//! Exits 0 if the file parses, matches the `bombdroid-obs` schema
//! (version, section shapes, histogram bucket-sum consistency) and
//! contains every named metric; exits 1 with a diagnostic otherwise. CI
//! runs this after a `repro` smoke pass so a refactor that silently stops
//! recording (or breaks the exporter) fails the pipeline.

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: metrics_check <metrics.json> [required-metric]...");
        std::process::exit(2);
    };
    let required: Vec<String> = args.collect();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("metrics_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let required_refs: Vec<&str> = required.iter().map(String::as_str).collect();
    match bombdroid_obs::validate_metrics(&text, &required_refs) {
        Ok(()) => {
            println!(
                "metrics_check: {path} OK (schema v{}, {} required metrics present)",
                bombdroid_obs::SCHEMA_VERSION,
                required.len()
            );
        }
        Err(e) => {
            eprintln!("metrics_check: {path} INVALID: {e}");
            std::process::exit(1);
        }
    }
}
