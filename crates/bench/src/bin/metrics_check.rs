//! Validates `metrics.json` (and optionally `flight.json`) artifacts
//! written by `repro`.
//!
//! ```text
//! metrics_check <path> [--flight <flight.json>] [required-metric]...
//! ```
//!
//! Exits 0 if the metrics file parses, matches the `bombdroid-obs` schema
//! (version, section shapes, histogram bucket-sum consistency) and
//! contains every named metric — and, when `--flight` is given, if the
//! flight-recorder dump matches its schema too (version, capacity bound,
//! monotone event sequence). Exits 1 with a diagnostic otherwise. CI runs
//! this after a `repro` smoke pass so a refactor that silently stops
//! recording (or breaks either exporter) fails the pipeline.

fn main() {
    let mut path: Option<String> = None;
    let mut flight_path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--flight" {
            match args.next() {
                Some(p) => flight_path = Some(p),
                None => {
                    eprintln!("metrics_check: --flight needs a path");
                    std::process::exit(2);
                }
            }
        } else if path.is_none() {
            path = Some(arg);
        } else {
            required.push(arg);
        }
    }
    let Some(path) = path else {
        eprintln!(
            "usage: metrics_check <metrics.json> [--flight <flight.json>] [required-metric]..."
        );
        std::process::exit(2);
    };

    let read = |p: &str| -> String {
        match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("metrics_check: cannot read {p}: {e}");
                std::process::exit(1);
            }
        }
    };

    let text = read(&path);
    let required_refs: Vec<&str> = required.iter().map(String::as_str).collect();
    match bombdroid_obs::validate_metrics(&text, &required_refs) {
        Ok(()) => {
            println!(
                "metrics_check: {path} OK (schema v{}, {} required metrics present)",
                bombdroid_obs::SCHEMA_VERSION,
                required.len()
            );
        }
        Err(e) => {
            eprintln!("metrics_check: {path} INVALID: {e}");
            std::process::exit(1);
        }
    }

    if let Some(fp) = flight_path {
        let text = read(&fp);
        match bombdroid_obs::validate_flight(&text) {
            Ok(()) => println!(
                "metrics_check: {fp} OK (flight schema v{})",
                bombdroid_obs::flight::FLIGHT_SCHEMA_VERSION
            ),
            Err(e) => {
                eprintln!("metrics_check: {fp} INVALID: {e}");
                std::process::exit(1);
            }
        }
    }
}
