//! Validates the `guided_resilience.json` artifact written by
//! `repro guided`.
//!
//! ```text
//! guided_check <guided_resilience.json>
//! ```
//!
//! Exits 0 if the document parses, matches the guided-curve schema
//! (version, per-config count consistency, strictly increasing exec axis,
//! monotone bomb counts), every reported bomb replay-validated, and the
//! `control` config — single-trigger, no bogus bombs — found at least one
//! bomb. Exits 1 with a diagnostic otherwise. CI runs this after the
//! `repro --fast guided` smoke so a refactor that silently lobotomizes the
//! fuzzer (or breaks the exporter) fails the pipeline.

use bombdroid_bench::experiments::validate_guided_json;
use bombdroid_obs::json::{self, JsonValue};

fn fail(msg: &str) -> ! {
    eprintln!("guided_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: guided_check <guided_resilience.json>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    if let Err(e) = validate_guided_json(&text) {
        fail(&format!("{path} INVALID: {e}"));
    }
    // Schema is valid; now the CI-level acceptance checks.
    let doc = json::parse(&text).expect("validated text parses");
    let configs = doc
        .get("configs")
        .and_then(JsonValue::as_array)
        .expect("validated doc has configs");
    let mut control_found: Option<i128> = None;
    for c in configs {
        let name = c.get("name").and_then(JsonValue::as_str).unwrap_or("?");
        let found = c.get("found").and_then(JsonValue::as_int).unwrap_or(0);
        let validated = c.get("validated").and_then(JsonValue::as_int).unwrap_or(0);
        if validated != found {
            fail(&format!(
                "{path}: config {name:?} reported {found} bombs but only {validated} replay-validated"
            ));
        }
        if name == "control" {
            control_found = Some(found);
        }
    }
    match control_found {
        Some(n) if n >= 1 => {}
        Some(n) => fail(&format!(
            "{path}: control config found {n} bombs — a working guided fuzzer must crack the unprotected control app"
        )),
        None => fail(&format!("{path}: no \"control\" config in artifact")),
    }
    println!(
        "guided_check: {path} OK ({} configs, control found {} bomb(s))",
        configs.len(),
        control_found.unwrap_or(0)
    );
}
