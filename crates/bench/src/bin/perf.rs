//! Hot-path perf harness: measures the protection pipeline end to end and
//! emits a machine-readable artifact.
//!
//! ```text
//! perf [--fast] [--filter SUBSTR] [--out PATH]   # measure + write JSON
//! perf --check PATH                              # validate an artifact
//! perf --compare BASE CAND [--threshold PCT] [--filter SUBSTR]
//!                                                # p50 delta table
//! ```
//!
//! Default output is `BENCH_pipeline.json` in the current directory (run
//! from the repo root to refresh the committed artifact). `--fast` is the
//! CI smoke profile: it validates the plumbing end to end but its numbers
//! are not comparison-grade. `--compare` prints the per-benchmark median
//! deltas between two artifacts and exits nonzero if any benchmark
//! regressed past the threshold (default 10%); `--filter` restricts the
//! comparison to benchmarks whose name contains the substring, which is
//! how CI hard-gates the `vm/` family while keeping the rest advisory.
//! See EXPERIMENTS.md § "Perf
//! harness" for the schema and how to compare runs across PRs.

use bombdroid_bench::perf::{
    compare_bench_json, run_bench, to_json, validate_bench_json, BenchResult, PerfConfig,
};
use bombdroid_bench::{
    experiments::{flagships, protect_app, table3_with},
    fixed_keys,
};
use bombdroid_core::{profile_app, FleetConfig, ProtectConfig};
use bombdroid_crypto::{aes, blob, kdf, sha1, sha256};
use bombdroid_dex::{wire, Value};
use bombdroid_obs::{self as obs, ObsMode, Recorder, ShardAggregator};
use bombdroid_runtime::{
    DeviceEnv, EventSource, InstalledPackage, RandomEventSource, Vm, VmEngine, VmOptions,
};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("usage: perf --check <path>");
            std::process::exit(2);
        };
        return check(path);
    }
    if let Some(i) = args.iter().position(|a| a == "--compare") {
        let (Some(base), Some(cand)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!(
                "usage: perf --compare <baseline.json> <candidate.json> \
                 [--threshold PCT] [--filter SUBSTR]"
            );
            std::process::exit(2);
        };
        let threshold = match flag_value(&args, "--threshold") {
            Some(t) => t.parse().unwrap_or_else(|_| {
                eprintln!("perf --compare: --threshold must be a number, got {t:?}");
                std::process::exit(2);
            }),
            None => 10.0,
        };
        return compare(
            base,
            cand,
            threshold,
            flag_value(&args, "--filter").as_deref(),
        );
    }
    let fast = args.iter().any(|a| a == "--fast");
    let filter = flag_value(&args, "--filter");
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let (mode, config) = if fast {
        ("fast", PerfConfig::fast())
    } else {
        ("full", PerfConfig::full())
    };

    let results = run_all(&config, filter.as_deref());
    for r in &results {
        let bps = match r.bytes_per_s() {
            Some(v) => format!("{:>10.1} MB/s", v as f64 / 1e6),
            None => String::new(),
        };
        eprintln!(
            "perf {:<32} p50 {:>12} ns  p95 {:>12} ns  ({} iters) {}",
            r.name, r.p50_ns, r.p95_ns, r.iters, bps
        );
    }
    let json = to_json(mode, &results);
    validate_bench_json(&json).expect("perf harness emitted invalid JSON");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!(
        "perf: wrote {} benchmarks to {out} (mode: {mode})",
        results.len()
    );
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn compare(base_path: &str, cand_path: &str, threshold_pct: f64, filter: Option<&str>) {
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf --compare: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let mut report = match compare_bench_json(&read(base_path), &read(cand_path), threshold_pct) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf --compare: {e}");
            std::process::exit(1);
        }
    };
    if let Some(f) = filter {
        report.rows.retain(|r| r.name.contains(f));
        if report.rows.is_empty() {
            eprintln!("perf --compare: no benchmark matches --filter {f:?}");
            std::process::exit(1);
        }
    }
    print!("{}", report.render());
    let regressions = report.regressions();
    if regressions.is_empty() {
        println!("perf --compare: OK (no benchmark regressed more than {threshold_pct}%)");
    } else {
        eprintln!(
            "perf --compare: {} benchmark(s) regressed more than {threshold_pct}%: {}",
            regressions.len(),
            regressions.join(", ")
        );
        std::process::exit(1);
    }
}

fn check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf --check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    match validate_bench_json(&text) {
        Ok(n) => println!("perf --check: {path} OK ({n} benchmarks)"),
        Err(e) => {
            eprintln!("perf --check: {path} INVALID: {e}");
            std::process::exit(1);
        }
    }
}

fn run_all(config: &PerfConfig, filter: Option<&str>) -> Vec<BenchResult> {
    let mut results = Vec::new();
    let wanted = |name: &str| filter.map(|f| name.contains(f)).unwrap_or(true);
    let mut push = |r: BenchResult| results.push(r);

    // --- crypto: the per-bomb primitives (KDF, trigger hash, seal/open) ---
    if wanted("crypto/sha256_4k") {
        let data = vec![0xA5u8; 4096];
        push(run_bench("crypto/sha256_4k", Some(4096), config, || {
            std::hint::black_box(sha256::digest(std::hint::black_box(&data)));
        }));
    }
    if wanted("crypto/sha1_4k") {
        let data = vec![0x5Au8; 4096];
        push(run_bench("crypto/sha1_4k", Some(4096), config, || {
            std::hint::black_box(sha1::digest(std::hint::black_box(&data)));
        }));
    }
    if wanted("crypto/aes_ctr_16k") {
        let key = [7u8; 16];
        let mut data = vec![0u8; 16_384];
        push(run_bench(
            "crypto/aes_ctr_16k",
            Some(16_384),
            config,
            || {
                aes::ctr_xor(&key, 42, std::hint::black_box(&mut data));
            },
        ));
    }
    if wanted("crypto/bomb_site_material") {
        // Exactly the per-bomb derivation the instrument stage performs:
        // condition hash + payload key from one trigger constant + salt.
        let constant = Value::Int(0xfff000);
        let salt = [9u8; 8];
        push(run_bench("crypto/bomb_site_material", None, config, || {
            let m = kdf::site_material(
                &std::hint::black_box(&constant).canonical_bytes(),
                std::hint::black_box(&salt),
            );
            std::hint::black_box((m.key, m.condition_hash));
        }));
    }
    if wanted("crypto/blob_seal_400") {
        let key = kdf::derive_key(b"constant", b"salt");
        let payload = vec![0x5Au8; 400];
        push(run_bench("crypto/blob_seal_400", Some(400), config, || {
            std::hint::black_box(blob::seal(&key, std::hint::black_box(&payload)));
        }));
    }
    if wanted("crypto/blob_open_400") {
        let key = kdf::derive_key(b"constant", b"salt");
        let sealed = blob::seal(&key, &vec![0x5Au8; 400]);
        push(run_bench("crypto/blob_open_400", Some(400), config, || {
            std::hint::black_box(blob::open(&key, std::hint::black_box(&sealed)).unwrap());
        }));
    }

    // --- dex wire: serialization cost behind packaging + size reporting ---
    let app = bombdroid_corpus::flagship::hash_droid();
    let encoded = wire::encode_dex(&app.dex);
    if wanted("dex/encode_dex") {
        let bytes = encoded.len() as u64;
        push(run_bench("dex/encode_dex", Some(bytes), config, || {
            std::hint::black_box(wire::encode_dex(std::hint::black_box(&app.dex)));
        }));
    }
    if wanted("dex/decode_dex") {
        let bytes = encoded.len() as u64;
        push(run_bench("dex/decode_dex", Some(bytes), config, || {
            std::hint::black_box(wire::decode_dex(std::hint::black_box(&encoded)).unwrap());
        }));
    }

    // --- analysis: QC scanning (site planning input) ---
    if wanted("analysis/qc_scan_dex") {
        push(run_bench("analysis/qc_scan_dex", None, config, || {
            std::hint::black_box(bombdroid_analysis::qc::scan_dex(std::hint::black_box(
                &app.dex,
            )));
        }));
    }

    // --- pipeline: the full protect pass (the service's per-APK cost) ---
    let (dev, _) = fixed_keys();
    let apk = app.apk(&dev);
    let protect_config = ProtectConfig::fast_profile();
    if wanted("pipeline/protect_flagship") {
        let protector = bombdroid_core::Protector::new(protect_config.clone());
        push(run_bench("pipeline/protect_flagship", None, config, || {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(
                protector
                    .protect(std::hint::black_box(&apk), &mut rng)
                    .unwrap()
                    .report
                    .bombs_injected(),
            );
        }));
    }

    if wanted("pipeline/protect_batch8") {
        // The whole-fleet cost: protect every flagship once per iteration
        // (what a store-side protection service pays per corpus sweep).
        let apks: Vec<_> = flagships().iter().map(|a| a.apk(&dev)).collect();
        let protector = bombdroid_core::Protector::new(protect_config.clone());
        push(run_bench("pipeline/protect_batch8", None, config, || {
            let mut bombs = 0usize;
            for (i, apk) in apks.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(0x7AB0 + i as u64);
                bombs += protector
                    .protect(std::hint::black_box(apk), &mut rng)
                    .unwrap()
                    .report
                    .bombs_injected();
            }
            std::hint::black_box(bombs);
        }));
    }

    // --- crypto: multi-buffer SHA-256 (arm-phase batch hashing) ---
    if wanted("crypto/sha256_mb4_4k") {
        // Four independent 4 KiB messages through the 4-lane kernel —
        // compare against 4× crypto/sha256_4k for the interleave win.
        let bufs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![0xA5 ^ i; 4096]).collect();
        push(run_bench(
            "crypto/sha256_mb4_4k",
            Some(4 * 4096),
            config,
            || {
                let refs: Vec<&[u8]> = bufs.iter().map(Vec::as_slice).collect();
                std::hint::black_box(sha256::digest_many(std::hint::black_box(&refs)));
            },
        ));
    }

    // --- service: protect-as-a-service throughput + queue overhead ---
    if wanted("service/protect_qps") {
        // Sustained intake→drain over all eight flagships with a cold
        // cache each iteration: the store-side cost of one corpus sweep
        // through the service path (admission, sharding, cache misses).
        let apks: Vec<_> = flagships().iter().map(|a| Arc::new(a.apk(&dev))).collect();
        push(run_bench("service/protect_qps", None, config, || {
            let mut svc = bombdroid_core::ProtectService::with_threads(1, apks.len());
            for apk in &apks {
                svc.submit(bombdroid_core::ProtectJob {
                    apk: Arc::clone(apk),
                    config: protect_config.clone(),
                    seed: bombdroid_core::SeedPolicy::PerApp { base: 0x7AB0 },
                })
                .unwrap();
            }
            let outcomes = svc.drain();
            std::hint::black_box(outcomes.len());
        }));
    }
    if wanted("service/queue_cycle_64") {
        // Queue latency floor: 64 duplicate jobs against a warm shared
        // cache — every request is a hit, so this isolates submit +
        // drain + cache-lookup overhead per job (the queue-wait path).
        let apk = Arc::new(app.apk(&dev));
        let cache = Arc::new(bombdroid_core::ProtectionCache::new());
        push(run_bench("service/queue_cycle_64", None, config, || {
            let mut svc = bombdroid_core::ProtectService::with_parts(1, 64, Arc::clone(&cache));
            for _ in 0..64 {
                svc.submit(bombdroid_core::ProtectJob {
                    apk: Arc::clone(&apk),
                    config: protect_config.clone(),
                    seed: bombdroid_core::SeedPolicy::Fixed(0x7AB0),
                })
                .unwrap();
            }
            let outcomes = svc.drain();
            std::hint::black_box(outcomes.len());
        }));
    }

    // --- runtime: protected-app event throughput (Table 5's kernel) ---
    if wanted("vm/drive_protected_50ev")
        || wanted("vm/drive_coverage_on")
        || wanted("vm/profile_2k_events")
        || wanted("vm/boot_session")
        || wanted("vm/fork_session")
        || wanted("attacks/guided_smoke")
    {
        let (_, signed) = protect_app(&app, protect_config.clone(), 0xBE);
        let pkg = Arc::new(InstalledPackage::install(&signed).expect("signed install"));
        // Cold path: boot a fresh VM and run 10 deterministic warm-up
        // events (the per-device cost the market simulator used to pay).
        let warm_boot = |pkg: &Arc<InstalledPackage>| -> Vm {
            let mut rng = StdRng::seed_from_u64(17);
            let mut vm = Vm::boot(Arc::clone(pkg), DeviceEnv::sample(&mut rng), 17);
            let mut source = RandomEventSource;
            let dex = Arc::clone(&vm.pkg.dex);
            for _ in 0..10 {
                if let Some(ev) = source.next_event(&dex, &mut rng) {
                    let _ = vm.fire_entry(ev.entry_index, ev.args);
                }
                if vm.is_killed() || vm.is_frozen() {
                    break;
                }
            }
            vm
        };
        if wanted("vm/boot_session") {
            push(run_bench("vm/boot_session", None, config, || {
                std::hint::black_box(warm_boot(&pkg).telemetry().instr_executed);
            }));
        }
        if wanted("vm/fork_session") {
            // Warm path: mint a ready session by forking the post-warm-up
            // snapshot — O(changed-state) instead of a full re-boot+replay.
            let snap = warm_boot(&pkg).snapshot();
            let env = DeviceEnv::sample(&mut StdRng::seed_from_u64(21));
            push(run_bench("vm/fork_session", None, config, || {
                let vm = snap.fork(std::hint::black_box(env.clone()), 21);
                std::hint::black_box(vm.telemetry().instr_executed);
            }));
        }
        if wanted("vm/drive_protected_50ev") {
            push(run_bench("vm/drive_protected_50ev", None, config, || {
                let mut rng = StdRng::seed_from_u64(3);
                let mut vm = Vm::boot(Arc::clone(&pkg), DeviceEnv::sample(&mut rng), 3);
                let mut source = RandomEventSource;
                let dex = Arc::clone(&vm.pkg.dex);
                for _ in 0..50 {
                    if let Some(ev) = source.next_event(&dex, &mut rng) {
                        let _ = vm.fire_entry(ev.entry_index, ev.args);
                    }
                    if vm.is_killed() || vm.is_frozen() {
                        break;
                    }
                }
                std::hint::black_box(vm.telemetry().instr_executed);
            }));
        }
        if wanted("vm/drive_coverage_on") {
            // The same 50-event drive with the edge-coverage hook armed
            // (decoded engine): the fuzzer's per-exec cost. Paired with
            // vm/drive_protected_50ev it bounds the hook's overhead; the
            // disabled-hook side is pinned exactly (telemetry-identical)
            // by the attacks determinism suite.
            let cov_opts = VmOptions {
                engine: VmEngine::Decoded,
                collect_coverage: true,
                ..VmOptions::default()
            };
            push(run_bench("vm/drive_coverage_on", None, config, || {
                let mut rng = StdRng::seed_from_u64(3);
                let mut vm = Vm::new(
                    Arc::clone(&pkg),
                    DeviceEnv::sample(&mut rng),
                    3,
                    cov_opts.clone(),
                );
                let mut source = RandomEventSource;
                let dex = Arc::clone(&vm.pkg.dex);
                for _ in 0..50 {
                    if let Some(ev) = source.next_event(&dex, &mut rng) {
                        let _ = vm.fire_entry(ev.entry_index, ev.args);
                    }
                    if vm.is_killed() || vm.is_frozen() {
                        break;
                    }
                }
                std::hint::black_box((vm.telemetry().instr_executed, vm.coverage_edges().len()));
            }));
        }
        if wanted("attacks/guided_smoke") {
            // One tiny serial guided campaign end to end (dictionary
            // harvest + seeds + snapshot-fork exec loop + merge): the
            // fuzzing subsystem's fixed cost per campaign.
            let campaign = bombdroid_attacks::GuidedConfig {
                seed: 0xF5,
                shards: 1,
                execs_per_shard: 10,
                threads: Some(1),
                reset: bombdroid_attacks::ResetMode::SnapshotFork,
                crack_budget: 500,
                checkpoints: 2,
                window: 1,
            };
            push(run_bench("attacks/guided_smoke", None, config, || {
                let report =
                    bombdroid_attacks::fuzz::guided(std::hint::black_box(&signed), &campaign);
                std::hint::black_box((report.coverage.len(), report.findings.len()));
            }));
        }
        if wanted("vm/profile_2k_events") {
            // The protect prologue's dominant stage: install + boot + 2 000
            // random events. Sensitive to per-boot dex copies.
            let profile_config = ProtectConfig {
                profiling_events: 2_000,
                ..protect_config.clone()
            };
            let apk = app.apk(&dev);
            push(run_bench("vm/profile_2k_events", None, config, || {
                let hot = profile_app(std::hint::black_box(&apk), &profile_config, 11)
                    .expect("signed apk profiles")
                    .hot;
                std::hint::black_box(hot.len());
            }));
        }
    }

    // --- obs: facade + streaming-aggregation cost ---
    // The observability contract is "off is near-free, full is cheap":
    // these lines pin the facade hot path (existing-key lookups must not
    // allocate) and the end-to-end overhead of full recording on the
    // profile workload. `set_mode` forces the mode per bench so one
    // process measures both sides; the prior mode is restored after.
    if wanted("obs/facade_counter_hot_1k")
        || wanted("obs/facade_timing_hot_1k")
        || wanted("obs/aggregator_absorb")
        || wanted("obs/profile_2k_off")
        || wanted("obs/profile_2k_full")
    {
        let prior = obs::mode();
        if wanted("obs/facade_counter_hot_1k") {
            obs::set_mode(ObsMode::Full);
            let scratch = Arc::new(Recorder::new());
            scratch.counter_add("bench.hot", 0);
            push(run_bench("obs/facade_counter_hot_1k", None, config, || {
                obs::with_recorder(Arc::clone(&scratch), || {
                    for i in 0..1024u64 {
                        obs::counter_add("bench.hot", std::hint::black_box(i) & 1);
                    }
                });
            }));
        }
        if wanted("obs/facade_timing_hot_1k") {
            obs::set_mode(ObsMode::Full);
            let scratch = Arc::new(Recorder::new());
            scratch.timing_record("bench.timing", 1);
            push(run_bench("obs/facade_timing_hot_1k", None, config, || {
                obs::with_recorder(Arc::clone(&scratch), || {
                    for i in 0..1024u64 {
                        obs::timing_record("bench.timing", std::hint::black_box(i) | 1);
                    }
                });
            }));
        }
        if wanted("obs/aggregator_absorb") {
            obs::set_mode(ObsMode::Full);
            // One synthetic per-task delta, absorbed repeatedly: the
            // fleet engine's per-task streaming fold cost. Sealed windows
            // are drained so memory stays bounded over the run.
            let delta = Recorder::new();
            delta.counter_add("task.events", 31);
            delta.counter_add("task.instr", 1733);
            delta.counter_add("task.reports", 1);
            delta.gauge_set("task.last", 7);
            delta.record("task.latency", 52_000);
            delta.timing_record("task.run", 40_000);
            let agg = ShardAggregator::new(64);
            push(run_bench("obs/aggregator_absorb", None, config, || {
                if agg.absorb_next(std::hint::black_box(&delta)).is_some() {
                    agg.drain_windows();
                }
            }));
        }
        // The off-vs-full pair on the protect prologue's dominant stage
        // (same workload as vm/profile_2k_events): full recording —
        // spans, op-mix counters, flight notes — must stay within a few
        // percent of off.
        let profile_config = ProtectConfig {
            profiling_events: 2_000,
            ..protect_config.clone()
        };
        if wanted("obs/profile_2k_off") {
            obs::set_mode(ObsMode::Off);
            push(run_bench("obs/profile_2k_off", None, config, || {
                let hot = profile_app(std::hint::black_box(&apk), &profile_config, 11)
                    .expect("signed apk profiles")
                    .hot;
                std::hint::black_box(hot.len());
            }));
        }
        if wanted("obs/profile_2k_full") {
            obs::set_mode(ObsMode::Full);
            let scratch = Arc::new(Recorder::new());
            push(run_bench("obs/profile_2k_full", None, config, || {
                obs::with_recorder(Arc::clone(&scratch), || {
                    let hot = profile_app(std::hint::black_box(&apk), &profile_config, 11)
                        .expect("signed apk profiles")
                        .hot;
                    std::hint::black_box(hot.len());
                });
            }));
        }
        obs::set_mode(prior);
    }

    // --- sim: the population-scale market day loop ---
    if wanted("sim/day_10k_sessions") || wanted("sim/checkpoint_roundtrip") {
        use bombdroid_sim::{BombCatalog, BombEntry, SimConfig, Simulator, SyntheticRunner};
        let catalog = BombCatalog::new(vec![
            BombEntry {
                marker: 1,
                blob: 1,
                predicted_ppm: 150_000,
            },
            BombEntry {
                marker: 2,
                blob: 2,
                predicted_ppm: 120_000,
            },
        ]);
        let mut sim_config = SimConfig::new(10_000, 5, 0x51B);
        sim_config.market.halt_on_takedown = false;
        sim_config.threads = Some(1);
        if wanted("sim/day_10k_sessions") {
            // One full 10k-session day loop with the closed-form runner:
            // the simulator's own overhead (population derivation, fleet
            // fan-out, windowed aggregation, serial fold), with VM cost
            // factored out.
            push(run_bench("sim/day_10k_sessions", None, config, || {
                let mut sim = Simulator::new(
                    sim_config,
                    catalog.clone(),
                    SyntheticRunner::new(catalog.clone()),
                );
                sim.run();
                std::hint::black_box(sim.sessions_run());
            }));
        }
        if wanted("sim/checkpoint_roundtrip") {
            // Serialize + parse + restore of a mid-run checkpoint: the
            // per-boundary cost a long campaign pays for killability.
            let mut sim = Simulator::new(
                sim_config,
                catalog.clone(),
                SyntheticRunner::new(catalog.clone()),
            );
            assert!(sim.step(), "fixture run finished before first boundary");
            push(run_bench("sim/checkpoint_roundtrip", None, config, || {
                let ckpt = sim.checkpoint_json().expect("at chunk boundary");
                let resumed = Simulator::from_checkpoint(
                    std::hint::black_box(&ckpt),
                    SyntheticRunner::new(catalog.clone()),
                )
                .expect("round-trip");
                std::hint::black_box(resumed.sessions_run());
            }));
        }
    }

    // --- fleet: a miniature Table 3 (protect-cache + sessions + merge) ---
    if wanted("fleet/table3_smoke") {
        push(run_bench("fleet/table3_smoke", None, config, || {
            let rows = table3_with(
                FleetConfig::new(0x7AB3),
                ProtectConfig::fast_profile(),
                1,
                5,
            );
            std::hint::black_box(rows.len());
        }));
    }

    results
}
