//! Compares two schema-v1 `metrics.json` artifacts and reports drift.
//!
//! ```text
//! metrics_diff <base.json> <candidate.json> [--threshold <pct>]
//! ```
//!
//! Prints a table of changed/added/removed metrics: counter deltas with
//! relative change, histogram count/sum deltas with approximate p50
//! drift, and timing call/p95 drift (wall-clock, informational only).
//! Exits 1 when any deterministic quantity (a counter value or histogram
//! count) drifts more than `--threshold` percent (default 10), or when
//! such a key appears/disappears; exits 2 on usage or parse errors;
//! exits 0 otherwise. CI runs this advisory between a committed reference
//! artifact and each fresh smoke run so metric drift is visible in the
//! log before anyone has to bisect for it.

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 10.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threshold" {
            threshold = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("metrics_diff: --threshold needs a number");
                std::process::exit(2);
            });
        } else {
            paths.push(arg);
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: metrics_diff <base.json> <candidate.json> [--threshold <pct>]");
        std::process::exit(2);
    }

    let read = |p: &str| -> String {
        match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("metrics_diff: cannot read {p}: {e}");
                std::process::exit(2);
            }
        }
    };
    let base = read(&paths[0]);
    let cand = read(&paths[1]);

    match bombdroid_obs::diff::diff_metrics(&base, &cand, threshold) {
        Ok(report) => {
            println!("metrics_diff: {} vs {}", paths[0], paths[1]);
            print!("{}", report.table());
            if report.has_breach() {
                eprintln!(
                    "metrics_diff: {} breach(es) beyond ±{threshold}%",
                    report.breaches()
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("metrics_diff: {e}");
            std::process::exit(2);
        }
    }
}
