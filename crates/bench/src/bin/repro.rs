//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--fast] <experiment>...
//! repro all            # everything
//! repro table1 fig3 table2 table3 fig4 table4 fig5 analysts table5 \
//!       falsepos codesize resilience guided brute ablation population
//! ```
//!
//! `--fast` scales budgets down (~10×) for a quick end-to-end pass; the
//! default budgets match the paper's (hour-long fuzzing runs, 50 user
//! sessions, 20-hour analysts — all in *virtual* time, so the default run
//! still completes in minutes of wall-clock).
//!
//! Every fan-out experiment runs on the deterministic fleet engine: set
//! `BOMBDROID_THREADS=N` to pick the worker count (default: all CPUs).
//! Output is bit-identical for any `N`; protection artifacts are shared
//! across experiments through the harness cache, so `all` protects each
//! flagship once.
//!
//! `BOMBDROID_OBS` controls the observability layer (`bombdroid-obs`):
//! `full` (default) prints a metrics summary and writes
//! `target/repro_output/metrics.json`; `summary` prints the table only;
//! `off` disables recording. Per-experiment progress and the metrics
//! summary go to stderr: stdout carries only the experiment tables and
//! stays bit-identical for any thread count.

use bombdroid_bench::experiments as ex;
use bombdroid_bench::print::{f1, pct, table};
use bombdroid_core::ProtectConfig;
use bombdroid_obs as obs;
use std::time::Instant;

struct Budgets {
    profiling_events: u64,
    table1_apps: usize,
    table3_runs: usize,
    table3_cap_min: u64,
    fuzz_minutes: u64,
    analyst_hours: u64,
    falsepos_minutes: u64,
    resilience_apps: usize,
    brute_budget: u64,
    guided_shards: usize,
    guided_execs_per_shard: u64,
    guided_crack_budget: u64,
    population_scales: Vec<usize>,
    population_days: u32,
}

impl Budgets {
    fn paper() -> Self {
        Budgets {
            profiling_events: 10_000,
            table1_apps: usize::MAX, // all 963
            table3_runs: 50,
            table3_cap_min: 60,
            fuzz_minutes: 60,
            analyst_hours: 20,
            falsepos_minutes: 600, // ten hours
            resilience_apps: 2,
            brute_budget: 1_000_000,
            guided_shards: 8,
            guided_execs_per_shard: 240,
            guided_crack_budget: 20_000,
            population_scales: vec![10_000, 100_000, 1_000_000],
            population_days: 14,
        }
    }

    fn fast() -> Self {
        Budgets {
            profiling_events: 1_000,
            table1_apps: 6,
            table3_runs: 8,
            table3_cap_min: 60,
            fuzz_minutes: 10,
            analyst_hours: 2,
            falsepos_minutes: 30,
            resilience_apps: 1,
            brute_budget: 100_000,
            guided_shards: 4,
            guided_execs_per_shard: 60,
            guided_crack_budget: 5_000,
            population_scales: vec![1_000, 10_000],
            population_days: 14,
        }
    }

    fn config(&self) -> ProtectConfig {
        ProtectConfig {
            profiling_events: self.profiling_events,
            ..ProtectConfig::default()
        }
    }
}

fn main() {
    // A crash mid-run still leaves the flight recorder's last events on
    // disk (target/repro_output/flight.json) for post-mortem triage.
    obs::flight::install_panic_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let budgets = if fast {
        Budgets::fast()
    } else {
        Budgets::paper()
    };
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec![
            "table1",
            "fig3",
            "table2",
            "table3",
            "fig4",
            "table4",
            "fig5",
            "analysts",
            "table5",
            "falsepos",
            "codesize",
            "resilience",
            "guided",
            "brute",
            "ablation",
            "population",
            "service",
        ];
    }
    let total = wanted.len();
    for (i, w) in wanted.iter().enumerate() {
        eprintln!("[{}/{total}] {w} ...", i + 1);
        let started = Instant::now();
        let span = obs::span(format!("experiment.{w}"));
        match *w {
            "table1" => table1(&budgets),
            "fig3" => fig3(),
            "table2" => table2(&budgets),
            "table3" => table3(&budgets),
            "fig4" => fig4(&budgets),
            "table4" => table4(&budgets),
            "fig5" => fig5(&budgets),
            "analysts" => analysts(&budgets),
            "table5" => table5(&budgets),
            "falsepos" => falsepos(&budgets),
            "codesize" => codesize(&budgets),
            "resilience" => resilience(&budgets),
            "guided" => guided(&budgets),
            "population" => population(&budgets),
            "service" => service(&budgets),
            "brute" => brute(&budgets),
            "ablation" => ablation(),
            other => {
                eprintln!("unknown experiment: {other}");
                span.end();
                continue;
            }
        }
        span.end();
        obs::counter_add("repro.experiments", 1);
        eprintln!(
            "[{}/{total}] {w} done in {}",
            i + 1,
            obs::fmt_ns(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
        );
    }
    export_metrics();
}

/// Prints the metrics summary (`summary`/`full` modes) and writes the
/// schema-versioned `target/repro_output/metrics.json` artifact (`full`
/// mode). The summary goes to **stderr**: it contains wall-clock timings,
/// and stdout must stay bit-identical for any `BOMBDROID_THREADS` value
/// (the fleet determinism contract). In the artifact the nondeterministic
/// subset is confined to the `total_ns` fields.
fn export_metrics() {
    if !obs::enabled() {
        return;
    }
    let rec = obs::global();
    if rec.is_empty() {
        return;
    }
    eprintln!("\n=== metrics (BOMBDROID_OBS) ===\n");
    eprint!("{}", rec.summary());
    if obs::mode() != obs::ObsMode::Full {
        return;
    }
    let dir = std::path::Path::new("target/repro_output");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("metrics: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("metrics.json");
    match std::fs::write(&path, rec.to_json(true)) {
        Ok(()) => eprintln!("metrics written to {}", path.display()),
        Err(e) => eprintln!("metrics: cannot write {}: {e}", path.display()),
    }
    // Also dump the flight ring on clean exits so CI can validate its
    // schema without having to crash the process.
    let flight_path = dir.join("flight.json");
    match obs::flight::dump(&flight_path) {
        Ok(()) => eprintln!("flight events written to {}", flight_path.display()),
        Err(e) => eprintln!("flight: cannot write {}: {e}", flight_path.display()),
    }
}

fn banner(title: &str, paper: &str) {
    println!("\n=== {title} ===");
    println!("paper: {paper}\n");
}

fn table1(b: &Budgets) {
    banner(
        "Table 1 — static characteristics",
        "e.g. Game: 105 apps, 3043 LOC, 95 candidate methods, 56 QCs, 16 env vars",
    );
    let rows = ex::table1(b.table1_apps, b.profiling_events.min(1_000));
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.category.label().to_string(),
                r.apps.to_string(),
                f1(r.avg_loc),
                f1(r.avg_candidate_methods),
                f1(r.avg_existing_qcs),
                f1(r.avg_env_vars),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "Category",
                "# apps",
                "Avg LOC",
                "Avg cand. methods",
                "Avg exist. QCs",
                "Avg env vars"
            ],
            &printable,
        )
    );
}

fn fig3() {
    banner(
        "Fig. 3 — AndroFish variable traces (60 min, 1 sample/min)",
        "dir/width/height take few values; speed/posX/posY wander widely",
    );
    let data = ex::fig3(60);
    for (name, series) in &data.series {
        let values: Vec<String> = series
            .iter()
            .step_by(6)
            .map(|(_, v)| v.to_string())
            .collect();
        println!("{name:>7}: {}", values.join(" "));
    }
    println!();
    let printable: Vec<Vec<String>> = data
        .unique_counts
        .iter()
        .map(|(n, u)| vec![n.clone(), u.to_string()])
        .collect();
    print!("{}", table(&["Variable", "Unique values"], &printable));
}

fn table2(b: &Budgets) {
    banner(
        "Table 2 — injected logic bombs",
        "AndroFish 67 (36+31), Angulo 43 (25+18), …, BRouter 263 (144+119)",
    );
    let rows = ex::table2(b.config());
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.total.to_string(),
                r.existing.to_string(),
                r.artificial.to_string(),
                r.bogus.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "App",
                "# bombs",
                "# existing QC",
                "# artificial QC",
                "(+bogus)"
            ],
            &printable
        )
    );
}

fn table3(b: &Budgets) {
    banner(
        "Table 3 — time to first triggered bomb (user sessions)",
        "min 8–26 s, max 213–778 s, avg 75–164 s, success 50/50",
    );
    let rows = ex::table3(b.config(), b.table3_runs, b.table3_cap_min);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                f1(r.min_s),
                f1(r.max_s),
                f1(r.avg_s),
                format!("{}/{}", r.successes, r.runs),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &["App", "Min (s)", "Max (s)", "Avg (s)", "Success"],
            &printable
        )
    );
}

fn fig4(b: &Budgets) {
    banner(
        "Fig. 4 — strength of outer trigger conditions",
        "existing QCs: many weak; artificial QCs: all medium/strong",
    );
    let rows = ex::fig4(b.config());
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                format!("{}/{}/{}", r.existing.0, r.existing.1, r.existing.2),
                format!("{}/{}/{}", r.artificial.0, r.artificial.1, r.artificial.2),
            ]
        })
        .collect();
    print!(
        "{}",
        table(&["App", "Existing W/M/S", "Artificial W/M/S"], &printable)
    );
}

fn table4(b: &Budgets) {
    banner(
        "Table 4 — % outer trigger conditions satisfied in 1 h",
        "Monkey 19–32%, PUMA 22–36%, AndroidHooker 21–34%, Dynodroid 27–39% (best)",
    );
    let rows = ex::table4(b.config(), b.fuzz_minutes);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.app.clone()];
            row.extend(r.tools.iter().map(|(_, p)| f1(*p)));
            row
        })
        .collect();
    print!(
        "{}",
        table(&["App", "Monkey", "PUMA", "AH", "Dynodroid"], &printable)
    );
}

fn fig5(b: &Budgets) {
    banner(
        "Fig. 5 — % bombs triggered by Dynodroid over one hour",
        "flattens by ~35 min; at most 6.4% of bombs triggered",
    );
    let series = ex::fig5(b.config(), b.fuzz_minutes);
    for s in &series {
        let pts: Vec<String> = s
            .points
            .iter()
            .step_by((s.points.len() / 10).max(1))
            .map(|(m, p)| format!("{m}m:{p:.1}%"))
            .collect();
        let last = s.points.last().map(|(_, p)| *p).unwrap_or(0.0);
        println!(
            "{:>14} ({:>3} bombs): {}  → final {:.1}%",
            s.app,
            s.total_bombs,
            pts.join(" "),
            last
        );
    }
}

fn analysts(b: &Budgets) {
    banner(
        "§8.3.2 — human analysts (guided, env mutation)",
        "at most 9.3% of bombs triggered in 20 h",
    );
    let rows = ex::analysts(b.config(), b.analyst_hours, 30);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                format!("{}/{}", r.triggered, r.total),
                pct(r.pct),
            ]
        })
        .collect();
    print!("{}", table(&["App", "Triggered", "%"], &printable));
}

fn table5(b: &Budgets) {
    banner(
        "Table 5 — execution-time overhead",
        "1.4–2.6% across the eight apps",
    );
    let rows = ex::table5(
        b.config(),
        20_000.min(if b.table1_apps == 6 { 3_000 } else { 20_000 }),
    );
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.ta_instr.to_string(),
                r.tb_instr.to_string(),
                pct(r.overhead_pct),
            ]
        })
        .collect();
    print!(
        "{}",
        table(&["App", "Ta (instr)", "Tb (instr)", "Overhead"], &printable)
    );
}

fn falsepos(b: &Budgets) {
    banner(
        "§8.4 — false positives",
        "10 h of random events on legitimate copies: zero responses",
    );
    let rows = ex::false_positives(b.config(), b.falsepos_minutes);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.events.to_string(),
                r.responses.to_string(),
                r.reports.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(&["App", "Events", "Responses", "Reports"], &printable)
    );
}

fn codesize(b: &Budgets) {
    banner("§8.4 — code size increase", "8–13%, average 9.7%");
    let rows = ex::code_size(b.config());
    let avg = rows.iter().map(|r| r.increase_pct).sum::<f64>() / rows.len().max(1) as f64;
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.original.to_string(),
                r.protected.to_string(),
                pct(r.increase_pct),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &["App", "Original (B)", "Protected (B)", "Increase"],
            &printable
        )
    );
    println!("average increase: {avg:.1}%");
}

fn resilience(b: &Budgets) {
    banner(
        "§5 — resilience matrix (attack × protection)",
        "BombDroid survives everything; naive and SSN fall",
    );
    for (app, report) in ex::resilience_reports(b.resilience_apps) {
        println!("--- {app} ---");
        let printable: Vec<Vec<String>> = report
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.protection.to_string(),
                    c.attack.to_string(),
                    if c.defeated { "DEFEATED" } else { "resists" }.to_string(),
                    c.note.clone(),
                ]
            })
            .collect();
        print!(
            "{}",
            table(&["Protection", "Attack", "Verdict", "Evidence"], &printable)
        );
        let brute = &report.brute.report;
        println!(
            "brute force: {}/{} conditions cracked in {} hash evaluations\n",
            brute.cracked, brute.total, brute.tries
        );
    }
}

fn guided(b: &Budgets) {
    banner(
        "§5/§8.3 extension — coverage-guided greybox fuzzing",
        "bombs found vs exec budget, per protection config (control / default / bogus-dense)",
    );
    let campaign = bombdroid_attacks::GuidedConfig {
        seed: ex::PROTECT_BASE,
        shards: b.guided_shards,
        execs_per_shard: b.guided_execs_per_shard,
        threads: None,
        reset: bombdroid_attacks::ResetMode::SnapshotFork,
        crack_budget: b.guided_crack_budget,
        checkpoints: 6,
        window: 2,
    };
    let rows = ex::guided_curves(&campaign, &ProtectConfig::fast_profile());
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.total_bombs.to_string(),
                format!("{}/{}", r.found, r.validated),
                r.execs.to_string(),
                r.curve
                    .iter()
                    .map(|(e, n)| format!("{e}:{n}"))
                    .collect::<Vec<_>>()
                    .join(" "),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "Config",
                "Bombs",
                "Found/Valid",
                "Execs",
                "Curve (execs:bombs)"
            ],
            &printable
        )
    );
    let json = ex::guided_json(ex::guided::GUIDED_APP, ex::PROTECT_BASE, &rows);
    ex::validate_guided_json(&json).expect("guided experiment emitted an invalid artifact");
    let dir = std::path::Path::new("target/repro_output");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("guided: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("guided_resilience.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("guided curves written to {}", path.display()),
        Err(e) => eprintln!("guided: cannot write {}: {e}", path.display()),
    }
}

fn population(b: &Budgets) {
    banner(
        "§4.2/§6 extension — population-scale market validation",
        "measured per-user trigger rates + detection-latency CDF vs closed-form, with kill+resume",
    );
    let (rows, resume) = ex::population_rows(&b.population_scales, b.population_days);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.devices.to_string(),
                r.sessions_run.to_string(),
                if r.taken_down_day < 0 {
                    "survived".to_string()
                } else {
                    format!("day {}", r.taken_down_day)
                },
                format!(
                    "{:.3}/{:.3}",
                    r.weighted_measured_ppm as f64 / 1e6,
                    r.weighted_predicted_ppm as f64 / 1e6
                ),
                r.live_metric_names_max.to_string(),
                r.windows_sealed.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "Devices",
                "Sessions",
                "Takedown",
                "Rate meas/pred",
                "Live metrics",
                "Windows"
            ],
            &printable
        )
    );
    println!(
        "kill+resume at {} devices (after {} chunks): {}",
        resume.devices,
        resume.killed_after_chunks,
        if resume.identical {
            "bit-identical"
        } else {
            "MISMATCH"
        }
    );
    let json = ex::population_json(
        ex::population::POPULATION_APP,
        b.population_days,
        &rows,
        &resume,
    );
    ex::validate_population_json(&json).expect("population experiment emitted an invalid artifact");
    let dir = std::path::Path::new("target/repro_output");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("population: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("population.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("population sweep written to {}", path.display()),
        Err(e) => eprintln!("population: cannot write {}: {e}", path.display()),
    }
}

fn service(b: &Budgets) {
    banner(
        "ROADMAP item 5 — protect-as-a-service smoke",
        "fixed-seed job mix with duplicates: single-flight cache, admission control, deterministic drain",
    );
    let r = ex::service_smoke(&b.config());
    let printable: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.index.to_string(),
                row.app.clone(),
                format!("{:016x}", row.seed),
                if row.cache_hit { "hit" } else { "miss" }.to_string(),
                if row.verified { "ok" } else { "FAIL" }.to_string(),
                row.bombs.to_string(),
                row.dex_digest[..12].to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &["#", "App", "Seed", "Cache", "Verify", "Bombs", "DEX digest"],
            &printable
        )
    );
    // Thread count goes to stderr: stdout stays bit-identical for any
    // BOMBDROID_THREADS (the fleet determinism contract).
    eprintln!("service: drained on {} worker thread(s)", r.threads);
    println!(
        "protects {} | hits {} | shed {} | serial control: {}",
        r.protects,
        r.hits,
        r.shed,
        if r.serial_identical {
            "bit-identical"
        } else {
            "MISMATCH"
        }
    );
    let json = ex::service_json(&r);
    ex::validate_service_json(&json).expect("service experiment emitted an invalid artifact");
    let dir = std::path::Path::new("target/repro_output");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("service: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("service.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("service smoke written to {}", path.display()),
        Err(e) => eprintln!("service: cannot write {}: {e}", path.display()),
    }
}

fn brute(b: &Budgets) {
    banner(
        "§5.1 — brute-force resistance",
        "weak (bool) conditions crack instantly; int needs 2^32·t; strings resist",
    );
    let rows = ex::brute_force(b.config(), b.brute_budget);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.total.to_string(),
                r.cracked.to_string(),
                r.tries.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(&["App", "Conditions", "Cracked", "Hash evals"], &printable)
    );
    println!(
        "cost model at 10^6 H/s: 32-bit int ≈ {:.0} s, 16-char string ≈ {:.1e} s",
        bombdroid_attacks::brute::expected_seconds(32, 1e6),
        bombdroid_attacks::brute::expected_seconds(128, 1e6),
    );
}

fn ablation() {
    banner("DESIGN.md ablations", "design choices isolated");
    let report = ex::ablation(30);
    println!("trigger structure (30-min Dynodroid, % bombs triggered):");
    for (name, pct_triggered) in &report.trigger_structure {
        println!("  {name}: {pct_triggered:.1}%");
    }
    println!("alpha sweep (artificial-QC ratio → bombs, code size):");
    for (alpha, bombs, size) in &report.alpha_sweep {
        println!("  α={alpha}: {bombs} bombs, +{size:.1}% code");
    }
    println!("hot-method exclusion (overhead):");
    for (on, pct_overhead) in &report.hot_exclusion {
        println!(
            "  exclusion {}: {pct_overhead:.1}%",
            if *on { "on " } else { "off" }
        );
    }
    println!("weaving vs deletion attack:");
    for (weave, corrupted) in &report.weaving {
        println!(
            "  weaving {}: deletion {}",
            if *weave { "on " } else { "off" },
            if *corrupted {
                "corrupts the app"
            } else {
                "is harmless"
            }
        );
    }
}
