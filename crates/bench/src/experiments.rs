//! The experiment implementations. See the crate docs for the mapping to
//! the paper's tables and figures.

use crate::fixed_keys;
use bombdroid_apk::{repackage, ApkFile};
use bombdroid_attacks::{analyst, deletion, fuzz, resilience};
use bombdroid_core::{BombKind, ProtectConfig, ProtectedApp, Protector};
use bombdroid_corpus::{corpus_specs, flagship, generate_app, Category, GeneratedApp};
use bombdroid_runtime::{
    DeviceEnv, EventSource, InstalledPackage, RandomEventSource, UserEventSource, Vm, VmOptions,
};
use rand::{rngs::StdRng, SeedableRng};

// ------------------------------------------------------------- fixtures --

/// Protects a generated app with the given config; returns the protected
/// app plus its signed APK.
pub fn protect_app(app: &GeneratedApp, config: ProtectConfig, seed: u64) -> (ProtectedApp, ApkFile) {
    let (dev, _) = fixed_keys();
    let mut rng = StdRng::seed_from_u64(seed);
    let apk = app.apk(&dev);
    let protected = Protector::new(config)
        .protect(&apk, &mut rng)
        .expect("protection succeeds on generated apps");
    let signed = protected.package(&dev);
    (protected, signed)
}

/// The eight flagship apps (cached generation is cheap; callers reuse).
pub fn flagships() -> Vec<GeneratedApp> {
    flagship::all()
}

// -------------------------------------------------------------- Table 1 --

/// One Table 1 row: measured corpus statistics next to the paper's values.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Category label.
    pub category: Category,
    /// Apps measured.
    pub apps: usize,
    /// Average instruction count (LOC analogue).
    pub avg_loc: f64,
    /// Average candidate (non-hot) methods.
    pub avg_candidate_methods: f64,
    /// Average existing QCs.
    pub avg_existing_qcs: f64,
    /// Average distinct environment variables.
    pub avg_env_vars: f64,
}

/// Regenerates Table 1 over `apps_per_category` sampled apps (the paper
/// uses every app; pass `usize::MAX` for the full 963).
pub fn table1(apps_per_category: usize, profiling_events: u64) -> Vec<Table1Row> {
    let (dev, _) = fixed_keys();
    let specs = corpus_specs();
    Category::ALL
        .iter()
        .map(|&category| {
            let selected: Vec<_> = specs
                .iter()
                .filter(|(_, c, _)| *c == category)
                .take(apps_per_category)
                .collect();
            let mut loc = 0usize;
            let mut cand = 0usize;
            let mut qcs = 0usize;
            let mut envs = 0usize;
            for (name, cat, seed) in &selected {
                let app = generate_app(name, *cat, *seed);
                let stats = bombdroid_corpus::app_stats(&app);
                loc += stats.loc;
                qcs += stats.existing_qcs;
                envs += stats.env_vars;
                // Candidate methods need the profiling phase (§7.1).
                let config = ProtectConfig {
                    profiling_events,
                    ..ProtectConfig::default()
                };
                let apk = app.apk(&dev);
                let profile =
                    bombdroid_core::profile_app(&apk, &config, *seed).expect("profiling");
                cand += stats.methods - profile.hot.len();
            }
            let n = selected.len().max(1) as f64;
            Table1Row {
                category,
                apps: selected.len(),
                avg_loc: loc as f64 / n,
                avg_candidate_methods: cand as f64 / n,
                avg_existing_qcs: qcs as f64 / n,
                avg_env_vars: envs as f64 / n,
            }
        })
        .collect()
}

// --------------------------------------------------------------- Fig. 3 --

/// Per-minute traces of the six AndroFish variables.
#[derive(Debug, Clone)]
pub struct Fig3Data {
    /// `(variable name, [(minute, value)])` series, paper order.
    pub series: Vec<(String, Vec<(u64, i64)>)>,
    /// Distinct values per variable (the entropy ranking input).
    pub unique_counts: Vec<(String, usize)>,
}

/// Regenerates Fig. 3: run AndroFish under a Dynodroid-style driver for
/// `minutes`, recording the fish state variables once per minute.
pub fn fig3(minutes: u64) -> Fig3Data {
    let (dev, _) = fixed_keys();
    let app = flagship::androfish();
    let pkg = InstalledPackage::install(&app.apk(&dev)).expect("install");
    let opts = VmOptions {
        record_field_values: true,
        ..VmOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(33);
    let mut vm = Vm::new(pkg, DeviceEnv::sample(&mut rng), 33, opts);
    let mut source = RandomEventSource;
    bombdroid_runtime::run_session(&mut vm, &mut source, &mut rng, minutes, 60);
    let telemetry = vm.into_telemetry();

    let mut series = Vec::new();
    let mut unique_counts = Vec::new();
    for var in flagship::ANDROFISH_VARS {
        let key = format!("androfish/Fish.{var}");
        let samples = telemetry
            .field_values
            .get(&key)
            .cloned()
            .unwrap_or_default();
        // Last value seen in each minute.
        let mut per_minute: Vec<(u64, i64)> = Vec::new();
        for minute in 0..minutes {
            let lo = minute * 60_000;
            let hi = lo + 60_000;
            if let Some((_, v)) = samples
                .iter()
                .filter(|(at, _)| *at >= lo && *at < hi)
                .next_back()
            {
                if let bombdroid_dex::Value::Int(i) = v {
                    per_minute.push((minute, *i));
                }
            }
        }
        let uniq: std::collections::HashSet<_> =
            samples.iter().map(|(_, v)| v.clone()).collect();
        unique_counts.push((var.to_string(), uniq.len()));
        series.push((var.to_string(), per_minute));
    }
    Fig3Data {
        series,
        unique_counts,
    }
}

// -------------------------------------------------------------- Table 2 --

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// App name.
    pub app: String,
    /// Real bombs injected.
    pub total: usize,
    /// On existing qualified conditions.
    pub existing: usize,
    /// On artificial qualified conditions.
    pub artificial: usize,
    /// Bogus bombs (extra, not in the paper's total).
    pub bogus: usize,
}

/// Regenerates Table 2 by protecting all eight flagships.
pub fn table2(config: ProtectConfig) -> Vec<Table2Row> {
    flagships()
        .iter()
        .enumerate()
        .map(|(i, app)| {
            let (protected, _) = protect_app(app, config.clone(), 0x7AB2 + i as u64);
            Table2Row {
                app: app.name.clone(),
                total: protected.report.bombs_injected(),
                existing: protected.report.existing_bombs(),
                artificial: protected.report.artificial_bombs(),
                bogus: protected.report.bogus_bombs(),
            }
        })
        .collect()
}

// -------------------------------------------------------------- Table 3 --

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// App name.
    pub app: String,
    /// Fastest first trigger (seconds).
    pub min_s: f64,
    /// Slowest first trigger (seconds).
    pub max_s: f64,
    /// Mean first trigger (seconds).
    pub avg_s: f64,
    /// Runs in which a bomb fired before the cap.
    pub successes: usize,
    /// Total runs.
    pub runs: usize,
}

/// Regenerates Table 3: `runs` user sessions per flagship on freshly
/// sampled devices, measuring the time to the first triggered bomb
/// (cap: `cap_minutes`, the paper uses 60).
pub fn table3(config: ProtectConfig, runs: usize, cap_minutes: u64) -> Vec<Table3Row> {
    let (_, pirate) = fixed_keys();
    flagships()
        .iter()
        .enumerate()
        .map(|(i, app)| {
            let (_, signed) = protect_app(app, config.clone(), 0x7AB3 + i as u64);
            // Users play the *repackaged* app (the detection scenario).
            let pirated = repackage(&signed, &pirate, |_| {});
            let pkg = InstalledPackage::install(&pirated).expect("install");
            let mut times = Vec::new();
            for run in 0..runs {
                let seed = (i as u64) << 32 | run as u64;
                if let Some(ms) = time_to_first_bomb(&pkg, seed, cap_minutes) {
                    times.push(ms as f64 / 1_000.0);
                }
            }
            let successes = times.len();
            let (min_s, max_s, avg_s) = if times.is_empty() {
                (f64::NAN, f64::NAN, f64::NAN)
            } else {
                (
                    times.iter().cloned().fold(f64::INFINITY, f64::min),
                    times.iter().cloned().fold(0.0, f64::max),
                    times.iter().sum::<f64>() / successes as f64,
                )
            };
            Table3Row {
                app: app.name.clone(),
                min_s,
                max_s,
                avg_s,
                successes,
                runs,
            }
        })
        .collect()
}

/// Drives one user session until the first bomb triggers; `None` if the
/// cap is reached first.
pub fn time_to_first_bomb(pkg: &InstalledPackage, seed: u64, cap_minutes: u64) -> Option<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Each run varies the emulator configuration (§8.2: testers varied
    // device types, SDK versions, CPU/ABI between runs).
    let env = DeviceEnv::sample(&mut rng);
    let mut vm = Vm::boot(pkg.clone(), env, seed ^ 0x7E57);
    let mut source = UserEventSource;
    let dex = vm.pkg.dex.clone();
    let deadline = cap_minutes * 60_000;
    // Engaged users: ~30 meaningful events per minute.
    while vm.clock_ms() < deadline {
        if let Some(at) = vm.telemetry().first_marker_ms {
            return Some(at);
        }
        if vm.is_killed() || vm.is_frozen() {
            // The response itself proves a bomb fired.
            return vm.telemetry().first_marker_ms;
        }
        let ev = source.next_event(&dex, &mut rng)?;
        let _ = vm.fire_entry(ev.entry_index, ev.args);
        vm.advance_ms(1_000);
    }
    vm.telemetry().first_marker_ms
}

// -------------------------------------------------------------- Table 4 --

/// One Table 4 row: per-tool percentages of satisfied outer conditions.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// App name.
    pub app: String,
    /// `(tool, satisfied %)` in paper column order.
    pub tools: Vec<(fuzz::FuzzerKind, f64)>,
}

/// Regenerates Table 4: one hour of each fuzzer against each flagship.
pub fn table4(config: ProtectConfig, minutes: u64) -> Vec<Table4Row> {
    flagships()
        .iter()
        .enumerate()
        .map(|(i, app)| {
            let (_, signed) = protect_app(app, config.clone(), 0x7AB4 + i as u64);
            let tools = fuzz::FuzzerKind::ALL
                .iter()
                .map(|&kind| {
                    let report = fuzz::run_fuzzer(kind, &signed, minutes, 0xF0 + i as u64);
                    (kind, report.satisfied_pct())
                })
                .collect();
            Table4Row {
                app: app.name.clone(),
                tools,
            }
        })
        .collect()
}

// --------------------------------------------------------------- Fig. 5 --

/// One Fig. 5 series: percentage of bombs triggered per minute.
#[derive(Debug, Clone)]
pub struct Fig5Series {
    /// App name.
    pub app: String,
    /// Real bombs in the app.
    pub total_bombs: usize,
    /// `(minute, % of bombs triggered)`.
    pub points: Vec<(u64, f64)>,
}

/// Regenerates Fig. 5: Dynodroid for `minutes` against each flagship,
/// sampling the triggered-bomb percentage per minute.
pub fn fig5(config: ProtectConfig, minutes: u64) -> Vec<Fig5Series> {
    flagships()
        .iter()
        .enumerate()
        .map(|(i, app)| {
            let (protected, signed) = protect_app(app, config.clone(), 0x7AB5 + i as u64);
            let total = protected.report.bombs_injected().max(1);
            let report =
                fuzz::run_fuzzer(fuzz::FuzzerKind::Dynodroid, &signed, minutes, 0xF5 + i as u64);
            Fig5Series {
                app: app.name.clone(),
                total_bombs: total,
                points: report
                    .timeline
                    .iter()
                    .map(|(m, n)| (*m, 100.0 * *n as f64 / total as f64))
                    .collect(),
            }
        })
        .collect()
}

// ------------------------------------------------------ §8.3.2 analysts --

/// One analyst-campaign row.
#[derive(Debug, Clone)]
pub struct AnalystRow {
    /// App name.
    pub app: String,
    /// Bombs triggered.
    pub triggered: usize,
    /// Total real bombs.
    pub total: usize,
    /// Percentage.
    pub pct: f64,
}

/// Regenerates the human-analyst result (paper: 20 h per app, ≤ 9.3%
/// of bombs triggered).
pub fn analysts(config: ProtectConfig, hours: u64, phase_minutes: u64) -> Vec<AnalystRow> {
    flagships()
        .iter()
        .enumerate()
        .map(|(i, app)| {
            let (protected, signed) = protect_app(app, config.clone(), 0x7AB6 + i as u64);
            let total = protected.report.bombs_injected().max(1);
            let report = analyst::analyst_campaign(&signed, hours, phase_minutes, 0xA0 + i as u64);
            AnalystRow {
                app: app.name.clone(),
                triggered: report.bombs_triggered,
                total,
                pct: 100.0 * report.bombs_triggered as f64 / total as f64,
            }
        })
        .collect()
}

// -------------------------------------------------------------- Table 5 --

/// One Table 5 row.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// App name.
    pub app: String,
    /// Instructions executed by the original app (the `Ta` analogue).
    pub ta_instr: u64,
    /// Instructions executed by the protected app (the `Tb` analogue).
    pub tb_instr: u64,
    /// Overhead `(Tb - Ta) / Ta` in percent.
    pub overhead_pct: f64,
}

/// Regenerates Table 5: feed the same `events` random events to the
/// original and protected builds and compare executed instructions (the
/// deterministic cost model's stand-in for wall-clock).
pub fn table5(config: ProtectConfig, events: u64) -> Vec<Table5Row> {
    let (dev, _) = fixed_keys();
    flagships()
        .iter()
        .enumerate()
        .map(|(i, app)| {
            let apk = app.apk(&dev);
            let (_, signed) = protect_app(app, config.clone(), 0x7AB7 + i as u64);
            let ta = drive_events(&apk, events, 0x5A + i as u64);
            let tb = drive_events(&signed, events, 0x5A + i as u64);
            Table5Row {
                app: app.name.clone(),
                ta_instr: ta,
                tb_instr: tb,
                overhead_pct: 100.0 * (tb as f64 - ta as f64) / ta as f64,
            }
        })
        .collect()
}

fn drive_events(apk: &ApkFile, events: u64, seed: u64) -> u64 {
    let pkg = InstalledPackage::install(apk).expect("install");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vm = Vm::boot(pkg, DeviceEnv::sample(&mut rng), seed);
    let mut source = RandomEventSource;
    let dex = vm.pkg.dex.clone();
    for _ in 0..events {
        let Some(ev) = source.next_event(&dex, &mut rng) else {
            break;
        };
        let _ = vm.fire_entry(ev.entry_index, ev.args);
        if vm.is_killed() || vm.is_frozen() {
            break;
        }
    }
    vm.telemetry().instr_executed
}

// ------------------------------------------------- §8.4 false positives --

/// One false-positive row.
#[derive(Debug, Clone)]
pub struct FalsePositiveRow {
    /// App name.
    pub app: String,
    /// Events driven.
    pub events: u64,
    /// Responses fired (must be 0).
    pub responses: usize,
    /// Piracy reports sent (must be 0).
    pub reports: u64,
}

/// Checks for false positives: drive the *original-signed* protected app
/// for `minutes` of random events; no response may ever fire (§8.4 runs
/// ten hours per app).
pub fn false_positives(config: ProtectConfig, minutes: u64) -> Vec<FalsePositiveRow> {
    flagships()
        .iter()
        .enumerate()
        .map(|(i, app)| {
            let (_, signed) = protect_app(app, config.clone(), 0x7AB8 + i as u64);
            let pkg = InstalledPackage::install(&signed).expect("install");
            let mut rng = StdRng::seed_from_u64(0xFA + i as u64);
            let mut vm = Vm::boot(pkg, DeviceEnv::sample(&mut rng), 0xFA + i as u64);
            let mut source = RandomEventSource;
            let report =
                bombdroid_runtime::run_session(&mut vm, &mut source, &mut rng, minutes, 60);
            FalsePositiveRow {
                app: app.name.clone(),
                events: report.events,
                responses: vm.telemetry().responses.len(),
                reports: vm.telemetry().piracy_reports,
            }
        })
        .collect()
}

// ------------------------------------------------------ §8.4 code size --

/// One code-size row.
#[derive(Debug, Clone)]
pub struct CodeSizeRow {
    /// App name.
    pub app: String,
    /// Original `classes.dex` bytes.
    pub original: usize,
    /// Protected `classes.dex` bytes.
    pub protected: usize,
    /// Increase in percent.
    pub increase_pct: f64,
}

/// Regenerates the code-size measurement (paper: 8–13%, avg 9.7%).
pub fn code_size(config: ProtectConfig) -> Vec<CodeSizeRow> {
    flagships()
        .iter()
        .enumerate()
        .map(|(i, app)| {
            let (protected, _) = protect_app(app, config.clone(), 0x7AB9 + i as u64);
            CodeSizeRow {
                app: app.name.clone(),
                original: protected.report.original_dex_size,
                protected: protected.report.protected_dex_size,
                increase_pct: 100.0 * protected.report.code_size_increase(),
            }
        })
        .collect()
}

// --------------------------------------------------------------- Fig. 4 --

/// One Fig. 4 row: strength histograms for existing vs artificial QCs.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// App name.
    pub app: String,
    /// `(weak, medium, strong)` among existing-QC bombs.
    pub existing: (usize, usize, usize),
    /// `(weak, medium, strong)` among artificial-QC bombs.
    pub artificial: (usize, usize, usize),
}

/// Regenerates Fig. 4 from the protection reports.
pub fn fig4(config: ProtectConfig) -> Vec<Fig4Row> {
    flagships()
        .iter()
        .enumerate()
        .map(|(i, app)| {
            let (protected, _) = protect_app(app, config.clone(), 0x7ABA + i as u64);
            Fig4Row {
                app: app.name.clone(),
                existing: protected.report.strength_histogram(BombKind::ExistingQc),
                artificial: protected.report.strength_histogram(BombKind::ArtificialQc),
            }
        })
        .collect()
}

// ------------------------------------------------------- §5 resilience --

/// Runs the attack × protection matrix for `app_count` flagships.
pub fn resilience_reports(app_count: usize) -> Vec<(String, resilience::ResilienceReport)> {
    flagships()
        .into_iter()
        .take(app_count)
        .enumerate()
        .map(|(i, app)| {
            let report = resilience::resilience_matrix(&app, 0x5EC + i as u64);
            (app.name.clone(), report)
        })
        .collect()
}

// ------------------------------------------------------ §5.1 brute force --

/// One brute-force row.
#[derive(Debug, Clone)]
pub struct BruteRow {
    /// App name.
    pub app: String,
    /// Obfuscated conditions found.
    pub total: usize,
    /// Cracked within the budget.
    pub cracked: usize,
    /// Hash evaluations spent.
    pub tries: u64,
}

/// Brute-force campaigns against every flagship.
pub fn brute_force(config: ProtectConfig, budget: u64) -> Vec<BruteRow> {
    flagships()
        .iter()
        .enumerate()
        .map(|(i, app)| {
            let (_, signed) = protect_app(app, config.clone(), 0x7ABB + i as u64);
            let report = bombdroid_attacks::brute_force_campaign(&signed, budget);
            BruteRow {
                app: app.name.clone(),
                total: report.total,
                cracked: report.cracked,
                tries: report.tries,
            }
        })
        .collect()
}

// -------------------------------------------------------------- ablation --

/// Ablation results for DESIGN.md's called-out design choices.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// `(config name, % bombs triggered by 30-min Dynodroid)` — single vs
    /// double trigger.
    pub trigger_structure: Vec<(String, f64)>,
    /// `(alpha, bombs injected, code-size %)`.
    pub alpha_sweep: Vec<(f64, usize, f64)>,
    /// `(hot exclusion on/off, overhead %)`.
    pub hot_exclusion: Vec<(bool, f64)>,
    /// `(weaving on/off, deletion corrupted?)`.
    pub weaving: Vec<(bool, bool)>,
}

/// Runs all ablations on one mid-sized flagship (Binaural Beat).
pub fn ablation(minutes: u64) -> AblationReport {
    let app = flagship::binaural_beat();
    let (_, pirate) = fixed_keys();
    let (dev, _) = fixed_keys();

    // (a) single vs double trigger under fuzzing.
    let mut trigger_structure = Vec::new();
    for (name, double) in [("single-trigger", false), ("double-trigger", true)] {
        let config = ProtectConfig {
            double_trigger: double,
            ..ProtectConfig::default()
        };
        let (protected, signed) = protect_app(&app, config, 0xAB1);
        let total = protected.report.bombs_injected().max(1);
        let report = fuzz::run_fuzzer(fuzz::FuzzerKind::Dynodroid, &signed, minutes, 0xAB2);
        trigger_structure.push((
            name.to_string(),
            100.0 * report.bombs_triggered as f64 / total as f64,
        ));
    }

    // (b) alpha sweep.
    let mut alpha_sweep = Vec::new();
    for alpha in [0.0, 0.25, 0.5] {
        let config = ProtectConfig {
            alpha,
            ..ProtectConfig::default()
        };
        let (protected, _) = protect_app(&app, config, 0xAB3);
        alpha_sweep.push((
            alpha,
            protected.report.bombs_injected(),
            100.0 * protected.report.code_size_increase(),
        ));
    }

    // (c) hot-method exclusion vs overhead.
    let mut hot_exclusion = Vec::new();
    for (on, ratio) in [(true, 0.10), (false, 0.0)] {
        let config = ProtectConfig {
            hot_method_ratio: ratio,
            ..ProtectConfig::default()
        };
        let apk = app.apk(&dev);
        let (_, signed) = protect_app(&app, config, 0xAB4);
        let ta = drive_events(&apk, 3_000, 0xAB5);
        let tb = drive_events(&signed, 3_000, 0xAB5);
        hot_exclusion.push((on, 100.0 * (tb as f64 - ta as f64) / ta as f64));
    }

    // (d) weaving vs deletion.
    let mut weaving = Vec::new();
    for weave in [true, false] {
        let config = ProtectConfig {
            weave_original: weave,
            bogus_ratio: if weave { 0.5 } else { 0.0 },
            ..ProtectConfig::default()
        };
        let apk = app.apk(&dev);
        let (_, signed) = protect_app(&app, config, 0xAB6);
        let report = deletion::deletion_attack(&apk, &signed, &pirate, 5, 2, 0xAB7);
        weaving.push((weave, report.corrupted()));
    }

    AblationReport {
        trigger_structure,
        alpha_sweep,
        hot_exclusion,
        weaving,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> ProtectConfig {
        ProtectConfig::fast_profile()
    }

    #[test]
    fn table2_injects_bombs_everywhere() {
        let rows = table2(fast());
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.total > 5, "{}: only {} bombs", r.app, r.total);
            assert!(r.existing > 0, "{}: no existing-QC bombs", r.app);
            assert!(r.artificial > 0, "{}: no artificial-QC bombs", r.app);
        }
        // BRouter is the biggest, as in the paper.
        let brouter = rows.iter().find(|r| r.app == "BRouter").unwrap();
        for r in &rows {
            assert!(brouter.total >= r.total, "BRouter must lead");
        }
    }

    #[test]
    fn table3_users_trigger_quickly() {
        let rows = table3(fast(), 5, 60);
        let (succ, runs) = rows
            .iter()
            .fold((0, 0), |acc, r| (acc.0 + r.successes, acc.1 + r.runs));
        // The paper reports 50/50 everywhere with human testers who play
        // until a bomb fires; our scripted users explore less aggressively,
        // so a small per-device miss rate remains (documented in
        // EXPERIMENTS.md). Require a high aggregate success rate.
        assert!(
            succ * 10 >= runs * 8,
            "only {succ}/{runs} sessions triggered a bomb"
        );
        for r in &rows {
            assert!(r.successes > 0, "{}: no session triggered any bomb", r.app);
            assert!(r.min_s < 900.0, "{}: min {}s too slow", r.app, r.min_s);
        }
    }

    #[test]
    fn table5_overhead_is_small() {
        let rows = table5(fast(), 2_000);
        for r in &rows {
            assert!(
                r.overhead_pct < 25.0,
                "{}: overhead {:.1}% too large",
                r.app,
                r.overhead_pct
            );
            assert!(r.overhead_pct > -1.0);
        }
    }

    #[test]
    fn false_positive_free() {
        let rows = false_positives(fast(), 10);
        for r in &rows {
            assert_eq!(r.responses, 0, "{}: response fired on legit copy", r.app);
            assert_eq!(r.reports, 0);
        }
    }

    #[test]
    fn fig4_artificial_qcs_never_weak() {
        let rows = fig4(fast());
        for r in &rows {
            let (weak, med, strong) = r.artificial;
            assert_eq!(weak, 0, "{}: artificial QCs must be medium/strong", r.app);
            assert!(med + strong > 0, "{}", r.app);
        }
    }

    #[test]
    fn code_size_increase_is_moderate() {
        let rows = code_size(fast());
        for r in &rows {
            assert!(
                r.increase_pct > 1.0 && r.increase_pct < 60.0,
                "{}: {:.1}%",
                r.app,
                r.increase_pct
            );
        }
    }
}
