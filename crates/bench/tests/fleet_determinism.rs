//! The fleet engine's determinism contract, proven end-to-end: running an
//! experiment on 1, 2, and 8 worker threads must produce bit-identical
//! rows. Rows are compared through their `Debug` form because some fields
//! are `f64` and may be `NaN` (`NaN != NaN` under `PartialEq`).

use bombdroid_bench::experiments as ex;
use bombdroid_core::{FleetConfig, ProtectConfig};

fn fleet(threads: usize) -> FleetConfig {
    FleetConfig::serial(0xDE7E12).with_threads(threads)
}

#[test]
fn table3_rows_identical_across_thread_counts() {
    let config = ProtectConfig::fast_profile();
    let run = |threads| {
        format!(
            "{:?}",
            ex::table3_with(fleet(threads), config.clone(), 3, 30)
        )
    };
    let one = run(1);
    assert_eq!(one, run(2), "2 workers changed Table 3");
    assert_eq!(one, run(8), "8 workers changed Table 3");
}

#[test]
fn fig5_series_identical_across_thread_counts() {
    let config = ProtectConfig::fast_profile();
    let run = |threads| format!("{:?}", ex::fig5_with(fleet(threads), config.clone(), 5));
    let one = run(1);
    assert_eq!(one, run(2), "2 workers changed Fig. 5");
    assert_eq!(one, run(8), "8 workers changed Fig. 5");
}

/// The protection pipeline's own fan-out (the two-phase `protect`) must be
/// wire-invisible: for every flagship, the protected dex bytes, the
/// steganographic `strings.xml`, and the full report must be bit-identical
/// whether the per-method arm work ran serially or on 2 or 8 workers.
#[test]
fn protect_output_identical_across_thread_counts() {
    use bombdroid_core::Protector;
    use bombdroid_dex::wire;
    use rand::{rngs::StdRng, SeedableRng};

    let (dev, _) = bombdroid_bench::fixed_keys();
    let config = ProtectConfig::fast_profile();
    for (i, app) in ex::flagships().iter().enumerate() {
        let apk = app.apk(&dev);
        let run = |threads: usize| {
            let protector = Protector::new(config.clone()).with_threads(threads);
            let mut rng = StdRng::seed_from_u64(0x7AB0 + i as u64);
            let protected = protector.protect(&apk, &mut rng).expect("protect succeeds");
            (
                wire::encode_dex(&protected.dex),
                protected.strings.to_bytes(),
                format!("{:?}", protected.report),
            )
        };
        let serial = run(1);
        assert!(
            serial.2.contains("BombInfo"),
            "{}: flagship must carry bombs",
            app.name
        );
        for threads in [2, 8] {
            let parallel = run(threads);
            assert_eq!(
                serial.0, parallel.0,
                "{}: {threads} workers changed the protected dex bytes",
                app.name
            );
            assert_eq!(
                serial.1, parallel.1,
                "{}: {threads} workers changed strings.xml",
                app.name
            );
            assert_eq!(
                serial.2, parallel.2,
                "{}: {threads} workers changed the protect report",
                app.name
            );
        }
    }
}

/// The observability layer inherits the fleet's determinism: the merged
/// recorder's deterministic view (counters, gauges, histograms, timing
/// *call counts* — everything except wall-clock nanoseconds) must be
/// bit-identical for any worker count.
#[test]
fn merged_metrics_identical_across_thread_counts() {
    use bombdroid_obs as obs;
    use std::sync::Arc;
    if !obs::enabled() {
        return; // BOMBDROID_OBS=off turns the facade into no-ops.
    }
    let config = ProtectConfig::fast_profile();
    // Warm the process-wide protection cache first so every measured run
    // sees identical cache state (all hits). Without this the first run
    // would additionally record the protection pipeline's own counters
    // (cache.protects, pipeline.*, profile.*) and the comparison would
    // measure cache population order, not fleet determinism.
    ex::table3_with(fleet(1), config.clone(), 3, 30);
    ex::fig5_with(fleet(1), config.clone(), 5);
    let run = |threads| {
        let rec = Arc::new(obs::Recorder::new());
        obs::with_recorder(rec.clone(), || {
            ex::table3_with(fleet(threads), config.clone(), 3, 30);
            ex::fig5_with(fleet(threads), config.clone(), 5);
        });
        rec.to_json(false)
    };
    let one = run(1);
    assert!(one.contains("fleet.tasks"), "fleet metrics recorded: {one}");
    assert!(one.contains("vm.instr_executed"), "vm metrics recorded");
    assert_eq!(one, run(2), "2 workers changed the merged metrics");
    assert_eq!(one, run(8), "8 workers changed the merged metrics");
}
