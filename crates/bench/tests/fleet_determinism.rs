//! The fleet engine's determinism contract, proven end-to-end: running an
//! experiment on 1, 2, and 8 worker threads must produce bit-identical
//! rows. Rows are compared through their `Debug` form because some fields
//! are `f64` and may be `NaN` (`NaN != NaN` under `PartialEq`).

use bombdroid_bench::experiments as ex;
use bombdroid_core::{FleetConfig, ProtectConfig};

fn fleet(threads: usize) -> FleetConfig {
    FleetConfig::serial(0xDE7E12).with_threads(threads)
}

#[test]
fn table3_rows_identical_across_thread_counts() {
    let config = ProtectConfig::fast_profile();
    let run = |threads| {
        format!(
            "{:?}",
            ex::table3_with(fleet(threads), config.clone(), 3, 30)
        )
    };
    let one = run(1);
    assert_eq!(one, run(2), "2 workers changed Table 3");
    assert_eq!(one, run(8), "8 workers changed Table 3");
}

#[test]
fn fig5_series_identical_across_thread_counts() {
    let config = ProtectConfig::fast_profile();
    let run = |threads| format!("{:?}", ex::fig5_with(fleet(threads), config.clone(), 5));
    let one = run(1);
    assert_eq!(one, run(2), "2 workers changed Fig. 5");
    assert_eq!(one, run(8), "8 workers changed Fig. 5");
}
