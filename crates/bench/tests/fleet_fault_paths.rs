//! Fault-path contract of the fleet engine, driven at integration level:
//! a panicking task surfaces as a typed per-task error in its own slot,
//! the pool never deadlocks or aborts, and every other task still
//! completes with its result in index order.

use bombdroid_core::{derive_seed, run_fleet, run_indexed, FleetConfig, FleetError};

#[test]
fn panicking_task_is_isolated_and_typed() {
    for threads in [1usize, 2, 8] {
        let config = FleetConfig::serial(0xFA17).with_threads(threads);
        let results: Vec<Result<u64, FleetError<String>>> = run_indexed(config, 16, |ctx| {
            if ctx.index == 5 {
                panic!("task 5 exploded on purpose");
            }
            Ok(ctx.seed)
        });
        assert_eq!(results.len(), 16, "every slot filled ({threads} threads)");
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                match r {
                    Err(FleetError::Panicked(msg)) => {
                        assert!(msg.contains("exploded"), "payload preserved: {msg}");
                    }
                    other => panic!("slot 5 must be Panicked, got {other:?}"),
                }
            } else {
                // Remaining tasks complete, in index order, with the seed
                // the determinism contract assigns to their index.
                assert_eq!(
                    r.as_ref().expect("healthy task succeeds"),
                    &derive_seed(0xFA17, i as u64),
                    "slot {i} ({threads} threads)"
                );
            }
        }
    }
}

#[test]
fn typed_task_errors_fill_their_slots() {
    let config = FleetConfig::serial(1).with_threads(4);
    let results: Vec<Result<usize, FleetError<String>>> =
        run_fleet(config, (0..10usize).collect(), |_ctx, i| {
            if i % 3 == 0 {
                Err(format!("task {i} declined"))
            } else {
                Ok(i * 2)
            }
        });
    for (i, r) in results.iter().enumerate() {
        if i % 3 == 0 {
            match r {
                Err(FleetError::Task(msg)) => assert_eq!(msg, &format!("task {i} declined")),
                other => panic!("slot {i} must be a typed Task error, got {other:?}"),
            }
        } else {
            assert_eq!(r.as_ref().unwrap(), &(i * 2));
        }
    }
}

#[test]
fn many_panics_do_not_deadlock_the_pool() {
    // More panicking tasks than workers: if a panic poisoned a worker or a
    // slot lock, later tasks would hang or be lost. All 64 slots must
    // resolve either way.
    let config = FleetConfig::serial(2).with_threads(4);
    let results: Vec<Result<usize, FleetError<String>>> = run_indexed(config, 64, |ctx| {
        if ctx.index % 2 == 0 {
            panic!("even task {}", ctx.index);
        }
        Ok(ctx.index)
    });
    assert_eq!(results.len(), 64);
    let (ok, panicked): (Vec<_>, Vec<_>) = results.iter().partition(|r| r.is_ok());
    assert_eq!(ok.len(), 32);
    assert_eq!(panicked.len(), 32);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.is_ok(), i % 2 == 1, "slot {i} parity");
    }
}

#[test]
fn panic_payload_kinds_are_reported() {
    // &str and String payloads carry their message; other payload types
    // degrade to a stable placeholder instead of garbage.
    let config = FleetConfig::serial(3).with_threads(2);
    let results: Vec<Result<(), FleetError<String>>> =
        run_indexed(config, 3, |ctx| match ctx.index {
            0 => panic!("plain &str payload"),
            1 => panic!("{}", format!("formatted String payload {}", ctx.index)),
            _ => std::panic::panic_any(42i32),
        });
    let msgs: Vec<String> = results
        .into_iter()
        .map(|r| match r {
            Err(FleetError::Panicked(m)) => m,
            other => panic!("expected panics, got {other:?}"),
        })
        .collect();
    assert_eq!(msgs[0], "plain &str payload");
    assert_eq!(msgs[1], "formatted String payload 1");
    assert_eq!(msgs[2], "non-string panic payload");
}
