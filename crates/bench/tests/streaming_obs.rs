//! The streaming observability contract, proven end-to-end:
//!
//! 1. A windowed [`bombdroid_obs::ShardAggregator`] total is bit-identical
//!    across `BOMBDROID_THREADS` 1/2/8 *and* across window sizes (1, 16,
//!    all-at-once) on a real VM-session fleet workload.
//! 2. Driving 100k+ synthetic sessions through the aggregator keeps live
//!    recorder memory bounded (key count independent of session count)
//!    while the total stays bit-identical to a legacy whole-recorder merge.
//! 3. The flight recorder honors its capacity bound and its panic-hook
//!    dump is a valid `flight.json`.

use bombdroid_core::{run_indexed_windowed, FleetConfig};
use bombdroid_obs as obs;
use bombdroid_runtime::{
    run_session, DeviceEnv, InstalledPackage, SessionPool, UserEventSource, VmOptions,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;

fn fixture_pool() -> SessionPool {
    let mut rng = StdRng::seed_from_u64(0x0B5);
    let app = bombdroid_corpus::flagship::calendar();
    let dev = bombdroid_apk::DeveloperKey::generate(&mut rng);
    let apk = app.apk(&dev);
    let pkg = InstalledPackage::install(&apk).expect("install fixture");
    SessionPool::new(pkg, VmOptions::default())
}

fn drive_fleet(pool: &SessionPool, threads: usize, window: usize) -> String {
    let agg = obs::ShardAggregator::new(window);
    let fleet = FleetConfig::serial(0x57AEA).with_threads(threads);
    let out = run_indexed_windowed(fleet, 24, &agg, |ctx| {
        let mut urng = ctx.rng();
        let env = DeviceEnv::sample(&mut urng);
        let mut vm = pool.session(env, ctx.seed);
        let mut source = UserEventSource;
        run_session(&mut vm, &mut source, &mut urng, 20, 30);
        vm.publish_obs();
        Ok::<_, std::convert::Infallible>(vm.telemetry().events_run)
    });
    assert_eq!(out.len(), 24);
    agg.finish();
    agg.total().to_json(false)
}

#[test]
fn windowed_totals_identical_across_threads_and_window_sizes() {
    if !obs::enabled() {
        return; // BOMBDROID_OBS=off turns the facade into no-ops.
    }
    let pool = fixture_pool();
    // Warm the package's shared decode caches so every measured run sees
    // identical cache state (the first-touch decode counters fire once per
    // process, not once per run).
    drive_fleet(&pool, 1, 0);

    let baseline = drive_fleet(&pool, 1, 0);
    assert!(baseline.contains("fleet.tasks"), "fleet metrics recorded");
    assert!(
        baseline.contains("vm.instr_executed"),
        "vm metrics recorded"
    );
    assert!(
        baseline.contains("vm.pool.sessions"),
        "pool metrics recorded"
    );
    for threads in [1usize, 2, 8] {
        for window in [1usize, 16, 0] {
            assert_eq!(
                drive_fleet(&pool, threads, window),
                baseline,
                "threads={threads} window={window} diverged from serial all-at-once"
            );
        }
    }
}

#[test]
fn aggregator_memory_is_bounded_over_100k_sessions() {
    if !obs::enabled() {
        return;
    }
    // A synthetic session's delta: a bounded metric vocabulary whose
    // values vary per session.
    let delta = |i: u64| {
        let r = obs::Recorder::new();
        r.counter_add("session.events", 3 + i % 17);
        r.counter_add("session.instr", 100 + i % 1009);
        r.counter_add("session.reports", u64::from(i.is_multiple_of(23)));
        r.gauge_set("session.last", i as i64);
        r.record("session.latency", 1 + (i * 2654435761) % 100_000);
        r.record("session.downloads", i % 97);
        r.timing_record("session.run", 1_000 + i % 50_000);
        r
    };

    const SESSIONS: u64 = 100_000;
    let legacy = obs::Recorder::new();
    let agg = obs::ShardAggregator::new(1024);
    let mut peak_live = 0usize;
    let mut live_at_10k = 0usize;
    for i in 0..SESSIONS {
        let d = delta(i);
        legacy.merge_from(&d);
        agg.absorb_next(&d);
        // Streaming consumer: windows are dropped as they seal.
        agg.drain_windows();
        if i.is_multiple_of(1024) {
            peak_live = peak_live.max(agg.live_metric_names());
        }
        if i == 10_000 {
            live_at_10k = agg.live_metric_names();
        }
    }
    agg.finish();
    agg.drain_windows();

    assert_eq!(agg.tasks_absorbed(), SESSIONS as usize);
    assert_eq!(agg.windows_sealed(), (SESSIONS as usize).div_ceil(1024));
    // Memory bound: the live key count is the (bounded) vocabulary of the
    // workload — total + open window — and does not grow with sessions.
    let vocab = 7; // distinct names in `delta`
    assert!(
        peak_live <= 2 * vocab,
        "live metric names grew with session count: {peak_live}"
    );
    assert_eq!(
        agg.live_metric_names(),
        live_at_10k.min(agg.live_metric_names()),
        "live key count at 100k sessions must not exceed the 10k mark"
    );
    // The streamed total is bit-identical to the legacy O(sessions) merge.
    assert_eq!(agg.total().to_json(false), legacy.to_json(false));
}

#[test]
fn flight_recorder_bounds_capacity_and_panic_dump_validates() {
    if !obs::enabled() {
        return;
    }
    obs::flight::set_capacity(8);
    for i in 0..50 {
        obs::flight::note("streaming_obs.test", || format!("event {i}"));
    }
    // Other tests in this binary may note events concurrently; the bound
    // and our most recent event survive regardless.
    let events = obs::flight::snapshot();
    assert!(
        events.len() <= 8,
        "ring exceeded capacity: {}",
        events.len()
    );
    assert!(obs::flight::dropped() > 0, "overflow must count drops");
    assert!(
        events
            .iter()
            .any(|e| e.kind == "streaming_obs.test" && e.detail == "event 49"),
        "most recent event must survive eviction"
    );
    obs::validate_flight(&obs::flight::to_json()).expect("live ring serializes validly");

    // Panic-hook dump: a caught panic still triggers the hook, leaving a
    // valid flight.json at the conventional path.
    let dump = obs::flight::default_dump_path();
    let _ = std::fs::remove_file(&dump);
    obs::flight::install_panic_hook();
    let result = std::panic::catch_unwind(|| panic!("streaming_obs deliberate panic"));
    assert!(result.is_err());
    let text = std::fs::read_to_string(&dump).expect("panic hook wrote flight.json");
    obs::validate_flight(&text).expect("panic dump validates");
    assert!(
        text.contains("deliberate panic"),
        "dump records the panic event"
    );
    // Leave the ring usable for other tests and clean up the artifact.
    std::fs::remove_file(&dump).ok();
    obs::flight::set_capacity(obs::flight::DEFAULT_CAPACITY);

    // The aggregator keeps absorbing normally after a panic elsewhere.
    let agg = Arc::new(obs::ShardAggregator::new(4));
    let r = obs::Recorder::new();
    r.counter_add("post_panic", 1);
    agg.absorb_next(&r);
    assert_eq!(agg.total().counter_value("post_panic"), 1);
}

#[test]
fn windowed_progress_partitions_the_total() {
    if !obs::enabled() {
        return;
    }
    // Windows partition: summing any counter across sealed windows equals
    // the running total, at every seal point.
    let agg = obs::ShardAggregator::new(5);
    let mut window_sum = 0u64;
    let mut rng = StdRng::seed_from_u64(9);
    for i in 0..37u64 {
        let r = obs::Recorder::new();
        r.counter_add("w.events", 1 + rng.gen_range(0..7u64) + i % 3);
        if let Some(w) = agg.absorb_next(&r) {
            window_sum += w.recorder.counter_value("w.events");
            assert_eq!(w.tasks, 5);
        }
    }
    if let Some(w) = agg.finish() {
        window_sum += w.recorder.counter_value("w.events");
        assert_eq!(w.tasks, 37 % 5);
    }
    assert_eq!(window_sum, agg.total().counter_value("w.events"));
}
