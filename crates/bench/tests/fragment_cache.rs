//! The shared decrypted-fragment cache's contract
//! ([`VmOptions::shared_fragment_cache`]): a process-wide cache keyed by
//! (blob id, blob content fingerprint, derived key) that must be
//! *semantically invisible* — per-VM telemetry and cost charging identical
//! with the cache on or off, per-device failure accounting intact, and no
//! bleed between differently-salted protections.

use bombdroid_apk::repackage;
use bombdroid_bench::experiments::protect_app;
use bombdroid_bench::fixed_keys;
use bombdroid_core::ProtectConfig;
use bombdroid_runtime::{
    DeviceEnv, EventSource, InstalledPackage, RandomEventSource, Telemetry, Vm, VmOptions,
};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn opts(shared: bool) -> VmOptions {
    VmOptions {
        shared_fragment_cache: shared,
        ..VmOptions::default()
    }
}

/// Boots a fresh VM on `pkg` and fires `events` random events; returns the
/// final telemetry.
fn drive(pkg: &Arc<InstalledPackage>, seed: u64, events: u64, shared: bool) -> Telemetry {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vm = Vm::new(
        Arc::clone(pkg),
        DeviceEnv::sample(&mut rng),
        seed,
        opts(shared),
    );
    let mut source = RandomEventSource;
    let dex = Arc::clone(&vm.pkg.dex);
    for _ in 0..events {
        let Some(ev) = source.next_event(&dex, &mut rng) else {
            break;
        };
        let _ = vm.fire_entry(ev.entry_index, ev.args);
        if vm.is_killed() || vm.is_frozen() {
            break;
        }
    }
    vm.into_telemetry()
}

fn protected_install(seed: u64) -> Arc<InstalledPackage> {
    let app = bombdroid_corpus::flagship::hash_droid();
    let (_, signed) = protect_app(&app, ProtectConfig::fast_profile(), seed);
    Arc::new(InstalledPackage::install(&signed).expect("signed install"))
}

/// `Telemetry` holds `f64`-free structured data, but compares via `Debug`
/// because it doesn't derive `PartialEq`.
fn fmt(t: &Telemetry) -> String {
    format!("{t:?}")
}

#[test]
fn telemetry_identical_with_cache_on_and_off() {
    let pkg = protected_install(0xBE);
    for seed in [3, 7, 19] {
        let cold = drive(&pkg, seed, 80, false);
        let warm = drive(&pkg, seed, 80, true);
        assert!(
            !cold.blobs_decrypted.is_empty(),
            "seed {seed}: the session must actually open blobs"
        );
        assert_eq!(
            fmt(&cold),
            fmt(&warm),
            "seed {seed}: the shared cache changed observable telemetry"
        );
    }
    // Second device, same package, cache warm from the runs above: a hit
    // path end to end — still identical to its own cold run.
    let cold = drive(&pkg, 23, 80, false);
    let warm = drive(&pkg, 23, 80, true);
    assert_eq!(fmt(&cold), fmt(&warm), "warm-cache device diverged");
}

#[test]
fn tampered_blobs_fail_on_every_device_despite_cache() {
    let app = bombdroid_corpus::flagship::hash_droid();
    let (_, signed) = protect_app(&app, ProtectConfig::fast_profile(), 0xBE);
    let (_, pirate) = fixed_keys();
    // Corrupt every sealed blob — decryption must fail wherever a bomb's
    // outer condition is satisfied.
    let pirated = repackage(&signed, &pirate, |dex| {
        for blob in &mut dex.blobs {
            for b in &mut blob.sealed {
                *b ^= 0xA5;
            }
        }
    });
    let pkg = Arc::new(InstalledPackage::install(&pirated).expect("pirate install"));
    let first = drive(&pkg, 3, 120, true);
    let second = drive(&pkg, 3, 120, true);
    assert!(
        first.decrypt_failures > 0,
        "tampered blobs must fail to decrypt"
    );
    // Failures are never cached: the second device pays (and records) every
    // failure itself instead of inheriting a verdict from the first.
    assert_eq!(
        first.decrypt_failures, second.decrypt_failures,
        "per-device failure accounting must not be absorbed by the cache"
    );
    assert!(first.blobs_decrypted.is_empty(), "nothing decrypts");
}

#[test]
fn no_bleed_between_differently_salted_protections() {
    // The same app protected twice with different seeds: same blob ids,
    // different salts/keys. With both packages driven in one process and
    // the shared cache on, each must behave exactly as it does cache-off.
    let pkg_a = protected_install(0xBE);
    let pkg_b = protected_install(0x5EED);
    let cold_a = drive(&pkg_a, 5, 80, false);
    let cold_b = drive(&pkg_b, 5, 80, false);
    // Interleave cache-on runs so any id-only keying would cross-hit.
    let warm_a1 = drive(&pkg_a, 5, 80, true);
    let warm_b = drive(&pkg_b, 5, 80, true);
    let warm_a2 = drive(&pkg_a, 5, 80, true);
    assert!(
        !cold_a.blobs_decrypted.is_empty() && !cold_b.blobs_decrypted.is_empty(),
        "both protections must open blobs"
    );
    assert_eq!(fmt(&cold_a), fmt(&warm_a1), "protection A diverged");
    assert_eq!(fmt(&cold_a), fmt(&warm_a2), "protection A diverged after B");
    assert_eq!(fmt(&cold_b), fmt(&warm_b), "protection B diverged");
    assert_eq!(
        cold_a.decrypt_failures, warm_a2.decrypt_failures,
        "cross-protection contamination in failure counts"
    );
}
