//! Population-scale market simulator.
//!
//! The paper's end-to-end story (§1, §4.2) is *decentralized* repackaging
//! detection: user devices running a pirated copy trip logic bombs, leave
//! degraded-experience reviews, and report piracy to the developer; the
//! market reacts to those aggregate signals alone. This crate promotes
//! that story from an example script to a subsystem that scales to
//! millions of simulated devices:
//!
//! * [`DevicePopulation`] — a *virtual* seeded population: any member is
//!   re-derived on demand from `(base_seed, index)`, so resident
//!   per-device state is O(bytes) regardless of population size.
//! * [`Simulator`] — the sharded day loop: sessions fan out over the
//!   deterministic fleet engine chunk by chunk, recorder deltas stream
//!   through a windowed [`bombdroid_obs::ShardAggregator`], and market /
//!   per-bomb / latency state folds serially in session-index order.
//! * Checkpoint/resume — [`Simulator::checkpoint_json`] at any chunk
//!   boundary captures the full folded state (schema v1); killing the
//!   process and resuming via [`Simulator::from_checkpoint`] reproduces
//!   the final [`Simulator::report_json`] byte-for-byte, at any
//!   `BOMBDROID_THREADS` value.
//! * [`SessionRunner`] — strategy seam: [`VmRunner`] forks real VM
//!   sessions from a shared [`bombdroid_runtime::SessionPool`] snapshot;
//!   [`SyntheticRunner`] draws outcomes from the closed-form per-bomb
//!   probabilities so property tests and benchmarks reach population
//!   scale without VM cost.
//!
//! ```
//! use bombdroid_sim::{BombCatalog, BombEntry, SimConfig, Simulator, SyntheticRunner};
//!
//! let catalog = BombCatalog::new(vec![BombEntry { marker: 1, blob: 1, predicted_ppm: 150_000 }]);
//! let mut config = SimConfig::new(1_024, 4, 7);
//! config.market.halt_on_takedown = false;
//! let mut sim = Simulator::new(config, catalog.clone(), SyntheticRunner::new(catalog));
//! sim.run();
//! let report = sim.report_json().unwrap();
//! assert!(report.contains("\"kind\": \"sim_report\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod market;
pub mod population;
pub mod report;
pub mod runner;

pub use checkpoint::CHECKPOINT_SCHEMA_VERSION;
pub use engine::{BombCatalog, BombEntry, BombStats, SimConfig, Simulator, LATENCY_BUCKETS};
pub use market::{MarketConfig, MarketState};
pub use population::DevicePopulation;
pub use report::REPORT_SCHEMA_VERSION;
pub use runner::{SessionOutcome, SessionRunner, SyntheticRunner, VmRunner};
