//! The third-party market's side of the simulation: rating aggregation,
//! piracy-report accumulation, and the takedown decision (§4.2 of the
//! paper — detection is decentralized, the market only reacts to signals
//! user devices already produced).
//!
//! All arithmetic is integer (milli-star ratings) so fold order and
//! platform float quirks can never perturb the takedown decision — the
//! whole simulator must be bit-reproducible across thread counts and
//! checkpoint cycles.

/// Market reaction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarketConfig {
    /// Listing is pulled when the average rating (milli-stars) drops below
    /// this with at least `min_ratings` reviews.
    pub takedown_rating_milli: u32,
    /// Developer files a takedown once this many piracy reports arrive.
    pub report_threshold: u64,
    /// Minimum review count before the rating rule can fire.
    pub min_ratings: u64,
    /// Stop dispatching new download batches once the listing is pulled.
    pub halt_on_takedown: bool,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            takedown_rating_milli: 2_500,
            report_threshold: 25,
            min_ratings: 30,
            halt_on_takedown: true,
        }
    }
}

/// Running market state, folded serially in session-index order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MarketState {
    /// Reviews posted.
    pub ratings_count: u64,
    /// Sum of posted ratings in milli-stars.
    pub ratings_sum_milli: u64,
    /// Piracy reports received by the developer.
    pub reports: u64,
    /// Day (0-based) the listing was pulled, if it was.
    pub taken_down_day: Option<u32>,
}

impl MarketState {
    /// Folds one user's review and reports in.
    pub fn absorb(&mut self, rating_milli: u32, reports: u64) {
        self.ratings_count += 1;
        self.ratings_sum_milli += u64::from(rating_milli);
        self.reports += reports;
    }

    /// Average rating in milli-stars (0 when unrated).
    pub fn avg_rating_milli(&self) -> u64 {
        self.ratings_sum_milli
            .checked_div(self.ratings_count)
            .unwrap_or(0)
    }

    /// Evaluates the takedown rules at the end of `day` (0-based). Returns
    /// true if this call pulled the listing.
    pub fn check_takedown(&mut self, day: u32, config: &MarketConfig) -> bool {
        if self.taken_down_day.is_some() {
            return false;
        }
        let rating_collapse = self.ratings_count >= config.min_ratings
            && (self.ratings_sum_milli as u128)
                < (self.ratings_count as u128) * u128::from(config.takedown_rating_milli);
        let reported = self.reports >= config.report_threshold;
        if rating_collapse || reported {
            self.taken_down_day = Some(day);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rating_collapse_pulls_the_listing() {
        let config = MarketConfig::default();
        let mut m = MarketState::default();
        for _ in 0..29 {
            m.absorb(1_500, 0);
        }
        assert!(!m.check_takedown(0, &config), "below min_ratings");
        m.absorb(1_500, 0);
        assert!(m.check_takedown(1, &config));
        assert_eq!(m.taken_down_day, Some(1));
        // Sticky: later checks never re-fire.
        assert!(!m.check_takedown(2, &config));
        assert_eq!(m.taken_down_day, Some(1));
    }

    #[test]
    fn report_threshold_pulls_the_listing() {
        let config = MarketConfig::default();
        let mut m = MarketState::default();
        for _ in 0..5 {
            m.absorb(4_500, 5);
        }
        assert!(m.check_takedown(0, &config));
        assert_eq!(m.taken_down_day, Some(0));
    }

    #[test]
    fn happy_listing_survives() {
        let config = MarketConfig::default();
        let mut m = MarketState::default();
        for _ in 0..100 {
            m.absorb(4_200, 0);
        }
        assert!(!m.check_takedown(0, &config));
        assert_eq!(m.avg_rating_milli(), 4_200);
    }
}
