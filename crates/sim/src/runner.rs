//! Session execution strategies.
//!
//! The day loop is generic over *how* one user session runs. [`VmRunner`]
//! is the real thing: fork a VM session from a shared [`SessionPool`]
//! snapshot, drive the user's events, and read the telemetry back.
//! [`SyntheticRunner`] is a closed-form stand-in — outcomes drawn straight
//! from the per-bomb trigger probabilities — used by property tests and
//! benchmarks that need population-scale session counts without VM cost.

use crate::engine::BombCatalog;
use bombdroid_core::TaskCtx;
use bombdroid_corpus::UserProfile;
use bombdroid_runtime::{run_session, SessionPool, UserEventSource};
use rand::Rng;

/// What one simulated user session contributes to the day's aggregation.
/// Compact and `Send`: these flow back from fleet workers in index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOutcome {
    /// Whether any detection response fired during the session.
    pub detected: bool,
    /// Piracy reports this device sent to the developer.
    pub reports: u64,
    /// Review the user posted, in milli-stars (1000..5000).
    pub rating_milli: u32,
    /// Minutes into the session the first bomb fired, if any.
    pub first_marker_min: Option<u16>,
    /// Marker ids of bombs that fired (inner trigger held).
    pub markers: Vec<u32>,
    /// Blob ids decrypted (outer trigger satisfied).
    pub blobs: Vec<u32>,
}

/// Draws the review a user posts: detection degrades the app, so detected
/// sessions rate 1.0–2.5 stars, clean ones 3.5–5.0 (milli-star integers).
pub fn draw_rating_milli(detected: bool, rng: &mut impl Rng) -> u32 {
    if detected {
        rng.gen_range(1_000..2_500u32)
    } else {
        rng.gen_range(3_500..5_000u32)
    }
}

/// Runs one user's session. Implementations must be deterministic in
/// `(user, ctx)`: the fleet engine may run sessions in any physical order
/// and the simulator's bit-reproducibility guarantee rests on it.
pub trait SessionRunner: Sync {
    /// Executes the session for `user` under the fleet task context.
    fn run(&self, user: &UserProfile, ctx: TaskCtx) -> SessionOutcome;
}

/// The real runner: forks a VM session per user from a shared pre-decoded
/// snapshot pool and reads outcomes from telemetry.
pub struct VmRunner {
    /// Shared pristine session pool for the (pirated) package under test.
    pub pool: SessionPool,
    /// Optional cap on session length, for fast smoke configurations.
    pub cap_minutes: Option<u16>,
}

impl VmRunner {
    /// Wraps a session pool with no session cap.
    pub fn new(pool: SessionPool) -> Self {
        VmRunner {
            pool,
            cap_minutes: None,
        }
    }
}

impl SessionRunner for VmRunner {
    fn run(&self, user: &UserProfile, ctx: TaskCtx) -> SessionOutcome {
        let mut urng = ctx.rng();
        let env = user.device.materialize();
        let mut vm = self.pool.session(env, ctx.seed);
        let mut source = UserEventSource;
        let minutes = match self.cap_minutes {
            Some(cap) => user.session_minutes.min(cap),
            None => user.session_minutes,
        };
        run_session(
            &mut vm,
            &mut source,
            &mut urng,
            u64::from(minutes),
            u64::from(user.events_per_minute),
        );
        vm.publish_obs();
        let t = vm.telemetry();
        let detected = t.detection_fired();
        SessionOutcome {
            detected,
            reports: t.piracy_reports,
            rating_milli: draw_rating_milli(detected, &mut urng),
            first_marker_min: t.first_marker_ms.map(|ms| (ms / 60_000) as u16),
            markers: t.markers.iter().copied().collect(),
            blobs: t.blobs_decrypted.iter().copied().collect(),
        }
    }
}

/// Closed-form runner: each bomb's outer trigger is satisfied with a fixed
/// probability and, given that, its inner trigger holds with the bomb's
/// predicted probability. Lets tests and benchmarks push millions of
/// sessions through the full day-loop/checkpoint machinery in microseconds
/// per session.
#[derive(Debug, Clone)]
pub struct SyntheticRunner {
    /// Bombs to emulate (marker, blob, predicted inner probability).
    pub catalog: BombCatalog,
    /// Probability (ppm) a session satisfies each bomb's outer trigger.
    pub outer_ppm: u32,
    /// Piracy reports sent per fired bomb.
    pub reports_per_fire: u64,
}

impl SyntheticRunner {
    /// Emulates `catalog` with an 80% outer-trigger rate and one report
    /// per fired bomb.
    pub fn new(catalog: BombCatalog) -> Self {
        SyntheticRunner {
            catalog,
            outer_ppm: 800_000,
            reports_per_fire: 1,
        }
    }
}

impl SessionRunner for SyntheticRunner {
    fn run(&self, user: &UserProfile, ctx: TaskCtx) -> SessionOutcome {
        let mut rng = ctx.rng();
        let mut markers = Vec::new();
        let mut blobs = Vec::new();
        for bomb in self.catalog.entries() {
            if rng.gen_range(0..1_000_000u32) >= self.outer_ppm {
                continue;
            }
            blobs.push(bomb.blob);
            if u64::from(rng.gen_range(0..1_000_000u32)) < bomb.predicted_ppm {
                markers.push(bomb.marker);
            }
        }
        let detected = !markers.is_empty();
        let first_marker_min = if detected {
            Some(rng.gen_range(0..u32::from(user.session_minutes.max(1))) as u16)
        } else {
            None
        };
        SessionOutcome {
            detected,
            reports: markers.len() as u64 * self.reports_per_fire,
            rating_milli: draw_rating_milli(detected, &mut rng),
            first_marker_min,
            markers,
            blobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BombEntry;
    use crate::population::DevicePopulation;
    use bombdroid_core::derive_seed;

    fn ctx(index: usize) -> TaskCtx {
        TaskCtx {
            index,
            seed: derive_seed(5, index as u64),
        }
    }

    #[test]
    fn synthetic_runner_is_deterministic_and_tracks_probability() {
        let catalog = BombCatalog::new(vec![BombEntry {
            marker: 9,
            blob: 2,
            predicted_ppm: 150_000,
        }]);
        let runner = SyntheticRunner::new(catalog);
        let pop = DevicePopulation::new(3, 20_000);
        let a = runner.run(&pop.user(17), ctx(17));
        let b = runner.run(&pop.user(17), ctx(17));
        assert_eq!(a, b);

        let mut outer = 0u64;
        let mut fired = 0u64;
        for i in 0..pop.size {
            let o = runner.run(&pop.user(i), ctx(i));
            if o.blobs.contains(&2) {
                outer += 1;
            }
            if o.markers.contains(&9) {
                fired += 1;
                assert!(o.detected && o.first_marker_min.is_some());
            }
        }
        let measured = fired as f64 / outer as f64;
        assert!((measured - 0.15).abs() < 0.02, "measured {measured}");
    }
}
