//! Final-report serialization (schema v1).
//!
//! The report is the simulator's observable output for reproducibility
//! checks: two runs are "the same" exactly when their report documents are
//! byte-identical. Everything in it is integer-valued (milli-stars, parts
//! per million, window digests) so byte identity is achievable across
//! thread counts, checkpoint cycles, and platforms.

use crate::checkpoint::{config_json, market_json, u64_array_json};
use crate::engine::Simulator;
use crate::runner::SessionRunner;

/// Report document schema version.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

impl<R: SessionRunner> Simulator<R> {
    /// Serializes the final report. Only valid once the run has finished.
    pub fn report_json(&self) -> Result<String, String> {
        if !self.finished {
            return Err("sim report: run not finished".into());
        }
        let bombs: Vec<String> = self
            .catalog
            .entries()
            .iter()
            .zip(self.stats.iter())
            .map(|(e, s)| {
                format!(
                    "{{\"blob\": {}, \"fired_sessions\": {}, \"marker\": {}, \"measured_ppm\": {}, \"outer_sessions\": {}, \"predicted_ppm\": {}}}",
                    e.blob,
                    s.fired_sessions,
                    e.marker,
                    s.measured_ppm(),
                    s.outer_sessions,
                    e.predicted_ppm,
                )
            })
            .collect();

        // Detection-latency CDF in ppm of detected sessions; all-zero when
        // nothing fired.
        let detected: u64 = self.latency_hist.iter().sum();
        let mut cdf = Vec::with_capacity(self.latency_hist.len());
        let mut acc = 0u64;
        for &n in &self.latency_hist {
            acc += n;
            cdf.push(if detected == 0 {
                0
            } else {
                ((acc as u128 * 1_000_000 + detected as u128 / 2) / detected as u128) as u64
            });
        }

        let total = self.agg.total();
        let aggregator = format!(
            "{{\"absorbed\": {}, \"events_run\": {}, \"instr_executed\": {}, \"piracy_reports\": {}, \"window_digests\": {}, \"windows_sealed\": {}}}",
            self.agg.tasks_absorbed(),
            total.counter_value("vm.events_run"),
            total.counter_value("vm.instr_executed"),
            total.counter_value("vm.piracy_reports"),
            u64_array_json(&self.agg.window_digests()),
            self.agg.windows_sealed(),
        );

        let market = format!(
            "{{\"avg_rating_milli\": {}, {}",
            self.market.avg_rating_milli(),
            market_json(&self.market).trim_start_matches('{'),
        );

        Ok(format!(
            "{{\n  \"schema_version\": {REPORT_SCHEMA_VERSION},\n  \"kind\": \"sim_report\",\n  \"config\": {},\n  \"sessions_run\": {},\n  \"market\": {},\n  \"bombs\": [{}],\n  \"latency_hist\": {},\n  \"latency_cdf_ppm\": {},\n  \"aggregator\": {}}}\n",
            config_json(&self.config),
            self.cursor,
            market,
            bombs.join(", "),
            u64_array_json(&self.latency_hist),
            u64_array_json(&cdf),
            aggregator,
        ))
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{BombCatalog, BombEntry, SimConfig, Simulator};
    use crate::runner::SyntheticRunner;
    use bombdroid_obs::json::{self, JsonValue};

    fn catalog() -> BombCatalog {
        BombCatalog::new(vec![BombEntry {
            marker: 3,
            blob: 5,
            predicted_ppm: 180_000,
        }])
    }

    #[test]
    fn report_parses_and_is_internally_consistent() {
        let mut config = SimConfig::new(2_048, 4, 13);
        config.market.halt_on_takedown = false;
        let mut sim = Simulator::new(config, catalog(), SyntheticRunner::new(catalog()));
        assert!(sim.report_json().is_err(), "unfinished runs have no report");
        sim.run();
        let text = sim.report_json().unwrap();
        let doc = json::parse(&text).expect("report parses");
        assert_eq!(
            doc.get("kind").and_then(JsonValue::as_str),
            Some("sim_report")
        );
        assert_eq!(
            doc.get("sessions_run").and_then(JsonValue::as_int),
            Some(2_048)
        );
        let market = doc.get("market").expect("market");
        assert_eq!(
            market.get("ratings_count").and_then(JsonValue::as_int),
            Some(2_048)
        );
        let cdf = doc
            .get("latency_cdf_ppm")
            .and_then(JsonValue::as_array)
            .expect("cdf");
        let values: Vec<i128> = cdf.iter().filter_map(JsonValue::as_int).collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "CDF monotone");
        assert_eq!(*values.last().unwrap(), 1_000_000, "CDF ends at 1.0");
        let agg = doc.get("aggregator").expect("aggregator");
        assert_eq!(agg.get("absorbed").and_then(JsonValue::as_int), Some(2_048));
    }
}
