//! Checkpoint serialization (schema v1).
//!
//! A checkpoint captures everything the day loop folds between chunk
//! boundaries: the shard cursor, the current day, market state, per-bomb
//! counters, the latency histogram, and the aggregator snapshot (running
//! totals plus sealed-window digests). The RNG lineage needs no state of
//! its own — every random draw in the simulator derives purely from
//! `(config.seed, session index)` — so echoing the config reproduces it.
//!
//! Kill a run at any chunk boundary, [`Simulator::from_checkpoint`] it
//! back, and the final report is bit-for-bit the report of the
//! uninterrupted run, at any thread count.

use crate::engine::{BombCatalog, BombEntry, BombStats, SimConfig, Simulator, LATENCY_BUCKETS};
use crate::market::{MarketConfig, MarketState};
use crate::population::DevicePopulation;
use crate::runner::SessionRunner;
use bombdroid_obs::json::{self, JsonValue};
use bombdroid_obs::{AggregatorSnapshot, ShardAggregator};

/// Checkpoint document schema version.
pub const CHECKPOINT_SCHEMA_VERSION: u64 = 1;

/// Serializes `taken_down_day` as an integer (−1 = still listed).
fn day_or_neg1(day: Option<u32>) -> i64 {
    day.map_or(-1, i64::from)
}

pub(crate) fn config_json(config: &SimConfig) -> String {
    let m = &config.market;
    format!(
        "{{\"checkpoint_every\": {}, \"days\": {}, \"devices\": {}, \"market\": {{\"halt_on_takedown\": {}, \"min_ratings\": {}, \"report_threshold\": {}, \"takedown_rating_milli\": {}}}, \"seed\": {}, \"window\": {}}}",
        config.checkpoint_every,
        config.days,
        config.devices,
        m.halt_on_takedown,
        m.min_ratings,
        m.report_threshold,
        m.takedown_rating_milli,
        config.seed,
        config.window,
    )
}

pub(crate) fn market_json(market: &MarketState) -> String {
    format!(
        "{{\"ratings_count\": {}, \"ratings_sum_milli\": {}, \"reports\": {}, \"taken_down_day\": {}}}",
        market.ratings_count,
        market.ratings_sum_milli,
        market.reports,
        day_or_neg1(market.taken_down_day),
    )
}

pub(crate) fn u64_array_json(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(", "))
}

/// Required-field accessors over the hand-rolled JSON layer.
pub(crate) fn req_int(doc: &JsonValue, key: &str) -> Result<i128, String> {
    doc.get(key)
        .and_then(JsonValue::as_int)
        .ok_or_else(|| format!("sim json: missing integer field '{key}'"))
}

pub(crate) fn req_u64(doc: &JsonValue, key: &str) -> Result<u64, String> {
    u64::try_from(req_int(doc, key)?).map_err(|_| format!("sim json: field '{key}' out of range"))
}

pub(crate) fn req_bool(doc: &JsonValue, key: &str) -> Result<bool, String> {
    match doc.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("sim json: missing boolean field '{key}'")),
    }
}

pub(crate) fn req_obj<'a>(doc: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    let v = doc
        .get(key)
        .ok_or_else(|| format!("sim json: missing object field '{key}'"))?;
    if v.as_object().is_none() {
        return Err(format!("sim json: field '{key}' is not an object"));
    }
    Ok(v)
}

pub(crate) fn req_array<'a>(doc: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], String> {
    doc.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("sim json: missing array field '{key}'"))
}

pub(crate) fn parse_config(doc: &JsonValue) -> Result<SimConfig, String> {
    let m = req_obj(doc, "market")?;
    Ok(SimConfig {
        devices: req_u64(doc, "devices")? as usize,
        days: req_u64(doc, "days")? as u32,
        seed: req_u64(doc, "seed")?,
        window: req_u64(doc, "window")? as usize,
        checkpoint_every: req_u64(doc, "checkpoint_every")? as usize,
        threads: None,
        market: MarketConfig {
            takedown_rating_milli: req_u64(m, "takedown_rating_milli")? as u32,
            report_threshold: req_u64(m, "report_threshold")?,
            min_ratings: req_u64(m, "min_ratings")?,
            halt_on_takedown: req_bool(m, "halt_on_takedown")?,
        },
    })
}

pub(crate) fn parse_market(doc: &JsonValue) -> Result<MarketState, String> {
    let day = req_int(doc, "taken_down_day")?;
    Ok(MarketState {
        ratings_count: req_u64(doc, "ratings_count")?,
        ratings_sum_milli: req_u64(doc, "ratings_sum_milli")?,
        reports: req_u64(doc, "reports")?,
        taken_down_day: if day < 0 { None } else { Some(day as u32) },
    })
}

pub(crate) fn parse_u64_array(items: &[JsonValue], what: &str) -> Result<Vec<u64>, String> {
    items
        .iter()
        .map(|v| {
            v.as_int()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| format!("sim json: bad {what} entry"))
        })
        .collect()
}

impl<R: SessionRunner> Simulator<R> {
    /// Serializes the full resumable state. Only valid at a chunk boundary
    /// of an unfinished run — exactly the points [`Simulator::step`]
    /// returns `true` at.
    pub fn checkpoint_json(&self) -> Result<String, String> {
        if self.finished {
            return Err("sim checkpoint: run already finished (use report_json)".into());
        }
        let snapshot = self
            .agg
            .snapshot()
            .ok_or("sim checkpoint: aggregator window still open")?;
        let bombs: Vec<String> = self
            .catalog
            .entries()
            .iter()
            .zip(self.stats.iter())
            .map(|(e, s)| {
                format!(
                    "{{\"blob\": {}, \"fired_sessions\": {}, \"marker\": {}, \"outer_sessions\": {}, \"predicted_ppm\": {}}}",
                    e.blob, s.fired_sessions, e.marker, s.outer_sessions, e.predicted_ppm,
                )
            })
            .collect();
        Ok(format!(
            "{{\n  \"schema_version\": {CHECKPOINT_SCHEMA_VERSION},\n  \"kind\": \"sim_checkpoint\",\n  \"config\": {},\n  \"cursor\": {},\n  \"current_day\": {},\n  \"market\": {},\n  \"bombs\": [{}],\n  \"latency_hist\": {},\n  \"aggregator\": {}}}\n",
            config_json(&self.config),
            self.cursor,
            self.current_day,
            market_json(&self.market),
            bombs.join(", "),
            u64_array_json(&self.latency_hist),
            snapshot.to_json().trim_end(),
        ))
    }

    /// Rebuilds a mid-run simulator from a checkpoint document. The runner
    /// is supplied fresh (it is process state, not folded state); the
    /// fleet thread count defaults back to the environment and may be
    /// changed freely — it cannot affect the resumed result.
    pub fn from_checkpoint(text: &str, runner: R) -> Result<Simulator<R>, String> {
        let doc = json::parse(text).map_err(|e| format!("sim checkpoint: {e}"))?;
        let version = req_u64(&doc, "schema_version")?;
        if version != CHECKPOINT_SCHEMA_VERSION {
            return Err(format!("sim checkpoint: unsupported schema {version}"));
        }
        if doc.get("kind").and_then(JsonValue::as_str) != Some("sim_checkpoint") {
            return Err("sim checkpoint: wrong document kind".into());
        }
        let config = parse_config(req_obj(&doc, "config")?)?;
        let market = parse_market(req_obj(&doc, "market")?)?;
        let mut entries = Vec::new();
        let mut stats = Vec::new();
        for bomb in req_array(&doc, "bombs")? {
            entries.push(BombEntry {
                marker: req_u64(bomb, "marker")? as u32,
                blob: req_u64(bomb, "blob")? as u32,
                predicted_ppm: req_u64(bomb, "predicted_ppm")?,
            });
            stats.push(BombStats {
                outer_sessions: req_u64(bomb, "outer_sessions")?,
                fired_sessions: req_u64(bomb, "fired_sessions")?,
            });
        }
        let latency_hist = parse_u64_array(req_array(&doc, "latency_hist")?, "latency_hist")?;
        if latency_hist.len() != LATENCY_BUCKETS {
            return Err("sim checkpoint: latency histogram shape changed".into());
        }
        let snapshot = AggregatorSnapshot::from_json(
            doc.get("aggregator")
                .ok_or("sim checkpoint: missing aggregator")?,
        )?;
        let cursor = req_u64(&doc, "cursor")? as usize;
        if cursor > config.devices || cursor != snapshot.absorbed {
            return Err("sim checkpoint: cursor disagrees with aggregator".into());
        }
        Ok(Simulator {
            population: DevicePopulation::new(config.seed, config.devices),
            agg: ShardAggregator::restore(&snapshot),
            current_day: req_u64(&doc, "current_day")? as u32,
            config,
            runner,
            catalog: BombCatalog::new(entries),
            stats,
            market,
            latency_hist,
            cursor,
            finished: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BombEntry, SimConfig};
    use crate::runner::SyntheticRunner;

    fn catalog() -> BombCatalog {
        BombCatalog::new(vec![BombEntry {
            marker: 4,
            blob: 7,
            predicted_ppm: 140_000,
        }])
    }

    fn config() -> SimConfig {
        let mut c = SimConfig::new(3_000, 4, 55);
        c.window = 32;
        c.checkpoint_every = 2;
        c.market.halt_on_takedown = false;
        c
    }

    #[test]
    fn kill_and_resume_reproduces_the_report() {
        let mut whole = Simulator::new(config(), catalog(), SyntheticRunner::new(catalog()));
        whole.run();
        let expected = whole.report_json().expect("finished");

        // Kill after three chunks.
        let mut first = Simulator::new(config(), catalog(), SyntheticRunner::new(catalog()));
        for _ in 0..3 {
            assert!(first.step());
        }
        let ckpt = first.checkpoint_json().expect("at chunk boundary");
        drop(first);

        let mut resumed =
            Simulator::from_checkpoint(&ckpt, SyntheticRunner::new(catalog())).expect("parses");
        resumed.run();
        assert_eq!(resumed.report_json().expect("finished"), expected);
    }

    #[test]
    fn resume_survives_a_second_checkpoint_cycle() {
        let mut whole = Simulator::new(config(), catalog(), SyntheticRunner::new(catalog()));
        whole.run();
        let expected = whole.report_json().unwrap();

        let mut sim = Simulator::new(config(), catalog(), SyntheticRunner::new(catalog()));
        assert!(sim.step());
        let first = sim.checkpoint_json().unwrap();
        let mut sim = Simulator::from_checkpoint(&first, SyntheticRunner::new(catalog())).unwrap();
        assert!(sim.step());
        assert!(sim.step());
        let second = sim.checkpoint_json().unwrap();
        let mut sim = Simulator::from_checkpoint(&second, SyntheticRunner::new(catalog())).unwrap();
        sim.run();
        assert_eq!(sim.report_json().unwrap(), expected);
    }

    #[test]
    fn checkpoint_rejects_broken_documents() {
        let mut sim = Simulator::new(config(), catalog(), SyntheticRunner::new(catalog()));
        assert!(sim.step());
        let good = sim.checkpoint_json().unwrap();
        assert!(Simulator::from_checkpoint("{", SyntheticRunner::new(catalog())).is_err());
        assert!(Simulator::from_checkpoint("{}", SyntheticRunner::new(catalog())).is_err());
        let wrong_kind = good.replace("sim_checkpoint", "sim_report");
        assert!(Simulator::from_checkpoint(&wrong_kind, SyntheticRunner::new(catalog())).is_err());
        let wrong_version = good.replace("\"schema_version\": 1", "\"schema_version\": 9");
        assert!(
            Simulator::from_checkpoint(&wrong_version, SyntheticRunner::new(catalog())).is_err()
        );
        let cursor_drift = good.replace("\"cursor\": 64", "\"cursor\": 65");
        assert!(
            Simulator::from_checkpoint(&cursor_drift, SyntheticRunner::new(catalog())).is_err()
        );

        // Finished runs refuse to checkpoint.
        sim.run();
        assert!(sim.checkpoint_json().is_err());
    }
}
