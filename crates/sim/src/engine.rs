//! The sharded day loop.
//!
//! A [`Simulator`] drives a [`DevicePopulation`] through a fixed number of
//! virtual days of downloads. Sessions fan out over the deterministic
//! fleet engine in fixed-size *chunks* (`window × checkpoint_every`
//! sessions); per-session recorder deltas stream into a windowed
//! [`ShardAggregator`] in task-index order, and the market/bomb/latency
//! state folds serially in the same order. Everything downstream of the
//! per-session RNG is integer arithmetic, so the final report is
//! bit-identical across `BOMBDROID_THREADS` values and across
//! checkpoint/resume cycles at any chunk boundary.

use crate::market::{MarketConfig, MarketState};
use crate::population::DevicePopulation;
use crate::runner::{SessionOutcome, SessionRunner};
use bombdroid_core::{expect_all, run_range_windowed, FleetConfig, ProtectReport};
use bombdroid_obs::ShardAggregator;

/// Detection-latency histogram size: one bucket per minute, last bucket
/// catches everything ≥ 63 minutes (sessions cap well below that).
pub const LATENCY_BUCKETS: usize = 64;

/// One double-trigger bomb the simulator tracks: identity plus the
/// closed-form inner-trigger probability the paper predicts for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BombEntry {
    /// Marker id the payload stamps into telemetry when it fires.
    pub marker: u32,
    /// Encrypted blob id the outer trigger decrypts.
    pub blob: u32,
    /// Predicted inner-trigger probability, parts per million.
    pub predicted_ppm: u64,
}

/// The set of double-trigger bombs under measurement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BombCatalog(Vec<BombEntry>);

impl BombCatalog {
    /// Wraps an explicit entry list (synthetic catalogs for tests).
    pub fn new(entries: Vec<BombEntry>) -> Self {
        BombCatalog(entries)
    }

    /// Extracts the measurable bombs from a protection report: those with
    /// both a marker (real payload) and an inner trigger (double-trigger,
    /// §6) — exactly the bombs whose firing rate has a closed-form
    /// prediction.
    pub fn from_report(report: &ProtectReport) -> Self {
        let entries = report
            .bombs
            .iter()
            .filter_map(|b| {
                let marker = b.marker?;
                let (_, prob) = b.inner.as_ref()?;
                Some(BombEntry {
                    marker,
                    blob: b.blob.0,
                    predicted_ppm: (prob * 1e6).round() as u64,
                })
            })
            .collect();
        BombCatalog(entries)
    }

    /// The tracked bombs.
    pub fn entries(&self) -> &[BombEntry] {
        &self.0
    }
}

/// Per-bomb measurement counters, parallel to the catalog.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BombStats {
    /// Sessions whose outer trigger decrypted this bomb's blob.
    pub outer_sessions: u64,
    /// Sessions where the bomb actually fired (inner trigger held).
    pub fired_sessions: u64,
}

impl BombStats {
    /// Measured conditional firing rate, parts per million (0 until the
    /// outer trigger has been observed at least once).
    pub fn measured_ppm(&self) -> u64 {
        if self.outer_sessions == 0 {
            0
        } else {
            ((self.fired_sessions as u128 * 1_000_000 + self.outer_sessions as u128 / 2)
                / self.outer_sessions as u128) as u64
        }
    }
}

/// Simulation shape. Everything that affects the folded state is echoed
/// into checkpoints and the final report; `threads` deliberately is not —
/// thread count must never change a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Total devices that download the listing over the whole run.
    pub devices: usize,
    /// Virtual days the downloads spread over.
    pub days: u32,
    /// Base seed: populations, per-session seeds, and ratings all derive
    /// from it.
    pub seed: u64,
    /// Sessions per observability window.
    pub window: usize,
    /// Windows per chunk — a checkpoint is possible after every chunk.
    pub checkpoint_every: usize,
    /// Fleet worker threads (`None` = `BOMBDROID_THREADS` / serial).
    pub threads: Option<usize>,
    /// Market reaction policy.
    pub market: MarketConfig,
}

impl SimConfig {
    /// A config with the default window shape (64-session windows, 4
    /// windows per chunk) and market policy.
    pub fn new(devices: usize, days: u32, seed: u64) -> Self {
        SimConfig {
            devices,
            days,
            seed,
            window: 64,
            checkpoint_every: 4,
            threads: None,
            market: MarketConfig::default(),
        }
    }

    /// Sessions per chunk (the checkpoint granularity).
    pub fn chunk_len(&self) -> usize {
        (self.window * self.checkpoint_every.max(1)).max(1)
    }
}

/// The population-scale market simulator. Generic over the session
/// strategy so the same day loop serves VM-backed experiments and
/// closed-form property tests.
pub struct Simulator<R: SessionRunner> {
    pub(crate) config: SimConfig,
    pub(crate) population: DevicePopulation,
    pub(crate) runner: R,
    pub(crate) catalog: BombCatalog,
    pub(crate) stats: Vec<BombStats>,
    pub(crate) agg: ShardAggregator,
    pub(crate) market: MarketState,
    pub(crate) latency_hist: Vec<u64>,
    pub(crate) cursor: usize,
    pub(crate) current_day: u32,
    pub(crate) finished: bool,
}

impl<R: SessionRunner> Simulator<R> {
    /// Creates a fresh simulation at day 0, session 0.
    pub fn new(config: SimConfig, catalog: BombCatalog, runner: R) -> Self {
        assert!(config.devices > 0, "empty population");
        assert!(config.days > 0, "zero-day simulation");
        let stats = vec![BombStats::default(); catalog.entries().len()];
        Simulator {
            population: DevicePopulation::new(config.seed, config.devices),
            agg: ShardAggregator::new(config.window),
            config,
            runner,
            catalog,
            stats,
            market: MarketState::default(),
            latency_hist: vec![0; LATENCY_BUCKETS],
            cursor: 0,
            current_day: 0,
            finished: false,
        }
    }

    /// Which virtual day (0-based) session `index` belongs to.
    fn day_of(&self, index: usize) -> u32 {
        (index as u64 * u64::from(self.config.days) / self.config.devices as u64) as u32
    }

    /// Runs one chunk of sessions and folds the outcomes. Returns `true`
    /// while more chunks remain; after it returns `false` the run is
    /// finished (all devices served, or the listing was pulled with
    /// `halt_on_takedown` set) and [`Self::report_json`] is available.
    ///
    /// Sessions already dispatched in the takedown chunk still count —
    /// those devices had downloaded before the listing came down.
    pub fn step(&mut self) -> bool {
        if self.finished {
            return false;
        }
        let end = (self.cursor + self.config.chunk_len()).min(self.config.devices);
        let mut fleet = FleetConfig::new(self.config.seed);
        if let Some(n) = self.config.threads {
            fleet = fleet.with_threads(n);
        }
        let population = self.population;
        let runner = &self.runner;
        let outcomes = expect_all(run_range_windowed(
            fleet,
            self.cursor..end,
            &self.agg,
            |ctx| Ok::<_, std::convert::Infallible>(runner.run(&population.user(ctx.index), ctx)),
        ));
        if !bombdroid_obs::enabled() {
            // With BOMBDROID_OBS=off the fleet skips the recorder fold
            // entirely, but the checkpoint codec keys its integrity check
            // on the aggregator's absorbed count staying in lockstep with
            // the session cursor. Absorb one empty delta per session so
            // window boundaries (and therefore checkpoints and resume)
            // work identically with observability disabled — the sealed
            // digests then fingerprint empty windows, which is still
            // deterministic within the mode.
            let empty = bombdroid_obs::Recorder::new();
            for _ in self.cursor..end {
                self.agg.absorb_next(&empty);
            }
        }
        for (offset, outcome) in outcomes.into_iter().enumerate() {
            let day = self.day_of(self.cursor + offset);
            while self.current_day < day {
                let completed = self.current_day;
                self.market.check_takedown(completed, &self.config.market);
                self.current_day += 1;
            }
            self.absorb(outcome);
        }
        self.cursor = end;
        let done_all = self.cursor == self.config.devices;
        if done_all {
            // Close out the final (possibly partial) day.
            self.market
                .check_takedown(self.config.days - 1, &self.config.market);
        }
        let halted = self.config.market.halt_on_takedown && self.market.taken_down_day.is_some();
        if done_all || halted {
            self.agg.finish();
            self.agg.drain_windows();
            self.finished = true;
            return false;
        }
        true
    }

    /// Folds one session outcome into market, bomb, and latency state.
    fn absorb(&mut self, outcome: SessionOutcome) {
        self.market.absorb(outcome.rating_milli, outcome.reports);
        if let Some(min) = outcome.first_marker_min {
            let bucket = (min as usize).min(LATENCY_BUCKETS - 1);
            self.latency_hist[bucket] += 1;
        }
        for (entry, stats) in self.catalog.entries().iter().zip(self.stats.iter_mut()) {
            if outcome.blobs.contains(&entry.blob) {
                stats.outer_sessions += 1;
            }
            if outcome.markers.contains(&entry.marker) {
                stats.fired_sessions += 1;
            }
        }
    }

    /// Runs chunks to completion, invoking `on_chunk` after each chunk
    /// boundary (checkpoint opportunity, progress reporting).
    pub fn run_with(&mut self, mut on_chunk: impl FnMut(&mut Self)) {
        while self.step() {
            on_chunk(self);
        }
    }

    /// Runs chunks to completion.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Whether the run has finished.
    pub fn done(&self) -> bool {
        self.finished
    }

    /// Sessions folded so far.
    pub fn sessions_run(&self) -> usize {
        self.cursor
    }

    /// The simulation shape.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Changes the fleet thread count mid-run. Always safe: thread count
    /// never affects folded state, only wall-clock.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.config.threads = threads;
    }

    /// Current market state.
    pub fn market(&self) -> &MarketState {
        &self.market
    }

    /// Tracked bombs with their measurement counters.
    pub fn bomb_stats(&self) -> impl Iterator<Item = (&BombEntry, &BombStats)> {
        self.catalog.entries().iter().zip(self.stats.iter())
    }

    /// Detection-latency histogram (sessions by first-fire minute).
    pub fn latency_hist(&self) -> &[u64] {
        &self.latency_hist
    }

    /// The streaming aggregator — e.g. for draining sealed windows into
    /// progress output between chunks.
    pub fn aggregator(&self) -> &ShardAggregator {
        &self.agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::SyntheticRunner;

    fn catalog() -> BombCatalog {
        BombCatalog::new(vec![
            BombEntry {
                marker: 1,
                blob: 10,
                predicted_ppm: 150_000,
            },
            BombEntry {
                marker: 2,
                blob: 11,
                predicted_ppm: 120_000,
            },
        ])
    }

    #[test]
    fn day_loop_is_thread_count_invariant() {
        let mut reports = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut config = SimConfig::new(2_000, 5, 77);
            config.threads = Some(threads);
            let mut sim = Simulator::new(config, catalog(), SyntheticRunner::new(catalog()));
            sim.run();
            assert!(sim.done());
            reports.push(sim.report_json().expect("finished"));
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }

    #[test]
    fn halting_market_stops_early() {
        let mut config = SimConfig::new(50_000, 10, 3);
        config.market.report_threshold = 10;
        config.market.halt_on_takedown = true;
        let mut sim = Simulator::new(config, catalog(), SyntheticRunner::new(catalog()));
        sim.run();
        assert!(sim.done());
        assert!(sim.market().taken_down_day.is_some());
        assert!(
            sim.sessions_run() < 50_000,
            "takedown should halt dispatch, ran {}",
            sim.sessions_run()
        );
    }

    #[test]
    fn measured_rates_track_predictions() {
        let config = SimConfig::new(30_000, 3, 11);
        let mut sim = Simulator::new(config, catalog(), SyntheticRunner::new(catalog()));
        // Disable halting so every session contributes to the estimate.
        sim.config.market.halt_on_takedown = false;
        sim.run();
        for (entry, stats) in sim.bomb_stats() {
            assert!(stats.outer_sessions > 10_000);
            let measured = stats.measured_ppm() as i64;
            let predicted = entry.predicted_ppm as i64;
            assert!(
                (measured - predicted).abs() < 15_000,
                "bomb {}: measured {measured} vs predicted {predicted}",
                entry.marker
            );
        }
    }

    #[test]
    fn memory_stays_bounded_by_windows_not_devices() {
        let mut config = SimConfig::new(100_000, 4, 9);
        config.market.halt_on_takedown = false;
        config.window = 256;
        config.checkpoint_every = 8;
        let mut sim = Simulator::new(config, catalog(), SyntheticRunner::new(catalog()));
        let mut max_live = 0usize;
        sim.run_with(|s| {
            max_live = max_live.max(s.aggregator().live_metric_names());
            s.aggregator().drain_windows();
        });
        assert!(sim.done());
        assert_eq!(sim.sessions_run(), 100_000);
        // Live metric names are per-recorder name counts: totals + at most
        // one open window + undreained sealed windows of one chunk. With a
        // synthetic runner no metrics publish, so this is exactly 0; the
        // invariant under test is that it never scales with device count.
        assert!(max_live <= 4 * 256, "live metrics grew: {max_live}");
    }
}
