//! Seeded device populations.
//!
//! A [`DevicePopulation`] is a *virtual* collection: it stores only a base
//! seed and a size, and derives any member on demand. `user(i)` is a pure
//! function of `(base_seed, i)`, so a million-device population costs
//! sixteen bytes resident and any shard of the day loop can materialize
//! exactly the users it is about to run — the market simulator never holds
//! per-device state for devices that are not mid-session.

use bombdroid_core::derive_seed;
use bombdroid_corpus::UserProfile;
use rand::{rngs::StdRng, SeedableRng};

/// Domain-separation salt so population draws never collide with the fleet
/// engine's per-task seeds (which derive from the same base seed).
const POPULATION_SALT: u64 = 0x706f_7075_6c61_7465;

/// A seeded virtual population of simulated market users.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevicePopulation {
    /// Base seed every member derives from.
    pub base_seed: u64,
    /// Number of users in the population.
    pub size: usize,
}

impl DevicePopulation {
    /// Creates a population of `size` users over `base_seed`.
    pub fn new(base_seed: u64, size: usize) -> Self {
        DevicePopulation { base_seed, size }
    }

    /// Derives user `index` (0-based). Pure: the same `(base_seed, index)`
    /// always yields the same user, independent of call order, shard
    /// layout, or thread count.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.size`.
    pub fn user(&self, index: usize) -> UserProfile {
        assert!(index < self.size, "user {index} out of {}", self.size);
        let seed = derive_seed(self.base_seed ^ POPULATION_SALT, index as u64);
        UserProfile::sample(&mut StdRng::seed_from_u64(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_corpus::UserArchetype;

    #[test]
    fn members_are_pure_functions_of_seed_and_index() {
        let pop = DevicePopulation::new(42, 1000);
        assert_eq!(pop.user(0), DevicePopulation::new(42, 10).user(0));
        assert_eq!(pop.user(999), pop.user(999));
        assert_ne!(pop.user(0), pop.user(1));
        assert_ne!(pop.user(3), DevicePopulation::new(43, 1000).user(3));
    }

    #[test]
    fn population_is_diverse() {
        let pop = DevicePopulation::new(7, 500);
        let mut archetypes = std::collections::BTreeSet::new();
        let mut manufacturers = std::collections::BTreeSet::new();
        for i in 0..pop.size {
            let u = pop.user(i);
            archetypes.insert(u.archetype);
            manufacturers.insert(u.device.manufacturer);
        }
        assert_eq!(archetypes.len(), 3);
        assert!(manufacturers.len() >= 8);
        let casual = (0..pop.size)
            .filter(|&i| pop.user(i).archetype == UserArchetype::Casual)
            .count() as f64
            / pop.size as f64;
        assert!((casual - 0.55).abs() < 0.08, "casual share {casual}");
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_panics() {
        DevicePopulation::new(1, 4).user(4);
    }
}
