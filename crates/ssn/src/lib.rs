//! SSN (Stochastic Stealthy Network) baseline — the prior state of the art
//! the paper compares against (§2.1, Listing 1; Luo et al., DSN'16).
//!
//! SSN builds repackaging detection into app code with three measures:
//!
//! 1. detection is invoked only *probabilistically* (`rand() < 0.01`);
//! 2. the `getPublicKey` call is hidden behind an obfuscated name recovered
//!    at runtime and invoked through reflection;
//! 3. the response is *delayed*: detection raises a flag, and separate
//!    degradation nodes act on it later.
//!
//! The paper shows each measure falls to a simple attack — forcing the
//! framework RNG, checking reflection destinations, and symbolic
//! execution all defeat it — which is reproduced by
//! `bombdroid-attacks`. This crate implements SSN faithfully so those
//! attacks have their real target.
//!
//! # Example
//!
//! ```
//! use bombdroid_ssn::{SsnConfig, SsnProtector};
//! use bombdroid_apk::{package_app, AppMeta, DeveloperKey, StringsXml};
//! use bombdroid_corpus::flagship;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let dev = DeveloperKey::generate(&mut rng);
//! let apk = flagship::hash_droid().apk(&dev);
//! let protected = SsnProtector::new(SsnConfig::default()).protect(&apk, &mut rng);
//! assert!(protected.report.detection_nodes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bombdroid_apk::{package_app, ApkFile, AppMeta, DeveloperKey, StringsXml};
use bombdroid_dex::{
    CondOp, DexFile, FieldRef, HostApi, Instr, Method, MethodRef, Reg, RegOrConst, StrOp, Value,
};
use rand::{rngs::StdRng, seq::SliceRandom};

/// The static flag SSN's delayed response communicates through.
pub const SSN_FLAG: (&str, &str) = ("SsnRt", "flag");

/// The obfuscated name constant (`rot13("getPublicKey")`).
pub const OBFUSCATED_NAME: &str = "trgChoyvpXrl";

/// SSN configuration.
#[derive(Debug, Clone)]
pub struct SsnConfig {
    /// Fraction of methods receiving a detection node.
    pub detection_node_ratio: f64,
    /// Fraction of methods receiving a delayed-response node.
    pub response_node_ratio: f64,
    /// `rand() < p` invocation probability (paper: very low, e.g. 1%).
    pub invoke_probability_inverse: i64,
}

impl Default for SsnConfig {
    fn default() -> Self {
        SsnConfig {
            detection_node_ratio: 0.10,
            response_node_ratio: 0.05,
            invoke_probability_inverse: 100,
        }
    }
}

/// What SSN injected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SsnReport {
    /// Methods carrying a detection node.
    pub detection_nodes: usize,
    /// Methods carrying a delayed-response node.
    pub response_nodes: usize,
    /// Methods touched, for attack bookkeeping.
    pub node_methods: Vec<MethodRef>,
}

/// A protected-but-unsigned SSN app.
#[derive(Debug, Clone)]
pub struct SsnProtectedApp {
    /// Instrumented bytecode.
    pub dex: DexFile,
    /// Unchanged resources.
    pub strings: StringsXml,
    /// Unchanged metadata.
    pub meta: AppMeta,
    /// Injection summary.
    pub report: SsnReport,
}

impl SsnProtectedApp {
    /// Signs and packages with the developer's key.
    pub fn package(&self, key: &DeveloperKey) -> ApkFile {
        package_app(&self.dex, self.strings.clone(), self.meta.clone(), key)
    }
}

/// The SSN protector.
#[derive(Debug, Clone, Default)]
pub struct SsnProtector {
    config: SsnConfig,
}

impl SsnProtector {
    /// Creates a protector.
    pub fn new(config: SsnConfig) -> Self {
        SsnProtector { config }
    }

    /// Protects `apk` with SSN-style detection and response nodes.
    pub fn protect(&self, apk: &ApkFile, rng: &mut StdRng) -> SsnProtectedApp {
        let mut dex = (*apk.dex).clone();
        let pubkey = apk.cert.public_key.to_bytes().to_vec();
        let mut report = SsnReport::default();

        let mut method_refs: Vec<MethodRef> = dex.methods().map(|m| m.method_ref()).collect();
        method_refs.shuffle(rng);
        let n_detect = (((method_refs.len() as f64) * self.config.detection_node_ratio).ceil()
            as usize)
            .clamp(1, method_refs.len());
        let n_respond = (((method_refs.len() as f64) * self.config.response_node_ratio).ceil()
            as usize)
            .min(method_refs.len().saturating_sub(n_detect));

        for (i, mref) in method_refs.iter().enumerate() {
            let method = dex.method_mut(mref).expect("method exists");
            if i < n_detect {
                prepend(
                    method,
                    detection_node(method.registers, &pubkey, &self.config),
                );
                report.detection_nodes += 1;
                report.node_methods.push(mref.clone());
            } else if i < n_detect + n_respond {
                prepend(method, response_node(method.registers));
                report.response_nodes += 1;
                report.node_methods.push(mref.clone());
            }
        }

        SsnProtectedApp {
            dex,
            strings: apk.strings.clone(),
            meta: apk.meta.clone(),
            report,
        }
    }
}

/// Prepends `snippet` to a method body, shifting existing branch targets.
fn prepend(method: &mut Method, snippet: Vec<Instr>) {
    let k = snippet.len();
    let mut body = snippet;
    for mut instr in method.body.drain(..) {
        match &mut instr {
            Instr::If { target, .. } | Instr::Goto { target } => *target += k,
            Instr::Switch { arms, default, .. } => {
                for (_, t) in arms.iter_mut() {
                    *t += k;
                }
                *default += k;
            }
            _ => {}
        }
        body.push(instr);
    }
    method.body = body;
    for instr in &method.body {
        for r in instr.uses() {
            method.registers = method.registers.max(r.0 + 1);
        }
        if let Some(d) = instr.def() {
            method.registers = method.registers.max(d.0 + 1);
        }
    }
}

/// Listing 1: probabilistic, reflection-hidden public-key check with a
/// delayed (flag-raising) response.
fn detection_node(base: u16, pubkey: &[u8], config: &SsnConfig) -> Vec<Instr> {
    let bound = Reg(base);
    let roll = Reg(base + 1);
    let obf = Reg(base + 2);
    let name = Reg(base + 3);
    let key = Reg(base + 4);
    let flag = Reg(base + 5);
    // Laid out with absolute targets; `skip` = snippet length.
    let skip = 9usize;
    vec![
        Instr::Const {
            dst: bound,
            value: Value::Int(config.invoke_probability_inverse),
        },
        Instr::HostCall {
            api: HostApi::Random,
            args: vec![bound],
            dst: Some(roll),
        },
        Instr::If {
            cond: CondOp::Ne,
            lhs: roll,
            rhs: RegOrConst::Const(Value::Int(0)),
            target: skip,
        },
        Instr::Const {
            dst: obf,
            value: Value::str(OBFUSCATED_NAME),
        },
        Instr::StrOp {
            op: StrOp::Rot13,
            dst: name,
            lhs: obf,
            rhs: None,
        },
        Instr::InvokeReflect {
            name,
            args: vec![],
            dst: Some(key),
        },
        Instr::If {
            cond: CondOp::Eq,
            lhs: key,
            rhs: RegOrConst::Const(Value::bytes(pubkey)),
            target: skip,
        },
        Instr::Const {
            dst: flag,
            value: Value::Bool(true),
        },
        Instr::PutStatic {
            field: FieldRef::new(SSN_FLAG.0, SSN_FLAG.1),
            src: flag,
        },
    ]
}

/// Delayed response: if the flag is up, degrade the app (memory leak).
fn response_node(base: u16) -> Vec<Instr> {
    let flag = Reg(base);
    vec![
        Instr::GetStatic {
            dst: flag,
            field: FieldRef::new(SSN_FLAG.0, SSN_FLAG.1),
        },
        Instr::If {
            cond: CondOp::Ne,
            lhs: flag,
            rhs: RegOrConst::Const(Value::Bool(true)),
            target: 3,
        },
        Instr::HostCall {
            api: HostApi::LeakMemory,
            args: vec![],
            dst: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_apk::repackage;
    use bombdroid_runtime::{run_session, ResponseKind};
    use bombdroid_runtime::{DeviceEnv, InstalledPackage, RandomEventSource, Vm, VmOptions};
    use rand::SeedableRng;

    fn protected_apks() -> (ApkFile, ApkFile, DeveloperKey) {
        let mut rng = StdRng::seed_from_u64(2);
        let dev = DeveloperKey::generate(&mut rng);
        let pirate = DeveloperKey::generate(&mut rng);
        let app = bombdroid_corpus::flagship::angulo();
        let apk = app.apk(&dev);
        let protected = SsnProtector::new(SsnConfig::default()).protect(&apk, &mut rng);
        let signed = protected.package(&dev);
        let pirated = repackage(&signed, &pirate, |_| {});
        (signed, pirated, dev)
    }

    #[test]
    fn obfuscated_name_recovers() {
        // rot13(rot13(x)) == x and the constant decodes to the API name.
        let rot = |s: &str| -> String {
            s.chars()
                .map(|c| match c {
                    'a'..='z' => (((c as u8 - b'a' + 13) % 26) + b'a') as char,
                    'A'..='Z' => (((c as u8 - b'A' + 13) % 26) + b'A') as char,
                    other => other,
                })
                .collect()
        };
        assert_eq!(rot(OBFUSCATED_NAME), "getPublicKey");
    }

    #[test]
    fn plaintext_never_contains_api_name() {
        let (signed, _, _) = protected_apks();
        let text = bombdroid_dex::asm::disasm_dex(&signed.dex);
        assert!(!text.contains("getPublicKey"), "name must stay hidden");
        assert!(text.contains("invoke-reflect"), "reflection is visible");
    }

    #[test]
    fn detects_repackaging_on_user_devices_eventually() {
        let (_, pirated, _) = protected_apks();
        let pkg = InstalledPackage::install(&pirated).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut vm = Vm::boot(pkg, DeviceEnv::sample(&mut rng), 4);
        let mut source = RandomEventSource;
        run_session(&mut vm, &mut source, &mut rng, 30, 120);
        // With 1% invocation probability and thousands of node executions,
        // the flag goes up and degradation fires.
        assert!(vm
            .telemetry()
            .responses
            .iter()
            .any(|r| r.kind == ResponseKind::MemoryLeaked));
    }

    #[test]
    fn no_false_positives_on_legit_copy() {
        let (signed, _, _) = protected_apks();
        let pkg = InstalledPackage::install(&signed).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let mut vm = Vm::boot(pkg, DeviceEnv::sample(&mut rng), 4);
        let mut source = RandomEventSource;
        run_session(&mut vm, &mut source, &mut rng, 10, 120);
        assert!(vm.telemetry().responses.is_empty());
        assert_eq!(vm.telemetry().leaked_bytes, 0);
    }

    #[test]
    fn forcing_rng_makes_detection_deterministic() {
        // The instrumentation attack of §2.1: force rand() to 0.
        let (_, pirated, _) = protected_apks();
        let pkg = InstalledPackage::install(&pirated).unwrap();
        let mut opts = VmOptions::default();
        opts.hooks.force_random = Some(0);
        opts.hooks.trace_reflection = true;
        let mut rng = StdRng::seed_from_u64(11);
        let mut vm = Vm::new(pkg, DeviceEnv::attacker_lab(1).remove(0), 4, opts);
        let mut source = RandomEventSource;
        run_session(&mut vm, &mut source, &mut rng, 2, 120);
        // Every detection node now runs and the reflection trace exposes
        // the hidden API.
        assert!(vm
            .telemetry()
            .reflection_trace
            .iter()
            .any(|(n, _)| n == "getPublicKey"));
    }
}
