//! Repackaging detection & response payload codegen (paper §4).
//!
//! A payload (a) retrieves a runtime identity value — the installed
//! certificate's public key, a MANIFEST.MF digest, or an installed-class
//! code digest — (b) compares it to the original value baked in at
//! protection time (directly for the public key `Ko`, via steganographic
//! `strings.xml` covers for digests), and (c) on mismatch warns the user,
//! reports to the developer, and fires a destructive response.

use crate::config::ResponseChoice;
use crate::fragment::FragmentBuilder;
use bombdroid_dex::{CondOp, FieldRef, HostApi, Instr, RegOrConst, UiKind, Value};

/// The runtime flag strategic muting communicates through (inside
/// encrypted payloads only, so invisible to static analysis). The name
/// reads as ordinary app state.
pub const MUTE_FLAG: (&str, &str) = ("cfg/Session", "syncDone");

/// Which identity a payload checks.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectionKind {
    /// Compare `Certificate.getPublicKey()` against the original `Ko`.
    PublicKey {
        /// Original public-key bytes.
        original: Vec<u8>,
    },
    /// Compare a manifest entry's digest against a stego-hidden original.
    ManifestDigest {
        /// APK entry name (e.g. `res/icon.png`).
        entry: String,
        /// `strings.xml` key whose value hides the expected digest.
        stego_key: String,
    },
    /// Compare an installed class's code digest against a stego-hidden
    /// original (code-snippet scanning, targeting classes the protector
    /// never touches).
    CodeScan {
        /// Class name to scan.
        class: String,
        /// `strings.xml` key whose value hides the expected digest.
        stego_key: String,
    },
}

impl DetectionKind {
    /// Short tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            DetectionKind::PublicKey { .. } => "public-key",
            DetectionKind::ManifestDigest { .. } => "manifest-digest",
            DetectionKind::CodeScan { .. } => "code-scan",
        }
    }
}

/// Emits detection + response code into `f`. Control falls through whether
/// or not repackaging is detected (responses like `Kill` abort execution on
/// their own).
///
/// With `mute_others` (the §10 future-work extension), the payload first
/// checks the shared mute flag and stays silent if another bomb already
/// fired; on a fresh detection it raises the flag before responding, so
/// an analyst tracing the response observes only the *first* bomb.
pub fn emit_detection(
    f: &mut FragmentBuilder,
    kind: &DetectionKind,
    response: ResponseChoice,
    warn_message: &str,
    mute_others: bool,
) {
    let ok = f.fresh_label();
    if mute_others {
        let m = f.fresh_reg();
        f.push(Instr::GetStatic {
            dst: m,
            field: FieldRef::new(MUTE_FLAG.0, MUTE_FLAG.1),
        });
        f.if_(CondOp::Eq, m, RegOrConst::Const(Value::Bool(true)), ok);
    }
    match kind {
        DetectionKind::PublicKey { original } => {
            let k = f.fresh_reg();
            f.host(HostApi::GetPublicKey, vec![], Some(k));
            f.if_(
                CondOp::Eq,
                k,
                RegOrConst::Const(Value::bytes(original.clone())),
                ok,
            );
        }
        DetectionKind::ManifestDigest { entry, stego_key } => {
            let e = f.fresh_reg();
            f.const_(e, Value::str(entry.clone()));
            let d = f.fresh_reg();
            f.host(HostApi::GetManifestDigest, vec![e], Some(d));
            let s = f.fresh_reg();
            f.const_(s, Value::str(stego_key.clone()));
            let cover = f.fresh_reg();
            f.host(HostApi::GetResourceString, vec![s], Some(cover));
            let expected = f.fresh_reg();
            f.push(Instr::StegoExtract {
                dst: expected,
                src: cover,
            });
            f.if_(CondOp::Eq, d, RegOrConst::Reg(expected), ok);
        }
        DetectionKind::CodeScan { class, stego_key } => {
            let c = f.fresh_reg();
            f.const_(c, Value::str(class.clone()));
            let d = f.fresh_reg();
            f.host(HostApi::CodeDigest, vec![c], Some(d));
            let s = f.fresh_reg();
            f.const_(s, Value::str(stego_key.clone()));
            let cover = f.fresh_reg();
            f.host(HostApi::GetResourceString, vec![s], Some(cover));
            let expected = f.fresh_reg();
            f.push(Instr::StegoExtract {
                dst: expected,
                src: cover,
            });
            f.if_(CondOp::Eq, d, RegOrConst::Reg(expected), ok);
        }
    }
    // Repackaging detected.
    if mute_others {
        let t = f.fresh_reg();
        f.const_(t, Value::Bool(true));
        f.push(Instr::PutStatic {
            field: FieldRef::new(MUTE_FLAG.0, MUTE_FLAG.1),
            src: t,
        });
    }
    let msg = f.fresh_reg();
    f.const_(msg, Value::str(warn_message));
    f.host(HostApi::UiNotify(UiKind::Dialog), vec![msg], None);
    f.host(HostApi::ReportPiracy, vec![], None);
    f.host(response_api(response), vec![], None);
    f.place_label(ok);
}

fn response_api(choice: ResponseChoice) -> HostApi {
    match choice {
        ResponseChoice::Kill => HostApi::KillProcess,
        ResponseChoice::Freeze => HostApi::Freeze,
        ResponseChoice::LeakMemory => HostApi::LeakMemory,
        ResponseChoice::NullOutField => HostApi::NullOutField,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pubkey_payload_shape() {
        let mut f = FragmentBuilder::new(8);
        emit_detection(
            &mut f,
            &DetectionKind::PublicKey {
                original: vec![1, 2, 3],
            },
            ResponseChoice::Kill,
            "pirated copy",
            false,
        );
        let body = f.finish().expect("all labels placed");
        assert!(body.iter().any(|i| matches!(
            i,
            Instr::HostCall {
                api: HostApi::GetPublicKey,
                ..
            }
        )));
        assert!(body.iter().any(|i| matches!(
            i,
            Instr::HostCall {
                api: HostApi::KillProcess,
                ..
            }
        )));
        assert!(body.iter().any(|i| matches!(
            i,
            Instr::HostCall {
                api: HostApi::ReportPiracy,
                ..
            }
        )));
        // The match branch must jump past the response code (to the end).
        match body.iter().find(|i| matches!(i, Instr::If { .. })) {
            Some(Instr::If { target, .. }) => assert_eq!(*target, body.len()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn digest_payload_uses_stego() {
        let mut f = FragmentBuilder::new(8);
        emit_detection(
            &mut f,
            &DetectionKind::ManifestDigest {
                entry: "res/icon.png".into(),
                stego_key: "cfg_cache_0".into(),
            },
            ResponseChoice::Freeze,
            "warn",
            false,
        );
        let body = f.finish().expect("all labels placed");
        assert!(body.iter().any(|i| matches!(i, Instr::StegoExtract { .. })));
        assert!(body.iter().any(|i| matches!(
            i,
            Instr::HostCall {
                api: HostApi::GetManifestDigest,
                ..
            }
        )));
    }

    #[test]
    fn code_scan_payload_targets_class() {
        let mut f = FragmentBuilder::new(8);
        emit_detection(
            &mut f,
            &DetectionKind::CodeScan {
                class: "Stable".into(),
                stego_key: "cfg_cache_1".into(),
            },
            ResponseChoice::LeakMemory,
            "warn",
            false,
        );
        let body = f.finish().expect("all labels placed");
        assert!(body.iter().any(|i| matches!(
            i,
            Instr::HostCall {
                api: HostApi::CodeDigest,
                ..
            }
        )));
        assert!(body.iter().any(|i| matches!(
            i,
            Instr::HostCall {
                api: HostApi::LeakMemory,
                ..
            }
        )));
    }
}
