//! BombDroid: resilient decentralized Android app repackaging detection
//! using cryptographically obfuscated logic bombs — the primary
//! contribution of the CGO'18 paper, reimplemented on the synthetic
//! Android substrate of this workspace.
//!
//! The [`Protector`] runs the four-step pipeline of the paper's Fig. 1:
//!
//! 1. **Unpack** the APK: extract bytecode and the developer's public key.
//! 2. **Analyze**: profile with random events to find hot methods (§7.1)
//!    and high-entropy fields, scan for *qualified conditions* (`X == c`,
//!    §3.3), and plan bomb sites (existing, artificial, bogus).
//! 3. **Instrument**: rewrite each site into a cryptographically
//!    obfuscated bomb — `Hash(X|salt) == Hc` guarding a `DecryptExec` of
//!    the sealed payload, with the original conditional body *woven* into
//!    the ciphertext (§3.2, §3.4), an optional environment-sensitive inner
//!    trigger (§6), and a repackaging-detection payload (§4).
//! 4. **Package** the protected app for the developer to sign.
//!
//! # Quick start
//!
//! ```
//! use bombdroid_apk::{package_app, repackage, AppMeta, DeveloperKey, StringsXml};
//! use bombdroid_core::{ProtectConfig, Protector};
//! use bombdroid_dex::{Class, CondOp, DexFile, EntryPoint, MethodBuilder, ParamDomain,
//!                     Reg, RegOrConst, Value};
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::sync::Arc;
//!
//! // A tiny app with one qualified condition.
//! let mut dex = DexFile::new();
//! let mut class = Class::new("App");
//! let mut m = MethodBuilder::new("App", "onTap", 1);
//! let skip = m.fresh_label();
//! m.if_not(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(1234)), skip);
//! m.host_log("secret tap");
//! m.place_label(skip);
//! m.ret_void();
//! class.methods.push(m.finish());
//! dex.classes.push(class);
//! dex.entry_points.push(EntryPoint {
//!     event: Arc::from("onTap"),
//!     method: bombdroid_dex::MethodRef::new("App", "onTap"),
//!     params: vec![ParamDomain::IntRange(0, 100_000)],
//!     user_weight: 1.0,
//! });
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let dev = DeveloperKey::generate(&mut rng);
//! let apk = package_app(&dex, StringsXml::new(), AppMeta::named("demo"), &dev);
//!
//! let protector = Protector::new(ProtectConfig::fast_profile());
//! let protected = protector.protect(&apk, &mut rng).unwrap();
//! assert!(protected.report.bombs_injected() >= 1);
//!
//! // The developer signs; a pirate repackages; the difference is what the
//! // injected payloads detect at runtime on user devices.
//! let signed = protected.package(&dev);
//! let pirate = DeveloperKey::generate(&mut rng);
//! let pirated = repackage(&signed, &pirate, |_| {});
//! assert_ne!(signed.cert.public_key, pirated.cert.public_key);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bomb;
pub mod config;
pub mod fleet;
pub mod fragment;
pub mod inner;
pub mod naive;
pub mod payload;
pub mod pipeline;
pub mod profiling;
pub mod report;
pub mod rewrite;
pub mod service;
pub mod sites;

pub use config::{DetectionMethods, ProtectConfig, ResponseChoice};
pub use fleet::{
    derive_seed, env_threads, expect_all, run_fleet, run_fleet_windowed, run_indexed,
    run_indexed_windowed, run_range_windowed, FleetConfig, FleetError, TaskCtx,
};
pub use inner::InnerCond;
pub use naive::NaiveProtector;
pub use payload::{DetectionKind, MUTE_FLAG};
pub use pipeline::{ProtectError, ProtectedApp, Protector};
pub use profiling::{profile_app, ProfileResult};
pub use report::{BombInfo, BombKind, ProtectReport};
pub use service::{
    config_fingerprint, shared_protection_cache, AdmissionError, JobOutcome, JobTicket, ProtectJob,
    ProtectService, ProtectionCache, SeedPolicy,
};
