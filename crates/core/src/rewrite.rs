//! In-place bytecode rewriting with branch-target remapping — the
//! Javassist-shaped piece of the instrumentation step.

use bombdroid_dex::{Instr, Method};
use std::fmt;

/// Why a region could not be rewritten.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// Region bounds are out of range or inverted.
    BadRange {
        /// Requested start.
        start: usize,
        /// Requested end.
        end: usize,
        /// Method body length.
        len: usize,
    },
    /// A branch from outside the region targets its interior — the region
    /// is not single-entry and cannot be replaced atomically.
    CrossJumpIntoRegion {
        /// The offending branch's pc.
        from: usize,
        /// Its interior target.
        target: usize,
    },
    /// An instruction inside the region jumps somewhere other than within
    /// the region or to its end — the region is not self-contained.
    RegionEscapes {
        /// The offending instruction's pc.
        at: usize,
        /// Its escaping target.
        target: usize,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::BadRange { start, end, len } => {
                write!(f, "bad rewrite range {start}..{end} for body of {len}")
            }
            RewriteError::CrossJumpIntoRegion { from, target } => {
                write!(f, "branch at @{from} jumps into region interior @{target}")
            }
            RewriteError::RegionEscapes { at, target } => {
                write!(f, "instruction at @{at} escapes the region to @{target}")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

/// Checks that `[start, end)` is a *self-contained, single-entry* region:
/// no external branch lands strictly inside it, and no internal branch
/// leaves it (targets within the region or exactly `end` are fine).
///
/// # Errors
///
/// Returns the violation found.
pub fn check_region(method: &Method, start: usize, end: usize) -> Result<(), RewriteError> {
    let len = method.body.len();
    if start > end || end > len {
        return Err(RewriteError::BadRange { start, end, len });
    }
    for (pc, instr) in method.body.iter().enumerate() {
        let mut violation = None;
        instr.for_each_branch_target(|t| {
            if violation.is_some() {
                return;
            }
            let inside_region = (start..end).contains(&pc);
            if inside_region {
                if !(start..=end).contains(&t) {
                    violation = Some(RewriteError::RegionEscapes { at: pc, target: t });
                }
            } else if t > start && t < end {
                violation = Some(RewriteError::CrossJumpIntoRegion {
                    from: pc,
                    target: t,
                });
            }
        });
        if let Some(err) = violation {
            return Err(err);
        }
    }
    Ok(())
}

/// Replaces the instruction region `[start, end)` of `method` with
/// `replacement`, remapping every branch target in the rest of the method.
///
/// Branch targets inside `replacement` must be *region-relative*: `0` is
/// the first replacement instruction, and `replacement.len()` means "the
/// instruction after the region" (they are shifted by `start`).
///
/// # Errors
///
/// Returns [`RewriteError`] if the region is not self-contained (see
/// [`check_region`]).
pub fn rewrite_region(
    method: &mut Method,
    start: usize,
    end: usize,
    replacement: Vec<Instr>,
) -> Result<(), RewriteError> {
    check_region(method, start, end)?;
    let old_region_len = end - start;
    let new_region_len = replacement.len();
    let map = |old_target: usize| -> usize {
        if old_target <= start {
            old_target
        } else {
            // Region is single-entry, so any other target is ≥ end.
            old_target - old_region_len + new_region_len
        }
    };

    // Remap the surviving instructions' targets in place, then splice the
    // (pre-shifted) replacement over the region — the suffix moves without
    // cloning a single instruction.
    let remap = |instr: &mut Instr| match instr {
        Instr::If { target, .. } | Instr::Goto { target } => *target = map(*target),
        Instr::Switch { arms, default, .. } => {
            for (_, t) in arms.iter_mut() {
                *t = map(*t);
            }
            *default = map(*default);
        }
        _ => {}
    };
    for instr in &mut method.body[..start] {
        remap(instr);
    }
    for instr in &mut method.body[end..] {
        remap(instr);
    }
    let mut replacement = replacement;
    for instr in &mut replacement {
        match instr {
            Instr::If { target, .. } | Instr::Goto { target } => *target += start,
            Instr::Switch { arms, default, .. } => {
                for (_, t) in arms.iter_mut() {
                    *t += start;
                }
                *default += start;
            }
            _ => {}
        }
    }
    method.body.splice(start..end, replacement);
    // Keep the frame large enough for any new registers.
    let mut registers = method.registers;
    for instr in &method.body {
        instr.for_each_reg(|r| registers = registers.max(r.0 + 1));
    }
    method.registers = registers;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::{CondOp, MethodBuilder, Reg, RegOrConst, Value};

    fn branch_over_method() -> Method {
        // 0: if v0 != 7 goto 3 ; 1: const v1 "b" ; 2: host log ; 3: return
        let mut b = MethodBuilder::new("T", "m", 1);
        let skip = b.fresh_label();
        b.if_not(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(7)), skip);
        b.host_log("body");
        b.place_label(skip);
        b.ret_void();
        b.finish()
    }

    #[test]
    fn replace_body_shrinks_and_remaps() {
        let mut m = branch_over_method();
        assert_eq!(m.body.len(), 4);
        // Replace the 2-instruction body (pcs 1..3) with 1 Nop.
        rewrite_region(&mut m, 1, 3, vec![Instr::Nop]).unwrap();
        assert_eq!(m.body.len(), 3);
        match &m.body[0] {
            Instr::If { target, .. } => assert_eq!(*target, 2, "skip target shifted"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insertion_at_point_shifts_later_targets() {
        let mut m = branch_over_method();
        // Insert two Nops at pc 1 (start == end → pure insertion).
        rewrite_region(&mut m, 1, 1, vec![Instr::Nop, Instr::Nop]).unwrap();
        assert_eq!(m.body.len(), 6);
        match &m.body[0] {
            Instr::If { target, .. } => assert_eq!(*target, 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn replacement_relative_targets_shifted() {
        let mut m = branch_over_method();
        // Replacement with an internal branch: region-relative target 2 ==
        // "after region".
        let rep = vec![
            Instr::If {
                cond: CondOp::Eq,
                lhs: Reg(0),
                rhs: RegOrConst::Const(Value::Int(1)),
                target: 2,
            },
            Instr::Nop,
        ];
        rewrite_region(&mut m, 1, 3, rep).unwrap();
        match &m.body[1] {
            Instr::If { target, .. } => assert_eq!(*target, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cross_jump_rejected() {
        let mut b = MethodBuilder::new("T", "x", 1);
        let mid = b.fresh_label();
        let end = b.fresh_label();
        b.if_(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(0)), mid); // 0
        b.host_log("a"); // 1,2
        b.place_label(mid);
        b.host_log("b"); // 3,4
        b.place_label(end);
        b.ret_void();
        let mut m = b.finish();
        // Region 1..5 has an external branch into pc 3 → reject.
        let err = rewrite_region(&mut m, 1, 5, vec![Instr::Nop]).unwrap_err();
        assert!(matches!(
            err,
            RewriteError::CrossJumpIntoRegion { target: 3, .. }
        ));
    }

    #[test]
    fn escaping_region_rejected() {
        let mut b = MethodBuilder::new("T", "y", 1);
        let top = b.fresh_label();
        b.place_label(top);
        b.host_log("a"); // 0,1
        b.goto(top); // 2 (jumps back to 0)
        let mut m = b.finish();
        // Region 1..3 contains the goto targeting 0 (outside) → escape.
        let err = rewrite_region(&mut m, 1, 3, vec![Instr::Nop]).unwrap_err();
        assert!(matches!(err, RewriteError::RegionEscapes { target: 0, .. }));
    }

    #[test]
    fn bad_range_rejected() {
        let mut m = branch_over_method();
        assert!(matches!(
            rewrite_region(&mut m, 3, 2, vec![]),
            Err(RewriteError::BadRange { .. })
        ));
        assert!(matches!(
            rewrite_region(&mut m, 0, 99, vec![]),
            Err(RewriteError::BadRange { .. })
        ));
    }

    #[test]
    fn registers_bumped_for_new_regs() {
        let mut m = branch_over_method();
        let before = m.registers;
        rewrite_region(
            &mut m,
            1,
            1,
            vec![Instr::Const {
                dst: Reg(before + 5),
                value: Value::Int(1),
            }],
        )
        .unwrap();
        assert_eq!(m.registers, before + 6);
    }
}
