//! Deterministic parallel fleet engine.
//!
//! Every experiment in the paper reduces to the same shape: run `N`
//! independent seeded tasks (protect an app, simulate a user session, fuzz
//! for an hour, run an analyst phase) and fold the per-task results into a
//! table row or figure series. This module extracts that shape into one
//! scheduler so the experiments stay serial-looking while the work runs on a
//! worker pool.
//!
//! # Determinism contract
//!
//! Results are **bit-identical regardless of thread count**. Two properties
//! guarantee this:
//!
//! 1. Each task's randomness comes only from a seed derived from
//!    `(base_seed, task index)` via [`derive_seed`] (a SplitMix64 mix), never
//!    from scheduler state, thread ids, or time.
//! 2. Each task writes its result into the slot for its index; the returned
//!    vector is always in task order, independent of completion order.
//!
//! Workers claim indices from a shared atomic counter, so the *assignment* of
//! tasks to threads is racy — but nothing observable depends on it.
//!
//! # Observability
//!
//! Each task records into its own `bombdroid-obs` recorder (installed as
//! the task's active recorder, so pipeline spans and VM counters inside
//! the task land there too): `fleet.tasks` / `fleet.task_errors` /
//! `fleet.task_panics` counters plus `fleet.queue_wait` and
//! `fleet.task_run` timings. Per-task recorders are allocated at claim
//! time and folded **streamingly, in task-index order**, into the fleet
//! caller's recorder (or, via [`run_fleet_windowed`], into an
//! [`obs::ShardAggregator`]): a completed task whose index is not yet
//! next parks its recorder in a reorder buffer until the gap closes, so
//! live recorder memory is O(workers + reorder depth), not O(tasks).
//! Because the fold order is the task index order, the merged content is
//! bit-identical for any thread count, extending the determinism contract
//! to the metrics themselves (wall-clock nanoseconds are kept in a
//! separate timing section that deterministic exports omit). The
//! scheduling-dependent reorder-buffer peak depth goes to the flight
//! recorder as a diagnostic, never into the deterministic sections.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bombdroid_obs as obs;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How a fleet run is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads. `1` runs the tasks inline on the calling thread.
    pub threads: usize,
    /// Root seed; each task gets `derive_seed(base_seed, index)`.
    pub base_seed: u64,
}

impl FleetConfig {
    /// One worker per available CPU (at least one).
    pub fn new(base_seed: u64) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        FleetConfig { threads, base_seed }
    }

    /// Run every task inline on the calling thread.
    pub fn serial(base_seed: u64) -> Self {
        FleetConfig {
            threads: 1,
            base_seed,
        }
    }

    /// Same seed, explicit worker count (clamped to at least one).
    pub fn with_threads(self, threads: usize) -> Self {
        FleetConfig {
            threads: threads.max(1),
            ..self
        }
    }

    /// Like [`FleetConfig::new`], but honoring the `BOMBDROID_THREADS`
    /// environment variable when set (see [`env_threads`]). The standard
    /// constructor for campaign-style entry points — experiments and the
    /// guided fuzzer — whose results must not depend on the worker count.
    pub fn from_env(base_seed: u64) -> Self {
        let cfg = FleetConfig::new(base_seed);
        match env_threads() {
            Some(n) => cfg.with_threads(n),
            None => cfg,
        }
    }
}

/// The worker count requested via `BOMBDROID_THREADS`, if the variable is
/// set and parses. `1` reproduces a serial driver exactly — the fleet
/// determinism contract makes results identical for every value.
pub fn env_threads() -> Option<usize> {
    std::env::var("BOMBDROID_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// SplitMix64 finalizer: mixes `base` and `index` into an independent
/// per-task seed. Adjacent indices land in statistically unrelated streams,
/// so tasks can safely use sequential indices.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Handed to each task: its position in the fleet and its private seed.
#[derive(Debug, Clone, Copy)]
pub struct TaskCtx {
    /// Index of this task in the input order (and in the result vector).
    pub index: usize,
    /// Seed derived from the fleet's base seed and `index`.
    pub seed: u64,
}

impl TaskCtx {
    /// A fresh deterministic RNG for this task.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Why a single task produced no result.
pub enum FleetError<E> {
    /// The task returned its own typed error.
    Task(E),
    /// The task panicked; the payload message is preserved.
    Panicked(String),
}

impl<E: fmt::Debug> fmt::Debug for FleetError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Task(e) => write!(f, "Task({e:?})"),
            FleetError::Panicked(msg) => write!(f, "Panicked({msg:?})"),
        }
    }
}

impl<E: fmt::Display> fmt::Display for FleetError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Task(e) => write!(f, "task failed: {e}"),
            FleetError::Panicked(msg) => write!(f, "task panicked: {msg}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for FleetError<E> {}

thread_local! {
    static IN_FLEET_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is executing inside a fleet task ([`run_fleet`]
/// or [`run_map`]). Nested parallel stages (e.g. a parallel protect inside a
/// fleet experiment) consult this to fall back to serial execution instead of
/// oversubscribing the machine — their output is thread-count-independent, so
/// the fallback is invisible.
pub fn in_worker() -> bool {
    IN_FLEET_WORKER.with(|f| f.get())
}

/// RAII guard marking the current thread as a fleet worker for its lifetime.
struct WorkerGuard {
    prev: bool,
}

impl WorkerGuard {
    fn enter() -> Self {
        let prev = IN_FLEET_WORKER.with(|f| f.replace(true));
        WorkerGuard { prev }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_FLEET_WORKER.with(|f| f.set(prev));
    }
}

fn elapsed_ns(since: &Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Where the streaming fold sends each task's recorder delta.
enum FoldSink<'a> {
    /// Merge straight into the fleet caller's recorder ([`run_fleet`]).
    Parent(Arc<obs::Recorder>),
    /// Absorb into a windowed aggregator ([`run_fleet_windowed`]).
    Windowed(&'a obs::ShardAggregator),
}

impl FoldSink<'_> {
    fn absorb(&self, rec: &obs::Recorder) {
        match self {
            FoldSink::Parent(parent) => parent.merge_from(rec),
            FoldSink::Windowed(agg) => {
                agg.absorb_next(rec);
            }
        }
    }
}

/// Reorder buffer for the streaming obs fold: completed task recorders
/// wait here until every lower index has been folded, so the sink always
/// sees deltas in task-index order no matter how workers interleave.
struct ObsFold {
    next: usize,
    pending: BTreeMap<usize, Arc<obs::Recorder>>,
    peak_pending: usize,
}

impl ObsFold {
    fn new() -> Self {
        ObsFold {
            next: 0,
            pending: BTreeMap::new(),
            peak_pending: 0,
        }
    }

    /// Parks `rec` as task `index`'s delta, then drains every consecutive
    /// delta starting at `next` into the sink.
    fn complete(&mut self, index: usize, rec: Arc<obs::Recorder>, sink: &FoldSink<'_>) {
        self.pending.insert(index, rec);
        self.peak_pending = self.peak_pending.max(self.pending.len());
        while let Some(rec) = self.pending.remove(&self.next) {
            sink.absorb(&rec);
            self.next += 1;
        }
    }
}

/// Runs `tasks` on `config.threads` workers and returns per-task results in
/// task order. Each task sees only its [`TaskCtx`]; a panicking or failing
/// task occupies its slot with a [`FleetError`] without taking down the rest
/// of the fleet.
pub fn run_fleet<T, R, E, F>(
    config: FleetConfig,
    tasks: Vec<T>,
    f: F,
) -> Vec<Result<R, FleetError<E>>>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(TaskCtx, T) -> Result<R, E> + Sync,
{
    let sink = FoldSink::Parent(obs::current());
    run_fleet_inner(config, tasks, sink, 0, f)
}

/// [`run_fleet`] with per-task metrics folded into `aggregator` instead of
/// the caller's recorder — the streaming shape for fleet-scale runs. The
/// aggregator seals a [`obs::WindowSummary`] every N tasks (its window
/// size) and keeps a running total, so live metric memory stays
/// O(windows), not O(tasks); repeated calls (e.g. one per simulated day)
/// keep absorbing into the same aggregator in order. The aggregator's
/// total is bit-identical to what [`run_fleet`] would have merged into the
/// caller's recorder for the same tasks.
pub fn run_fleet_windowed<T, R, E, F>(
    config: FleetConfig,
    tasks: Vec<T>,
    aggregator: &obs::ShardAggregator,
    f: F,
) -> Vec<Result<R, FleetError<E>>>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(TaskCtx, T) -> Result<R, E> + Sync,
{
    run_fleet_inner(config, tasks, FoldSink::Windowed(aggregator), 0, f)
}

/// [`run_fleet_windowed`] over an arbitrary global index range: task `i` of
/// `range` sees `TaskCtx { index: i, seed: derive_seed(base_seed, i) }` —
/// the same context it would see inside a single `0..n` run. This is the
/// resumable-shard shape: a caller that processes `0..k`, checkpoints, and
/// later continues with `k..n` produces bit-identical per-task results and
/// aggregator content to one uninterrupted `0..n` run, because nothing
/// about a task depends on where its chunk started.
pub fn run_range_windowed<R, E, F>(
    config: FleetConfig,
    range: std::ops::Range<usize>,
    aggregator: &obs::ShardAggregator,
    f: F,
) -> Vec<Result<R, FleetError<E>>>
where
    R: Send,
    E: Send,
    F: Fn(TaskCtx) -> Result<R, E> + Sync,
{
    let offset = range.start;
    run_fleet_inner(
        config,
        (0..range.len()).collect(),
        FoldSink::Windowed(aggregator),
        offset,
        |ctx, _i: usize| f(ctx),
    )
}

fn run_fleet_inner<T, R, E, F>(
    config: FleetConfig,
    tasks: Vec<T>,
    sink: FoldSink<'_>,
    index_offset: usize,
    f: F,
) -> Vec<Result<R, FleetError<E>>>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(TaskCtx, T) -> Result<R, E> + Sync,
{
    let n = tasks.len();
    // Slots claimed once each via the atomic cursor; Mutex keeps it safe
    // without unsafe cells, and the per-slot cost is trivial next to any
    // real task.
    type ResultSlot<R, E> = Mutex<Option<Result<R, FleetError<E>>>>;
    let task_slots: Vec<Mutex<Option<T>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let result_slots: Vec<ResultSlot<R, E>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    // Streaming obs fold (see module docs): recorders are created when a
    // task is claimed and folded into the sink as soon as their index is
    // next, so live recorder count is bounded by workers + reorder depth.
    let recording = obs::enabled();
    let fold = Mutex::new(ObsFold::new());
    let fleet_start = Instant::now();

    let run_one = |index: usize| {
        let _guard = WorkerGuard::enter();
        let task = task_slots[index]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("fleet task slot claimed twice");
        let global = index_offset + index;
        let ctx = TaskCtx {
            index: global,
            seed: derive_seed(config.base_seed, global as u64),
        };
        let run_task = |task: T| {
            obs::counter_add("fleet.tasks", 1);
            obs::timing_record("fleet.queue_wait", elapsed_ns(&fleet_start));
            let run_start = Instant::now();
            let outcome = match catch_unwind(AssertUnwindSafe(|| f(ctx, task))) {
                Ok(Ok(r)) => Ok(r),
                Ok(Err(e)) => {
                    obs::counter_add("fleet.task_errors", 1);
                    obs::flight::note("fleet.task_error", || format!("task #{index}"));
                    Err(FleetError::Task(e))
                }
                Err(payload) => {
                    let msg = panic_message(payload);
                    obs::counter_add("fleet.task_panics", 1);
                    obs::flight::note("fleet.task_panic", || format!("task #{index}: {msg}"));
                    Err(FleetError::Panicked(msg))
                }
            };
            obs::timing_record("fleet.task_run", elapsed_ns(&run_start));
            outcome
        };
        let outcome = if recording {
            let rec = Arc::new(obs::Recorder::new());
            let outcome = obs::with_recorder(rec.clone(), || run_task(task));
            fold.lock()
                .unwrap_or_else(|e| e.into_inner())
                .complete(index, rec, &sink);
            outcome
        } else {
            run_task(task)
        };
        *result_slots[index]
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(outcome);
    };

    let worker = || loop {
        let index = cursor.fetch_add(1, Ordering::Relaxed);
        if index >= n {
            break;
        }
        run_one(index);
    };

    let workers = config.threads.max(1).min(n.max(1));
    if workers <= 1 {
        worker();
    } else {
        crossbeam::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| worker());
            }
        })
        .expect("fleet worker pool panicked outside a task");
    }

    if recording {
        let fold = fold.into_inner().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(fold.next, n, "streaming fold must drain every task");
        // Peak reorder depth is scheduling-dependent: a diagnostic for the
        // flight recorder, never a deterministic metric.
        obs::flight::note("fleet.fold", || {
            format!(
                "tasks={n} workers={workers} peak_pending={}",
                fold.peak_pending
            )
        });
    }

    result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("fleet task never ran")
        })
        .collect()
}

/// Deterministic parallel map: applies `f` to each task on up to `threads`
/// workers and returns the results in input order, regardless of scheduling.
///
/// This is [`run_fleet`] without the seed/obs/panic-isolation machinery —
/// for compute fan-out whose tasks carry their own pre-drawn state (the
/// protect pipeline's per-method arming). With `threads <= 1` (or a single
/// task) everything runs inline on the calling thread; a panicking task
/// propagates to the caller either way.
pub fn run_map<T, R, F>(threads: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = tasks.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return tasks.into_iter().map(f).collect();
    }
    let task_slots: Vec<Mutex<Option<T>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let result_slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let worker = || {
        let _guard = WorkerGuard::enter();
        loop {
            let index = cursor.fetch_add(1, Ordering::Relaxed);
            if index >= n {
                break;
            }
            let task = task_slots[index]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("map task slot claimed twice");
            *result_slots[index]
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(f(task));
        }
    };
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| worker());
        }
    })
    .expect("map worker panicked");
    result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("map task never ran")
        })
        .collect()
}

/// [`run_fleet`] over `0..count` index-only tasks — the common "N seeded
/// repetitions" shape.
pub fn run_indexed<R, E, F>(
    config: FleetConfig,
    count: usize,
    f: F,
) -> Vec<Result<R, FleetError<E>>>
where
    R: Send,
    E: Send,
    F: Fn(TaskCtx) -> Result<R, E> + Sync,
{
    run_fleet(config, (0..count).collect(), |ctx, _i: usize| f(ctx))
}

/// [`run_fleet_windowed`] over `0..count` index-only tasks.
pub fn run_indexed_windowed<R, E, F>(
    config: FleetConfig,
    count: usize,
    aggregator: &obs::ShardAggregator,
    f: F,
) -> Vec<Result<R, FleetError<E>>>
where
    R: Send,
    E: Send,
    F: Fn(TaskCtx) -> Result<R, E> + Sync,
{
    run_fleet_windowed(
        config,
        (0..count).collect(),
        aggregator,
        |ctx, _i: usize| f(ctx),
    )
}

/// Unwraps a fleet's results, panicking with the index and error of the
/// first failed task. For harness code where any task failure is fatal.
pub fn expect_all<R, E: fmt::Display>(results: Vec<Result<R, FleetError<E>>>) -> Vec<R> {
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(v) => v,
            Err(e) => panic!("fleet task #{i} failed: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_are_in_task_order() {
        let cfg = FleetConfig::serial(7).with_threads(4);
        let out = expect_all(run_indexed(cfg, 64, |ctx| {
            Ok::<_, std::convert::Infallible>(ctx.index * 2)
        }));
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let draw = |ctx: TaskCtx| {
            let mut rng = ctx.rng();
            Ok::<_, std::convert::Infallible>(
                (0..32).fold(0u64, |acc, _| acc.wrapping_add(rng.gen::<u64>())),
            )
        };
        let one = expect_all(run_indexed(FleetConfig::serial(0xF1EE7), 40, draw));
        let two = expect_all(run_indexed(
            FleetConfig::serial(0xF1EE7).with_threads(2),
            40,
            draw,
        ));
        let eight = expect_all(run_indexed(
            FleetConfig::serial(0xF1EE7).with_threads(8),
            40,
            draw,
        ));
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn derived_seeds_differ_between_tasks() {
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|i| derive_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000, "seed derivation must not collide");
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0), "base seed matters");
    }

    #[test]
    fn task_errors_and_panics_fill_their_slots() {
        let cfg = FleetConfig::serial(1).with_threads(3);
        let out = run_indexed::<u32, String, _>(cfg, 6, |ctx| match ctx.index {
            2 => Err("typed failure".to_string()),
            4 => panic!("task 4 exploded"),
            i => Ok(i as u32),
        });
        assert!(matches!(out[0], Ok(0)));
        assert!(matches!(out[2], Err(FleetError::Task(ref m)) if m == "typed failure"));
        assert!(
            matches!(out[4], Err(FleetError::Panicked(ref m)) if m.contains("task 4 exploded"))
        );
        assert!(matches!(out[5], Ok(5)));
    }

    #[test]
    fn fleet_metrics_merge_into_callers_recorder() {
        if !obs::enabled() {
            return; // BOMBDROID_OBS=off disables recording.
        }
        let rec = Arc::new(obs::Recorder::new());
        obs::with_recorder(rec.clone(), || {
            let out =
                run_indexed::<u32, String, _>(FleetConfig::serial(1).with_threads(3), 6, |ctx| {
                    match ctx.index {
                        2 => Err("typed failure".to_string()),
                        4 => panic!("metrics task exploded"),
                        i => Ok(i as u32),
                    }
                });
            assert_eq!(out.len(), 6);
        });
        assert_eq!(rec.counter_value("fleet.tasks"), 6);
        assert_eq!(rec.counter_value("fleet.task_errors"), 1);
        assert_eq!(rec.counter_value("fleet.task_panics"), 1);
        assert_eq!(rec.timing_calls("fleet.queue_wait"), 6);
        assert_eq!(rec.timing_calls("fleet.task_run"), 6);
        // Nothing leaked into the global recorder's fleet counters from
        // this scoped run beyond what other tests may add themselves.
    }

    #[test]
    fn windowed_fold_matches_direct_merge_and_seals_windows() {
        if !obs::enabled() {
            return; // BOMBDROID_OBS=off disables recording.
        }
        let work = |ctx: TaskCtx| {
            obs::counter_add("test.windowed.work", 1 + ctx.index as u64 % 3);
            obs::record("test.windowed.h", ctx.seed % 100);
            Ok::<_, std::convert::Infallible>(ctx.index)
        };

        // Legacy shape: everything merges into the caller's recorder.
        let direct = Arc::new(obs::Recorder::new());
        obs::with_recorder(direct.clone(), || {
            expect_all(run_indexed(
                FleetConfig::serial(42).with_threads(3),
                20,
                work,
            ));
        });

        // Streaming shape: same tasks through a windowed aggregator.
        let agg = obs::ShardAggregator::new(8);
        let caller = Arc::new(obs::Recorder::new());
        obs::with_recorder(caller.clone(), || {
            expect_all(run_indexed_windowed(
                FleetConfig::serial(42).with_threads(3),
                20,
                &agg,
                work,
            ));
        });
        agg.finish();

        assert_eq!(agg.tasks_absorbed(), 20);
        assert_eq!(
            agg.windows_sealed(),
            3,
            "20 tasks / window of 8 → 2 full + 1 tail"
        );
        assert_eq!(
            agg.total().to_json(false),
            direct.to_json(false),
            "aggregator total must be bit-identical to the direct merge"
        );
        // Windowed runs bypass the caller's recorder entirely.
        assert_eq!(caller.counter_value("fleet.tasks"), 0);
    }

    #[test]
    fn range_chunks_reproduce_an_uninterrupted_run() {
        if !obs::enabled() {
            return; // BOMBDROID_OBS=off disables recording.
        }
        let work = |ctx: TaskCtx| {
            let mut rng = ctx.rng();
            obs::counter_add("test.range.work", 1);
            obs::record("test.range.h", ctx.seed % 97);
            Ok::<_, std::convert::Infallible>((ctx.index, rng.gen::<u64>()))
        };

        let whole_agg = obs::ShardAggregator::new(8);
        let whole = expect_all(run_range_windowed(
            FleetConfig::serial(0xCAFE).with_threads(4),
            0..24,
            &whole_agg,
            work,
        ));
        whole_agg.finish();

        // Same range split at an arbitrary (non-window-aligned chunk) point;
        // per-task results and aggregator totals must not notice.
        let split_agg = obs::ShardAggregator::new(8);
        let mut split = expect_all(run_range_windowed(
            FleetConfig::serial(0xCAFE).with_threads(2),
            0..13,
            &split_agg,
            work,
        ));
        split.extend(expect_all(run_range_windowed(
            FleetConfig::serial(0xCAFE),
            13..24,
            &split_agg,
            work,
        )));
        split_agg.finish();

        assert_eq!(whole, split);
        assert_eq!(
            whole_agg.total().to_json(false),
            split_agg.total().to_json(false)
        );
        assert_eq!(whole_agg.window_digests(), split_agg.window_digests());
        // Global indices flow into TaskCtx unchanged.
        assert_eq!(whole[13].0, 13);
    }

    #[test]
    fn tasks_move_owned_values() {
        let cfg = FleetConfig::serial(3).with_threads(2);
        let tasks: Vec<String> = (0..8).map(|i| format!("task-{i}")).collect();
        let out = expect_all(run_fleet(cfg, tasks, |ctx, name| {
            Ok::<_, std::convert::Infallible>(format!("{name}@{}", ctx.index))
        }));
        assert_eq!(out[3], "task-3@3");
    }
}
