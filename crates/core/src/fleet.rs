//! Deterministic parallel fleet engine.
//!
//! Every experiment in the paper reduces to the same shape: run `N`
//! independent seeded tasks (protect an app, simulate a user session, fuzz
//! for an hour, run an analyst phase) and fold the per-task results into a
//! table row or figure series. This module extracts that shape into one
//! scheduler so the experiments stay serial-looking while the work runs on a
//! worker pool.
//!
//! # Determinism contract
//!
//! Results are **bit-identical regardless of thread count**. Two properties
//! guarantee this:
//!
//! 1. Each task's randomness comes only from a seed derived from
//!    `(base_seed, task index)` via [`derive_seed`] (a SplitMix64 mix), never
//!    from scheduler state, thread ids, or time.
//! 2. Each task writes its result into the slot for its index; the returned
//!    vector is always in task order, independent of completion order.
//!
//! Workers claim indices from a shared atomic counter, so the *assignment* of
//! tasks to threads is racy — but nothing observable depends on it.
//!
//! # Observability
//!
//! Each task records into its own `bombdroid-obs` recorder (installed as
//! the task's active recorder, so pipeline spans and VM counters inside
//! the task land there too): `fleet.tasks` / `fleet.task_errors` /
//! `fleet.task_panics` counters plus `fleet.queue_wait` and
//! `fleet.task_run` timings. After the pool drains, the per-task
//! recorders merge into the fleet caller's recorder **in task-index
//! order** — every merged value is a sum, so the merged content is
//! bit-identical for any thread count, extending the determinism contract
//! to the metrics themselves (wall-clock nanoseconds are kept in a
//! separate timing section that deterministic exports omit).

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bombdroid_obs as obs;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How a fleet run is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads. `1` runs the tasks inline on the calling thread.
    pub threads: usize,
    /// Root seed; each task gets `derive_seed(base_seed, index)`.
    pub base_seed: u64,
}

impl FleetConfig {
    /// One worker per available CPU (at least one).
    pub fn new(base_seed: u64) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        FleetConfig { threads, base_seed }
    }

    /// Run every task inline on the calling thread.
    pub fn serial(base_seed: u64) -> Self {
        FleetConfig {
            threads: 1,
            base_seed,
        }
    }

    /// Same seed, explicit worker count (clamped to at least one).
    pub fn with_threads(self, threads: usize) -> Self {
        FleetConfig {
            threads: threads.max(1),
            ..self
        }
    }
}

/// SplitMix64 finalizer: mixes `base` and `index` into an independent
/// per-task seed. Adjacent indices land in statistically unrelated streams,
/// so tasks can safely use sequential indices.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Handed to each task: its position in the fleet and its private seed.
#[derive(Debug, Clone, Copy)]
pub struct TaskCtx {
    /// Index of this task in the input order (and in the result vector).
    pub index: usize,
    /// Seed derived from the fleet's base seed and `index`.
    pub seed: u64,
}

impl TaskCtx {
    /// A fresh deterministic RNG for this task.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Why a single task produced no result.
pub enum FleetError<E> {
    /// The task returned its own typed error.
    Task(E),
    /// The task panicked; the payload message is preserved.
    Panicked(String),
}

impl<E: fmt::Debug> fmt::Debug for FleetError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Task(e) => write!(f, "Task({e:?})"),
            FleetError::Panicked(msg) => write!(f, "Panicked({msg:?})"),
        }
    }
}

impl<E: fmt::Display> fmt::Display for FleetError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Task(e) => write!(f, "task failed: {e}"),
            FleetError::Panicked(msg) => write!(f, "task panicked: {msg}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for FleetError<E> {}

thread_local! {
    static IN_FLEET_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is executing inside a fleet task ([`run_fleet`]
/// or [`run_map`]). Nested parallel stages (e.g. a parallel protect inside a
/// fleet experiment) consult this to fall back to serial execution instead of
/// oversubscribing the machine — their output is thread-count-independent, so
/// the fallback is invisible.
pub fn in_worker() -> bool {
    IN_FLEET_WORKER.with(|f| f.get())
}

/// RAII guard marking the current thread as a fleet worker for its lifetime.
struct WorkerGuard {
    prev: bool,
}

impl WorkerGuard {
    fn enter() -> Self {
        let prev = IN_FLEET_WORKER.with(|f| f.replace(true));
        WorkerGuard { prev }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_FLEET_WORKER.with(|f| f.set(prev));
    }
}

fn elapsed_ns(since: &Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `tasks` on `config.threads` workers and returns per-task results in
/// task order. Each task sees only its [`TaskCtx`]; a panicking or failing
/// task occupies its slot with a [`FleetError`] without taking down the rest
/// of the fleet.
pub fn run_fleet<T, R, E, F>(
    config: FleetConfig,
    tasks: Vec<T>,
    f: F,
) -> Vec<Result<R, FleetError<E>>>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(TaskCtx, T) -> Result<R, E> + Sync,
{
    let n = tasks.len();
    // Slots claimed once each via the atomic cursor; Mutex keeps it safe
    // without unsafe cells, and the per-slot cost is trivial next to any
    // real task.
    type ResultSlot<R, E> = Mutex<Option<Result<R, FleetError<E>>>>;
    let task_slots: Vec<Mutex<Option<T>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let result_slots: Vec<ResultSlot<R, E>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    // Worker-local recorders, one per task; merged into the caller's
    // recorder in index order after the pool drains (see module docs).
    let obs_parent = obs::current();
    let task_recorders: Vec<Arc<obs::Recorder>> =
        (0..n).map(|_| Arc::new(obs::Recorder::new())).collect();
    let fleet_start = Instant::now();

    let run_one = |index: usize| {
        let _guard = WorkerGuard::enter();
        let task = task_slots[index]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("fleet task slot claimed twice");
        let ctx = TaskCtx {
            index,
            seed: derive_seed(config.base_seed, index as u64),
        };
        let outcome = obs::with_recorder(task_recorders[index].clone(), || {
            obs::counter_add("fleet.tasks", 1);
            obs::timing_record("fleet.queue_wait", elapsed_ns(&fleet_start));
            let run_start = Instant::now();
            let outcome = match catch_unwind(AssertUnwindSafe(|| f(ctx, task))) {
                Ok(Ok(r)) => Ok(r),
                Ok(Err(e)) => {
                    obs::counter_add("fleet.task_errors", 1);
                    Err(FleetError::Task(e))
                }
                Err(payload) => {
                    obs::counter_add("fleet.task_panics", 1);
                    Err(FleetError::Panicked(panic_message(payload)))
                }
            };
            obs::timing_record("fleet.task_run", elapsed_ns(&run_start));
            outcome
        });
        *result_slots[index]
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(outcome);
    };

    let worker = || loop {
        let index = cursor.fetch_add(1, Ordering::Relaxed);
        if index >= n {
            break;
        }
        run_one(index);
    };

    let workers = config.threads.max(1).min(n.max(1));
    if workers <= 1 {
        worker();
    } else {
        crossbeam::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| worker());
            }
        })
        .expect("fleet worker pool panicked outside a task");
    }

    for rec in &task_recorders {
        obs_parent.merge_from(rec);
    }

    result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("fleet task never ran")
        })
        .collect()
}

/// Deterministic parallel map: applies `f` to each task on up to `threads`
/// workers and returns the results in input order, regardless of scheduling.
///
/// This is [`run_fleet`] without the seed/obs/panic-isolation machinery —
/// for compute fan-out whose tasks carry their own pre-drawn state (the
/// protect pipeline's per-method arming). With `threads <= 1` (or a single
/// task) everything runs inline on the calling thread; a panicking task
/// propagates to the caller either way.
pub fn run_map<T, R, F>(threads: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = tasks.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return tasks.into_iter().map(f).collect();
    }
    let task_slots: Vec<Mutex<Option<T>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let result_slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let worker = || {
        let _guard = WorkerGuard::enter();
        loop {
            let index = cursor.fetch_add(1, Ordering::Relaxed);
            if index >= n {
                break;
            }
            let task = task_slots[index]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("map task slot claimed twice");
            *result_slots[index]
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(f(task));
        }
    };
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| worker());
        }
    })
    .expect("map worker panicked");
    result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("map task never ran")
        })
        .collect()
}

/// [`run_fleet`] over `0..count` index-only tasks — the common "N seeded
/// repetitions" shape.
pub fn run_indexed<R, E, F>(
    config: FleetConfig,
    count: usize,
    f: F,
) -> Vec<Result<R, FleetError<E>>>
where
    R: Send,
    E: Send,
    F: Fn(TaskCtx) -> Result<R, E> + Sync,
{
    run_fleet(config, (0..count).collect(), |ctx, _i: usize| f(ctx))
}

/// Unwraps a fleet's results, panicking with the index and error of the
/// first failed task. For harness code where any task failure is fatal.
pub fn expect_all<R, E: fmt::Display>(results: Vec<Result<R, FleetError<E>>>) -> Vec<R> {
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(v) => v,
            Err(e) => panic!("fleet task #{i} failed: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_are_in_task_order() {
        let cfg = FleetConfig::serial(7).with_threads(4);
        let out = expect_all(run_indexed(cfg, 64, |ctx| {
            Ok::<_, std::convert::Infallible>(ctx.index * 2)
        }));
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let draw = |ctx: TaskCtx| {
            let mut rng = ctx.rng();
            Ok::<_, std::convert::Infallible>(
                (0..32).fold(0u64, |acc, _| acc.wrapping_add(rng.gen::<u64>())),
            )
        };
        let one = expect_all(run_indexed(FleetConfig::serial(0xF1EE7), 40, draw));
        let two = expect_all(run_indexed(
            FleetConfig::serial(0xF1EE7).with_threads(2),
            40,
            draw,
        ));
        let eight = expect_all(run_indexed(
            FleetConfig::serial(0xF1EE7).with_threads(8),
            40,
            draw,
        ));
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn derived_seeds_differ_between_tasks() {
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|i| derive_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000, "seed derivation must not collide");
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0), "base seed matters");
    }

    #[test]
    fn task_errors_and_panics_fill_their_slots() {
        let cfg = FleetConfig::serial(1).with_threads(3);
        let out = run_indexed::<u32, String, _>(cfg, 6, |ctx| match ctx.index {
            2 => Err("typed failure".to_string()),
            4 => panic!("task 4 exploded"),
            i => Ok(i as u32),
        });
        assert!(matches!(out[0], Ok(0)));
        assert!(matches!(out[2], Err(FleetError::Task(ref m)) if m == "typed failure"));
        assert!(
            matches!(out[4], Err(FleetError::Panicked(ref m)) if m.contains("task 4 exploded"))
        );
        assert!(matches!(out[5], Ok(5)));
    }

    #[test]
    fn fleet_metrics_merge_into_callers_recorder() {
        if !obs::enabled() {
            return; // BOMBDROID_OBS=off disables recording.
        }
        let rec = Arc::new(obs::Recorder::new());
        obs::with_recorder(rec.clone(), || {
            let out =
                run_indexed::<u32, String, _>(FleetConfig::serial(1).with_threads(3), 6, |ctx| {
                    match ctx.index {
                        2 => Err("typed failure".to_string()),
                        4 => panic!("metrics task exploded"),
                        i => Ok(i as u32),
                    }
                });
            assert_eq!(out.len(), 6);
        });
        assert_eq!(rec.counter_value("fleet.tasks"), 6);
        assert_eq!(rec.counter_value("fleet.task_errors"), 1);
        assert_eq!(rec.counter_value("fleet.task_panics"), 1);
        assert_eq!(rec.timing_calls("fleet.queue_wait"), 6);
        assert_eq!(rec.timing_calls("fleet.task_run"), 6);
        // Nothing leaked into the global recorder's fleet counters from
        // this scoped run beyond what other tests may add themselves.
    }

    #[test]
    fn tasks_move_owned_values() {
        let cfg = FleetConfig::serial(3).with_threads(2);
        let tasks: Vec<String> = (0..8).map(|i| format!("task-{i}")).collect();
        let out = expect_all(run_fleet(cfg, tasks, |ctx, name| {
            Ok::<_, std::convert::Infallible>(format!("{name}@{}", ctx.index))
        }));
        assert_eq!(out[3], "task-3@3");
    }
}
