//! Protection configuration.

/// Which repackaging-detection methods payloads use (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionMethods {
    /// Public-key comparison (`Kr != Ko`).
    pub public_key: bool,
    /// Manifest-digest comparison against a steganographically hidden `Do`
    /// (icon / AndroidManifest entries).
    pub digest: bool,
    /// Code-snippet scanning of untouched classes.
    pub code_scan: bool,
}

impl Default for DetectionMethods {
    fn default() -> Self {
        // The paper's prototype "implemented the repackaging detection
        // method based on public-key comparison" (§7.4); digest comparison
        // and code scanning are the future-work methods we also implement.
        DetectionMethods {
            public_key: true,
            digest: true,
            code_scan: true,
        }
    }
}

/// Destructive response flavours (paper §4.2). A payload always warns the
/// user and reports to the developer; destructive responses are chosen
/// round-robin from the enabled set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseChoice {
    /// Kill the process.
    Kill,
    /// Spin forever.
    Freeze,
    /// Leak a large allocation.
    LeakMemory,
    /// Null out reference fields for a delayed crash.
    NullOutField,
}

/// Full protection configuration. Defaults reproduce the paper's settings.
#[derive(Debug, Clone)]
pub struct ProtectConfig {
    /// Fraction of candidate methods that receive an artificial qualified
    /// condition (`α = 0.25`, §7.2 — "α is configurable").
    pub alpha: f64,
    /// Fraction of most-invoked methods excluded as *hot* (top 10%, §7.1).
    pub hot_method_ratio: f64,
    /// Population probability range for inner trigger conditions
    /// (`p ∈ [0.1, 0.2]`, §7.3 — "customizable by developers").
    pub inner_probability: (f64, f64),
    /// Build double-trigger bombs (§6). Disable for the single-trigger
    /// ablation.
    pub double_trigger: bool,
    /// Weave the original conditional body into the encrypted payload
    /// (§3.4 code weaving). Disable for the deletion-attack ablation.
    pub weave_original: bool,
    /// Fraction of *unused* existing QCs turned into bogus bombs (§3.4).
    pub bogus_ratio: f64,
    /// Detection methods to compile into payloads.
    pub detection: DetectionMethods,
    /// Destructive responses to rotate through.
    pub responses: Vec<ResponseChoice>,
    /// Random user events fed to the app during profiling (10,000 in
    /// §7.1).
    pub profiling_events: u64,
    /// Upper bound on real bombs per app (`None` = unlimited).
    pub max_bombs: Option<usize>,
    /// Strategic muting (the paper's §10 future work: "explore how to mute
    /// other bombs strategically once a bomb is triggered, so that even
    /// more bombs can survive"): after any bomb's detection fires, every
    /// payload checks a runtime flag and goes quiet, denying the analyst
    /// further trigger observations.
    pub mute_after_detection: bool,
}

impl Default for ProtectConfig {
    fn default() -> Self {
        ProtectConfig {
            alpha: 0.25,
            hot_method_ratio: 0.10,
            inner_probability: (0.10, 0.20),
            double_trigger: true,
            weave_original: true,
            bogus_ratio: 0.5,
            detection: DetectionMethods::default(),
            responses: vec![
                ResponseChoice::Kill,
                ResponseChoice::Freeze,
                ResponseChoice::LeakMemory,
                ResponseChoice::NullOutField,
            ],
            profiling_events: 10_000,
            max_bombs: None,
            mute_after_detection: false,
        }
    }
}

impl ProtectConfig {
    /// A cheap configuration for unit tests: tiny profiling run, otherwise
    /// paper defaults.
    pub fn fast_profile() -> Self {
        ProtectConfig {
            profiling_events: 300,
            ..ProtectConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ProtectConfig::default();
        assert!((c.alpha - 0.25).abs() < 1e-9);
        assert!((c.hot_method_ratio - 0.10).abs() < 1e-9);
        assert_eq!(c.inner_probability, (0.10, 0.20));
        assert!(c.double_trigger);
        assert!(c.weave_original);
        assert_eq!(c.profiling_events, 10_000);
        assert!(c.detection.public_key);
    }
}
