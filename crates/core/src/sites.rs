//! Bomb-site planning (paper §7.2): which existing qualified conditions to
//! arm, where to insert artificial ones, and which leftovers become bogus
//! bombs.

use crate::config::ProtectConfig;
use crate::profiling::ProfileResult;
use crate::rewrite::check_region;
use bombdroid_analysis::{qc, QcCompare, QcSite};
use bombdroid_analysis::{Cfg, Dominators, LoopInfo};
use bombdroid_dex::{DexFile, FieldKind, FieldRef, Instr, Method, MethodRef, Value};
use rand::{seq::SliceRandom, Rng};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, Weak};

/// An armed existing-QC site with its resolved rewrite region.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedExisting {
    /// The underlying qualified condition.
    pub site: QcSite,
    /// First instruction of the region to replace (literal const for string
    /// QCs, the branch itself otherwise).
    pub anchor: usize,
    /// One past the region: the branch-over skip target.
    pub skip: usize,
}

/// A planned artificial-QC insertion.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedArtificial {
    /// Host method.
    pub method: MethodRef,
    /// Insertion point (instruction index).
    pub at: usize,
    /// Profiled high-entropy static field providing `ϕ`.
    pub field: FieldRef,
    /// Observed field value chosen as the constant `c`.
    pub constant: Value,
}

/// The full instrumentation plan for one app.
#[derive(Debug, Clone, Default)]
pub struct SitePlan {
    /// Existing-QC sites selected for real bombs.
    pub existing: Vec<PlannedExisting>,
    /// Leftover eligible sites earmarked for bogus bombs.
    pub bogus: Vec<PlannedExisting>,
    /// Artificial-QC insertions.
    pub artificial: Vec<PlannedArtificial>,
    /// All existing QCs the scanner found (Table 1).
    pub existing_qc_found: usize,
    /// Candidate (non-hot) method count (Table 1).
    pub candidate_methods: usize,
    /// Hot method count.
    pub hot_methods: usize,
    /// Eligible-looking sites rejected by the region checker.
    pub skipped_sites: usize,
}

/// Resolves the branch-over skip target of a site, if it has the
/// transformable shape.
fn branch_over_skip(method: &Method, site: &QcSite) -> Option<usize> {
    // Transformable shapes compile `if (X == c) { body }` as a negated
    // branch over the body: body starts right after the branch.
    if site.body_entry != site.branch_pc + 1 {
        return None;
    }
    match &method.body[site.branch_pc] {
        Instr::If { target, .. } => (*target >= site.body_entry).then_some(*target),
        _ => None,
    }
}

fn anchor_of(site: &QcSite) -> Option<usize> {
    match site.compare {
        QcCompare::SwitchArm => None,
        QcCompare::StrEquals | QcCompare::StrStartsWith | QcCompare::StrEndsWith => {
            // String QCs need the literal-const + StrOp + If anchor to be
            // contiguous so the whole idiom is replaced (otherwise the
            // plaintext literal would survive in the bytecode).
            let lit = site.lit_const_pc?;
            let sop = site.str_op_pc?;
            (lit + 1 == sop && sop + 1 == site.branch_pc).then_some(lit)
        }
        QcCompare::IntEq | QcCompare::BoolEq => Some(site.branch_pc),
    }
}

fn region_is_clean(method: &Method, anchor: usize, skip: usize) -> bool {
    if check_region(method, anchor, skip).is_err() {
        return false;
    }
    // Don't double-instrument regions that already contain bomb machinery.
    method.body[anchor..skip]
        .iter()
        .all(|i| !matches!(i, Instr::Hash { .. } | Instr::DecryptExec { .. }))
}

/// Everything the planner derives from one method's bytecode alone:
/// transformable non-loop QC regions (greedy non-overlapping, highest
/// anchor first), the sites that selection rejected, and the non-loop pcs
/// where an artificial QC could be inserted.
#[derive(Debug, Clone)]
struct MethodScan {
    mref: MethodRef,
    eligible: Vec<PlannedExisting>,
    skipped: usize,
    body_len: usize,
    nonloop_pcs: Vec<u32>,
}

/// The bytecode-derived half of a [`SitePlan`], shared across protection
/// runs of the same immutable dex (see [`cached_dex_scan`]).
#[derive(Debug)]
struct DexScan {
    existing_qc_found: usize,
    /// Per-method scans in `DexFile::methods` order.
    methods: Vec<MethodScan>,
    /// First-wins index by method ref, mirroring `DexFile::method`
    /// resolution for duplicate refs.
    by_ref: HashMap<MethodRef, usize>,
}

/// Runs the pure static-analysis pass: CFG, dominators, loops, QC scan and
/// region checking for every method. No profile or RNG input touches this.
fn scan_dex(dex: &DexFile) -> DexScan {
    let mut scan = DexScan {
        existing_qc_found: 0,
        methods: Vec::new(),
        by_ref: HashMap::new(),
    };
    for method in dex.methods() {
        let cfg = Cfg::build(method);
        let loops = if cfg.is_empty() {
            None
        } else {
            let dom = Dominators::compute(&cfg);
            Some(LoopInfo::compute(&cfg, &dom))
        };
        let sites = qc::scan_method_with(method, &cfg, loops.as_ref());
        scan.existing_qc_found += sites.len();
        // Per-method greedy non-overlapping selection, highest anchor first
        // so later rewrites don't shift earlier regions.
        let mut per_method: Vec<PlannedExisting> = sites
            .into_iter()
            .filter(|s| !s.in_loop)
            .filter_map(|s| {
                let anchor = anchor_of(&s)?;
                let skip = branch_over_skip(method, &s)?;
                Some(PlannedExisting {
                    site: s,
                    anchor,
                    skip,
                })
            })
            .collect();
        per_method.sort_by_key(|p| std::cmp::Reverse(p.anchor));
        let mut eligible = Vec::new();
        let mut skipped = 0usize;
        let mut taken_below = usize::MAX;
        for p in per_method {
            if p.skip > taken_below {
                skipped += 1; // overlaps a previously taken (higher) region
                continue;
            }
            if !region_is_clean(method, p.anchor, p.skip) {
                skipped += 1;
                continue;
            }
            taken_below = p.anchor;
            eligible.push(p);
        }
        let nonloop_pcs: Vec<u32> = (0..method.body.len())
            .filter(|&pc| !loops.as_ref().is_some_and(|l| l.pc_in_loop(&cfg, pc)))
            .map(|pc| pc as u32)
            .collect();
        let mref = method.method_ref();
        let idx = scan.methods.len();
        scan.by_ref.entry(mref.clone()).or_insert(idx);
        scan.methods.push(MethodScan {
            mref,
            eligible,
            skipped,
            body_len: method.body.len(),
            nonloop_pcs,
        });
    }
    scan
}

/// Process-wide scan registry keyed by `Arc<DexFile>` allocation identity —
/// the same pattern as the decoded-program and dex-digest caches. Sound
/// because a `DexFile` behind an `Arc` is immutable (the protect pipeline
/// clones it out before mutating), so the scan of a given allocation can
/// never go stale; the `Weak` + `ptr_eq` pairing guards against address
/// reuse after a drop.
static DEX_SCANS: Mutex<Vec<(Weak<DexFile>, Arc<DexScan>)>> = Mutex::new(Vec::new());
const DEX_SCANS_CAP: usize = 64;

fn cached_dex_scan(dex: &Arc<DexFile>) -> Arc<DexScan> {
    let mut reg = DEX_SCANS
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    reg.retain(|(weak, _)| weak.strong_count() > 0);
    for (weak, scan) in reg.iter() {
        if let Some(live) = weak.upgrade() {
            if Arc::ptr_eq(&live, dex) {
                return Arc::clone(scan);
            }
        }
    }
    let scan = Arc::new(scan_dex(dex));
    if reg.len() < DEX_SCANS_CAP {
        reg.push((Arc::downgrade(dex), Arc::clone(&scan)));
    }
    scan
}

/// Plans instrumentation for `dex` given profiling results.
///
/// Takes the dex behind the app's shared `Arc` so the bytecode-only
/// analysis half ([`scan_dex`]) is served from the identity cache when the
/// same app is protected repeatedly; the profile- and RNG-dependent
/// selection below always runs fresh.
pub fn plan(
    dex: &Arc<DexFile>,
    profile: &ProfileResult,
    config: &ProtectConfig,
    rng: &mut impl Rng,
) -> SitePlan {
    let scan = cached_dex_scan(dex);
    let mut plan = SitePlan::default();
    let all_methods: Vec<MethodRef> = scan.methods.iter().map(|m| m.mref.clone()).collect();
    plan.hot_methods = profile.hot.len();
    let candidates: Vec<MethodRef> = all_methods
        .iter()
        .filter(|m| !profile.hot.contains(m))
        .cloned()
        .collect();
    plan.candidate_methods = candidates.len();
    let candidate_set: HashSet<&MethodRef> = candidates.iter().collect();

    // ---- existing QCs --------------------------------------------------
    plan.existing_qc_found = scan.existing_qc_found;
    let mut eligible: Vec<PlannedExisting> = Vec::new();
    for m in &scan.methods {
        if !candidate_set.contains(&m.mref) {
            continue;
        }
        plan.skipped_sites += m.skipped;
        eligible.extend(m.eligible.iter().cloned());
    }

    // Split eligible sites into real bombs and bogus bombs.
    let max_real = config.max_bombs.unwrap_or(usize::MAX);
    for p in eligible {
        if plan.existing.len() < max_real {
            plan.existing.push(p);
        } else if (plan.bogus.len() as f64) < config.bogus_ratio * (plan.existing.len() as f64) {
            plan.bogus.push(p);
        }
    }
    // Reserve a slice of the real sites as bogus even under no cap, so the
    // two populations coexist (paper §3.4 wants both).
    if config.max_bombs.is_none() && config.bogus_ratio > 0.0 && plan.existing.len() >= 4 {
        let n_bogus = ((plan.existing.len() as f64) * config.bogus_ratio / 4.0).round() as usize;
        for _ in 0..n_bogus {
            if let Some(p) = plan.existing.pop() {
                plan.bogus.push(p);
            }
        }
    }

    // ---- artificial QCs -------------------------------------------------
    // High-entropy profiled *static* fields (resolvable from any method).
    // One pass per field computes occurrence counts and the first-seen
    // distinct-value order together; ranking is by distinct count
    // descending (ties by name), exactly `rank_fields` order.
    let mut ranked: Vec<(&String, Vec<&Value>, HashMap<&Value, usize>)> = profile
        .telemetry
        .field_values
        .iter()
        .map(|(name, samples)| {
            let mut counts: HashMap<&Value, usize> = HashMap::new();
            let mut distinct: Vec<&Value> = Vec::new();
            for (_, v) in samples {
                let c = counts.entry(v).or_insert(0usize);
                if *c == 0 {
                    distinct.push(v);
                }
                *c += 1;
            }
            (name, distinct, counts)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp(b.0)));
    let usable_fields: Vec<(FieldRef, Vec<Value>)> = ranked
        .iter()
        .filter(|(_, distinct, _)| distinct.len() >= 4)
        .filter_map(|(field, distinct, counts)| {
            let (class, name) = field.rsplit_once('.')?;
            let class_def = dex.class(class)?;
            if !class_def.has_field(name, FieldKind::Static) {
                return None;
            }
            let scalar = |v: &Value| matches!(v, Value::Int(_) | Value::Str(_) | Value::Bool(_));
            // Prefer values the field took *repeatedly* during profiling:
            // a constant the program revisits is a trigger users will
            // eventually satisfy, while a one-off value would make the
            // bomb dead on every device. Monotonic counters (every value
            // distinct) would make dead bombs — skip fields without
            // recurring values outright.
            let values: Vec<Value> = distinct
                .iter()
                .filter(|v| scalar(v) && counts[*v] >= 3)
                .map(|v| (*v).clone())
                .collect();
            (!values.is_empty()).then(|| (FieldRef::new(class, name), values))
        })
        .collect();

    if !usable_fields.is_empty() {
        // Prefer frequently-invoked (but non-hot) methods: a trigger
        // condition that is never evaluated can never fire on the user
        // side, so insertion sites follow the invocation profile.
        let mut by_calls: Vec<MethodRef> = candidates.clone();
        by_calls.sort_by_key(|m| {
            std::cmp::Reverse(profile.telemetry.method_calls.get(m).copied().unwrap_or(0))
        });
        let n = ((candidates.len() as f64) * config.alpha).round() as usize;
        // Pool: the warmer half of the candidates, grown if α demands more.
        let warm_pool = (by_calls.len().div_ceil(2).max(1)).max(n.min(by_calls.len()));
        let mut picked: Vec<MethodRef> = by_calls[..warm_pool].to_vec();
        picked.shuffle(rng);
        picked.truncate(n);
        for mref in picked {
            let Some(&mi) = scan.by_ref.get(&mref) else {
                continue;
            };
            let mscan = &scan.methods[mi];
            if mscan.body_len == 0 {
                continue;
            }
            // Random non-loop location (pre-computed by the scan); avoid
            // positions inside selected existing regions of the same
            // method.
            let blocked: Vec<(usize, usize)> = plan
                .existing
                .iter()
                .chain(plan.bogus.iter())
                .filter(|p| p.site.method == mref)
                .map(|p| (p.anchor, p.skip))
                .collect();
            let spots: Vec<usize> = mscan
                .nonloop_pcs
                .iter()
                .map(|&pc| pc as usize)
                .filter(|&pc| !blocked.iter().any(|&(a, s)| pc > a && pc < s))
                .collect();
            if spots.is_empty() {
                continue;
            }
            let at = spots[rng.gen_range(0..spots.len())];
            // Prefer the highest-entropy fields ("fields that have the
            // largest numbers of unique values", §7.2) with a little
            // variety across bombs.
            let fi = rng.gen_range(0..usable_fields.len().min(3));
            let (field, values) = &usable_fields[fi];
            let constant = values[rng.gen_range(0..values.len())].clone();
            plan.artificial.push(PlannedArtificial {
                method: mref,
                at,
                field: field.clone(),
                constant,
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiling::ProfileResult;
    use bombdroid_dex::{Class, CondOp, MethodBuilder, Reg, RegOrConst};
    use bombdroid_runtime::Telemetry;
    use rand::{rngs::StdRng, SeedableRng};

    fn app_with_qcs() -> Arc<DexFile> {
        let mut dex = DexFile::new();
        let mut class = Class::new("A");
        class.fields.push(bombdroid_dex::Field::stat("counter"));
        // Method with two disjoint QCs.
        let mut b = MethodBuilder::new("A", "handler", 1);
        let skip1 = b.fresh_label();
        b.if_not(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(42)), skip1);
        b.host_log("forty-two");
        b.place_label(skip1);
        let skip2 = b.fresh_label();
        b.if_not(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(7)), skip2);
        b.host_log("seven");
        b.place_label(skip2);
        b.ret_void();
        class.methods.push(b.finish());
        // A second, QC-free method.
        let mut c = MethodBuilder::new("A", "quiet", 0);
        c.host_log("quiet");
        c.ret_void();
        class.methods.push(c.finish());
        dex.classes.push(class);
        Arc::new(dex)
    }

    fn fake_profile() -> ProfileResult {
        let mut telemetry = Telemetry::new();
        // 50 distinct values, each recurring (the planner requires values
        // the program revisits).
        for round in 0..4u64 {
            for i in 0..50u64 {
                telemetry.record_field("A.counter".into(), round * 50 + i, Value::Int(i as i64));
            }
        }
        ProfileResult {
            telemetry,
            hot: HashSet::new(),
        }
    }

    #[test]
    fn plans_existing_sites_without_overlap() {
        let dex = app_with_qcs();
        let mut rng = StdRng::seed_from_u64(1);
        let plan = plan(
            &dex,
            &fake_profile(),
            &ProtectConfig {
                bogus_ratio: 0.0,
                alpha: 0.0,
                ..ProtectConfig::default()
            },
            &mut rng,
        );
        assert_eq!(plan.existing_qc_found, 2);
        assert_eq!(plan.existing.len(), 2);
        // Highest anchor first (descending transformation order).
        assert!(plan.existing[0].anchor > plan.existing[1].anchor);
        assert!(plan.artificial.is_empty());
    }

    #[test]
    fn alpha_drives_artificial_count() {
        let dex = app_with_qcs();
        let mut rng = StdRng::seed_from_u64(2);
        let plan = plan(
            &dex,
            &fake_profile(),
            &ProtectConfig {
                alpha: 1.0,
                bogus_ratio: 0.0,
                ..ProtectConfig::default()
            },
            &mut rng,
        );
        // Both candidate methods should get an artificial QC.
        assert_eq!(plan.artificial.len(), 2);
        for a in &plan.artificial {
            assert_eq!(a.field, FieldRef::new("A", "counter"));
            assert!(matches!(a.constant, Value::Int(_)));
        }
    }

    #[test]
    fn hot_methods_excluded() {
        let dex = app_with_qcs();
        let mut profile = fake_profile();
        profile.hot.insert(MethodRef::new("A", "handler"));
        let mut rng = StdRng::seed_from_u64(3);
        let plan = plan(
            &dex,
            &profile,
            &ProtectConfig {
                alpha: 0.0,
                ..ProtectConfig::default()
            },
            &mut rng,
        );
        assert!(plan.existing.is_empty(), "hot method must not be armed");
        assert_eq!(plan.candidate_methods, 1);
        assert_eq!(plan.hot_methods, 1);
    }

    #[test]
    fn max_bombs_diverts_to_bogus() {
        let dex = app_with_qcs();
        let mut rng = StdRng::seed_from_u64(4);
        let plan = plan(
            &dex,
            &fake_profile(),
            &ProtectConfig {
                max_bombs: Some(1),
                bogus_ratio: 1.0,
                alpha: 0.0,
                ..ProtectConfig::default()
            },
            &mut rng,
        );
        assert_eq!(plan.existing.len(), 1);
        assert_eq!(plan.bogus.len(), 1);
    }
}
