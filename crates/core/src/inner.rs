//! Inner trigger conditions for double-trigger bombs (paper §6, §7.3).
//!
//! Each inner condition is a quantifier-free constraint `f(env) op r` over
//! a device/environment property, synthesized so that the fraction of the
//! *user population* satisfying it falls in the configured range
//! (`p ∈ [0.1, 0.2]` by default). The population model mirrors the
//! Dashboards/AppBrain statistics in `bombdroid_runtime::env`.

use crate::fragment::{FragLabel, FragmentBuilder};
use bombdroid_dex::{CondOp, EnvKey, HostApi, RegOrConst, SensorKind, Value};
use bombdroid_runtime::{DeviceEnv, EnvValue};
use rand::Rng;

/// A synthesized inner trigger condition with its population probability.
#[derive(Debug, Clone, PartialEq)]
pub enum InnerCond {
    /// `env[key] == v` for an integer property.
    EnvIntEq {
        /// Property queried.
        key: EnvKey,
        /// Expected value.
        value: i64,
        /// Estimated population probability.
        prob: f64,
    },
    /// `env[key] == s` for a string property.
    EnvStrEq {
        /// Property queried.
        key: EnvKey,
        /// Expected value.
        value: String,
        /// Estimated population probability.
        prob: f64,
    },
    /// `lo <= env[key] < hi` for an integer property.
    EnvIntRange {
        /// Property queried.
        key: EnvKey,
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
        /// Estimated population probability.
        prob: f64,
    },
    /// `lo <= sensor(kind) < hi`.
    SensorRange {
        /// Sensor sampled.
        kind: SensorKind,
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
        /// Estimated population probability.
        prob: f64,
    },
    /// Wall-clock minute-of-day within `[start, start+len)` (mod 1440) —
    /// the paper's "sets off only if the app is played at some specific
    /// time".
    ClockWindow {
        /// Window start minute.
        start: u32,
        /// Window length in minutes.
        len: u32,
        /// Estimated population probability.
        prob: f64,
    },
}

impl InnerCond {
    /// The estimated probability that a random user device/moment satisfies
    /// this condition.
    pub fn probability(&self) -> f64 {
        match self {
            InnerCond::EnvIntEq { prob, .. }
            | InnerCond::EnvStrEq { prob, .. }
            | InnerCond::EnvIntRange { prob, .. }
            | InnerCond::SensorRange { prob, .. }
            | InnerCond::ClockWindow { prob, .. } => *prob,
        }
    }

    /// Whether a device drawn from the population satisfies this condition,
    /// evaluated analytically: environment properties via [`DeviceEnv`]
    /// queries, sensors at their jitter-free base, the clock at the
    /// device's process-start minute. This is the closed-form side of the
    /// population validation — the measured side is the VM actually
    /// executing the emitted guard ([`InnerCond::emit`]) mid-session, so
    /// the two differ only by sensor jitter and in-session clock drift.
    pub fn holds(&self, env: &DeviceEnv) -> bool {
        match self {
            InnerCond::EnvIntEq { key, value, .. } => {
                matches!(env.query(*key), EnvValue::Int(v) if v == *value)
            }
            InnerCond::EnvStrEq { key, value, .. } => {
                matches!(env.query(*key), EnvValue::Str(ref s) if s == value)
            }
            InnerCond::EnvIntRange { key, lo, hi, .. } => {
                matches!(env.query(*key), EnvValue::Int(v) if (*lo..*hi).contains(&v))
            }
            InnerCond::SensorRange { kind, lo, hi, .. } => {
                (*lo..*hi).contains(&env.sensor_base(*kind))
            }
            InnerCond::ClockWindow { start, len, .. } => {
                let shifted = (env.start_minute + 1_440 - start) % 1_440;
                shifted < *len
            }
        }
    }

    /// Human-readable description for reports.
    pub fn describe(&self) -> String {
        match self {
            InnerCond::EnvIntEq { key, value, .. } => format!("{} == {}", key.name(), value),
            InnerCond::EnvStrEq { key, value, .. } => format!("{} == {:?}", key.name(), value),
            InnerCond::EnvIntRange { key, lo, hi, .. } => {
                format!("{} in [{}, {})", key.name(), lo, hi)
            }
            InnerCond::SensorRange { kind, lo, hi, .. } => {
                format!("{} in [{}, {})", kind.name(), lo, hi)
            }
            InnerCond::ClockWindow { start, len, .. } => {
                format!("minuteOfDay in [{start}, {start}+{len})")
            }
        }
    }

    /// Emits fragment code that branches to `fail` when the condition does
    /// NOT hold (falls through when it does).
    pub fn emit(&self, f: &mut FragmentBuilder, fail: FragLabel) {
        match self {
            InnerCond::EnvIntEq { key, value, .. } => {
                let r = f.fresh_reg();
                f.host(HostApi::EnvQuery(*key), vec![], Some(r));
                f.if_not(CondOp::Eq, r, RegOrConst::Const(Value::Int(*value)), fail);
            }
            InnerCond::EnvStrEq { key, value, .. } => {
                let r = f.fresh_reg();
                f.host(HostApi::EnvQuery(*key), vec![], Some(r));
                f.if_not(
                    CondOp::Eq,
                    r,
                    RegOrConst::Const(Value::str(value.clone())),
                    fail,
                );
            }
            InnerCond::EnvIntRange { key, lo, hi, .. } => {
                let r = f.fresh_reg();
                f.host(HostApi::EnvQuery(*key), vec![], Some(r));
                f.if_not(CondOp::Ge, r, RegOrConst::Const(Value::Int(*lo)), fail);
                f.if_not(CondOp::Lt, r, RegOrConst::Const(Value::Int(*hi)), fail);
            }
            InnerCond::SensorRange { kind, lo, hi, .. } => {
                let r = f.fresh_reg();
                f.host(HostApi::Sensor(*kind), vec![], Some(r));
                f.if_not(CondOp::Ge, r, RegOrConst::Const(Value::Int(*lo)), fail);
                f.if_not(CondOp::Lt, r, RegOrConst::Const(Value::Int(*hi)), fail);
            }
            InnerCond::ClockWindow { start, len, .. } => {
                let r = f.fresh_reg();
                f.host(HostApi::WallClockMinute, vec![], Some(r));
                // shifted = (minute - start + 1440) % 1440 < len
                let s = f.fresh_reg();
                f.push(bombdroid_dex::Instr::BinOpConst {
                    op: bombdroid_dex::BinOp::Sub,
                    dst: s,
                    lhs: r,
                    rhs: *start as i64,
                });
                f.push(bombdroid_dex::Instr::BinOpConst {
                    op: bombdroid_dex::BinOp::Add,
                    dst: s,
                    lhs: s,
                    rhs: 1_440,
                });
                f.push(bombdroid_dex::Instr::BinOpConst {
                    op: bombdroid_dex::BinOp::Rem,
                    dst: s,
                    lhs: s,
                    rhs: 1_440,
                });
                f.if_not(
                    CondOp::Lt,
                    s,
                    RegOrConst::Const(Value::Int(*len as i64)),
                    fail,
                );
            }
        }
    }
}

/// Candidate generators: each samples a condition with its population
/// probability; the synthesizer rejects candidates outside the target
/// range.
pub fn synthesize(rng: &mut impl Rng, p_range: (f64, f64)) -> InnerCond {
    let (lo_p, hi_p) = p_range;
    // Band conditions over uniformly distributed device properties: each
    // bomb draws its own random interval, so conditions are statistically
    // independent across bombs — a device unlucky for one bomb is not
    // unlucky for the others. `(key, domain lo, domain hi)`.
    const BAND_KEYS: [(EnvKey, i64, i64); 4] = [
        (EnvKey::IpOctetC, 0, 256),
        (EnvKey::IpOctetD, 1, 255),
        (EnvKey::MacAddrHash, 0, 1 << 24),
        (EnvKey::SerialHash, 0, 1 << 24),
    ];
    const SENSOR_BANDS: [(SensorKind, i64, i64); 4] = [
        (SensorKind::GpsLatE3, -60_000, 70_000),
        (SensorKind::GpsLonE3, -180_000, 180_000),
        (SensorKind::Pressure, 950, 1_050),
        (SensorKind::TemperatureDeciC, -100, 400),
    ];
    loop {
        let cond = match rng.gen_range(0..11u8) {
            0..=3 => {
                // Environment band: p = width/span.
                let (key, dlo, dhi) = BAND_KEYS[rng.gen_range(0..BAND_KEYS.len())];
                let span = (dhi - dlo) as f64;
                let width = rng.gen_range((lo_p * span) as i64..=(hi_p * span) as i64);
                let start = rng.gen_range(dlo..(dhi - width));
                InnerCond::EnvIntRange {
                    key,
                    lo: start,
                    hi: start + width,
                    prob: width as f64 / span,
                }
            }
            4..=5 => {
                // Sensor band.
                let (kind, dlo, dhi) = SENSOR_BANDS[rng.gen_range(0..SENSOR_BANDS.len())];
                let span = (dhi - dlo) as f64;
                let width = rng.gen_range((lo_p * span) as i64..=(hi_p * span) as i64);
                let start = rng.gen_range(dlo..(dhi - width));
                InnerCond::SensorRange {
                    kind,
                    lo: start,
                    hi: start + width,
                    prob: width as f64 / span,
                }
            }
            6 => {
                // SDK level equality; weights from the population table.
                let (sdk, prob) = [
                    (26i64, 0.10),
                    (27, 0.12),
                    (28, 0.16),
                    (29, 0.14),
                    (30, 0.10),
                ][rng.gen_range(0..5usize)];
                InnerCond::EnvIntEq {
                    key: EnvKey::SdkInt,
                    value: sdk,
                    prob,
                }
            }
            7 => {
                // Manufacturer equality (share in range).
                let (m, prob) = [
                    ("xiaomi", 0.13),
                    ("huawei", 0.10),
                    ("oppo", 0.09),
                    ("vivo", 0.08),
                ][rng.gen_range(0..4usize)];
                InnerCond::EnvStrEq {
                    key: EnvKey::Manufacturer,
                    value: m.to_string(),
                    prob,
                }
            }
            8 => {
                // Country code equality.
                let (c, prob) =
                    [("US", 0.14), ("IN", 0.18), ("CN", 0.10)][rng.gen_range(0..3usize)];
                InnerCond::EnvStrEq {
                    key: EnvKey::CountryCode,
                    value: c.to_string(),
                    prob,
                }
            }
            9 => {
                // Battery below a threshold: p ≈ (t - 5)/96.
                let t = rng.gen_range(15..25i64);
                InnerCond::EnvIntRange {
                    key: EnvKey::BatteryPct,
                    lo: 0,
                    hi: t,
                    prob: (t - 5) as f64 / 96.0,
                }
            }
            _ => {
                // Time-of-day window: p = len/1440.
                let len = rng.gen_range((lo_p * 1_440.0) as u32..=(hi_p * 1_440.0) as u32);
                let start = rng.gen_range(0..1_440);
                InnerCond::ClockWindow {
                    start,
                    len,
                    prob: len as f64 / 1_440.0,
                }
            }
        };
        // Accept only conditions in the configured probability band (a
        // small tolerance accommodates the discrete tables).
        let p = cond.probability();
        if p >= lo_p - 0.03 && p <= hi_p + 0.03 {
            return cond;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::Instr;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn synthesized_probabilities_in_band() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let c = synthesize(&mut rng, (0.10, 0.20));
            let p = c.probability();
            assert!((0.07..=0.23).contains(&p), "{} has p={p}", c.describe());
        }
    }

    #[test]
    fn synthesis_covers_multiple_kinds() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..100 {
            kinds.insert(std::mem::discriminant(&synthesize(&mut rng, (0.10, 0.20))));
        }
        assert!(kinds.len() >= 4, "only {} kinds", kinds.len());
    }

    #[test]
    fn holds_tracks_the_synthesized_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let cond = synthesize(&mut rng, (0.10, 0.20));
            let n = 4_000;
            let hits = (0..n)
                .filter(|_| cond.holds(&DeviceEnv::sample(&mut rng)))
                .count();
            let measured = hits as f64 / n as f64;
            let predicted = cond.probability();
            assert!(
                (measured - predicted).abs() < 0.04,
                "{}: measured {measured:.3} vs predicted {predicted:.3}",
                cond.describe()
            );
        }
    }

    #[test]
    fn emit_produces_guarded_code() {
        let cond = InnerCond::EnvIntRange {
            key: EnvKey::IpOctetC,
            lo: 100,
            hi: 140,
            prob: 40.0 / 256.0,
        };
        let mut f = FragmentBuilder::new(10);
        let fail = f.fresh_label();
        cond.emit(&mut f, fail);
        f.host(HostApi::Marker(1), vec![], None);
        f.place_label(fail);
        let body = f.finish().expect("all labels placed");
        // Env query + two comparisons + marker.
        assert_eq!(body.len(), 4);
        assert!(matches!(body[0], Instr::HostCall { .. }));
        // Both Ifs must target past-the-end (the fail label).
        let mut if_count = 0;
        for i in &body {
            if let Instr::If { target, .. } = i {
                assert_eq!(*target, 4);
                if_count += 1;
            }
        }
        assert_eq!(if_count, 2);
    }

    #[test]
    fn clock_window_wraps_midnight() {
        let cond = InnerCond::ClockWindow {
            start: 1_400,
            len: 200,
            prob: 200.0 / 1_440.0,
        };
        let mut f = FragmentBuilder::new(0);
        let fail = f.fresh_label();
        cond.emit(&mut f, fail);
        f.place_label(fail);
        let body = f.finish().expect("all labels placed");
        assert!(body.len() >= 5, "modular arithmetic emitted");
    }
}
