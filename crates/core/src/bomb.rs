//! Bomb assembly: turning a planned site into a cryptographically
//! obfuscated (optionally double-trigger) logic bomb.
//!
//! The transformation of paper §3.2 / Listing 3, concretely:
//!
//! ```text
//! if (X == c) { body }            // original (branch-over form)
//!   ⇓
//! h := SHA1(X | salt)
//! if (h != Hc) goto after         // Hc = SHA1(c | salt); c erased
//! decrypt_exec(blob, X)           // key = KDF(X | salt)
//! after:
//! ```
//!
//! where `blob` seals `[inner trigger → marker → detection/response] ++
//! woven original body` under `KDF(c | salt)`.

use crate::config::ResponseChoice;
use crate::fragment::{FragmentBuilder, FragmentError};
use crate::inner::InnerCond;
use crate::payload::{emit_detection, DetectionKind};
use crate::rewrite::{rewrite_region, RewriteError};
use crate::sites::{PlannedArtificial, PlannedExisting};
use bombdroid_crypto::{blob as crypto_blob, kdf};
use bombdroid_dex::{
    wire, BlobId, CondOp, EncryptedBlob, HostApi, Instr, Method, Reg, RegOrConst, Value,
};

/// Everything that goes into one bomb's payload.
#[derive(Debug, Clone)]
pub struct PayloadSpec {
    /// Marker id for triggered-bomb telemetry (None ⇒ bogus bomb).
    pub marker: Option<u32>,
    /// Inner trigger (double-trigger bombs).
    pub inner: Option<InnerCond>,
    /// Detection method + response.
    pub detection: Option<(DetectionKind, ResponseChoice)>,
    /// User-facing warning text.
    pub warn_message: String,
    /// Strategic muting (§10 future work).
    pub mute_others: bool,
}

/// Why a site could not be armed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArmError {
    /// The rewrite failed (region not self-contained).
    Rewrite(RewriteError),
    /// The original body branches somewhere the fragment cannot express.
    UnweavableBody {
        /// The offending branch target.
        target: usize,
    },
    /// The payload fragment failed to assemble.
    Fragment(FragmentError),
}

impl From<RewriteError> for ArmError {
    fn from(e: RewriteError) -> Self {
        ArmError::Rewrite(e)
    }
}

impl From<FragmentError> for ArmError {
    fn from(e: FragmentError) -> Self {
        ArmError::Fragment(e)
    }
}

impl std::fmt::Display for ArmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArmError::Rewrite(e) => write!(f, "rewrite failed: {e}"),
            ArmError::UnweavableBody { target } => {
                write!(f, "body branch to @{target} cannot be woven")
            }
            ArmError::Fragment(e) => write!(f, "payload fragment failed: {e}"),
        }
    }
}

impl std::error::Error for ArmError {}

/// Remaps a conditional body's absolute targets into fragment coordinates.
fn weave_body(
    body: &[Instr],
    body_entry: usize,
    skip: usize,
    frag_base: usize,
) -> Result<Vec<Instr>, ArmError> {
    let body_len = body.len();
    let map = |t: usize| -> Result<usize, ArmError> {
        if t == skip {
            Ok(frag_base + body_len)
        } else if (body_entry..skip).contains(&t) {
            Ok(frag_base + (t - body_entry))
        } else {
            Err(ArmError::UnweavableBody { target: t })
        }
    };
    body.iter()
        .map(|instr| {
            let mut i = instr.clone();
            match &mut i {
                Instr::If { target, .. } | Instr::Goto { target } => *target = map(*target)?,
                Instr::Switch { arms, default, .. } => {
                    for (_, t) in arms.iter_mut() {
                        *t = map(*t)?;
                    }
                    *default = map(*default)?;
                }
                _ => {}
            }
            Ok(i)
        })
        .collect()
}

/// Builds the payload part of a fragment (inner trigger, marker, detection).
fn emit_payload(f: &mut FragmentBuilder, spec: &PayloadSpec) {
    let after = f.fresh_label();
    if let Some(inner) = &spec.inner {
        inner.emit(f, after);
    }
    if let Some(id) = spec.marker {
        f.host(HostApi::Marker(id), vec![], None);
    }
    if let Some((kind, response)) = &spec.detection {
        emit_detection(f, kind, *response, &spec.warn_message, spec.mute_others);
    }
    f.place_label(after);
}

/// Collects a method's payload fragments and seals them in one batched
/// crypto pass.
///
/// Blob ids depend only on registration *order* (`base +` position), not on
/// the ciphertext, so arming can assign every id up front and defer the
/// AES/SHA-1 work: [`seal_all`](Self::seal_all) runs all CTR streams
/// through the block-parallel [`crypto_blob::seal_batch`], whose output is
/// bit-identical to sealing each fragment serially.
#[derive(Debug)]
pub struct PendingBlobs {
    base: u32,
    jobs: Vec<(bombdroid_crypto::Key128, Vec<u8>, Vec<u8>)>,
}

impl PendingBlobs {
    /// Creates an empty collector whose blob ids start at `base`. Serial
    /// callers arming straight into a dex pass `0`; the parallel protect
    /// pass arms each method under a marked base and relocates the ids when
    /// merging (see `pipeline`).
    pub fn new(base: u32) -> Self {
        PendingBlobs {
            base,
            jobs: Vec::new(),
        }
    }

    /// Number of registered fragments.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no fragments are registered.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The id the next registered fragment will get.
    fn next_id(&self) -> BlobId {
        BlobId(self.base + self.jobs.len() as u32)
    }

    /// Registers a fragment for sealing under an already-derived site key.
    /// The key comes from the same [`kdf::site_material`] call that
    /// produced the stored condition hash, so each bomb serializes its
    /// trigger constant exactly once.
    fn defer(
        &mut self,
        key: bombdroid_crypto::Key128,
        salt: &[u8],
        fragment: Vec<Instr>,
    ) -> BlobId {
        let id = self.next_id();
        self.jobs
            .push((key, salt.to_vec(), wire::encode_fragment(&fragment)));
        id
    }

    /// Moves every registered fragment of `other` onto the end of `self`,
    /// preserving registration order — the protect pipeline pools each
    /// method's collector into one app-wide batch so [`seal_all`]'s
    /// four-lane crypto runs over every blob of the app at once.
    ///
    /// [`seal_all`]: Self::seal_all
    pub fn absorb(&mut self, other: PendingBlobs) {
        self.jobs.extend(other.jobs);
    }

    /// Seals every registered fragment, batching the crypto across blobs.
    /// Output order matches registration order (and therefore the ids
    /// handed out by [`defer`](Self::defer)).
    pub fn seal_all(self) -> Vec<EncryptedBlob> {
        let seal_jobs: Vec<(bombdroid_crypto::Key128, &[u8])> = self
            .jobs
            .iter()
            .map(|(key, _, plaintext)| (*key, plaintext.as_slice()))
            .collect();
        let sealed = crypto_blob::seal_batch(&seal_jobs);
        self.jobs
            .into_iter()
            .zip(sealed)
            .map(|((_, salt, _), sealed)| EncryptedBlob { salt, sealed })
            .collect()
    }
}

/// Arms an existing-QC site as a real or bogus bomb.
///
/// With `weave = true` the original body moves into the encrypted fragment
/// (deleting the bomb corrupts the app); with `weave = false` only the
/// trigger+payload is encrypted and the body stays in plaintext after the
/// `DecryptExec` (the deletion-attack ablation).
///
/// # Errors
///
/// Returns [`ArmError`] when the region cannot be safely transformed; the
/// method is left unmodified in that case.
pub fn arm_existing(
    method: &mut Method,
    pending: &mut PendingBlobs,
    planned: &PlannedExisting,
    spec: &PayloadSpec,
    salt: &[u8],
    weave: bool,
) -> Result<BlobId, ArmError> {
    let site = &planned.site;
    let body_entry = site.body_entry;
    let skip = planned.skip;
    let body: Vec<Instr> = method.body[body_entry..skip].to_vec();

    let scratch_base = method.registers + 1; // +0 is the hash register
    let mut f = FragmentBuilder::new(scratch_base);
    emit_payload(&mut f, spec);
    // Finish the payload first to learn its length, then append the woven
    // body in fragment coordinates.
    let mut fragment = f.finish()?;
    let frag_base = fragment.len();
    let max_frag_reg = scratch_base + 16; // generous bound; VM grows frames anyway
    if weave {
        fragment.extend(weave_body(&body, body_entry, skip, frag_base)?);
    }

    let material = kdf::site_material(&site.constant.canonical_bytes(), salt);
    let hc = material.condition_hash;
    let blob_id = pending.next_id();
    let hreg = Reg(method.registers);
    // Without weaving the original body stays in plaintext inside the
    // replacement, right after the DecryptExec; the hash-miss branch skips
    // over it either way.
    let body_len_in_replacement = if weave { 0 } else { body.len() };
    let replacement_len = 3 + body_len_in_replacement;
    let mut replacement = vec![
        Instr::Hash {
            dst: hreg,
            src: site.cond_reg,
            salt: salt.to_vec(),
        },
        Instr::If {
            cond: CondOp::Ne,
            lhs: hreg,
            rhs: RegOrConst::Const(Value::bytes(hc)),
            target: replacement_len, // region-relative: after the region
        },
        Instr::DecryptExec {
            blob: blob_id,
            key_src: site.cond_reg,
        },
    ];
    if !weave {
        // Remap body targets to region-relative coordinates: the body now
        // starts at offset 3, and `skip` maps to `replacement_len`.
        replacement.extend(weave_body(&body, body_entry, skip, 3)?);
    }
    rewrite_region(method, planned.anchor, skip, replacement)?;
    method.registers = method.registers.max(max_frag_reg);
    Ok(pending.defer(material.key, salt, fragment))
}

/// Inserts and arms an artificial-QC bomb at the planned location.
///
/// # Errors
///
/// Returns [`ArmError`] when the insertion point is invalid (should not
/// happen for planner-produced sites).
pub fn arm_artificial(
    method: &mut Method,
    pending: &mut PendingBlobs,
    planned: &PlannedArtificial,
    spec: &PayloadSpec,
    salt: &[u8],
) -> Result<BlobId, ArmError> {
    let scratch_base = method.registers + 2; // sreg + hreg
    let mut f = FragmentBuilder::new(scratch_base);
    emit_payload(&mut f, spec);
    let fragment = f.finish()?;

    let material = kdf::site_material(&planned.constant.canonical_bytes(), salt);
    let hc = material.condition_hash;
    let sreg = Reg(method.registers);
    let hreg = Reg(method.registers + 1);
    let replacement_len = 4usize;
    let replacement = vec![
        Instr::GetStatic {
            dst: sreg,
            field: planned.field.clone(),
        },
        Instr::Hash {
            dst: hreg,
            src: sreg,
            salt: salt.to_vec(),
        },
        Instr::If {
            cond: CondOp::Ne,
            lhs: hreg,
            rhs: RegOrConst::Const(Value::bytes(hc)),
            target: replacement_len,
        },
        Instr::DecryptExec {
            blob: pending.next_id(),
            key_src: sreg,
        },
    ];
    rewrite_region(method, planned.at, planned.at, replacement)?;
    method.registers = method.registers.max(scratch_base + 16);
    Ok(pending.defer(material.key, salt, fragment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_analysis::qc;
    use bombdroid_dex::{FieldRef, MethodBuilder, MethodRef};

    fn site_method() -> Method {
        // if (v0 == 99) { log "hit"; } log "always"; return
        let mut b = MethodBuilder::new("T", "m", 1);
        let skip = b.fresh_label();
        b.if_not(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(99)), skip);
        b.host_log("hit");
        b.place_label(skip);
        b.host_log("always");
        b.ret_void();
        b.finish()
    }

    fn planned(method: &Method) -> PlannedExisting {
        let site = qc::scan_method(method).remove(0);
        let skip = match &method.body[site.branch_pc] {
            Instr::If { target, .. } => *target,
            _ => unreachable!(),
        };
        PlannedExisting {
            anchor: site.branch_pc,
            skip,
            site,
        }
    }

    fn simple_spec(marker: u32) -> PayloadSpec {
        PayloadSpec {
            marker: Some(marker),
            inner: None,
            detection: None,
            warn_message: "warn".into(),
            mute_others: false,
        }
    }

    #[test]
    fn arming_replaces_plaintext_condition() {
        let mut method = site_method();
        let p = planned(&method);
        let mut pending = PendingBlobs::new(0);
        let blob = arm_existing(
            &mut method,
            &mut pending,
            &p,
            &simple_spec(0),
            b"salt",
            true,
        )
        .expect("arm");
        let blobs = pending.seal_all();
        assert_eq!(blob, BlobId(0));
        assert_eq!(blobs.len(), 1);
        // The constant 99 is gone from the bytecode.
        let text = bombdroid_dex::asm::disasm_method(&method);
        assert!(!text.contains("#99"), "constant erased:\n{text}");
        assert!(text.contains("sha1-hash"));
        assert!(text.contains("decrypt-exec"));
        // The woven body ("hit" const) left the plaintext.
        assert!(!text.contains("hit"));
        assert!(text.contains("always"));
    }

    #[test]
    fn armed_method_still_validates() {
        let mut method = site_method();
        let p = planned(&method);
        let mut pending = PendingBlobs::new(0);
        arm_existing(
            &mut method,
            &mut pending,
            &p,
            &simple_spec(0),
            b"salt",
            true,
        )
        .unwrap();
        let blobs = pending.seal_all();
        let mut dex = bombdroid_dex::DexFile::new();
        let mut class = bombdroid_dex::Class::new("T");
        class.methods.push(method);
        dex.classes.push(class);
        dex.blobs = blobs;
        bombdroid_dex::validate(&dex).expect("valid after arming");
    }

    #[test]
    fn unweave_keeps_body_in_plaintext() {
        let mut method = site_method();
        let p = planned(&method);
        let mut pending = PendingBlobs::new(0);
        arm_existing(
            &mut method,
            &mut pending,
            &p,
            &simple_spec(0),
            b"salt",
            false,
        )
        .unwrap();
        let text = bombdroid_dex::asm::disasm_method(&method);
        assert!(text.contains("hit"), "body stays in plaintext:\n{text}");
    }

    #[test]
    fn artificial_insertion_compiles() {
        let mut method = site_method();
        let before_len = method.body.len();
        let mut pending = PendingBlobs::new(0);
        let planned = PlannedArtificial {
            method: MethodRef::new("T", "m"),
            at: 0,
            field: FieldRef::new("T", "state"),
            constant: Value::Int(5),
        };
        arm_artificial(&mut method, &mut pending, &planned, &simple_spec(1), b"s").unwrap();
        assert_eq!(method.body.len(), before_len + 4);
        let text = bombdroid_dex::asm::disasm_method(&method);
        assert!(text.contains("sget"));
        assert!(text.contains("sha1-hash"));
    }

    #[test]
    fn fragment_decrypts_with_right_key_only() {
        let mut method = site_method();
        let p = planned(&method);
        let constant = p.site.constant.clone();
        let mut pending = PendingBlobs::new(0);
        arm_existing(
            &mut method,
            &mut pending,
            &p,
            &simple_spec(3),
            b"pepper",
            true,
        )
        .unwrap();
        let blobs = pending.seal_all();
        let right = kdf::derive_key(&constant.canonical_bytes(), b"pepper");
        let pt = crypto_blob::open(&right, &blobs[0].sealed).expect("right key opens");
        let frag = wire::decode_fragment(&pt).expect("valid fragment");
        assert!(frag.iter().any(|i| matches!(
            i,
            Instr::HostCall {
                api: HostApi::Marker(3),
                ..
            }
        )));
        let wrong = kdf::derive_key(&Value::Int(98).canonical_bytes(), b"pepper");
        assert!(crypto_blob::open(&wrong, &blobs[0].sealed).is_err());
    }
}
