//! Protection reports: what got injected where (feeds Tables 1, 2 and
//! Fig. 4).

use bombdroid_analysis::Strength;
use bombdroid_dex::{BlobId, MethodRef};

/// The three bomb flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BombKind {
    /// Built on a qualified condition already present in the app (§3.3).
    ExistingQc,
    /// Built on an inserted artificial qualified condition (§3.3).
    ArtificialQc,
    /// Bogus bomb: original conditional code dressed up as a bomb (§3.4).
    Bogus,
}

/// One injected bomb.
#[derive(Debug, Clone, PartialEq)]
pub struct BombInfo {
    /// Marker id (None for bogus bombs, which carry no payload).
    pub marker: Option<u32>,
    /// Flavour.
    pub kind: BombKind,
    /// Host method.
    pub method: MethodRef,
    /// Outer-condition strength (Fig. 4 weak/medium/strong).
    pub strength: Strength,
    /// Inner trigger description + population probability (double-trigger
    /// bombs only).
    pub inner: Option<(String, f64)>,
    /// Detection method tag (`public-key` / `manifest-digest` /
    /// `code-scan`); None for bogus bombs.
    pub detection: Option<&'static str>,
    /// Blob holding the encrypted payload.
    pub blob: BlobId,
}

/// Summary of one protection run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProtectReport {
    /// Every bomb injected (real + bogus).
    pub bombs: Vec<BombInfo>,
    /// Total existing QCs found by the scanner (Table 1 column).
    pub existing_qc_found: usize,
    /// Candidate (non-hot) methods (Table 1 column).
    pub candidate_methods: usize,
    /// Methods excluded as hot.
    pub hot_methods: usize,
    /// Eligible existing sites that had to be skipped (non-self-contained
    /// regions etc.).
    pub skipped_sites: usize,
    /// `classes.dex` size before protection, bytes.
    pub original_dex_size: usize,
    /// `classes.dex` size after protection, bytes.
    pub protected_dex_size: usize,
}

impl ProtectReport {
    /// Number of real (payload-carrying) bombs.
    pub fn bombs_injected(&self) -> usize {
        self.bombs
            .iter()
            .filter(|b| b.kind != BombKind::Bogus)
            .count()
    }

    /// Real bombs built on existing QCs.
    pub fn existing_bombs(&self) -> usize {
        self.count(BombKind::ExistingQc)
    }

    /// Real bombs built on artificial QCs.
    pub fn artificial_bombs(&self) -> usize {
        self.count(BombKind::ArtificialQc)
    }

    /// Bogus bombs.
    pub fn bogus_bombs(&self) -> usize {
        self.count(BombKind::Bogus)
    }

    fn count(&self, kind: BombKind) -> usize {
        self.bombs.iter().filter(|b| b.kind == kind).count()
    }

    /// `(weak, medium, strong)` counts among bombs of `kind` (Fig. 4).
    pub fn strength_histogram(&self, kind: BombKind) -> (usize, usize, usize) {
        let mut h = (0, 0, 0);
        for b in self.bombs.iter().filter(|b| b.kind == kind) {
            match b.strength {
                Strength::Weak => h.0 += 1,
                Strength::Medium => h.1 += 1,
                Strength::Strong => h.2 += 1,
            }
        }
        h
    }

    /// Code-size increase ratio, e.g. `0.097` for +9.7% (§8.4).
    pub fn code_size_increase(&self) -> f64 {
        if self.original_dex_size == 0 {
            return 0.0;
        }
        (self.protected_dex_size as f64 - self.original_dex_size as f64)
            / self.original_dex_size as f64
    }

    /// Marker ids of all real bombs (the denominator for triggered-ratio
    /// measurements, Fig. 5).
    pub fn marker_ids(&self) -> Vec<u32> {
        self.bombs.iter().filter_map(|b| b.marker).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bomb(kind: BombKind, strength: Strength, marker: Option<u32>) -> BombInfo {
        BombInfo {
            marker,
            kind,
            method: MethodRef::new("C", "m"),
            strength,
            inner: None,
            detection: None,
            blob: BlobId(0),
        }
    }

    #[test]
    fn counting_and_histograms() {
        let report = ProtectReport {
            bombs: vec![
                bomb(BombKind::ExistingQc, Strength::Weak, Some(0)),
                bomb(BombKind::ExistingQc, Strength::Strong, Some(1)),
                bomb(BombKind::ArtificialQc, Strength::Medium, Some(2)),
                bomb(BombKind::Bogus, Strength::Medium, None),
            ],
            existing_qc_found: 10,
            original_dex_size: 1_000,
            protected_dex_size: 1_097,
            ..ProtectReport::default()
        };
        assert_eq!(report.bombs_injected(), 3);
        assert_eq!(report.existing_bombs(), 2);
        assert_eq!(report.artificial_bombs(), 1);
        assert_eq!(report.bogus_bombs(), 1);
        assert_eq!(report.strength_histogram(BombKind::ExistingQc), (1, 0, 1));
        assert!((report.code_size_increase() - 0.097).abs() < 1e-9);
        assert_eq!(report.marker_ids(), vec![0, 1, 2]);
    }
}
