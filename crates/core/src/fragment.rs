//! Building encrypted code fragments.
//!
//! Fragments are the plaintext inside [`EncryptedBlob`]s: straight-line (or
//! internally branching) instruction sequences executed inline in the
//! enclosing frame when a bomb's outer trigger fires. Unlike
//! [`bombdroid_dex::MethodBuilder`], a fragment must *not* end in an
//! implicit `return` — falling off the end resumes the enclosing method.
//!
//! [`EncryptedBlob`]: bombdroid_dex::EncryptedBlob

use bombdroid_dex::{CondOp, HostApi, Instr, Reg, RegOrConst, Value};
use std::collections::HashMap;

/// A forward-referencing label within one fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragLabel(u32);

/// Errors from assembling a fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentError {
    /// A branch references a label that was never [`place_label`]ed.
    ///
    /// [`place_label`]: FragmentBuilder::place_label
    UnplacedLabel(FragLabel),
}

impl std::fmt::Display for FragmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FragmentError::UnplacedLabel(label) => {
                write!(f, "fragment label {label:?} never placed")
            }
        }
    }
}

impl std::error::Error for FragmentError {}

/// Builder for fragment instruction sequences.
#[derive(Debug, Default)]
pub struct FragmentBuilder {
    body: Vec<Instr>,
    next_label: u32,
    placed: HashMap<FragLabel, usize>,
    pending: Vec<(usize, FragLabel)>,
    scratch_next: u16,
}

impl FragmentBuilder {
    /// Starts a fragment whose scratch registers begin at `scratch_base`
    /// (above every register the enclosing method uses).
    pub fn new(scratch_base: u16) -> Self {
        FragmentBuilder {
            scratch_next: scratch_base,
            ..FragmentBuilder::default()
        }
    }

    /// Allocates a scratch register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.scratch_next);
        self.scratch_next += 1;
        r
    }

    /// Highest register index used (for bumping the method's frame size).
    pub fn max_reg(&self) -> u16 {
        self.scratch_next
    }

    /// Creates an unplaced label.
    pub fn fresh_label(&mut self) -> FragLabel {
        let l = FragLabel(self.next_label);
        self.next_label += 1;
        l
    }

    /// Pins `label` to the next emitted instruction.
    pub fn place_label(&mut self, label: FragLabel) {
        assert!(
            self.placed.insert(label, self.body.len()).is_none(),
            "fragment label placed twice"
        );
    }

    /// Emits an instruction with already-resolved fragment-local targets.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.body.push(instr);
        self
    }

    /// Emits `dst := value`.
    pub fn const_(&mut self, dst: Reg, value: impl Into<Value>) -> &mut Self {
        self.push(Instr::Const {
            dst,
            value: value.into(),
        })
    }

    /// Emits a branch to `label` when the condition holds.
    pub fn if_(&mut self, cond: CondOp, lhs: Reg, rhs: RegOrConst, label: FragLabel) -> &mut Self {
        let at = self.body.len();
        self.body.push(Instr::If {
            cond,
            lhs,
            rhs,
            target: usize::MAX,
        });
        self.pending.push((at, label));
        self
    }

    /// Emits a branch to `label` when the condition does NOT hold.
    pub fn if_not(
        &mut self,
        cond: CondOp,
        lhs: Reg,
        rhs: RegOrConst,
        label: FragLabel,
    ) -> &mut Self {
        self.if_(cond.negate(), lhs, rhs, label)
    }

    /// Emits an unconditional jump to `label`.
    pub fn goto(&mut self, label: FragLabel) -> &mut Self {
        let at = self.body.len();
        self.body.push(Instr::Goto { target: usize::MAX });
        self.pending.push((at, label));
        self
    }

    /// Emits a host call.
    pub fn host(&mut self, api: HostApi, args: Vec<Reg>, dst: Option<Reg>) -> &mut Self {
        self.push(Instr::HostCall { api, args, dst })
    }

    /// Appends pre-built instructions whose branch targets are relative to
    /// *their own* sequence (they are shifted by the current position).
    pub fn splice(&mut self, instrs: Vec<Instr>) -> &mut Self {
        let base = self.body.len();
        for mut i in instrs {
            match &mut i {
                Instr::If { target, .. } | Instr::Goto { target } => *target += base,
                Instr::Switch { arms, default, .. } => {
                    for (_, t) in arms.iter_mut() {
                        *t += base;
                    }
                    *default += base;
                }
                _ => {}
            }
            self.body.push(i);
        }
        self
    }

    /// Resolves labels and returns the fragment body. Labels placed at the
    /// end resolve to one-past-the-last instruction (fall out of the
    /// fragment). Fails if a referenced label was never placed.
    pub fn finish(mut self) -> Result<Vec<Instr>, FragmentError> {
        for (at, label) in &self.pending {
            let pos = *self
                .placed
                .get(label)
                .ok_or(FragmentError::UnplacedLabel(*label))?;
            match &mut self.body[*at] {
                Instr::If { target, .. } | Instr::Goto { target } => *target = pos,
                // `pending` entries are created only by `if_`/`goto`, which
                // push the branch at that exact index, and nothing reorders
                // `body` afterwards.
                other => unreachable!("pending fragment label on {other:?}"),
            }
        }
        Ok(self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_including_fragment_end() {
        let mut f = FragmentBuilder::new(10);
        let end = f.fresh_label();
        let r = f.fresh_reg();
        f.const_(r, 1i64);
        f.if_not(CondOp::Eq, r, RegOrConst::Const(Value::Int(1)), end);
        f.host(HostApi::Marker(5), vec![], None);
        f.place_label(end);
        let body = f.finish().expect("all labels placed");
        assert_eq!(body.len(), 3);
        match &body[1] {
            Instr::If { target, .. } => assert_eq!(*target, 3, "end label = past-the-end"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn splice_shifts_targets() {
        let inner = vec![
            Instr::If {
                cond: CondOp::Eq,
                lhs: Reg(0),
                rhs: RegOrConst::Const(Value::Int(0)),
                target: 2,
            },
            Instr::Nop,
            Instr::Nop,
        ];
        let mut f = FragmentBuilder::new(5);
        f.push(Instr::Nop);
        f.splice(inner);
        let body = f.finish().expect("all labels placed");
        match &body[1] {
            Instr::If { target, .. } => assert_eq!(*target, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unplaced_label_is_a_typed_error() {
        let mut f = FragmentBuilder::new(0);
        let l = f.fresh_label();
        f.goto(l);
        assert!(matches!(f.finish(), Err(FragmentError::UnplacedLabel(_))));
    }

    #[test]
    fn scratch_registers_start_at_base() {
        let mut f = FragmentBuilder::new(7);
        assert_eq!(f.fresh_reg(), Reg(7));
        assert_eq!(f.fresh_reg(), Reg(8));
        assert_eq!(f.max_reg(), 9);
    }
}
