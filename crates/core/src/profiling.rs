//! Profiling phase (paper §7.1): feed the app a stream of random user
//! events (the Dynodroid role), log per-method invocation counts (the
//! Traceview role) and field-value samples, and derive the hot-method set.

use crate::config::ProtectConfig;
use bombdroid_apk::ApkFile;
use bombdroid_dex::MethodRef;
use bombdroid_runtime::{
    DeviceEnv, EventSource, InstalledPackage, RandomEventSource, Telemetry, Vm, VmOptions,
};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashSet;

/// Outcome of the profiling phase.
#[derive(Debug, Clone)]
pub struct ProfileResult {
    /// Full run telemetry (method counts + field-value samples).
    pub telemetry: Telemetry,
    /// Methods excluded from instrumentation as hot.
    pub hot: HashSet<MethodRef>,
}

/// Profiles `apk` with `config.profiling_events` random events.
///
/// # Errors
///
/// Returns the install-time verification error if the APK is not validly
/// signed.
pub fn profile_app(
    apk: &ApkFile,
    config: &ProtectConfig,
    seed: u64,
) -> Result<ProfileResult, bombdroid_apk::VerifyError> {
    let _span = bombdroid_obs::span("pipeline.profile");
    let pkg = InstalledPackage::install(apk)?;
    let opts = VmOptions {
        record_field_values: true,
        ..VmOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vm = Vm::new(pkg, DeviceEnv::sample(&mut rng), seed ^ 0x9e37, opts);
    let mut source = RandomEventSource;
    let dex = vm.pkg.dex.clone();
    for _ in 0..config.profiling_events {
        let Some(ev) = source.next_event(&dex, &mut rng) else {
            break;
        };
        // Profiling ignores faults: random inputs hit error paths, which is
        // fine — we only need coverage statistics.
        let _ = vm.fire_entry(ev.entry_index, ev.args);
        if vm.is_killed() || vm.is_frozen() {
            break;
        }
    }
    let telemetry = vm.into_telemetry();
    let hot: HashSet<MethodRef> = telemetry
        .hot_methods(config.hot_method_ratio)
        .into_iter()
        .collect();
    bombdroid_obs::counter_add("profile.events_run", telemetry.events_run);
    bombdroid_obs::counter_add("profile.instr_executed", telemetry.instr_executed);
    bombdroid_obs::record("profile.hot_methods", hot.len() as u64);
    Ok(ProfileResult { telemetry, hot })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_apk::{package_app, AppMeta, DeveloperKey, StringsXml};
    use bombdroid_dex::{Class, DexFile, EntryPoint, FieldRef, MethodBuilder, ParamDomain, Reg};
    use std::sync::Arc;

    fn two_handler_app() -> ApkFile {
        let mut dex = DexFile::new();
        let mut class = Class::new("App");
        // Handler A: writes its argument to a field (profiled values).
        let mut a = MethodBuilder::new("App", "onA", 1);
        a.put_static(FieldRef::new("App", "last"), Reg(0));
        a.ret_void();
        class.methods.push(a.finish());
        // Handler B: trivial.
        let mut b = MethodBuilder::new("App", "onB", 0);
        b.ret_void();
        class.methods.push(b.finish());
        dex.classes.push(class);
        dex.entry_points.push(EntryPoint {
            event: Arc::from("onA"),
            method: bombdroid_dex::MethodRef::new("App", "onA"),
            params: vec![ParamDomain::IntRange(0, 1_000)],
            user_weight: 1.0,
        });
        dex.entry_points.push(EntryPoint {
            event: Arc::from("onB"),
            method: bombdroid_dex::MethodRef::new("App", "onB"),
            params: vec![],
            user_weight: 1.0,
        });
        let mut rng = StdRng::seed_from_u64(1);
        let dev = DeveloperKey::generate(&mut rng);
        package_app(&dex, StringsXml::new(), AppMeta::named("prof"), &dev)
    }

    #[test]
    fn profiling_collects_counts_and_fields() {
        let apk = two_handler_app();
        let cfg = ProtectConfig {
            profiling_events: 500,
            ..ProtectConfig::default()
        };
        let result = profile_app(&apk, &cfg, 7).unwrap();
        assert!(result.telemetry.events_run >= 499);
        assert!(result.telemetry.field_values.contains_key("App.last"));
        let samples = &result.telemetry.field_values["App.last"];
        assert!(samples.len() > 100);
        // 10% of 2 methods floors to 0 hot methods (tiny apps keep all
        // methods as candidates).
        assert_eq!(result.hot.len(), 0);
    }

    #[test]
    fn profiling_is_deterministic() {
        let apk = two_handler_app();
        let cfg = ProtectConfig {
            profiling_events: 200,
            ..ProtectConfig::default()
        };
        let a = profile_app(&apk, &cfg, 9).unwrap();
        let b = profile_app(&apk, &cfg, 9).unwrap();
        assert_eq!(a.telemetry.method_calls, b.telemetry.method_calls);
        assert_eq!(a.hot, b.hot);
    }
}
