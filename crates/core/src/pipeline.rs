//! The end-to-end protection pipeline (paper Fig. 1).
//!
//! Unpack → profile (Dynodroid + Traceview roles) → static analysis and
//! site planning → bomb construction & bytecode instrumentation →
//! encryption → repackage unsigned output for the developer to sign.

use crate::bomb::{arm_artificial, arm_existing, PayloadSpec, PendingBlobs};
use crate::config::{ProtectConfig, ResponseChoice};
use crate::fleet;
use crate::inner;
use crate::payload::DetectionKind;
use crate::profiling::profile_app;
use crate::report::{BombInfo, BombKind, ProtectReport};
use crate::sites::{self, PlannedArtificial, PlannedExisting};
use bombdroid_analysis::Strength;
use bombdroid_apk::container::entry;
use bombdroid_apk::{package_app, stego, ApkFile, AppMeta, DeveloperKey, StringsXml, VerifyError};
use bombdroid_dex::{wire, DexFile, Instr, Method, MethodRef, Value};
use bombdroid_obs as obs;
use rand::{rngs::StdRng, Rng};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// Why protection failed.
#[derive(Debug)]
pub enum ProtectError {
    /// The input APK is not validly signed.
    Install(VerifyError),
    /// Instrumentation produced structurally invalid bytecode (a bug — the
    /// validator is our safety net).
    Validate(Vec<bombdroid_dex::ValidateError>),
}

impl fmt::Display for ProtectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectError::Install(e) => write!(f, "input APK rejected: {e}"),
            ProtectError::Validate(errs) => {
                write!(
                    f,
                    "instrumented DEX failed validation ({} errors)",
                    errs.len()
                )
            }
        }
    }
}

impl std::error::Error for ProtectError {}

impl From<VerifyError> for ProtectError {
    fn from(e: VerifyError) -> Self {
        ProtectError::Install(e)
    }
}

/// A protected-but-unsigned app, to be signed by the legitimate developer
/// ("the private key is kept by the legitimate developer and is not
/// disclosed to BombDroid", §2.3).
#[derive(Debug, Clone)]
pub struct ProtectedApp {
    /// Instrumented bytecode.
    pub dex: DexFile,
    /// Resources including steganographic digest covers.
    pub strings: StringsXml,
    /// Unchanged app metadata.
    pub meta: AppMeta,
    /// What was injected.
    pub report: ProtectReport,
}

impl ProtectedApp {
    /// Signs and packages the protected app with the developer's key.
    pub fn package(&self, key: &DeveloperKey) -> ApkFile {
        package_app(&self.dex, self.strings.clone(), self.meta.clone(), key)
    }
}

/// Bit marking a blob id as *local to a per-method arming task*: the merge
/// pass relocates marked ids to their final position in the dex blob table
/// and leaves unmarked ids (pre-existing blobs) untouched. Real blob counts
/// are nowhere near 2³¹, so the bit is unambiguous.
const LOCAL_BLOB_MARK: u32 = 1 << 31;

/// One pre-drawn instrumentation action: everything RNG-dependent (salt,
/// marker, payload spec) is fixed by the serial plan prologue, so arming is
/// pure computation that can run on any thread.
struct PreparedAction {
    action: Action,
    salt: Vec<u8>,
    spec: PayloadSpec,
}

enum Action {
    Existing(PlannedExisting),
    Bogus(PlannedExisting),
    Artificial(PlannedArtificial),
}

impl Action {
    fn position(&self) -> usize {
        match self {
            Action::Existing(p) | Action::Bogus(p) => p.anchor,
            Action::Artificial(p) => p.at,
        }
    }
    fn method(&self) -> &MethodRef {
        match self {
            Action::Existing(p) | Action::Bogus(p) => &p.site.method,
            Action::Artificial(p) => &p.method,
        }
    }
}

/// Result of arming one method: its pending (not yet sealed) blobs — ids
/// carry [`LOCAL_BLOB_MARK`] — the bomb records, and how many sites were
/// skipped. Sealing is deferred to the merge so the whole app's blobs go
/// through one batched crypto pass.
struct MethodOutcome {
    class_idx: usize,
    method_idx: usize,
    pending: PendingBlobs,
    bombs: Vec<BombInfo>,
    skipped: usize,
}

/// Arms all prepared actions of one method into a local blob vector. Pure:
/// consumes only pre-drawn material, so the result is independent of which
/// thread runs it.
fn arm_method(
    weave_original: bool,
    class_idx: usize,
    method_idx: usize,
    method: &mut Method,
    prepared: Vec<PreparedAction>,
) -> MethodOutcome {
    let mref = method.method_ref();
    let mut pending = PendingBlobs::new(LOCAL_BLOB_MARK);
    let mut bombs = Vec::new();
    let mut skipped = 0usize;
    for PreparedAction { action, salt, spec } in prepared {
        debug_assert_eq!(action.method(), &mref);
        match action {
            Action::Existing(p) => {
                match arm_existing(method, &mut pending, &p, &spec, &salt, weave_original) {
                    Ok(blob) => bombs.push(BombInfo {
                        marker: spec.marker,
                        kind: BombKind::ExistingQc,
                        method: mref.clone(),
                        strength: p.site.strength(),
                        inner: spec.inner.as_ref().map(|i| (i.describe(), i.probability())),
                        detection: spec.detection.as_ref().map(|(k, _)| k.tag()),
                        blob,
                    }),
                    Err(_) => skipped += 1,
                }
            }
            Action::Bogus(p) => match arm_existing(method, &mut pending, &p, &spec, &salt, true) {
                Ok(blob) => bombs.push(BombInfo {
                    marker: None,
                    kind: BombKind::Bogus,
                    method: mref.clone(),
                    strength: p.site.strength(),
                    inner: None,
                    detection: None,
                    blob,
                }),
                Err(_) => skipped += 1,
            },
            Action::Artificial(p) => {
                let strength = match &p.constant {
                    Value::Bool(_) => Strength::Weak,
                    Value::Int(_) => Strength::Medium,
                    _ => Strength::Strong,
                };
                match arm_artificial(method, &mut pending, &p, &spec, &salt) {
                    Ok(blob) => bombs.push(BombInfo {
                        marker: spec.marker,
                        kind: BombKind::ArtificialQc,
                        method: mref.clone(),
                        strength,
                        inner: spec.inner.as_ref().map(|i| (i.describe(), i.probability())),
                        detection: spec.detection.as_ref().map(|(k, _)| k.tag()),
                        blob,
                    }),
                    Err(_) => skipped += 1,
                }
            }
        }
    }
    MethodOutcome {
        class_idx,
        method_idx,
        pending,
        bombs,
        skipped,
    }
}

/// The BombDroid protector.
#[derive(Debug, Clone, Default)]
pub struct Protector {
    config: ProtectConfig,
    threads: Option<usize>,
}

impl Protector {
    /// Creates a protector with the given configuration.
    pub fn new(config: ProtectConfig) -> Self {
        Protector {
            config,
            threads: None,
        }
    }

    /// Pins the instrumentation worker count (output is bit-identical for
    /// any value; this only affects wall-clock). Without a pin, the count
    /// comes from `BOMBDROID_THREADS`, falling back to the CPU count — or
    /// to `1` when already running inside a fleet task, which would
    /// otherwise oversubscribe the machine.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ProtectConfig {
        &self.config
    }

    fn resolve_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n;
        }
        if fleet::in_worker() {
            return 1;
        }
        if let Ok(v) = std::env::var("BOMBDROID_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Protects `apk`, returning the instrumented (unsigned) app and a
    /// report.
    ///
    /// # Errors
    ///
    /// * [`ProtectError::Install`] if the input APK's signature does not
    ///   verify;
    /// * [`ProtectError::Validate`] if instrumentation produced invalid
    ///   bytecode (internal invariant).
    pub fn protect(&self, apk: &ApkFile, rng: &mut StdRng) -> Result<ProtectedApp, ProtectError> {
        let _protect_span = obs::span("pipeline.protect");
        let config = &self.config;
        // Step 1–2: unpack, extract the public key, profile, plan sites.
        let profile = profile_app(apk, config, rng.gen())?;
        let mut dex = (*apk.dex).clone();
        let plan = {
            let _span = obs::span("pipeline.plan");
            sites::plan(&apk.dex, &profile, config, rng)
        };

        // Detection pool + steganographic resource strings.
        let mut strings = apk.strings.clone();
        let detections = {
            let _span = obs::span("pipeline.detections");
            self.build_detections(apk, &plan, &mut strings)
        };

        // Step 3–4: instrument, encrypt — in two phases. Group actions per
        // method, applied top-down (descending position) so indices stay
        // valid.
        let mut by_method: BTreeMap<MethodRef, Vec<Action>> = BTreeMap::new();
        for p in plan.existing.iter().cloned() {
            by_method
                .entry(p.site.method.clone())
                .or_default()
                .push(Action::Existing(p));
        }
        for p in plan.bogus.iter().cloned() {
            by_method
                .entry(p.site.method.clone())
                .or_default()
                .push(Action::Bogus(p));
        }
        for p in plan.artificial.iter().cloned() {
            by_method
                .entry(p.method.clone())
                .or_default()
                .push(Action::Artificial(p));
        }

        let mut report = ProtectReport {
            existing_qc_found: plan.existing_qc_found,
            candidate_methods: plan.candidate_methods,
            hot_methods: plan.hot_methods,
            skipped_sites: plan.skipped_sites,
            original_dex_size: apk.dex_size(),
            ..ProtectReport::default()
        };

        let instrument_span = obs::span("pipeline.instrument");
        let prologue_span = obs::span("pipeline.instrument.prologue");

        // Phase 1 — serial plan prologue. Walk methods in dex order (the
        // order the old single-pass loop armed them in) and pre-draw every
        // RNG-dependent ingredient: salt, then marker/payload spec per
        // action. This consumes `rng` in exactly the serial order, so the
        // fan-out below cannot perturb the stream no matter how it is
        // scheduled.
        let mut next_marker: u32 = 0;
        let mut payload_counter: usize = 0;
        let mut planned_methods: Vec<(usize, usize, Vec<PreparedAction>)> = Vec::new();
        for (ci, class) in dex.classes.iter().enumerate() {
            for (mi, method) in class.methods.iter().enumerate() {
                let mref = method.method_ref();
                let Some(mut actions) = by_method.remove(&mref) else {
                    continue;
                };
                actions.sort_by_key(|a| std::cmp::Reverse(a.position()));
                let prepared = actions
                    .into_iter()
                    .map(|action| {
                        let mut salt = vec![0u8; 8];
                        rng.fill(&mut salt[..]);
                        let spec = match &action {
                            Action::Existing(_) | Action::Artificial(_) => self.real_payload_spec(
                                &detections,
                                &mut next_marker,
                                &mut payload_counter,
                                rng,
                            ),
                            Action::Bogus(_) => PayloadSpec {
                                marker: None,
                                inner: None,
                                detection: None,
                                warn_message: String::new(),
                                mute_others: false,
                            },
                        };
                        PreparedAction { action, salt, spec }
                    })
                    .collect();
                planned_methods.push((ci, mi, prepared));
            }
        }

        prologue_span.end();
        let arm_span = obs::span("pipeline.instrument.arm");

        // Phase 2 — fan per-method arming over the fleet pool. Methods are
        // disjoint, so each task gets `&mut` access to its own method and
        // seals blobs into a task-local vector under LOCAL_BLOB_MARK ids.
        let threads = self.resolve_threads();
        let DexFile { classes, blobs, .. } = &mut dex;
        let outcomes = {
            let mut planned_iter = planned_methods.into_iter().peekable();
            let mut tasks: Vec<(usize, usize, &mut Method, Vec<PreparedAction>)> = Vec::new();
            for (ci, class) in classes.iter_mut().enumerate() {
                for (mi, method) in class.methods.iter_mut().enumerate() {
                    if planned_iter.peek().map(|(pci, pmi, _)| (*pci, *pmi)) == Some((ci, mi)) {
                        let (_, _, prepared) = planned_iter.next().expect("peeked entry");
                        tasks.push((ci, mi, method, prepared));
                    }
                }
            }
            let weave = config.weave_original;
            fleet::run_map(threads, tasks, |(ci, mi, method, prepared)| {
                arm_method(weave, ci, mi, method, prepared)
            })
        };

        // Merge in task (= dex) order: relocate each method's marked blob
        // ids onto the end of the dex blob table and append its bombs. The
        // serial pass interleaved seals in exactly this order, so ids,
        // blob order, and report order are bit-identical to it. Sealing
        // itself pools every method's fragments into one app-wide batch —
        // blob bytes don't depend on batching, only on (key, plaintext).
        let mut staged = PendingBlobs::new(0);
        for outcome in outcomes {
            let base = (blobs.len() + staged.len()) as u32;
            let method = &mut classes[outcome.class_idx].methods[outcome.method_idx];
            for instr in &mut method.body {
                if let Instr::DecryptExec { blob, .. } = instr {
                    if blob.0 & LOCAL_BLOB_MARK != 0 {
                        blob.0 = base + (blob.0 & !LOCAL_BLOB_MARK);
                    }
                }
            }
            for mut bomb in outcome.bombs {
                bomb.blob.0 = base + (bomb.blob.0 & !LOCAL_BLOB_MARK);
                report.bombs.push(bomb);
            }
            staged.absorb(outcome.pending);
            report.skipped_sites += outcome.skipped;
        }
        blobs.extend(staged.seal_all());

        arm_span.end();
        instrument_span.end();

        {
            let _span = obs::span("pipeline.validate");
            bombdroid_dex::validate(&dex).map_err(ProtectError::Validate)?;
            report.protected_dex_size = wire::encoded_dex_len(&dex);
        }

        let count_kind =
            |kind: BombKind| report.bombs.iter().filter(|b| b.kind == kind).count() as u64;
        obs::counter_add("pipeline.apps_protected", 1);
        obs::counter_add("pipeline.bombs.existing", count_kind(BombKind::ExistingQc));
        obs::counter_add(
            "pipeline.bombs.artificial",
            count_kind(BombKind::ArtificialQc),
        );
        obs::counter_add("pipeline.bombs.bogus", count_kind(BombKind::Bogus));
        obs::counter_add("pipeline.sites_skipped", report.skipped_sites as u64);
        obs::record("pipeline.bombs_per_app", report.bombs.len() as u64);
        obs::record(
            "pipeline.dex_growth_bytes",
            report
                .protected_dex_size
                .saturating_sub(report.original_dex_size) as u64,
        );

        Ok(ProtectedApp {
            dex,
            strings,
            meta: apk.meta.clone(),
            report,
        })
    }

    /// Builds the detection pool: public key, manifest digests of entries a
    /// repackager must change (icon, AndroidManifest), and code scans of
    /// classes the plan leaves untouched. Hides expected digests in
    /// `strings.xml` covers.
    fn build_detections(
        &self,
        apk: &ApkFile,
        plan: &sites::SitePlan,
        strings: &mut StringsXml,
    ) -> Vec<DetectionKind> {
        let mut detections = Vec::new();
        let mut stego_n = 0usize;
        let mut hide = |strings: &mut StringsXml, payload: &[u8]| -> String {
            let key = format!("cfg_token_{stego_n}");
            stego_n += 1;
            strings.set(key.clone(), stego::embed(payload));
            key
        };
        if self.config.detection.public_key {
            detections.push(DetectionKind::PublicKey {
                original: apk.cert.public_key.to_bytes().to_vec(),
            });
        }
        if self.config.detection.digest {
            // Only the icon and AndroidManifest digests are planted;
            // computing them per entry skips the full-DEX hash a complete
            // manifest would redo (install already hashed it once).
            for e in [entry::ICON, entry::ANDROID_MANIFEST] {
                if let Some(d) = apk.entry_digest(e) {
                    let key = hide(strings, &d);
                    detections.push(DetectionKind::ManifestDigest {
                        entry: e.to_string(),
                        stego_key: key,
                    });
                }
            }
        }
        if self.config.detection.code_scan {
            let touched: HashSet<&str> = plan
                .existing
                .iter()
                .chain(plan.bogus.iter())
                .map(|p| p.site.method.class.as_str())
                .chain(plan.artificial.iter().map(|p| p.method.class.as_str()))
                .collect();
            let mut scans = 0;
            for class in &apk.dex.classes {
                if touched.contains(class.name.as_str()) {
                    continue;
                }
                let digest = wire::class_digest(class);
                let key = hide(strings, &digest);
                detections.push(DetectionKind::CodeScan {
                    class: class.name.as_str().to_string(),
                    stego_key: key,
                });
                scans += 1;
                if scans >= 2 {
                    break;
                }
            }
        }
        detections
    }

    fn real_payload_spec(
        &self,
        detections: &[DetectionKind],
        next_marker: &mut u32,
        payload_counter: &mut usize,
        rng: &mut StdRng,
    ) -> PayloadSpec {
        let marker = *next_marker;
        *next_marker += 1;
        let detection = if detections.is_empty() {
            None
        } else {
            let kind = detections[*payload_counter % detections.len()].clone();
            let response = if self.config.responses.is_empty() {
                ResponseChoice::Kill
            } else {
                self.config.responses[*payload_counter % self.config.responses.len()]
            };
            Some((kind, response))
        };
        *payload_counter += 1;
        let inner_cond = self
            .config
            .double_trigger
            .then(|| inner::synthesize(rng, self.config.inner_probability));
        PayloadSpec {
            marker: Some(marker),
            inner: inner_cond,
            detection,
            warn_message: "unofficial copy detected".to_string(),
            mute_others: self.config.mute_after_detection,
        }
    }
}
