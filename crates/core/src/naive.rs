//! The naive logic-bomb strawman of paper Listing 2: detection payloads
//! guarded by *plain* conditions, with no hashing, no encryption, no
//! weaving.
//!
//! "a naive use of bombs will not work for our purpose" (§3.1) — this
//! protector exists so the attack suite can demonstrate exactly that:
//! symbolic execution solves `X == c` directly, forced execution and
//! slicing expose the payload, code instrumentation flips the branch, and
//! deletion is consequence-free.

use crate::config::{ProtectConfig, ResponseChoice};
use crate::fragment::FragmentBuilder;
use crate::payload::{emit_detection, DetectionKind};
use crate::profiling::profile_app;
use crate::report::{BombInfo, BombKind, ProtectReport};
use crate::rewrite::rewrite_region;
use crate::sites;
use bombdroid_apk::{ApkFile, VerifyError};
use bombdroid_dex::{wire, BlobId, HostApi};
use rand::{rngs::StdRng, Rng};

pub use crate::pipeline::ProtectedApp;

/// Protector that injects plaintext bombs at existing QC sites.
#[derive(Debug, Clone, Default)]
pub struct NaiveProtector {
    config: ProtectConfig,
}

impl NaiveProtector {
    /// Creates a naive protector (uses the same site-selection settings as
    /// the real one).
    pub fn new(config: ProtectConfig) -> Self {
        NaiveProtector { config }
    }

    /// Injects plaintext detection bombs into `apk`.
    ///
    /// # Errors
    ///
    /// Returns the install-verification error for an unsigned input.
    pub fn protect(&self, apk: &ApkFile, rng: &mut StdRng) -> Result<ProtectedApp, VerifyError> {
        let profile = profile_app(apk, &self.config, rng.gen())?;
        let mut dex = (*apk.dex).clone();
        let plan = sites::plan(&apk.dex, &profile, &self.config, rng);
        let ko = apk.cert.public_key.to_bytes().to_vec();

        let mut report = ProtectReport {
            existing_qc_found: plan.existing_qc_found,
            candidate_methods: plan.candidate_methods,
            hot_methods: plan.hot_methods,
            original_dex_size: wire::encoded_dex_len(&apk.dex),
            ..ProtectReport::default()
        };

        let mut marker = 0u32;
        for planned in plan.existing.iter().chain(plan.bogus.iter()) {
            let Some(method) = dex.method_mut(&planned.site.method) else {
                continue;
            };
            // Payload in plaintext, inserted at the body entry of the
            // (unchanged) plain condition.
            let mut f = FragmentBuilder::new(method.registers);
            f.host(HostApi::Marker(marker), vec![], None);
            emit_detection(
                &mut f,
                &DetectionKind::PublicKey {
                    original: ko.clone(),
                },
                ResponseChoice::Kill,
                "pirated copy detected",
                false,
            );
            // `emit_detection` places every label it creates, so this only
            // fails if that invariant breaks — skip the site rather than
            // abort the whole protection.
            let Ok(payload) = f.finish() else {
                report.skipped_sites += 1;
                continue;
            };
            if rewrite_region(
                method,
                planned.site.body_entry,
                planned.site.body_entry,
                payload,
            )
            .is_err()
            {
                report.skipped_sites += 1;
                continue;
            }
            report.bombs.push(BombInfo {
                marker: Some(marker),
                kind: BombKind::ExistingQc,
                method: planned.site.method.clone(),
                strength: planned.site.strength(),
                inner: None,
                detection: Some("public-key"),
                blob: BlobId(u32::MAX), // no blob: plaintext payload
            });
            marker += 1;
        }

        report.protected_dex_size = wire::encoded_dex_len(&dex);
        Ok(ProtectedApp {
            dex,
            strings: apk.strings.clone(),
            meta: apk.meta.clone(),
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::Instr;
    use rand::SeedableRng;

    #[test]
    fn naive_bombs_are_visible_in_plaintext() {
        let mut rng = StdRng::seed_from_u64(1);
        let dev = bombdroid_apk::DeveloperKey::generate(&mut rng);
        let app = bombdroid_corpus::flagship::angulo();
        let apk = app.apk(&dev);
        let protector = NaiveProtector::new(ProtectConfig::fast_profile());
        let protected = protector.protect(&apk, &mut rng).unwrap();
        assert!(protected.report.bombs_injected() > 0);
        // The payload is greppable — unlike the real BombDroid output.
        let text = bombdroid_dex::asm::disasm_dex(&protected.dex);
        assert!(text.contains("Certificate.getPublicKey"));
        assert!(!protected
            .dex
            .methods()
            .flat_map(|m| m.body.iter())
            .any(|i| matches!(i, Instr::DecryptExec { .. })));
    }
}
