//! Protect-as-a-service: the sustained-throughput front end over the
//! two-phase protect engine (ROADMAP item 5).
//!
//! The paper's deployment story assumes store-side protection of every
//! submitted APK, which makes `protect` a server workload, not a batch
//! script. This module supplies the three pieces that workload needs:
//!
//! 1. **Content-addressed protection cache** ([`ProtectionCache`]): keyed
//!    by app content digest × config fingerprint × effective seed, with
//!    single-flight deduplication — N concurrent requests for the same
//!    artifact run exactly one protect pass and share the result.
//! 2. **Streaming intake with admission control** ([`ProtectService`]):
//!    a bounded queue of [`ProtectJob`]s; submissions past the depth
//!    limit are shed with a typed [`AdmissionError`] instead of growing
//!    memory without bound.
//! 3. **Fleet-sharded drain**: queued jobs run across the existing fleet
//!    pool ([`fleet::run_map`]), and results come back in submission
//!    order regardless of which worker finished first. Seeds derive from
//!    the job's [`SeedPolicy`] and app digest — never from scheduling —
//!    so a drain's outputs are byte-deterministic.
//!
//! Queue-wait and service-time latencies are recorded through
//! `bombdroid-obs` timings (`service.queue_wait`, `service.time`), which
//! the deterministic export mode already omits.

use crate::config::ProtectConfig;
use crate::fleet;
use crate::pipeline::{ProtectError, ProtectedApp, Protector};
use bombdroid_apk::ApkFile;
use bombdroid_crypto::{sha256, Digest256};
use bombdroid_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Fingerprint of a [`ProtectConfig`]: SHA-256 over its canonical `Debug`
/// form. `ProtectConfig` is plain data, so the `Debug` rendering covers
/// every field; two configs collide iff they are field-for-field equal.
pub fn config_fingerprint(config: &ProtectConfig) -> Digest256 {
    sha256::digest(format!("{config:?}").as_bytes())
}

/// How a job's protection seed is chosen.
///
/// The seed feeds the pipeline's `StdRng` and therefore selects trigger
/// sites, fragments, and keys — it is part of the artifact's identity,
/// so it is part of the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedPolicy {
    /// Use exactly this seed.
    Fixed(u64),
    /// Derive the seed from `base` and the app's content digest, so the
    /// same app submitted twice lands on the same seed (and thus the same
    /// cache slot) no matter where it sits in the queue, while distinct
    /// apps still diversify.
    PerApp {
        /// Base seed mixed with the app digest.
        base: u64,
    },
}

impl SeedPolicy {
    /// The concrete seed this policy yields for an app.
    pub fn effective_seed(&self, app_digest: &Digest256) -> u64 {
        match *self {
            SeedPolicy::Fixed(seed) => seed,
            SeedPolicy::PerApp { base } => {
                // SplitMix64-style mix of the base with the digest's first
                // eight bytes: cheap, stable, and spreads nearby bases.
                let d = u64::from_le_bytes(app_digest[..8].try_into().unwrap());
                let mut z = base ^ d.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            }
        }
    }
}

/// Full identity of a protection artifact.
#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    app: Digest256,
    config: Digest256,
    seed: u64,
}

type Slot = Arc<Mutex<Option<Arc<ProtectedApp>>>>;

/// Content-addressed protection cache with single-flight deduplication.
///
/// Keyed by app content digest × config fingerprint × effective seed —
/// everything that determines the output bytes, and nothing that doesn't
/// (the developer key, for instance, never reaches the protect pipeline).
///
/// Locking is two-level: the outer map lock is held only long enough to
/// find-or-create a per-key slot; the protect pass itself runs under that
/// slot's own lock. Concurrent requests for *different* keys proceed in
/// parallel, while a stampede on *one* key serializes — the first caller
/// protects, the rest wait and share the `Arc`. Failed passes leave the
/// slot empty so a later request retries rather than caching the error.
#[derive(Default)]
pub struct ProtectionCache {
    slots: Mutex<HashMap<CacheKey, Slot>>,
    protects: AtomicUsize,
    hits: AtomicUsize,
}

impl ProtectionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of protect passes actually executed (misses).
    pub fn protect_count(&self) -> usize {
        self.protects.load(Ordering::Relaxed)
    }

    /// Number of requests served from an already-populated slot.
    pub fn hit_count(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of distinct keys with a populated or in-flight slot.
    pub fn len(&self) -> usize {
        lock_recover(&self.slots).len()
    }

    /// Whether the cache holds no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the protected artifact for `(apk, config, seed)`, running
    /// the protect pipeline only on a cache miss.
    ///
    /// The boolean is `true` when the artifact was served from cache
    /// without running (or waiting out) a protect pass of our own.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtectError`] from the pipeline on a miss; the slot
    /// stays empty so subsequent requests retry.
    pub fn get_or_protect(
        &self,
        apk: &ApkFile,
        config: &ProtectConfig,
        seed: u64,
    ) -> Result<(Arc<ProtectedApp>, bool), ProtectError> {
        let key = CacheKey {
            app: apk.content_digest(),
            config: config_fingerprint(config),
            seed,
        };
        obs::counter_add("service.cache.requests", 1);
        let slot = {
            let mut slots = lock_recover(&self.slots);
            Arc::clone(slots.entry(key).or_default())
        };
        let mut filled = lock_recover(&slot);
        if let Some(artifact) = filled.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::counter_add("service.cache.hits", 1);
            return Ok((Arc::clone(artifact), true));
        }
        // Miss: we hold the slot lock, so we are the single flight for
        // this key. Everyone else queued on `filled` sees our result.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let protected = Protector::new(config.clone()).protect(apk, &mut rng)?;
        self.protects.fetch_add(1, Ordering::Relaxed);
        obs::counter_add("service.cache.protects", 1);
        let artifact = Arc::new(protected);
        *filled = Some(Arc::clone(&artifact));
        Ok((artifact, false))
    }
}

/// Process-wide shared cache, for callers (bench harness, service
/// instances) that should deduplicate against each other.
pub fn shared_protection_cache() -> &'static ProtectionCache {
    static CACHE: OnceLock<ProtectionCache> = OnceLock::new();
    CACHE.get_or_init(ProtectionCache::new)
}

/// One unit of intake: an app to protect, how, and with which seed.
#[derive(Clone)]
pub struct ProtectJob {
    /// The signed input APK.
    pub apk: Arc<ApkFile>,
    /// Protection parameters.
    pub config: ProtectConfig,
    /// Seed selection policy.
    pub seed: SeedPolicy,
}

/// Receipt for an admitted job: its position in the intake order, which
/// is also its position in [`ProtectService::drain`]'s result vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTicket {
    /// Zero-based submission index within the current batch.
    pub index: usize,
}

/// Why a submission was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The intake queue is at capacity; the job was shed, not queued.
    QueueFull {
        /// Jobs currently queued.
        depth: usize,
        /// Configured queue bound.
        limit: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { depth, limit } => {
                write!(f, "intake queue full ({depth}/{limit}); job shed")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Result of one drained job.
pub struct JobOutcome {
    /// Submission index (matches the [`JobTicket`]).
    pub index: usize,
    /// Content digest of the input app.
    pub app_digest: Digest256,
    /// The effective seed the job's policy resolved to.
    pub seed: u64,
    /// Whether the artifact came out of the cache without a fresh pass.
    pub cache_hit: bool,
    /// The protected artifact, shared with any duplicate jobs.
    pub result: Result<Arc<ProtectedApp>, ProtectError>,
}

/// Streaming intake over the protect engine: bounded admission, fleet
/// sharding, deterministic result ordering.
///
/// Usage is submit/drain: [`submit`](Self::submit) enqueues jobs until
/// the depth bound sheds them, [`drain`](Self::drain) runs everything
/// queued across the fleet pool and returns outcomes in submission
/// order. The service can be reused across drains; counters accumulate.
pub struct ProtectService {
    threads: usize,
    max_queue: usize,
    cache: Arc<ProtectionCache>,
    queue: Vec<(ProtectJob, Instant)>,
    submitted: usize,
    shed: usize,
}

impl ProtectService {
    /// A service with a queue bound of `max_queue` jobs, its own private
    /// cache, and thread count from `BOMBDROID_THREADS` (or all cores).
    pub fn new(max_queue: usize) -> Self {
        let threads = fleet::FleetConfig::from_env(0).threads;
        Self::with_parts(threads, max_queue, Arc::new(ProtectionCache::new()))
    }

    /// [`new`](Self::new) with an explicit thread count.
    pub fn with_threads(threads: usize, max_queue: usize) -> Self {
        Self::with_parts(threads, max_queue, Arc::new(ProtectionCache::new()))
    }

    /// Full constructor: share a cache across services (or with the
    /// process-wide one) by passing the same `Arc`.
    pub fn with_parts(threads: usize, max_queue: usize, cache: Arc<ProtectionCache>) -> Self {
        ProtectService {
            threads: threads.max(1),
            max_queue: max_queue.max(1),
            cache,
            queue: Vec::new(),
            submitted: 0,
            shed: 0,
        }
    }

    /// The cache backing this service.
    pub fn cache(&self) -> &ProtectionCache {
        &self.cache
    }

    /// Jobs currently queued and not yet drained.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Total jobs admitted over the service's lifetime.
    pub fn submitted_count(&self) -> usize {
        self.submitted
    }

    /// Total jobs refused by admission control.
    pub fn shed_count(&self) -> usize {
        self.shed
    }

    /// Admits `job` to the intake queue.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] once the queue holds `max_queue`
    /// jobs; the job is dropped and the caller decides whether to retry
    /// after a drain (backpressure) or give up (shed).
    pub fn submit(&mut self, job: ProtectJob) -> Result<JobTicket, AdmissionError> {
        if self.queue.len() >= self.max_queue {
            self.shed += 1;
            obs::counter_add("service.shed", 1);
            return Err(AdmissionError::QueueFull {
                depth: self.queue.len(),
                limit: self.max_queue,
            });
        }
        let index = self.queue.len();
        self.queue.push((job, Instant::now()));
        self.submitted += 1;
        obs::counter_add("service.submitted", 1);
        Ok(JobTicket { index })
    }

    /// Runs every queued job across the fleet pool and returns outcomes
    /// in submission order.
    ///
    /// Duplicate jobs (same app bytes, config, and effective seed) are
    /// single-flighted through the cache: one protect pass, shared
    /// artifact, `cache_hit` set on all but the pass that ran. Output
    /// bytes depend only on each job's inputs — worker scheduling cannot
    /// leak into them — so a drain is deterministic end to end.
    pub fn drain(&mut self) -> Vec<JobOutcome> {
        let jobs = std::mem::take(&mut self.queue);
        if jobs.is_empty() {
            return Vec::new();
        }
        let cache = &self.cache;
        let tasks: Vec<(usize, ProtectJob, Instant)> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (job, enqueued))| (i, job, enqueued))
            .collect();
        let outcomes = fleet::run_map(self.threads, tasks, |(index, job, enqueued)| {
            let queue_wait = enqueued.elapsed();
            let served = Instant::now();
            let app_digest = job.apk.content_digest();
            let seed = job.seed.effective_seed(&app_digest);
            let result = cache.get_or_protect(&job.apk, &job.config, seed);
            let (cache_hit, result) = match result {
                Ok((artifact, hit)) => (hit, Ok(artifact)),
                Err(e) => (false, Err(e)),
            };
            let outcome = JobOutcome {
                index,
                app_digest,
                seed,
                cache_hit,
                result,
            };
            (
                outcome,
                queue_wait.as_nanos() as u64,
                served.elapsed().as_nanos() as u64,
            )
        });
        // Latency histograms are folded serially on the caller's thread,
        // in submission order: worker threads fall through to the global
        // recorder, which would bypass a caller-installed local one.
        let mut results = Vec::with_capacity(outcomes.len());
        for (outcome, wait_ns, service_ns) in outcomes {
            obs::timing_record("service.queue_wait", wait_ns);
            obs::timing_record("service.time", service_ns);
            results.push(outcome);
        }
        results
    }
}

/// Locks `m`, recovering the guard if a previous holder panicked — every
/// value behind these mutexes stays structurally valid mid-operation.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_apk::DeveloperKey;
    use bombdroid_corpus::flagship;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_apks() -> Vec<Arc<ApkFile>> {
        let dev = DeveloperKey::generate(&mut StdRng::seed_from_u64(0x5E41));
        flagship::all()
            .iter()
            .take(3)
            .map(|app| Arc::new(app.apk(&dev)))
            .collect()
    }

    #[test]
    fn seed_policy_fixed_ignores_digest() {
        let a = [1u8; 32];
        let b = [2u8; 32];
        let p = SeedPolicy::Fixed(42);
        assert_eq!(p.effective_seed(&a), 42);
        assert_eq!(p.effective_seed(&b), 42);
    }

    #[test]
    fn seed_policy_per_app_separates_apps_not_submissions() {
        let a = [1u8; 32];
        let b = [2u8; 32];
        let p = SeedPolicy::PerApp { base: 7 };
        assert_eq!(p.effective_seed(&a), p.effective_seed(&a));
        assert_ne!(p.effective_seed(&a), p.effective_seed(&b));
        assert_ne!(
            SeedPolicy::PerApp { base: 8 }.effective_seed(&a),
            p.effective_seed(&a)
        );
    }

    #[test]
    fn cache_hits_on_identical_key_and_misses_across_keys() {
        let apks = sample_apks();
        let cache = ProtectionCache::new();
        let cfg = ProtectConfig::fast_profile();
        let (first, hit) = cache.get_or_protect(&apks[0], &cfg, 1).unwrap();
        assert!(!hit);
        let (second, hit) = cache.get_or_protect(&apks[0], &cfg, 1).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second));
        // Different seed, different app, different config: all misses.
        let (_, hit) = cache.get_or_protect(&apks[0], &cfg, 2).unwrap();
        assert!(!hit);
        let (_, hit) = cache.get_or_protect(&apks[1], &cfg, 1).unwrap();
        assert!(!hit);
        let mut other = cfg.clone();
        other.bogus_ratio = 0.75;
        let (_, hit) = cache.get_or_protect(&apks[0], &other, 1).unwrap();
        assert!(!hit);
        assert_eq!(cache.protect_count(), 4);
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn stampede_runs_exactly_one_protect_pass() {
        let apks = sample_apks();
        let cache = Arc::new(ProtectionCache::new());
        let cfg = ProtectConfig::fast_profile();
        let threads = 8;
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let apk = Arc::clone(&apks[0]);
                let cfg = cfg.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let (artifact, _) = cache.get_or_protect(&apk, &cfg, 9).unwrap();
                    bombdroid_dex::wire::encode_dex(&artifact.dex)
                })
            })
            .collect();
        let outs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(cache.protect_count(), 1, "stampede must single-flight");
        assert_eq!(cache.hit_count(), threads - 1);
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "all callers share bytes"
        );
    }

    #[test]
    fn no_bleed_across_config_fingerprints_and_seed_policies() {
        let apks = sample_apks();
        let cache = ProtectionCache::new();
        let base_cfg = ProtectConfig::fast_profile();
        let mut single = base_cfg.clone();
        single.double_trigger = false;
        let digest = apks[0].content_digest();
        let seed_a = SeedPolicy::Fixed(11).effective_seed(&digest);
        let seed_b = SeedPolicy::PerApp { base: 11 }.effective_seed(&digest);
        assert_ne!(
            seed_a, seed_b,
            "policies must resolve to distinct seeds here"
        );
        let (double_a, _) = cache.get_or_protect(&apks[0], &base_cfg, seed_a).unwrap();
        let (single_a, _) = cache.get_or_protect(&apks[0], &single, seed_a).unwrap();
        let (double_b, _) = cache.get_or_protect(&apks[0], &base_cfg, seed_b).unwrap();
        assert_eq!(cache.protect_count(), 3, "three keys, three passes");
        // Slots must not alias: each key yields its own artifact, and the
        // config difference is visible in the output (single- vs
        // double-trigger bombs).
        assert!(!Arc::ptr_eq(&double_a, &single_a));
        assert!(!Arc::ptr_eq(&double_a, &double_b));
        assert_ne!(
            bombdroid_dex::wire::encode_dex(&double_a.dex),
            bombdroid_dex::wire::encode_dex(&single_a.dex)
        );
        assert_ne!(
            bombdroid_dex::wire::encode_dex(&double_a.dex),
            bombdroid_dex::wire::encode_dex(&double_b.dex)
        );
        // Re-requesting each key returns its own cached artifact.
        let (again, hit) = cache.get_or_protect(&apks[0], &single, seed_a).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&again, &single_a));
    }

    #[test]
    fn submit_sheds_past_queue_bound() {
        let apks = sample_apks();
        let mut svc = ProtectService::with_threads(1, 2);
        let job = ProtectJob {
            apk: Arc::clone(&apks[0]),
            config: ProtectConfig::fast_profile(),
            seed: SeedPolicy::Fixed(1),
        };
        assert_eq!(svc.submit(job.clone()).unwrap(), JobTicket { index: 0 });
        assert_eq!(svc.submit(job.clone()).unwrap(), JobTicket { index: 1 });
        let err = svc.submit(job.clone()).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull { depth: 2, limit: 2 });
        assert_eq!(svc.shed_count(), 1);
        assert_eq!(svc.queue_depth(), 2);
        // Draining frees capacity: backpressure, not permanent rejection.
        let outcomes = svc.drain();
        assert_eq!(outcomes.len(), 2);
        assert!(svc.submit(job).is_ok());
    }

    #[test]
    fn drain_returns_submission_order_and_shares_duplicates() {
        let apks = sample_apks();
        let cfg = ProtectConfig::fast_profile();
        for threads in [1, 3] {
            let mut svc = ProtectService::with_threads(threads, 16);
            // a, b, a(dup), c, b(dup) — duplicates share one pass each.
            for apk in [&apks[0], &apks[1], &apks[0], &apks[2], &apks[1]] {
                svc.submit(ProtectJob {
                    apk: Arc::clone(apk),
                    config: cfg.clone(),
                    seed: SeedPolicy::PerApp { base: 0x7AB0 },
                })
                .unwrap();
            }
            let outcomes = svc.drain();
            assert_eq!(outcomes.len(), 5);
            for (i, o) in outcomes.iter().enumerate() {
                assert_eq!(o.index, i);
                assert!(o.result.is_ok());
            }
            assert_eq!(outcomes[0].app_digest, outcomes[2].app_digest);
            assert_eq!(outcomes[0].seed, outcomes[2].seed);
            assert!(Arc::ptr_eq(
                outcomes[0].result.as_ref().unwrap(),
                outcomes[2].result.as_ref().unwrap()
            ));
            assert!(Arc::ptr_eq(
                outcomes[1].result.as_ref().unwrap(),
                outcomes[4].result.as_ref().unwrap()
            ));
            // Exactly three distinct artifacts protected, two served as
            // duplicates (whether by hit or single-flight wait).
            assert_eq!(svc.cache().protect_count(), 3);
            assert_eq!(
                outcomes.iter().filter(|o| o.cache_hit).count() + svc.cache().protect_count(),
                5
            );
        }
    }

    #[test]
    fn protect_output_identical() {
        // The service path (content-addressed cache over the batch-crypto
        // pipeline) must change no wire bytes versus driving the Protector
        // directly with the same inputs.
        let apks = sample_apks();
        let cfg = ProtectConfig::fast_profile();
        let cache = ProtectionCache::new();
        for (i, apk) in apks.iter().enumerate() {
            let seed = 0x7AB0 + i as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let direct = Protector::new(cfg.clone()).protect(apk, &mut rng).unwrap();
            let (via_service, hit) = cache.get_or_protect(apk, &cfg, seed).unwrap();
            assert!(!hit);
            assert_eq!(
                bombdroid_dex::wire::encode_dex(&direct.dex),
                bombdroid_dex::wire::encode_dex(&via_service.dex),
                "service path altered DEX wire bytes"
            );
            assert_eq!(direct.strings.to_bytes(), via_service.strings.to_bytes());
            assert_eq!(
                format!("{:?}", direct.report),
                format!("{:?}", via_service.report)
            );
        }
    }

    #[test]
    fn drain_outputs_independent_of_thread_count() {
        let apks = sample_apks();
        let cfg = ProtectConfig::fast_profile();
        let run = |threads: usize| {
            let mut svc = ProtectService::with_threads(threads, 8);
            for apk in &apks {
                svc.submit(ProtectJob {
                    apk: Arc::clone(apk),
                    config: cfg.clone(),
                    seed: SeedPolicy::PerApp { base: 0xBEEF },
                })
                .unwrap();
            }
            svc.drain()
                .into_iter()
                .map(|o| {
                    let app = o.result.unwrap();
                    bombdroid_dex::wire::encode_dex(&app.dex)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }
}
