//! `MANIFEST.MF`: per-entry digests, managed by the Android system after
//! install (paper §4.1: "As MANIFEST.MF is managed by the Android system,
//! app processes cannot manipulate it").

use bombdroid_crypto::{sha256, Digest256};
use std::collections::BTreeMap;

/// The manifest: ordered map from entry name to SHA-256 digest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    entries: BTreeMap<String, Digest256>,
}

impl Manifest {
    /// Creates an empty manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes a manifest over a set of named entries.
    pub fn compute<'a>(entries: impl IntoIterator<Item = (&'a str, &'a [u8])>) -> Self {
        let mut m = Manifest::new();
        for (name, data) in entries {
            m.entries.insert(name.to_string(), sha256::digest(data));
        }
        m
    }

    /// Records a precomputed digest for `entry` (for callers that already
    /// hold an entry's digest — e.g. a streamed DEX digest — and must not
    /// re-materialize the bytes just to hash them).
    pub fn insert(&mut self, entry: &str, digest: Digest256) {
        self.entries.insert(entry.to_string(), digest);
    }

    /// The digest recorded for `entry`, if present.
    pub fn digest(&self, entry: &str) -> Option<&Digest256> {
        self.entries.get(entry)
    }

    /// Iterates `(entry, digest)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Digest256)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the manifest has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Canonical byte serialization (what gets signed into `CERT.RSA`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (name, digest) in &self.entries {
            out.extend_from_slice(name.as_bytes());
            out.push(b'\n');
            out.extend_from_slice(digest);
            out.push(b'\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_and_lookup() {
        let m = Manifest::compute([
            ("classes.dex", b"dexbytes".as_slice()),
            ("res/strings.xml", b"<xml/>".as_slice()),
        ]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.digest("classes.dex"), Some(&sha256::digest(b"dexbytes")));
        assert_eq!(m.digest("missing"), None);
    }

    #[test]
    fn serialization_is_order_independent() {
        let a = Manifest::compute([("b", b"2".as_slice()), ("a", b"1".as_slice())]);
        let b = Manifest::compute([("a", b"1".as_slice()), ("b", b"2".as_slice())]);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn digest_changes_with_content() {
        let a = Manifest::compute([("classes.dex", b"original".as_slice())]);
        let b = Manifest::compute([("classes.dex", b"modified".as_slice())]);
        assert_ne!(a.digest("classes.dex"), b.digest("classes.dex"));
    }
}
