//! Textbook RSA over 64-bit moduli — the developer signing keys.
//!
//! Android app signing binds an APK to its developer's public/private key
//! pair; repackaging forces a key change (paper §2.1). Nothing in the paper
//! attacks RSA itself, so a miniature-but-real RSA (random 32-bit primes
//! found by deterministic Miller–Rabin, `e = 65537`, CRT-free decryption)
//! keeps the exact semantics — unique keys per developer, signatures that
//! verify only under the matching public key — at negligible cost.

use bombdroid_crypto::sha256;
use rand::Rng;
use std::fmt;

/// Modular multiplication without overflow (via `u128`).
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation.
fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin, exact for all `u64` with this witness set.
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn random_prime_32(rng: &mut impl Rng) -> u64 {
    loop {
        // Odd 32-bit candidate with the top bit set so n = p*q fills 64 bits.
        let candidate = (rng.gen::<u32>() | 0x8000_0001) as u64;
        if is_prime(candidate) {
            return candidate;
        }
    }
}

/// Extended Euclid: returns `e⁻¹ mod φ` if it exists.
fn mod_inverse(e: u64, phi: u64) -> Option<u64> {
    let (mut old_r, mut r) = (e as i128, phi as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    Some(old_s.rem_euclid(phi as i128) as u64)
}

const E: u64 = 65_537;

/// A developer's public key — the value compared by repackaging detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    /// RSA modulus `n = p·q`.
    pub n: u64,
    /// Public exponent (always 65537 here).
    pub e: u64,
}

impl PublicKey {
    /// Serializes the key to the byte string embedded in `CERT.RSA` and in
    /// detection payloads (`Ko` in §4.1).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.n.to_be_bytes());
        out[8..].copy_from_slice(&self.e.to_be_bytes());
        out
    }

    /// Parses key bytes back (inverse of [`PublicKey::to_bytes`]).
    ///
    /// Returns `None` if `bytes` is not exactly 16 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 16 {
            return None;
        }
        Some(PublicKey {
            n: u64::from_be_bytes(bytes[..8].try_into().ok()?),
            e: u64::from_be_bytes(bytes[8..].try_into().ok()?),
        })
    }

    /// Verifies `sig` over `message`.
    pub fn verify(self, message: &[u8], sig: u64) -> bool {
        let h = digest_to_residue(message, self.n);
        pow_mod(sig, self.e, self.n) == h
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rsa64:{:016x}:{:x}", self.n, self.e)
    }
}

/// A developer's full keypair. The private exponent never leaves the
/// developer (the protector receives only the public key — paper §2.3:
/// "the private key is kept by the legitimate developer and is not
/// disclosed to BombDroid").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeveloperKey {
    /// Public half.
    pub public: PublicKey,
    d: u64,
}

impl DeveloperKey {
    /// Generates a fresh keypair from the supplied RNG (deterministic under
    /// a seeded RNG, so experiments are reproducible).
    pub fn generate(rng: &mut impl Rng) -> Self {
        loop {
            let p = random_prime_32(rng);
            let q = random_prime_32(rng);
            if p == q {
                continue;
            }
            let n = p * q;
            let phi = (p - 1) * (q - 1);
            let Some(d) = mod_inverse(E, phi) else {
                continue;
            };
            return DeveloperKey {
                public: PublicKey { n, e: E },
                d,
            };
        }
    }

    /// Signs `message` (hash-then-sign).
    pub fn sign(&self, message: &[u8]) -> u64 {
        let h = digest_to_residue(message, self.public.n);
        pow_mod(h, self.d, self.public.n)
    }
}

/// Reduces a SHA-256 digest of the message into the RSA residue ring.
fn digest_to_residue(message: &[u8], n: u64) -> u64 {
    let d = sha256::digest(message);
    u64::from_be_bytes(d[..8].try_into().expect("8 bytes")) % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn miller_rabin_agrees_with_trial_division() {
        fn trial(n: u64) -> bool {
            if n < 2 {
                return false;
            }
            let mut i = 2;
            while i * i <= n {
                if n.is_multiple_of(i) {
                    return false;
                }
                i += 1;
            }
            true
        }
        for n in 0..2_000u64 {
            assert_eq!(is_prime(n), trial(n), "n = {n}");
        }
        // A few structured cases: Carmichael numbers and large primes.
        assert!(!is_prime(561));
        assert!(!is_prime(41041));
        assert!(is_prime(4_294_967_291)); // largest 32-bit prime
        assert!(is_prime(18_446_744_073_709_551_557)); // largest 64-bit prime
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(42);
        let key = DeveloperKey::generate(&mut rng);
        let msg = b"manifest digest bytes";
        let sig = key.sign(msg);
        assert!(key.public.verify(msg, sig));
        assert!(!key.public.verify(b"tampered", sig));
        assert!(!key.public.verify(msg, sig ^ 1));
    }

    #[test]
    fn distinct_developers_distinct_keys() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = DeveloperKey::generate(&mut rng);
        let b = DeveloperKey::generate(&mut rng);
        assert_ne!(a.public, b.public);
        // A signature by one developer never verifies under the other's key.
        let sig = a.sign(b"apk");
        assert!(!b.public.verify(b"apk", sig));
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let key = DeveloperKey::generate(&mut rng);
        let bytes = key.public.to_bytes();
        assert_eq!(PublicKey::from_bytes(&bytes), Some(key.public));
        assert_eq!(PublicKey::from_bytes(&bytes[..5]), None);
    }

    #[test]
    fn keygen_is_deterministic_under_seed() {
        let a = DeveloperKey::generate(&mut StdRng::seed_from_u64(99));
        let b = DeveloperKey::generate(&mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }
}
