//! The APK container: entries, certificate, signature, packaging and
//! repackaging.

use crate::manifest::Manifest;
use crate::resources::StringsXml;
use crate::rsa::{DeveloperKey, PublicKey};
use bombdroid_crypto::{sha256, Digest256};
use bombdroid_dex::{wire, DexFile};
use std::fmt;
use std::sync::{Arc, Mutex, Weak};

/// App identity metadata (the `AndroidManifest.xml` analogue). Repackagers
/// typically replace `author` and the icon while keeping the code
/// (paper §1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppMeta {
    /// Package name, e.g. `org.fdroid.androfish`.
    pub package: String,
    /// Display name.
    pub label: String,
    /// Author / publisher string.
    pub author: String,
    /// Version code.
    pub version: u32,
}

impl AppMeta {
    /// Convenience constructor with defaults derived from `name`.
    pub fn named(name: &str) -> Self {
        AppMeta {
            package: format!("org.fdroid.{}", name.to_lowercase().replace(' ', "")),
            label: name.to_string(),
            author: "original developer".to_string(),
            version: 1,
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        format!(
            "package={}\nlabel={}\nauthor={}\nversion={}\n",
            self.package, self.label, self.author, self.version
        )
        .into_bytes()
    }
}

/// The `CERT.RSA` analogue: the signer's public key plus owner string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Public key of whoever signed this APK.
    pub public_key: PublicKey,
    /// Declared owner (informational only — *not* trusted).
    pub owner: String,
}

/// Why signature verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The signature does not match the manifest under the cert's key.
    BadSignature,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadSignature => write!(f, "APK signature does not verify"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// A complete (signed) APK.
#[derive(Debug, Clone, PartialEq)]
pub struct ApkFile {
    /// App identity.
    pub meta: AppMeta,
    /// Code. Shared behind an [`Arc`] so installs and VM boots never copy
    /// the bytecode; mutation (tampering, instrumentation) clones it out
    /// first, as a real repackager unpacks `classes.dex`.
    pub dex: Arc<DexFile>,
    /// String resources.
    pub strings: StringsXml,
    /// Launcher icon bytes.
    pub icon: Vec<u8>,
    /// Signer certificate.
    pub cert: Certificate,
    /// Signature over the canonical manifest bytes.
    pub signature: u64,
}

/// Process-wide `classes.dex` digest cache, keyed by `Arc<DexFile>`
/// identity. Hashing the DEX dominates manifest computation (hundreds of
/// KB per app), and the same immutable `Arc` is re-hashed on every
/// install/verify of an unchanged APK — a protection service installs each
/// original APK once per protect pass. Nothing in the workspace mutates a
/// `DexFile` through its `Arc` (mutation always clones out first, yielding
/// a fresh allocation), so identity implies identical bytes; the stored
/// [`Weak`] guards against address reuse exactly like the runtime's
/// decoded-program registry.
static DEX_DIGESTS: Mutex<Vec<(Weak<DexFile>, Digest256, usize)>> = Mutex::new(Vec::new());

/// Far above any realistic number of simultaneously live distinct apps.
const DEX_DIGESTS_CAP: usize = 256;

fn cached_dex_meta(dex: &Arc<DexFile>) -> (Digest256, usize) {
    let mut reg = DEX_DIGESTS
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    reg.retain(|(weak, _, _)| weak.strong_count() > 0);
    for (weak, digest, len) in reg.iter() {
        if let Some(live) = weak.upgrade() {
            if Arc::ptr_eq(&live, dex) {
                return (*digest, *len);
            }
        }
    }
    let meta = (wire::dex_digest(dex), wire::encoded_dex_len(dex));
    if reg.len() < DEX_DIGESTS_CAP {
        reg.push((Arc::downgrade(dex), meta.0, meta.1));
    }
    meta
}

/// Fixed entry names, mirroring a real APK's layout.
pub mod entry {
    /// The DEX bytecode entry.
    pub const CLASSES_DEX: &str = "classes.dex";
    /// String resources.
    pub const STRINGS_XML: &str = "res/strings.xml";
    /// Launcher icon.
    pub const ICON: &str = "res/icon.png";
    /// App metadata.
    pub const ANDROID_MANIFEST: &str = "AndroidManifest.xml";
}

impl ApkFile {
    /// Canonical `(name, bytes)` entries, in manifest order.
    pub fn entries(&self) -> Vec<(&'static str, Vec<u8>)> {
        vec![
            (entry::ANDROID_MANIFEST, self.meta.to_bytes()),
            (entry::CLASSES_DEX, wire::encode_dex(&self.dex)),
            (entry::ICON, self.icon.clone()),
            (entry::STRINGS_XML, self.strings.to_bytes()),
        ]
    }

    /// Computes the `MANIFEST.MF` for the current contents.
    ///
    /// The DEX entry's digest is streamed through the wire writers
    /// ([`wire::dex_digest`]) instead of materializing the encoded bytes —
    /// same digest, no transient multi-hundred-KB buffer. The other entries
    /// are small and hashed directly.
    pub fn manifest(&self) -> Manifest {
        let mut m = Manifest::new();
        m.insert(
            entry::ANDROID_MANIFEST,
            sha256::digest(&self.meta.to_bytes()),
        );
        m.insert(entry::CLASSES_DEX, cached_dex_meta(&self.dex).0);
        m.insert(entry::ICON, sha256::digest(&self.icon));
        m.insert(entry::STRINGS_XML, sha256::digest(&self.strings.to_bytes()));
        m
    }

    /// Digest of a single named entry, without touching the others —
    /// detection planting needs only the icon and `AndroidManifest.xml`
    /// digests, and computing them must not drag in a full-DEX hash.
    pub fn entry_digest(&self, name: &str) -> Option<bombdroid_crypto::Digest256> {
        match name {
            entry::ANDROID_MANIFEST => Some(sha256::digest(&self.meta.to_bytes())),
            entry::CLASSES_DEX => Some(cached_dex_meta(&self.dex).0),
            entry::ICON => Some(sha256::digest(&self.icon)),
            entry::STRINGS_XML => Some(sha256::digest(&self.strings.to_bytes())),
            _ => None,
        }
    }

    /// Content digest of the whole APK: SHA-256 over the canonical
    /// manifest bytes. Two APKs share a content digest iff every entry's
    /// bytes match, which makes this the app key for content-addressed
    /// protection caching (the signing key does not participate — the
    /// protect pipeline never reads it).
    pub fn content_digest(&self) -> bombdroid_crypto::Digest256 {
        sha256::digest(&self.manifest().to_bytes())
    }

    /// Verifies the stored signature against the current contents — what
    /// the Android system does at install time.
    ///
    /// # Errors
    ///
    /// [`VerifyError::BadSignature`] when contents were modified without
    /// re-signing, or the signature was produced by a different key.
    pub fn verify(&self) -> Result<(), VerifyError> {
        self.verify_with(&self.manifest())
    }

    /// [`verify`](Self::verify) against an already-computed manifest, for
    /// callers that also need the manifest itself (installation computes it
    /// once and uses it for both the signature check and the digest
    /// snapshot).
    ///
    /// # Errors
    ///
    /// Same as [`verify`](Self::verify).
    pub fn verify_with(&self, manifest: &Manifest) -> Result<(), VerifyError> {
        if self
            .cert
            .public_key
            .verify(&manifest.to_bytes(), self.signature)
        {
            Ok(())
        } else {
            Err(VerifyError::BadSignature)
        }
    }

    /// Total byte size across entries — the paper's *code size* metric
    /// (§8.4 measures the protected/original size ratio).
    pub fn total_size(&self) -> usize {
        self.entries().iter().map(|(_, b)| b.len()).sum()
    }

    /// Size of the `classes.dex` entry alone. Served from the same
    /// identity-keyed cache as the manifest digest: the encoded length of
    /// an immutable `Arc<DexFile>` never changes, so repeated protections
    /// of one APK measure it once.
    pub fn dex_size(&self) -> usize {
        cached_dex_meta(&self.dex).1
    }

    /// Re-signs the APK in place with `key` (after content mutation).
    pub fn resign(&mut self, key: &DeveloperKey, owner: &str) {
        self.cert = Certificate {
            public_key: key.public,
            owner: owner.to_string(),
        };
        self.signature = key.sign(&self.manifest().to_bytes());
    }
}

/// Packages an app and signs it with the developer's key (the final
/// *Packaging* step of the paper's Fig. 1 pipeline).
pub fn package_app(
    dex: &DexFile,
    strings: StringsXml,
    meta: AppMeta,
    key: &DeveloperKey,
) -> ApkFile {
    // Synthesize icon bytes from the label so every app has a distinct icon.
    let icon = sha256::digest(meta.label.as_bytes()).to_vec();
    let owner = meta.author.clone();
    let mut apk = ApkFile {
        meta,
        dex: Arc::new(dex.clone()),
        strings,
        icon,
        cert: Certificate {
            public_key: key.public,
            owner,
        },
        signature: 0,
    };
    apk.signature = key.sign(&apk.manifest().to_bytes());
    apk
}

/// Repackages an APK as a pirate would: unpack, tamper with the code,
/// replace author/icon, re-sign with the attacker's key (paper §1).
///
/// `tamper` receives the unpacked [`DexFile`]; pass a no-op closure for a
/// pure "resell under my name" repackaging.
pub fn repackage(
    original: &ApkFile,
    attacker_key: &DeveloperKey,
    tamper: impl FnOnce(&mut DexFile),
) -> ApkFile {
    let mut dex = (*original.dex).clone();
    tamper(&mut dex);
    let mut meta = original.meta.clone();
    meta.author = "repackager".to_string();
    let icon = sha256::digest(b"pirate icon").to_vec();
    let mut apk = ApkFile {
        meta,
        dex: Arc::new(dex),
        strings: original.strings.clone(),
        icon,
        cert: Certificate {
            public_key: attacker_key.public,
            owner: "repackager".to_string(),
        },
        signature: 0,
    };
    apk.signature = attacker_key.sign(&apk.manifest().to_bytes());
    apk
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::{Class, MethodBuilder};
    use rand::{rngs::StdRng, SeedableRng};

    fn small_dex() -> DexFile {
        let mut dex = DexFile::new();
        let mut c = Class::new("Main");
        let mut b = MethodBuilder::new("Main", "run", 0);
        b.host_log("hello");
        b.ret_void();
        c.methods.push(b.finish());
        dex.classes.push(c);
        dex
    }

    fn keys() -> (DeveloperKey, DeveloperKey) {
        let mut rng = StdRng::seed_from_u64(11);
        (
            DeveloperKey::generate(&mut rng),
            DeveloperKey::generate(&mut rng),
        )
    }

    #[test]
    fn package_verifies() {
        let (dev, _) = keys();
        let apk = package_app(&small_dex(), StringsXml::new(), AppMeta::named("app"), &dev);
        assert!(apk.verify().is_ok());
        assert!(apk.total_size() > 0);
    }

    #[test]
    fn tampering_without_resign_fails_verification() {
        let (dev, _) = keys();
        let mut apk = package_app(&small_dex(), StringsXml::new(), AppMeta::named("app"), &dev);
        apk.meta.author = "someone else".into();
        assert_eq!(apk.verify(), Err(VerifyError::BadSignature));
    }

    #[test]
    fn repackage_changes_key_but_verifies() {
        let (dev, pirate) = keys();
        let apk = package_app(&small_dex(), StringsXml::new(), AppMeta::named("app"), &dev);
        let repack = repackage(&apk, &pirate, |dex| {
            // Insert malicious-looking code, as real repackagers do.
            let m = &mut dex.classes[0].methods[0];
            m.body.insert(0, bombdroid_dex::Instr::Nop);
        });
        assert!(repack.verify().is_ok());
        assert_ne!(repack.cert.public_key, apk.cert.public_key);
        assert_ne!(
            repack.manifest().digest(entry::CLASSES_DEX),
            apk.manifest().digest(entry::CLASSES_DEX),
        );
    }

    #[test]
    fn resign_after_mutation_restores_verification() {
        let (dev, _) = keys();
        let mut apk = package_app(&small_dex(), StringsXml::new(), AppMeta::named("app"), &dev);
        apk.meta.version = 2;
        assert!(apk.verify().is_err());
        apk.resign(&dev, "original developer");
        assert!(apk.verify().is_ok());
    }

    #[test]
    fn manifest_covers_all_entries() {
        let (dev, _) = keys();
        let apk = package_app(&small_dex(), StringsXml::new(), AppMeta::named("app"), &dev);
        let m = apk.manifest();
        for name in [
            entry::ANDROID_MANIFEST,
            entry::CLASSES_DEX,
            entry::ICON,
            entry::STRINGS_XML,
        ] {
            assert!(m.digest(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn streamed_manifest_matches_materialized_entries() {
        let (dev, _) = keys();
        let apk = package_app(&small_dex(), StringsXml::new(), AppMeta::named("app"), &dev);
        let entries = apk.entries();
        let materialized = Manifest::compute(entries.iter().map(|(n, b)| (*n, b.as_slice())));
        assert_eq!(apk.manifest(), materialized);
        for (name, bytes) in &entries {
            assert_eq!(
                apk.entry_digest(name),
                Some(bombdroid_crypto::sha256::digest(bytes)),
                "entry {name}"
            );
        }
        assert_eq!(apk.entry_digest("no/such/entry"), None);
    }
}
