//! Steganographic encoding of digest material into string resources.
//!
//! The paper (§4.1, *Code Digest Comparison*) hides the expected digest
//! `Do` in `strings.xml` so the detection payload can recover it at
//! runtime; an attacker "does not know how to manipulate strings in
//! strings.xml even when they look suspicious, as the logic for recovering
//! the digest ... is encrypted as part of the repackaging detection code".
//!
//! This module encodes arbitrary bytes as pronounceable token strings that
//! pass for cache keys or session identifiers (`"sid-gukevizo-…"`) and
//! decodes them back. The mapping is nibble → syllable, so the cover text
//! leaks no obvious hex.

/// One syllable per nibble value; all distinct two-letter strings.
const SYLLABLES: [&str; 16] = [
    "ba", "ce", "di", "fo", "gu", "ha", "ki", "lo", "mu", "na", "po", "ru", "sa", "te", "vi", "zo",
];

/// Prefix that makes the cover string look like an innocuous identifier.
const COVER_PREFIX: &str = "sid-";

/// Dash every this many syllables, purely cosmetic.
const GROUP: usize = 4;

/// Encodes `payload` into a cover token string.
///
/// ```
/// let s = bombdroid_apk::stego::embed(&[0xde, 0xad]);
/// assert!(s.starts_with("sid-"));
/// assert_eq!(bombdroid_apk::stego::extract(&s).unwrap(), vec![0xde, 0xad]);
/// ```
pub fn embed(payload: &[u8]) -> String {
    let mut out = String::from(COVER_PREFIX);
    let mut count = 0usize;
    for byte in payload {
        for nibble in [byte >> 4, byte & 0xf] {
            if count > 0 && count.is_multiple_of(GROUP) {
                out.push('-');
            }
            out.push_str(SYLLABLES[nibble as usize]);
            count += 1;
        }
    }
    out
}

/// Decodes a cover token produced by [`embed`].
///
/// Returns `None` when the string is not a valid cover token (wrong prefix,
/// unknown syllable, or a trailing half-byte) — which is also what happens
/// when an attacker blindly rewrites the resource string.
pub fn extract(cover: &str) -> Option<Vec<u8>> {
    let body = cover.strip_prefix(COVER_PREFIX)?;
    let mut nibbles = Vec::new();
    let compact: String = body.chars().filter(|c| *c != '-').collect();
    let chars: Vec<char> = compact.chars().collect();
    if !chars.len().is_multiple_of(2) {
        return None;
    }
    for pair in chars.chunks_exact(2) {
        let syl: String = pair.iter().collect();
        let idx = SYLLABLES.iter().position(|s| **s == syl)?;
        nibbles.push(idx as u8);
    }
    if nibbles.len() % 2 != 0 {
        return None;
    }
    Some(
        nibbles
            .chunks_exact(2)
            .map(|n| (n[0] << 4) | n[1])
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_byte_values() {
        let payload: Vec<u8> = (0..=255).collect();
        assert_eq!(extract(&embed(&payload)).unwrap(), payload);
    }

    #[test]
    fn empty_payload() {
        assert_eq!(extract(&embed(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn cover_looks_innocuous() {
        let s = embed(&[0x12, 0x34, 0x56, 0x78]);
        assert!(!s.contains("0x"));
        assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
    }

    #[test]
    fn tampering_detected() {
        let mut s = embed(&[0xAA, 0xBB]);
        s.push('q'); // no syllable contains 'q'
        assert_eq!(extract(&s), None);
        assert_eq!(extract("not-a-cover"), None);
        assert_eq!(extract("sid-xx"), None);
    }

    #[test]
    fn syllables_are_prefix_free_pairs() {
        // All syllables are exactly two chars and distinct, so decoding by
        // fixed-width chunks is unambiguous.
        for (i, a) in SYLLABLES.iter().enumerate() {
            assert_eq!(a.len(), 2);
            for b in &SYLLABLES[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
