//! `strings.xml` string resources.
//!
//! BombDroid hides expected digests (`Do`) inside string resources via
//! steganography (§4.1); the [`crate::stego`] module supplies the
//! embed/extract scheme, this module supplies the resource table itself.

use std::collections::BTreeMap;

/// An app's string resource table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StringsXml {
    strings: BTreeMap<String, String>,
}

impl StringsXml {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a string resource, returning the old value.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        self.strings.insert(key.into(), value.into())
    }

    /// Looks up a string resource.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.strings.get(key).map(|s| s.as_str())
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.strings.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Serializes to the (simplified) XML byte form stored as the APK's
    /// `res/strings.xml` entry.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::from("<resources>\n");
        for (k, v) in &self.strings {
            out.push_str("  <string name=\"");
            out.push_str(k);
            out.push_str("\">");
            out.push_str(v);
            out.push_str("</string>\n");
        }
        out.push_str("</resources>\n");
        out.into_bytes()
    }
}

impl FromIterator<(String, String)> for StringsXml {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        StringsXml {
            strings: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, String)> for StringsXml {
    fn extend<T: IntoIterator<Item = (String, String)>>(&mut self, iter: T) {
        self.strings.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut s = StringsXml::new();
        assert!(s.set("app_name", "AndroFish").is_none());
        assert_eq!(s.get("app_name"), Some("AndroFish"));
        assert_eq!(s.set("app_name", "Other"), Some("AndroFish".to_string()));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn serialization_contains_entries() {
        let mut s = StringsXml::new();
        s.set("greeting", "hello");
        let xml = String::from_utf8(s.to_bytes()).unwrap();
        assert!(xml.contains("<string name=\"greeting\">hello</string>"));
    }

    #[test]
    fn collect_from_iterator() {
        let s: StringsXml = vec![("a".to_string(), "1".to_string())]
            .into_iter()
            .collect();
        assert_eq!(s.get("a"), Some("1"));
    }
}
