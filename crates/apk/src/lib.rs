//! APK packaging substrate: container, manifest digests, certificates,
//! signing, resources, and steganography.
//!
//! Mirrors the pieces of the Android packaging pipeline BombDroid touches
//! (paper §2.1 *Background* and §2.3 *Architecture*):
//!
//! * every APK carries a `CERT.RSA` with the developer's public key and a
//!   `MANIFEST.MF` with per-entry digests;
//! * the Android system verifies the signature at install time and then
//!   *owns* the certificate — app code cannot modify it;
//! * a repackaged app is necessarily re-signed with the attacker's key, so
//!   its public key differs from the original — the basis of public-key
//!   comparison detection;
//! * `strings.xml` string resources can smuggle steganographic payloads
//!   (the expected digest `Do` for digest-comparison detection, §4.1).
//!
//! The signature scheme is a deliberately small textbook RSA over 64-bit
//! moduli ([`rsa`]) — cryptographic strength is irrelevant to the
//! reproduction (nothing attacks RSA); only the *binding* semantics matter:
//! distinct developers have distinct keypairs, and re-signing changes the
//! public key.
//!
//! # Example: the repackaging attack this whole system detects
//!
//! ```
//! use bombdroid_apk::{package_app, repackage, AppMeta, DeveloperKey, StringsXml};
//! use bombdroid_dex::DexFile;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let dev = DeveloperKey::generate(&mut rng);
//! let apk = package_app(&DexFile::new(), StringsXml::new(), AppMeta::named("demo"), &dev);
//!
//! let pirate = DeveloperKey::generate(&mut rng);
//! let repack = repackage(&apk, &pirate, |dex| { let _ = dex; });
//! assert_ne!(apk.cert.public_key, repack.cert.public_key);
//! assert!(repack.verify().is_ok(), "repackaged app still verifies under pirate's key");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
pub mod manifest;
pub mod resources;
pub mod rsa;
pub mod stego;

pub use container::{package_app, repackage, ApkFile, AppMeta, Certificate, VerifyError};
pub use manifest::Manifest;
pub use resources::StringsXml;
pub use rsa::{DeveloperKey, PublicKey};
