//! Backward program slicing.
//!
//! The HARVESTER-style attack (paper §2.1, "Circumventing trigger
//! conditions") performs "backward program slicing starting from that line
//! of code, and then execute[s] the extracted slices to uncover the payload
//! behavior". The slicer here computes an intraprocedural data slice: all
//! instructions whose values can flow into the seed instruction, plus the
//! field/static writes feeding its loads.

use crate::cfg::Cfg;
use bombdroid_dex::{Instr, Method, Reg};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// The result of slicing: instruction indices, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// Instructions in the slice (including the seed).
    pub pcs: BTreeSet<usize>,
    /// Seed the slice was taken from.
    pub seed: usize,
}

impl Slice {
    /// Extracts the sliced instructions as an executable fragment, with
    /// branches dropped (slice execution is straight-line, as HARVESTER
    /// executes extracted slices directly).
    pub fn extract(&self, method: &Method) -> Vec<Instr> {
        self.pcs
            .iter()
            .map(|&pc| method.body[pc].clone())
            .filter(|i| !i.is_terminator())
            .collect()
    }
}

/// Computes the backward data slice of `method` from `seed_pc`.
///
/// # Panics
///
/// Panics if `seed_pc` is out of range.
pub fn backward_slice(method: &Method, seed_pc: usize) -> Slice {
    assert!(seed_pc < method.body.len(), "seed pc out of range");
    let cfg = Cfg::build(method);
    let body = &method.body;

    // Field/static loads in the slice pull in *all* stores to the same name
    // (coarse but sound for slice execution).
    let mut field_stores: HashMap<&str, Vec<usize>> = HashMap::new();
    for (pc, i) in body.iter().enumerate() {
        match i {
            Instr::PutField { field, .. } | Instr::PutStatic { field, .. } => {
                field_stores.entry(&field.name).or_default().push(pc);
            }
            _ => {}
        }
    }

    let mut in_slice: BTreeSet<usize> = BTreeSet::new();
    in_slice.insert(seed_pc);
    // Worklist of (block, position-within-block, live regs) walking
    // backwards.
    let mut work: VecDeque<(usize, usize, BTreeSet<Reg>)> = VecDeque::new();
    let mut seen: HashSet<(usize, usize, Vec<Reg>)> = HashSet::new();

    let seed_needs: BTreeSet<Reg> = body[seed_pc].uses().into_iter().collect();
    let seed_block = cfg.block_of(seed_pc);
    work.push_back((seed_block, seed_pc, seed_needs));

    let enqueue_field_stores = |name: &str,
                                in_slice: &mut BTreeSet<usize>,
                                work: &mut VecDeque<(usize, usize, BTreeSet<Reg>)>,
                                cfg: &Cfg| {
        if let Some(stores) = field_stores.get(name) {
            for &spc in stores {
                if in_slice.insert(spc) {
                    let needs: BTreeSet<Reg> = body[spc].uses().into_iter().collect();
                    work.push_back((cfg.block_of(spc), spc, needs));
                }
            }
        }
    };

    // Seed's own field loads.
    match &body[seed_pc] {
        Instr::GetField { field, .. } | Instr::GetStatic { field, .. } => {
            enqueue_field_stores(&field.name, &mut in_slice, &mut work, &cfg);
        }
        _ => {}
    }

    while let Some((block, from_pc, mut needs)) = work.pop_front() {
        let key: Vec<Reg> = needs.iter().copied().collect();
        if !seen.insert((block, from_pc, key)) {
            continue;
        }
        let start = cfg.blocks[block].start;
        let mut pc = from_pc;
        while pc > start {
            pc -= 1;
            let instr = &body[pc];
            if let Some(d) = instr.def() {
                if needs.remove(&d) {
                    in_slice.insert(pc);
                    for u in instr.uses() {
                        needs.insert(u);
                    }
                    match instr {
                        Instr::GetField { field, .. } | Instr::GetStatic { field, .. } => {
                            enqueue_field_stores(&field.name, &mut in_slice, &mut work, &cfg);
                        }
                        _ => {}
                    }
                }
            }
        }
        if needs.is_empty() {
            continue;
        }
        for &pred in &cfg.blocks[block].preds {
            let pred_end = cfg.blocks[pred].end;
            work.push_back((pred, pred_end, needs.clone()));
        }
    }

    Slice {
        pcs: in_slice,
        seed: seed_pc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::{BinOp, CondOp, FieldRef, MethodBuilder, RegOrConst, Value};

    #[test]
    fn slice_tracks_data_flow() {
        // v1 = 3; v2 = v1 * 2; v3 = "unrelated"; log(v3); seed: v4 = v2 + 1
        let mut b = MethodBuilder::new("T", "m", 0);
        let v1 = b.fresh_reg();
        let v2 = b.fresh_reg();
        let v4 = b.fresh_reg();
        b.const_(v1, 3i64); // 0
        b.bin_const(BinOp::Mul, v2, v1, 2); // 1
        b.host_log("unrelated"); // 2, 3
        b.bin_const(BinOp::Add, v4, v2, 1); // 4 (seed)
        b.ret_void();
        let m = b.finish();
        let slice = backward_slice(&m, 4);
        assert!(slice.pcs.contains(&0));
        assert!(slice.pcs.contains(&1));
        assert!(slice.pcs.contains(&4));
        assert!(!slice.pcs.contains(&2), "unrelated const excluded");
        assert!(!slice.pcs.contains(&3), "unrelated log excluded");
    }

    #[test]
    fn slice_pulls_field_stores() {
        // T.F = v1; ... v2 = T.F; seed uses v2
        let f = FieldRef::new("T", "F");
        let mut b = MethodBuilder::new("T", "m", 0);
        let v1 = b.fresh_reg();
        let v2 = b.fresh_reg();
        let v3 = b.fresh_reg();
        b.const_(v1, 9i64); // 0
        b.put_static(f.clone(), v1); // 1
        b.host_log("noise"); // 2,3
        b.get_static(v2, f); // 4
        b.bin_const(BinOp::Add, v3, v2, 1); // 5 seed
        b.ret_void();
        let m = b.finish();
        let slice = backward_slice(&m, 5);
        for pc in [0, 1, 4, 5] {
            assert!(slice.pcs.contains(&pc), "missing pc {pc}");
        }
        assert!(!slice.pcs.contains(&2));
    }

    #[test]
    fn slice_crosses_blocks() {
        // v1 = param; if (v1 == 0) v2 = 1 else v2 = 2; seed uses v2
        let mut b = MethodBuilder::new("T", "m", 1);
        let v2 = b.fresh_reg();
        let v3 = b.fresh_reg();
        let els = b.fresh_label();
        let end = b.fresh_label();
        b.if_not(
            CondOp::Eq,
            bombdroid_dex::Reg(0),
            RegOrConst::Const(Value::Int(0)),
            els,
        ); // 0
        b.const_(v2, 1i64); // 1
        b.goto(end); // 2
        b.place_label(els);
        b.const_(v2, 2i64); // 3
        b.place_label(end);
        b.bin_const(BinOp::Add, v3, v2, 1); // 4 seed
        b.ret_void();
        let m = b.finish();
        let slice = backward_slice(&m, 4);
        assert!(slice.pcs.contains(&1), "then-arm def");
        assert!(slice.pcs.contains(&3), "else-arm def");
    }

    #[test]
    fn extract_drops_branches() {
        let mut b = MethodBuilder::new("T", "m", 1);
        let v2 = b.fresh_reg();
        let els = b.fresh_label();
        b.if_not(
            CondOp::Eq,
            bombdroid_dex::Reg(0),
            RegOrConst::Const(Value::Int(0)),
            els,
        );
        b.const_(v2, 1i64);
        b.place_label(els);
        b.bin_const(BinOp::Add, v2, v2, 1);
        b.ret_void();
        let m = b.finish();
        let slice = backward_slice(&m, 2);
        let frag = slice.extract(&m);
        assert!(frag.iter().all(|i| !i.is_terminator()));
    }
}
