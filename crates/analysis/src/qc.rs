//! Qualified-condition (QC) scanning.
//!
//! A QC is an equality check against a statically determinable constant —
//! `==` on ints/bools, or string `equals`/`startsWith`/`endsWith`
//! (paper §3.3). BombDroid's Step 2 locates all QCs by scanning for the
//! `IFEQ`/`IFNE`/`IF_ICMPEQ`/`IF_ICMPNE`/`TABLESWITCH` analogues (§7.2);
//! this module is that scanner, plus the strength grading of §8.3.1
//! (bool → weak, int → medium, string → strong).

use crate::cfg::Cfg;
use crate::dom::Dominators;
use crate::loops::LoopInfo;
use bombdroid_dex::{CondOp, DexFile, Instr, Method, MethodRef, Reg, RegOrConst, StrOp, Value};

/// Obfuscation strength of a QC, determined by the constant's domain size
/// (§8.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strength {
    /// Boolean constant: |dom| = 2 — brute-forceable instantly.
    Weak,
    /// Integer constant: up to 2³² practical domain.
    Medium,
    /// String constant: unbounded domain.
    Strong,
}

/// The comparison shape of a QC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QcCompare {
    /// `if (x == <int>)`.
    IntEq,
    /// `if (b == <bool>)`.
    BoolEq,
    /// `s.equals(<lit>)`.
    StrEquals,
    /// `s.startsWith(<lit>)`.
    StrStartsWith,
    /// `s.endsWith(<lit>)`.
    StrEndsWith,
    /// One arm of a `TABLESWITCH`.
    SwitchArm,
}

/// One qualified condition found in a method.
#[derive(Debug, Clone, PartialEq)]
pub struct QcSite {
    /// Enclosing method.
    pub method: MethodRef,
    /// Index of the branch instruction (`If` or `Switch`).
    pub branch_pc: usize,
    /// Register holding `X` at the branch (for string ops, the receiver).
    pub cond_reg: Reg,
    /// The constant `c`.
    pub constant: Value,
    /// First instruction of the code executed when equality holds.
    pub body_entry: usize,
    /// Comparison shape.
    pub compare: QcCompare,
    /// Index of the feeding `StrOp`, for string QCs.
    pub str_op_pc: Option<usize>,
    /// Index of the `Const` loading the string literal, for string QCs.
    pub lit_const_pc: Option<usize>,
    /// Whether the branch sits inside a natural loop (§7.2 skips those).
    pub in_loop: bool,
}

impl QcSite {
    /// Obfuscation strength grade (Fig. 4's weak/medium/strong).
    pub fn strength(&self) -> Strength {
        match self.constant {
            Value::Bool(_) => Strength::Weak,
            Value::Int(_) => Strength::Medium,
            Value::Str(_) => Strength::Strong,
            // Null/Bytes constants are not QC material, but grade defensively.
            _ => Strength::Weak,
        }
    }
}

/// Scans one method for qualified conditions.
pub fn scan_method(method: &Method) -> Vec<QcSite> {
    let cfg = Cfg::build(method);
    let loops = if cfg.is_empty() {
        None
    } else {
        let dom = Dominators::compute(&cfg);
        Some(LoopInfo::compute(&cfg, &dom))
    };
    scan_method_with(method, &cfg, loops.as_ref())
}

/// [`scan_method`] against caller-provided analysis — for passes that
/// already hold the method's CFG and loop info (the planner builds them
/// once per method and reuses them for insertion-spot selection).
pub fn scan_method_with(method: &Method, cfg: &Cfg, loops: Option<&LoopInfo>) -> Vec<QcSite> {
    let in_loop = |pc: usize| loops.map(|l| l.pc_in_loop(cfg, pc)).unwrap_or(false);
    let mref = method.method_ref();
    let body = &method.body;
    let mut sites = Vec::new();

    for (pc, instr) in body.iter().enumerate() {
        match instr {
            Instr::If {
                cond: cond @ (CondOp::Eq | CondOp::Ne),
                lhs,
                rhs: RegOrConst::Const(c),
                target,
            } => {
                let compare = match c {
                    Value::Int(_) => QcCompare::IntEq,
                    Value::Bool(_) => {
                        // A bool-compare may be the tail of a string QC; if
                        // the compared register was just produced by an
                        // equality StrOp, report the string QC instead.
                        if let Some(site) =
                            string_qc(body, pc, *lhs, *cond, *target, &mref, &in_loop)
                        {
                            sites.push(site);
                            continue;
                        }
                        QcCompare::BoolEq
                    }
                    Value::Str(_) => QcCompare::StrEquals,
                    // Bytes constants are already-obfuscated conditions, not QCs.
                    Value::Bytes(_) | Value::Null => continue,
                };
                let body_entry = match cond {
                    CondOp::Eq => *target,
                    CondOp::Ne => pc + 1,
                    _ => unreachable!(),
                };
                sites.push(QcSite {
                    method: mref.clone(),
                    branch_pc: pc,
                    cond_reg: *lhs,
                    constant: c.clone(),
                    body_entry,
                    compare,
                    str_op_pc: None,
                    lit_const_pc: None,
                    in_loop: in_loop(pc),
                });
            }
            Instr::Switch { src, arms, .. } => {
                for (case, target) in arms {
                    sites.push(QcSite {
                        method: mref.clone(),
                        branch_pc: pc,
                        cond_reg: *src,
                        constant: Value::Int(*case),
                        body_entry: *target,
                        compare: QcCompare::SwitchArm,
                        str_op_pc: None,
                        lit_const_pc: None,
                        in_loop: in_loop(pc),
                    });
                }
            }
            _ => {}
        }
    }
    sites
}

/// Recognizes the `StrOp(Equals/StartsWith/EndsWith)` + `If` idiom ending
/// at the `If` at `if_pc` comparing `flag_reg` against a bool constant.
fn string_qc(
    body: &[Instr],
    if_pc: usize,
    flag_reg: Reg,
    cond: CondOp,
    target: usize,
    mref: &MethodRef,
    in_loop: &dyn Fn(usize) -> bool,
) -> Option<QcSite> {
    // Look back a small window for the StrOp defining flag_reg, with no
    // intervening redefinition.
    let lo = if_pc.saturating_sub(4);
    let mut found: Option<(usize, StrOp, Reg, Reg)> = None;
    for p in (lo..if_pc).rev() {
        match &body[p] {
            Instr::StrOp {
                op,
                dst,
                lhs,
                rhs: Some(r),
            } if *dst == flag_reg && op.is_equality_check() => {
                found = Some((p, *op, *lhs, *r));
                break;
            }
            other if other.def() == Some(flag_reg) => return None,
            _ => {}
        }
    }
    let (str_pc, op, receiver, lit_reg) = found?;
    // The literal operand must be a constant string defined just before,
    // with no intervening redefinition.
    let mut lit: Option<(usize, Value)> = None;
    for p in (str_pc.saturating_sub(4)..str_pc).rev() {
        match &body[p] {
            Instr::Const {
                dst,
                value: v @ Value::Str(_),
            } if *dst == lit_reg => {
                lit = Some((p, v.clone()));
                break;
            }
            other if other.def() == Some(lit_reg) => return None,
            _ => {}
        }
    }
    let (lit_pc, constant) = lit?;
    // Which bool constant is compared decides the true-body position.
    let expect_true = match &body[if_pc] {
        Instr::If {
            rhs: RegOrConst::Const(Value::Bool(b)),
            ..
        } => *b,
        _ => return None,
    };
    let body_entry = match (cond, expect_true) {
        (CondOp::Eq, true) | (CondOp::Ne, false) => target,
        (CondOp::Eq, false) | (CondOp::Ne, true) => if_pc + 1,
        _ => return None,
    };
    Some(QcSite {
        method: mref.clone(),
        branch_pc: if_pc,
        cond_reg: receiver,
        constant,
        body_entry,
        compare: match op {
            StrOp::Equals => QcCompare::StrEquals,
            StrOp::StartsWith => QcCompare::StrStartsWith,
            StrOp::EndsWith => QcCompare::StrEndsWith,
            _ => return None,
        },
        str_op_pc: Some(str_pc),
        lit_const_pc: Some(lit_pc),
        in_loop: in_loop(if_pc),
    })
}

/// Scans every method of a DEX file.
pub fn scan_dex(dex: &DexFile) -> Vec<QcSite> {
    dex.methods().flat_map(scan_method).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::MethodBuilder;

    #[test]
    fn finds_int_eq_with_polarity() {
        // if (v0 == 7) { body } — compiled as if-ne branch-over.
        let mut b = MethodBuilder::new("T", "m", 1);
        let skip = b.fresh_label();
        b.if_not(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(7)), skip);
        b.host_log("body");
        b.place_label(skip);
        b.ret_void();
        let m = b.finish();
        let sites = scan_method(&m);
        assert_eq!(sites.len(), 1);
        let s = &sites[0];
        assert_eq!(s.compare, QcCompare::IntEq);
        assert_eq!(s.constant, Value::Int(7));
        assert_eq!(s.body_entry, 1, "Ne branch: body is the fallthrough");
        assert_eq!(s.strength(), Strength::Medium);
        assert!(!s.in_loop);
    }

    #[test]
    fn finds_switch_arms() {
        let mut b = MethodBuilder::new("T", "s", 1);
        let a = b.fresh_label();
        let d = b.fresh_label();
        b.switch(Reg(0), vec![(5, a), (9, a)], d);
        b.place_label(a);
        b.host_log("arm");
        b.place_label(d);
        b.ret_void();
        let sites = scan_method(&b.finish());
        let arms: Vec<_> = sites
            .iter()
            .filter(|s| s.compare == QcCompare::SwitchArm)
            .collect();
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].constant, Value::Int(5));
        assert_eq!(arms[1].constant, Value::Int(9));
    }

    #[test]
    fn finds_string_equals_idiom() {
        // flag = cmd.equals("export"); if (flag == true) { body }
        let mut b = MethodBuilder::new("T", "t", 1);
        let lit = b.fresh_reg();
        let flag = b.fresh_reg();
        b.const_(lit, Value::str("export"));
        b.str_op(StrOp::Equals, flag, Reg(0), Some(lit));
        let skip = b.fresh_label();
        b.if_not(CondOp::Eq, flag, RegOrConst::Const(Value::Bool(true)), skip);
        b.host_log("exporting");
        b.place_label(skip);
        b.ret_void();
        let sites = scan_method(&b.finish());
        assert_eq!(sites.len(), 1);
        let s = &sites[0];
        assert_eq!(s.compare, QcCompare::StrEquals);
        assert_eq!(s.constant, Value::str("export"));
        assert_eq!(s.cond_reg, Reg(0));
        assert_eq!(s.strength(), Strength::Strong);
        assert_eq!(s.str_op_pc, Some(1));
    }

    #[test]
    fn bool_qc_graded_weak() {
        let mut b = MethodBuilder::new("T", "w", 1);
        let skip = b.fresh_label();
        b.if_not(
            CondOp::Eq,
            Reg(0),
            RegOrConst::Const(Value::Bool(true)),
            skip,
        );
        b.host_log("yes");
        b.place_label(skip);
        b.ret_void();
        let sites = scan_method(&b.finish());
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].strength(), Strength::Weak);
        assert_eq!(sites[0].compare, QcCompare::BoolEq);
    }

    #[test]
    fn obfuscated_bytes_condition_not_reported() {
        let mut b = MethodBuilder::new("T", "o", 1);
        let h = b.fresh_reg();
        b.hash(h, Reg(0), vec![1]);
        let skip = b.fresh_label();
        b.if_not(
            CondOp::Eq,
            h,
            RegOrConst::Const(Value::bytes([0u8; 20])),
            skip,
        );
        b.host_log("hidden");
        b.place_label(skip);
        b.ret_void();
        assert!(scan_method(&b.finish()).is_empty());
    }

    #[test]
    fn loop_conditions_flagged() {
        let mut b = MethodBuilder::new("T", "l", 0);
        let v = b.fresh_reg();
        b.const_(v, 0i64);
        let top = b.fresh_label();
        b.place_label(top);
        b.bin_const(bombdroid_dex::BinOp::Add, v, v, 1);
        b.if_(CondOp::Ne, v, RegOrConst::Const(Value::Int(10)), top);
        b.ret_void();
        let sites = scan_method(&b.finish());
        assert_eq!(sites.len(), 1);
        assert!(sites[0].in_loop);
    }
}
