//! Dominator analysis (Cooper–Harvey–Kennedy "A Simple, Fast Dominance
//! Algorithm"), feeding natural-loop detection.

use crate::cfg::Cfg;

/// Immediate-dominator table; entry dominates itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; `idom[entry] =
    /// entry`; unreachable blocks map to `usize::MAX`.
    pub idom: Vec<usize>,
}

/// Marker for unreachable blocks in [`Dominators::idom`].
pub const UNREACHABLE: usize = usize::MAX;

impl Dominators {
    /// Computes dominators for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.len();
        if n == 0 {
            return Dominators { idom: Vec::new() };
        }
        let rpo = cfg.reverse_post_order();
        let mut rpo_index = vec![UNREACHABLE; n];
        let mut reachable = vec![false; n];
        {
            // Only blocks reachable from entry participate.
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(b) = stack.pop() {
                reachable[b] = true;
                for &s in &cfg.blocks[b].succs {
                    if !seen[s] {
                        seen[s] = true;
                        stack.push(s);
                    }
                }
            }
        }
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }
        let mut idom = vec![UNREACHABLE; n];
        idom[0] = 0;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                if !reachable[b] {
                    continue;
                }
                let mut new_idom = UNREACHABLE;
                for &p in &cfg.blocks[b].preds {
                    if !reachable[p] || idom[p] == UNREACHABLE {
                        continue;
                    }
                    new_idom = if new_idom == UNREACHABLE {
                        p
                    } else {
                        Self::intersect(&idom, &rpo_index, p, new_idom)
                    };
                }
                if new_idom != UNREACHABLE && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    fn intersect(idom: &[usize], rpo_index: &[usize], mut a: usize, mut b: usize) -> usize {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a];
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b];
            }
        }
        a
    }

    /// Whether block `a` dominates block `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom.get(b).copied().unwrap_or(UNREACHABLE) == UNREACHABLE {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = self.idom[cur];
            if next == cur {
                return a == cur;
            }
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::{CondOp, MethodBuilder, Reg, RegOrConst, Value};

    #[test]
    fn diamond_dominance() {
        let mut b = MethodBuilder::new("T", "m", 1);
        let els = b.fresh_label();
        let end = b.fresh_label();
        b.if_not(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(1)), els);
        b.host_log("a");
        b.goto(end);
        b.place_label(els);
        b.host_log("b");
        b.place_label(end);
        b.ret_void();
        let m = b.finish();
        let cfg = Cfg::build(&m);
        let dom = Dominators::compute(&cfg);
        let exit = cfg.block_of(m.body.len() - 1);
        // Entry dominates everything.
        for bi in 0..cfg.len() {
            assert!(dom.dominates(0, bi), "entry must dominate block {bi}");
        }
        // Neither arm dominates the exit.
        for bi in 1..cfg.len() {
            if bi != exit {
                assert!(!dom.dominates(bi, exit), "arm {bi} must not dominate exit");
            }
        }
        // idom of exit is the entry.
        assert_eq!(dom.idom[exit], 0);
    }

    #[test]
    fn self_loop_dominated_by_entry() {
        let mut b = MethodBuilder::new("T", "l", 0);
        let v = b.fresh_reg();
        b.const_(v, 0i64);
        let top = b.fresh_label();
        b.place_label(top);
        b.bin_const(bombdroid_dex::BinOp::Add, v, v, 1);
        b.if_(CondOp::Ne, v, RegOrConst::Const(Value::Int(3)), top);
        b.ret_void();
        let m = b.finish();
        let cfg = Cfg::build(&m);
        let dom = Dominators::compute(&cfg);
        let loop_block = cfg.block_of(1);
        assert!(dom.dominates(0, loop_block));
        assert!(dom.dominates(loop_block, loop_block));
    }
}
