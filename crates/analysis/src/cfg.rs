//! Control-flow graphs over method bodies.
//!
//! The paper's Step 2 "uses Soot to generate the CFG of each candidate
//! method" (§7.2); this module is that piece of the substrate.

use bombdroid_dex::{Instr, Method};
use std::collections::BTreeSet;

/// A basic block: the half-open instruction range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

impl BasicBlock {
    /// Instruction indices in this block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// A method's control-flow graph. Block 0 is the entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Basic blocks in start-order.
    pub blocks: Vec<BasicBlock>,
    block_of_pc: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `method`.
    pub fn build(method: &Method) -> Self {
        let body = &method.body;
        let n = body.len();
        let mut leaders = BTreeSet::new();
        if n > 0 {
            leaders.insert(0usize);
        }
        for (pc, instr) in body.iter().enumerate() {
            instr.for_each_branch_target(|t| {
                if t < n {
                    leaders.insert(t);
                }
            });
            if instr.is_terminator() && pc + 1 < n {
                leaders.insert(pc + 1);
            }
        }
        let starts: Vec<usize> = leaders.into_iter().collect();
        let mut blocks: Vec<BasicBlock> = starts
            .iter()
            .enumerate()
            .map(|(i, &start)| BasicBlock {
                start,
                end: starts.get(i + 1).copied().unwrap_or(n),
                succs: Vec::new(),
                preds: Vec::new(),
            })
            .collect();
        let mut block_of_pc = vec![0usize; n];
        for (bi, b) in blocks.iter().enumerate() {
            for pc in b.range() {
                block_of_pc[pc] = bi;
            }
        }
        // Edges.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (bi, b) in blocks.iter().enumerate() {
            if b.start == b.end {
                continue;
            }
            let last_pc = b.end - 1;
            let last = &body[last_pc];
            last.for_each_branch_target(|t| {
                if t < n {
                    edges.push((bi, block_of_pc[t]));
                }
            });
            if last.falls_through() && b.end < n {
                edges.push((bi, block_of_pc[b.end]));
            }
        }
        for (from, to) in edges {
            if !blocks[from].succs.contains(&to) {
                blocks[from].succs.push(to);
            }
            if !blocks[to].preds.contains(&from) {
                blocks[to].preds.push(from);
            }
        }
        Cfg {
            blocks,
            block_of_pc,
        }
    }

    /// The block containing instruction `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of_pc[pc]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks (empty method body).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Blocks in reverse post-order from the entry (unreachable blocks
    /// appended at the end in index order).
    pub fn reverse_post_order(&self) -> Vec<usize> {
        let mut visited = vec![false; self.blocks.len()];
        let mut order = Vec::with_capacity(self.blocks.len());
        // Iterative post-order DFS.
        if !self.blocks.is_empty() {
            let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
            visited[0] = true;
            while let Some((node, child_idx)) = stack.pop() {
                if child_idx < self.blocks[node].succs.len() {
                    stack.push((node, child_idx + 1));
                    let succ = self.blocks[node].succs[child_idx];
                    if !visited[succ] {
                        visited[succ] = true;
                        stack.push((succ, 0));
                    }
                } else {
                    order.push(node);
                }
            }
        }
        order.reverse();
        for (i, seen) in visited.iter().enumerate().take(self.blocks.len()) {
            if !seen {
                order.push(i);
            }
        }
        order
    }
}

/// Convenience: whether a method's body contains any instruction matching
/// `pred` (used by text-search-style scanners).
pub fn any_instr(method: &Method, pred: impl Fn(&Instr) -> bool) -> bool {
    method.body.iter().any(pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::{CondOp, MethodBuilder, Reg, RegOrConst, Value};

    fn diamond() -> Method {
        // if (v0 == 1) { log a } else { log b } ; return
        let mut b = MethodBuilder::new("T", "m", 1);
        let els = b.fresh_label();
        let end = b.fresh_label();
        b.if_not(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(1)), els);
        b.host_log("a");
        b.goto(end);
        b.place_label(els);
        b.host_log("b");
        b.place_label(end);
        b.ret_void();
        b.finish()
    }

    #[test]
    fn diamond_shape() {
        let m = diamond();
        let cfg = Cfg::build(&m);
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        // Both middle blocks converge on the exit block.
        let exit = cfg.block_of(m.body.len() - 1);
        assert!(cfg.blocks[exit].preds.len() == 2);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all() {
        let m = diamond();
        let cfg = Cfg::build(&m);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], 0);
        let mut sorted = rpo.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..cfg.len()).collect::<Vec<_>>());
    }

    #[test]
    fn loop_edges() {
        // v1 = 0; loop: v1 += 1; if (v1 != 10) goto loop; return
        let mut b = MethodBuilder::new("T", "l", 0);
        let v1 = b.fresh_reg();
        b.const_(v1, 0i64);
        let top = b.fresh_label();
        b.place_label(top);
        b.bin_const(bombdroid_dex::BinOp::Add, v1, v1, 1);
        b.if_(CondOp::Ne, v1, RegOrConst::Const(Value::Int(10)), top);
        b.ret_void();
        let m = b.finish();
        let cfg = Cfg::build(&m);
        // The loop body block must have itself as a successor-of-successor
        // path (a back edge to its own start).
        let body_block = cfg.block_of(1);
        assert!(cfg.blocks[body_block].succs.contains(&body_block));
    }

    #[test]
    fn straight_line_single_block() {
        let mut b = MethodBuilder::new("T", "s", 0);
        b.host_log("x");
        b.ret_void();
        let cfg = Cfg::build(&b.finish());
        assert_eq!(cfg.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
    }
}
