//! Field-value entropy profiles.
//!
//! For artificial qualified conditions, BombDroid profiles each candidate
//! field's runtime values and prefers "fields that have the largest numbers
//! of unique values ... considered to have higher entropies" (§7.2 and
//! Fig. 3's AndroFish visualization).

use bombdroid_dex::Value;
use std::collections::HashSet;

/// Entropy summary of one profiled field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldEntropy {
    /// Field identifier (`Class.field`).
    pub field: String,
    /// Total recorded samples.
    pub samples: usize,
    /// Distinct values observed.
    pub unique: usize,
}

impl FieldEntropy {
    /// Computes the summary for one field's `(at_ms, value)` samples.
    pub fn of(field: impl Into<String>, samples: &[(u64, Value)]) -> Self {
        let unique: HashSet<&Value> = samples.iter().map(|(_, v)| v).collect();
        FieldEntropy {
            field: field.into(),
            samples: samples.len(),
            unique: unique.len(),
        }
    }
}

/// Ranks profiled fields by distinct-value count, descending (ties broken
/// by name for determinism). Input is an iterator of
/// `(field_name, samples)` pairs — the shape of
/// `Telemetry::field_values`.
pub fn rank_fields<'a, I>(fields: I) -> Vec<FieldEntropy>
where
    I: IntoIterator<Item = (&'a String, &'a Vec<(u64, Value)>)>,
{
    let mut ranked: Vec<FieldEntropy> = fields
        .into_iter()
        .map(|(name, samples)| FieldEntropy::of(name.clone(), samples))
        .collect();
    ranked.sort_by(|a, b| b.unique.cmp(&a.unique).then_with(|| a.field.cmp(&b.field)));
    ranked
}

/// Distinct values a field took, in first-seen order — the pool artificial
/// QC constants are drawn from ("one of the field values is randomly
/// selected as the constant value", §7.2).
pub fn distinct_values(samples: &[(u64, Value)]) -> Vec<Value> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for (_, v) in samples {
        if seen.insert(v.clone()) {
            out.push(v.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn ranking_prefers_high_entropy() {
        let mut m: BTreeMap<String, Vec<(u64, Value)>> = BTreeMap::new();
        m.insert(
            "A.lowvar".into(),
            vec![(0, Value::Int(1)), (1, Value::Int(1)), (2, Value::Int(2))],
        );
        m.insert(
            "A.highvar".into(),
            (0..50).map(|i| (i, Value::Int(i as i64))).collect(),
        );
        let ranked = rank_fields(m.iter());
        assert_eq!(ranked[0].field, "A.highvar");
        assert_eq!(ranked[0].unique, 50);
        assert_eq!(ranked[1].unique, 2);
    }

    #[test]
    fn distinct_preserves_first_seen_order() {
        let samples = vec![
            (0, Value::Int(5)),
            (1, Value::Int(3)),
            (2, Value::Int(5)),
            (3, Value::str("x")),
        ];
        assert_eq!(
            distinct_values(&samples),
            vec![Value::Int(5), Value::Int(3), Value::str("x")]
        );
    }
}
