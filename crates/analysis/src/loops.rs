//! Natural-loop detection.
//!
//! BombDroid "avoid[s] inserting bombs into loops in a procedure" as a
//! heuristic optimization (§7.2): a bomb inside a hot loop would hash on
//! every iteration. This module finds every instruction that lives inside
//! a natural loop.

use crate::cfg::Cfg;
use crate::dom::{Dominators, UNREACHABLE};
use std::collections::BTreeSet;

/// Loop membership for a method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// Blocks that belong to at least one natural loop.
    pub loop_blocks: BTreeSet<usize>,
    /// Back edges `(tail, header)` found.
    pub back_edges: Vec<(usize, usize)>,
}

impl LoopInfo {
    /// Computes loop membership from a CFG and its dominators.
    pub fn compute(cfg: &Cfg, dom: &Dominators) -> Self {
        let mut back_edges = Vec::new();
        for (b, block) in cfg.blocks.iter().enumerate() {
            if dom.idom.get(b).copied().unwrap_or(UNREACHABLE) == UNREACHABLE {
                continue;
            }
            for &s in &block.succs {
                if dom.dominates(s, b) {
                    back_edges.push((b, s));
                }
            }
        }
        let mut loop_blocks = BTreeSet::new();
        for &(tail, header) in &back_edges {
            // Natural loop = header + all blocks that reach tail without
            // passing through header.
            loop_blocks.insert(header);
            let mut stack = vec![tail];
            while let Some(b) = stack.pop() {
                if loop_blocks.insert(b) {
                    for &p in &cfg.blocks[b].preds {
                        if p != header {
                            stack.push(p);
                        }
                    }
                }
            }
        }
        LoopInfo {
            loop_blocks,
            back_edges,
        }
    }

    /// Whether instruction `pc` is inside a loop.
    pub fn pc_in_loop(&self, cfg: &Cfg, pc: usize) -> bool {
        self.loop_blocks.contains(&cfg.block_of(pc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bombdroid_dex::{BinOp, CondOp, Method, MethodBuilder, Reg, RegOrConst, Value};

    fn loop_then_straight() -> Method {
        // v1 = 0; loop: v1++ ; if v1 != 10 goto loop; log; return
        let mut b = MethodBuilder::new("T", "m", 0);
        let v = b.fresh_reg();
        b.const_(v, 0i64);
        let top = b.fresh_label();
        b.place_label(top);
        b.bin_const(BinOp::Add, v, v, 1);
        b.if_(CondOp::Ne, v, RegOrConst::Const(Value::Int(10)), top);
        b.host_log("after loop");
        b.ret_void();
        b.finish()
    }

    #[test]
    fn finds_loop_and_spares_straight_code() {
        let m = loop_then_straight();
        let cfg = Cfg::build(&m);
        let dom = Dominators::compute(&cfg);
        let li = LoopInfo::compute(&cfg, &dom);
        assert_eq!(li.back_edges.len(), 1);
        // pc 1 (v1++) is in the loop; the log after it is not.
        assert!(li.pc_in_loop(&cfg, 1));
        let log_pc = 3; // const of the log message
        assert!(!li.pc_in_loop(&cfg, log_pc));
        // pc 0 (init) precedes the header and is outside.
        assert!(!li.pc_in_loop(&cfg, 0));
    }

    #[test]
    fn loop_free_method_has_no_loops() {
        let mut b = MethodBuilder::new("T", "s", 1);
        let skip = b.fresh_label();
        b.if_not(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(1)), skip);
        b.host_log("one");
        b.place_label(skip);
        b.ret_void();
        let m = b.finish();
        let cfg = Cfg::build(&m);
        let li = LoopInfo::compute(&cfg, &Dominators::compute(&cfg));
        assert!(li.loop_blocks.is_empty());
        assert!(li.back_edges.is_empty());
    }

    #[test]
    fn nested_loops_all_marked() {
        // outer: i=0; do { j=0; do { j++ } while j!=3; i++ } while i!=3
        let mut b = MethodBuilder::new("T", "n", 0);
        let i = b.fresh_reg();
        let j = b.fresh_reg();
        b.const_(i, 0i64);
        let outer = b.fresh_label();
        b.place_label(outer);
        b.const_(j, 0i64);
        let inner = b.fresh_label();
        b.place_label(inner);
        b.bin_const(BinOp::Add, j, j, 1);
        b.if_(CondOp::Ne, j, RegOrConst::Const(Value::Int(3)), inner);
        b.bin_const(BinOp::Add, i, i, 1);
        b.if_(CondOp::Ne, i, RegOrConst::Const(Value::Int(3)), outer);
        b.ret_void();
        let m = b.finish();
        let cfg = Cfg::build(&m);
        let li = LoopInfo::compute(&cfg, &Dominators::compute(&cfg));
        assert_eq!(li.back_edges.len(), 2);
        // Everything except init and the return sits in a loop.
        for pc in 1..m.body.len() - 1 {
            assert!(li.pc_in_loop(&cfg, pc), "pc {pc} should be in a loop");
        }
    }
}
