//! Static and profile-guided analysis over `bombdroid-dex` bytecode — the
//! Soot-shaped piece of the substrate.
//!
//! BombDroid's Step 2 (paper Fig. 1) runs static analysis to pick bomb
//! sites; its attackers run slicing to circumvent triggers. Both sides are
//! served here:
//!
//! * [`cfg`] — basic blocks and edges per method;
//! * [`dom`] — dominator trees (Cooper–Harvey–Kennedy);
//! * [`loops`] — natural loops, so bombs stay out of them (§7.2);
//! * [`qc`] — qualified-condition scanning with weak/medium/strong
//!   strength grading (§3.3, §8.3.1);
//! * [`slice`] — HARVESTER-style backward slicing (§2.1);
//! * [`entropy`] — field-value entropy ranking for artificial QCs (§7.2).
//!
//! # Example: scan an app for qualified conditions
//!
//! ```
//! use bombdroid_analysis::qc;
//! use bombdroid_dex::{CondOp, MethodBuilder, Reg, RegOrConst, Value};
//!
//! let mut b = MethodBuilder::new("Game", "onLevelSelect", 1);
//! let skip = b.fresh_label();
//! b.if_not(CondOp::Eq, Reg(0), RegOrConst::Const(Value::Int(12)), skip);
//! b.host_log("secret level");
//! b.place_label(skip);
//! b.ret_void();
//! let sites = qc::scan_method(&b.finish());
//! assert_eq!(sites.len(), 1);
//! assert_eq!(sites[0].constant, Value::Int(12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod dom;
pub mod entropy;
pub mod loops;
pub mod qc;
pub mod slice;

pub use cfg::{BasicBlock, Cfg};
pub use dom::Dominators;
pub use entropy::{distinct_values, rank_fields, FieldEntropy};
pub use loops::LoopInfo;
pub use qc::{scan_dex, scan_method, QcCompare, QcSite, Strength};
pub use slice::{backward_slice, Slice};
