//! Interpreter semantics tests: arithmetic, control flow, heap, host APIs,
//! and the two bomb instructions (salted hash, decrypt-and-execute).

use bombdroid_apk::{package_app, AppMeta, DeveloperKey, StringsXml};
use bombdroid_crypto::kdf;
use bombdroid_dex::{
    wire, BinOp, BlobId, Class, CondOp, DexFile, EncryptedBlob, Field, FieldRef, HostApi, Instr,
    MethodBuilder, MethodRef, Reg, RegOrConst, StrOp, Value,
};
use bombdroid_runtime::{DeviceEnv, Fault, InstalledPackage, RtValue, Vm, VmOptions};
use rand::{rngs::StdRng, SeedableRng};

fn install(dex: DexFile) -> InstalledPackage {
    let mut rng = StdRng::seed_from_u64(99);
    let dev = DeveloperKey::generate(&mut rng);
    let mut strings = StringsXml::new();
    strings.set("app_name", "vmtest");
    let apk = package_app(&dex, strings, AppMeta::named("vmtest"), &dev);
    InstalledPackage::install(&apk).expect("install")
}

fn boot(dex: DexFile) -> Vm {
    Vm::boot(install(dex), DeviceEnv::attacker_lab(1).remove(0), 42)
}

fn one_method_dex(build: impl FnOnce(&mut MethodBuilder)) -> DexFile {
    let mut dex = DexFile::new();
    let mut class = Class::new("T");
    let mut b = MethodBuilder::new("T", "m", 1);
    build(&mut b);
    class.methods.push(b.finish());
    dex.classes.push(class);
    dex
}

fn run_one(dex: DexFile, arg: RtValue) -> (Vm, Result<(), Fault>) {
    let mut vm = boot(dex);
    let outcome = vm.fire_method(&MethodRef::new("T", "m"), vec![arg]);
    (vm, outcome.result)
}

#[test]
fn arithmetic_and_branches() {
    // return (x * 3 + 1) via a static so we can observe it
    let dex = one_method_dex(|b| {
        let t = b.fresh_reg();
        b.bin_const(BinOp::Mul, t, Reg(0), 3);
        b.bin_const(BinOp::Add, t, t, 1);
        b.put_static(FieldRef::new("T", "OUT"), t);
        b.ret_void();
    });
    let (vm, result) = run_one(dex, RtValue::Int(7));
    result.unwrap();
    // 7*3+1 = 22
    assert_eq!(vm.telemetry().events_run, 1);
    // observe via another run below; here just check no faults occurred.
}

#[test]
fn division_by_zero_faults() {
    let dex = one_method_dex(|b| {
        let t = b.fresh_reg();
        b.const_(t, 0i64);
        b.bin(BinOp::Div, t, Reg(0), t);
        b.ret_void();
    });
    let (_, result) = run_one(dex, RtValue::Int(10));
    assert_eq!(result, Err(Fault::DivByZero));
}

#[test]
fn loops_terminate_with_fuel() {
    // while(true) {} must end with OutOfFuel, not hang.
    let dex = one_method_dex(|b| {
        let top = b.fresh_label();
        b.place_label(top);
        b.goto(top);
    });
    let (vm, result) = run_one(dex, RtValue::Int(0));
    assert_eq!(result, Err(Fault::OutOfFuel));
    assert!(vm.telemetry().instr_executed >= VmOptions::default().fuel_per_event);
}

#[test]
fn string_ops() {
    let dex = one_method_dex(|b| {
        let s = b.fresh_reg();
        let p = b.fresh_reg();
        let out = b.fresh_reg();
        b.const_(s, Value::str("hello-world"));
        b.const_(p, Value::str("hello"));
        b.str_op(StrOp::StartsWith, out, s, Some(p));
        let fail = b.fresh_label();
        b.if_not(CondOp::Eq, out, RegOrConst::Const(Value::Bool(true)), fail);
        b.host_log("starts-with ok");
        b.place_label(fail);
        b.ret_void();
    });
    let (vm, result) = run_one(dex, RtValue::Int(0));
    result.unwrap();
    assert_eq!(vm.telemetry().logs.len(), 1);
}

#[test]
fn objects_and_arrays() {
    let dex = one_method_dex(|b| {
        let obj = b.fresh_reg();
        let v = b.fresh_reg();
        b.push(Instr::NewInstance {
            dst: obj,
            class: "T".into(),
        });
        b.const_(v, 41i64);
        b.put_field(obj, FieldRef::new("T", "x"), v);
        b.get_field(v, obj, FieldRef::new("T", "x"));
        b.bin_const(BinOp::Add, v, v, 1);
        // array of length 3, store at idx 2, read back
        let len = b.fresh_reg();
        let arr = b.fresh_reg();
        let idx = b.fresh_reg();
        b.const_(len, 3i64);
        b.push(Instr::NewArray { dst: arr, len });
        b.const_(idx, 2i64);
        b.push(Instr::ArrayPut { arr, idx, src: v });
        b.push(Instr::ArrayGet { dst: v, arr, idx });
        let bad = b.fresh_label();
        b.if_not(CondOp::Eq, v, RegOrConst::Const(Value::Int(42)), bad);
        b.host_log("heap ok");
        b.place_label(bad);
        b.ret_void();
    });
    let (vm, result) = run_one(dex, RtValue::Int(0));
    result.unwrap();
    assert_eq!(vm.telemetry().logs, vec!["\"heap ok\""]);
}

#[test]
fn null_deref_faults() {
    let dex = one_method_dex(|b| {
        let v = b.fresh_reg();
        b.get_field(v, Reg(0), FieldRef::new("T", "x"));
        b.ret_void();
    });
    let (_, result) = run_one(dex, RtValue::Null);
    assert_eq!(result, Err(Fault::NullDeref));
}

#[test]
fn array_bounds_checked() {
    let dex = one_method_dex(|b| {
        let len = b.fresh_reg();
        let arr = b.fresh_reg();
        let v = b.fresh_reg();
        b.const_(len, 2i64);
        b.push(Instr::NewArray { dst: arr, len });
        b.push(Instr::ArrayGet {
            dst: v,
            arr,
            idx: Reg(0),
        });
        b.ret_void();
    });
    let (_, result) = run_one(dex, RtValue::Int(5));
    assert_eq!(result, Err(Fault::IndexOutOfBounds));
}

/// Builds a dex with a cryptographically obfuscated bomb exactly as the
/// paper's Listing 3: `if (Hash(x|salt) == Hc) { decrypt & run payload }`.
fn bomb_dex(payload: Vec<Instr>, secret: i64) -> DexFile {
    let salt = b"unit-test-salt".to_vec();
    let secret_value = Value::Int(secret);
    let hc = kdf::condition_hash(&secret_value.canonical_bytes(), &salt);
    let key = kdf::derive_key(&secret_value.canonical_bytes(), &salt);
    let sealed = bombdroid_crypto::blob::seal(&key, &wire::encode_fragment(&payload));

    let mut dex = DexFile::new();
    dex.add_blob(EncryptedBlob {
        salt: salt.clone(),
        sealed,
    });
    let mut class = Class::new("T");
    class.fields.push(Field::stat("OUT"));
    let mut b = MethodBuilder::new("T", "m", 1);
    let h = b.fresh_reg();
    b.hash(h, Reg(0), salt);
    let skip = b.fresh_label();
    b.if_not(CondOp::Eq, h, RegOrConst::Const(Value::bytes(hc)), skip);
    b.decrypt_exec(BlobId(0), Reg(0));
    b.place_label(skip);
    b.ret_void();
    class.methods.push(b.finish());
    dex.classes.push(class);
    dex
}

#[test]
fn bomb_dormant_on_wrong_input() {
    let payload = vec![Instr::HostCall {
        api: HostApi::Marker(7),
        args: vec![],
        dst: None,
    }];
    let (vm, result) = run_one(bomb_dex(payload, 0xfff000), RtValue::Int(123));
    result.unwrap();
    assert!(vm.telemetry().markers.is_empty());
    assert!(vm.telemetry().blobs_decrypted.is_empty());
    assert!(vm.telemetry().outer_satisfied.is_empty());
}

#[test]
fn bomb_fires_on_matching_input() {
    let payload = vec![Instr::HostCall {
        api: HostApi::Marker(7),
        args: vec![],
        dst: None,
    }];
    let (vm, result) = run_one(bomb_dex(payload, 0xfff000), RtValue::Int(0xfff000));
    result.unwrap();
    assert!(vm.telemetry().markers.contains(&7));
    assert_eq!(vm.telemetry().blobs_decrypted.len(), 1);
    assert_eq!(vm.telemetry().outer_satisfied.len(), 1);
    assert!(vm.telemetry().first_marker_ms.is_some());
}

#[test]
fn forcing_the_branch_without_key_fails_decryption() {
    // An attacker patches the branch away and jumps straight to the
    // DecryptExec with an arbitrary register value: MAC failure.
    let payload = vec![Instr::HostCall {
        api: HostApi::Marker(7),
        args: vec![],
        dst: None,
    }];
    let mut dex = bomb_dex(payload, 0xfff000);
    // Patch: replace the If with a Nop so execution always reaches the bomb.
    let m = dex.classes[0].methods.iter_mut().next().unwrap();
    let if_pos = m
        .body
        .iter()
        .position(|i| matches!(i, Instr::If { .. }))
        .unwrap();
    m.body[if_pos] = Instr::Nop;
    let (vm, result) = run_one(dex, RtValue::Int(55));
    assert_eq!(result, Err(Fault::DecryptFailed));
    assert_eq!(vm.telemetry().decrypt_failures, 1);
    assert!(vm.telemetry().markers.is_empty(), "payload never ran");
}

#[test]
fn fragment_cache_makes_second_trigger_cheap() {
    let payload = vec![Instr::HostCall {
        api: HostApi::Marker(1),
        args: vec![],
        dst: None,
    }];
    let mut vm = boot(bomb_dex(payload, 5));
    let mref = MethodRef::new("T", "m");
    let first = vm.fire_method(&mref, vec![RtValue::Int(5)]);
    let second = vm.fire_method(&mref, vec![RtValue::Int(5)]);
    first.result.unwrap();
    second.result.unwrap();
    assert!(
        second.instr < first.instr,
        "cached decrypt should be cheaper: {} vs {}",
        second.instr,
        first.instr
    );
}

#[test]
fn responses_kill_and_freeze() {
    let dex = one_method_dex(|b| {
        b.host(HostApi::KillProcess, vec![], None);
        b.ret_void();
    });
    let (mut vm, result) = run_one(dex, RtValue::Int(0));
    assert_eq!(result, Err(Fault::Killed));
    assert!(vm.is_killed());
    // Subsequent events are dead on arrival.
    let again = vm.fire_method(&MethodRef::new("T", "m"), vec![RtValue::Int(0)]);
    assert_eq!(again.result, Err(Fault::Killed));

    let dex = one_method_dex(|b| {
        b.host(HostApi::Freeze, vec![], None);
        b.ret_void();
    });
    let (vm, result) = run_one(dex, RtValue::Int(0));
    assert_eq!(result, Err(Fault::Frozen));
    assert!(vm.is_frozen());
}

#[test]
fn detection_primitives_read_installed_state() {
    let dex = one_method_dex(|b| {
        let k = b.fresh_reg();
        b.host(HostApi::GetPublicKey, vec![], Some(k));
        let entry = b.fresh_reg();
        b.const_(entry, Value::str("classes.dex"));
        let d = b.fresh_reg();
        b.host(HostApi::GetManifestDigest, vec![entry], Some(d));
        let cls = b.fresh_reg();
        b.const_(cls, Value::str("T"));
        let cd = b.fresh_reg();
        b.host(HostApi::CodeDigest, vec![cls], Some(cd));
        let res = b.fresh_reg();
        b.const_(res, Value::str("app_name"));
        let rs = b.fresh_reg();
        b.host(HostApi::GetResourceString, vec![res], Some(rs));
        // Log the resource so we can assert on it.
        b.host(HostApi::Log, vec![rs], None);
        b.ret_void();
    });
    let (vm, result) = run_one(dex, RtValue::Int(0));
    result.unwrap();
    assert_eq!(vm.telemetry().logs, vec!["\"vmtest\""]);
}

#[test]
fn attacker_hooks_fake_public_key_and_rng() {
    let dex = one_method_dex(|b| {
        let k = b.fresh_reg();
        b.host(HostApi::GetPublicKey, vec![], Some(k));
        let n = b.fresh_reg();
        b.const_(n, 100i64);
        let r = b.fresh_reg();
        b.host(HostApi::Random, vec![n], Some(r));
        b.host(HostApi::Log, vec![r], None);
        b.ret_void();
    });
    let pkg = install(dex);
    let mut opts = VmOptions::default();
    opts.hooks.fake_public_key = Some(vec![1, 2, 3]);
    opts.hooks.force_random = Some(0);
    let mut vm = Vm::new(pkg, DeviceEnv::attacker_lab(1).remove(0), 1, opts);
    vm.fire_method(&MethodRef::new("T", "m"), vec![RtValue::Int(0)])
        .result
        .unwrap();
    assert_eq!(vm.telemetry().logs, vec!["0"]);
}

#[test]
fn switch_dispatch() {
    let dex = one_method_dex(|b| {
        let a = b.fresh_label();
        let c = b.fresh_label();
        let d = b.fresh_label();
        let end = b.fresh_label();
        b.switch(Reg(0), vec![(1, a), (2, c)], d);
        b.place_label(a);
        b.host_log("one");
        b.goto(end);
        b.place_label(c);
        b.host_log("two");
        b.goto(end);
        b.place_label(d);
        b.host_log("other");
        b.place_label(end);
        b.ret_void();
    });
    for (input, expected) in [(1i64, "\"one\""), (2, "\"two\""), (9, "\"other\"")] {
        let (vm, result) = run_one(dex.clone(), RtValue::Int(input));
        result.unwrap();
        assert_eq!(vm.telemetry().logs, vec![expected.to_string()]);
    }
}

#[test]
fn invoke_and_return_values() {
    let mut dex = DexFile::new();
    let mut class = Class::new("T");
    // T.add1(x) { return x + 1 }
    let mut callee = MethodBuilder::new("T", "add1", 1);
    let t = callee.fresh_reg();
    callee.bin_const(BinOp::Add, t, Reg(0), 1);
    callee.ret(t);
    class.methods.push(callee.finish());
    // T.m(x) { y = add1(x); if (y == 8) log("eight") }
    let mut b = MethodBuilder::new("T", "m", 1);
    let y = b.fresh_reg();
    b.invoke(MethodRef::new("T", "add1"), vec![Reg(0)], Some(y));
    let skip = b.fresh_label();
    b.if_not(CondOp::Eq, y, RegOrConst::Const(Value::Int(8)), skip);
    b.host_log("eight");
    b.place_label(skip);
    b.ret_void();
    class.methods.push(b.finish());
    dex.classes.push(class);

    let (vm, result) = run_one(dex, RtValue::Int(7));
    result.unwrap();
    assert_eq!(vm.telemetry().logs, vec!["\"eight\""]);
    assert_eq!(vm.telemetry().method_calls[&MethodRef::new("T", "add1")], 1);
}

#[test]
fn reflection_resolves_get_public_key() {
    // SSN-style hidden call: name recovered at runtime, invoked via
    // reflection.
    let dex = one_method_dex(|b| {
        let n = b.fresh_reg();
        b.const_(n, Value::str("getPublicKey"));
        let k = b.fresh_reg();
        b.push(Instr::InvokeReflect {
            name: n,
            args: vec![],
            dst: Some(k),
        });
        b.ret_void();
    });
    let pkg = install(dex);
    let mut opts = VmOptions::default();
    opts.hooks.trace_reflection = true;
    let mut vm = Vm::new(pkg, DeviceEnv::attacker_lab(1).remove(0), 1, opts);
    vm.fire_method(&MethodRef::new("T", "m"), vec![RtValue::Int(0)])
        .result
        .unwrap();
    assert_eq!(vm.telemetry().reflection_trace.len(), 1);
    assert_eq!(vm.telemetry().reflection_trace[0].0, "getPublicKey");
}

#[test]
fn clock_advances_with_instructions_and_sleep() {
    let dex = one_method_dex(|b| {
        let ms = b.fresh_reg();
        b.const_(ms, 2_500i64);
        b.host(HostApi::SleepMs, vec![ms], None);
        b.ret_void();
    });
    let (vm, result) = run_one(dex, RtValue::Int(0));
    result.unwrap();
    assert!(vm.clock_ms() >= 2_500);
}
